#!/usr/bin/env bash
# Runs every trajectory bench (the BENCH_*.json emitters) and collects the
# JSON points in the repo root. Each point carries host metadata (core
# count, build flags, CINDERELLA_* env) written by bench::WriteHostMetadata,
# so numbers from different machines and build flavors stay comparable.
#
# Usage: tools/bench_all.sh [--smoke] [jobs]   (jobs defaults to nproc)
#   --smoke  tiny problem sizes, run in a scratch directory: verifies that
#            every bench still runs end-to-end and emits parseable JSON
#            without disturbing the real BENCH_*.json trajectory points.
#            Used by tools/tier1.sh; numbers from a smoke run mean nothing.
# Knobs: every CINDERELLA_BENCH_* variable passes straight through to the
#        benches (see the header comment of each bench/micro_*.cc).
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
JOBS=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) JOBS="$arg" ;;
  esac
done
JOBS="${JOBS:-$(nproc)}"

BENCHES=(micro_rating micro_insert micro_update micro_readers micro_scan
         micro_groupby micro_tuner micro_net pagestore_pruning)

echo "== bench-all: build =="
cmake -B build -S .
cmake --build build -j "$JOBS" --target "${BENCHES[@]}"

if [[ "$SMOKE" -eq 1 ]]; then
  # Tiny sizes shared by every bench that reads them; unknown knobs are
  # ignored by benches that don't.
  export CINDERELLA_BENCH_ENTITIES=2000
  export CINDERELLA_BENCH_TAIL_INSERTS=400
  export CINDERELLA_BENCH_TAIL_UPDATES=400
  export CINDERELLA_BENCH_DURABLE_ROWS=128
  export CINDERELLA_BENCH_QUERY_REPS=3
  export CINDERELLA_BENCH_KERNEL_BITS=1000000
  export CINDERELLA_BENCH_TREE_PARTITIONS=2000
  export CINDERELLA_BENCH_DURATION_MS=200
  export CINDERELLA_BENCH_READERS=2
  export CINDERELLA_BENCH_CHURN_ROUNDS=3
  export CINDERELLA_BENCH_SCAN_REPS=3
  export CINDERELLA_BENCH_IDENTITY_ENTITIES=2000
  export CINDERELLA_BENCH_GROUPBY_REPS=1
  export CINDERELLA_BENCH_TICKS=6
  export CINDERELLA_BENCH_REPS=2
  export CINDERELLA_BENCH_NET_REPS=2
  SCRATCH="$(mktemp -d)"
  trap 'rm -rf "$SCRATCH"' EXIT
  ROOT="$PWD"
  for bench in "${BENCHES[@]}"; do
    echo "== bench-all (smoke): $bench =="
    (cd "$SCRATCH" && "$ROOT/build/bench/$bench")
  done
  echo "== bench-all (smoke): points =="
  ls -l "$SCRATCH"/BENCH_*.json
  exit 0
fi

# Benches write BENCH_*.json into the working directory; run them from the
# repo root so the trajectory points land next to ROADMAP.md.
for bench in "${BENCHES[@]}"; do
  echo "== bench-all: $bench =="
  "./build/bench/$bench"
done

echo "== bench-all: points =="
ls -l BENCH_*.json
