#!/usr/bin/env bash
# Runs every trajectory bench (the BENCH_*.json emitters) and collects the
# JSON points in the repo root. Each point carries host metadata (core
# count, build flags, CINDERELLA_* env) written by bench::WriteHostMetadata,
# so numbers from different machines and build flavors stay comparable.
#
# Usage: tools/bench_all.sh [jobs]   (defaults to nproc)
# Knobs: every CINDERELLA_BENCH_* variable passes straight through to the
#        benches (see the header comment of each bench/micro_*.cc).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

BENCHES=(micro_rating micro_insert micro_readers micro_scan)

echo "== bench-all: build =="
cmake -B build -S .
cmake --build build -j "$JOBS" --target "${BENCHES[@]}"

# Benches write BENCH_*.json into the working directory; run them from the
# repo root so the trajectory points land next to ROADMAP.md.
for bench in "${BENCHES[@]}"; do
  echo "== bench-all: $bench =="
  "./build/bench/$bench"
done

echo "== bench-all: points =="
ls -l BENCH_*.json
