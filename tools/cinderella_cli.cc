// Command-line front end to the library: generate synthetic data, load a
// CSV into a Cinderella-partitioned table, inspect the partitioning, run
// attribute queries, and save/restore snapshots.
//
//   cinderella_cli generate  --entities 10000 [--seed 42] --out data.csv
//   cinderella_cli partition --in data.csv [--weight 0.3] [--max-size 5000]
//                            [--dissolve 0.2] --snapshot table.snap
//   cinderella_cli load      --in data.csv [--batch 1024] [--shards N]
//                            [--weight 0.3] [--max-size 5000]
//                            [--probe a,b,c] [--tune] --snapshot t.snap
//   cinderella_cli stats     --snapshot table.snap [--nodes N]
//   cinderella_cli query     --snapshot table.snap --attrs name,weight
//   cinderella_cli serve     --snapshot table.snap [--port P]
//   cinderella_cli cluster   --snapshot table.snap --nodes N --attrs a,b
//   cinderella_cli export    --snapshot table.snap --out data.csv

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/cinderella.h"
#include "core/partitioning_stats.h"
#include "core/snapshot.h"
#include "core/universal_table.h"
#include "ingest/batch_inserter.h"
#include "io/csv.h"
#include "mvcc/versioned_table.h"
#include "net/coordinator.h"
#include "net/loopback_cluster.h"
#include "net/node_server.h"
#include "query/aggregator.h"
#include "query/estimator.h"
#include "query/executor.h"
#include "query/parser.h"
#include "storage/tiered_store.h"
#include "tuner/reorganizer.h"
#include "tuner/workload_tracker.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it != flags.end() ? it->second : fallback;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags.find(name);
    return it != flags.end() ? std::atof(it->second.c_str()) : fallback;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = flags.find(name);
    return it != flags.end() ? std::atoll(it->second.c_str()) : fallback;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: cinderella_cli <command> [--flag value ...]\n"
      "  generate  --entities N [--seed S] --out FILE.csv\n"
      "  partition --in FILE.csv [--weight W] [--max-size B]\n"
      "            [--dissolve T] [--index] --snapshot FILE.snap\n"
      "  load      --in FILE.csv [--batch ROWS] [--shards N] [--weight W]\n"
      "            [--max-size B] [--dissolve T] [--index]\n"
      "            [--probe a,b,c]   (serve lock-free snapshot queries\n"
      "            on these attributes while the load runs)\n"
      "            [--tune]   (run the background reorganizer during the\n"
      "            load; probe traffic feeds its workload tracker, knobs\n"
      "            come from CINDERELLA_TUNER_* env vars)\n"
      "            [--ops COLUMN]   (mixed op stream: the named CSV\n"
      "            column selects insert/update/delete per record)\n"
      "            CINDERELLA_SPILL_BUDGET_BYTES>0 attaches a cold page\n"
      "            tier; committed windows spill idle partitions to it\n"
      "            --snapshot FILE.snap   (bulk load via the batched\n"
      "            mutation pipeline; placements match `partition`)\n"
      "  stats     --snapshot FILE.snap [--nodes N]   (with --nodes,\n"
      "            also boot N loopback node servers and print the\n"
      "            per-node stats the coordinator fetches over TCP;\n"
      "            with CINDERELLA_SPILL_BUDGET_BYTES set, demote the\n"
      "            idle tail to a cold page tier and report residency\n"
      "            and buffer-pool hit rate)\n"
      "  query     --snapshot FILE.snap --attrs a,b,c\n"
      "  serve     --snapshot FILE.snap [--port P] [--threads N]\n"
      "            [--duration-ms T]   (host the table as one node\n"
      "            server on loopback TCP; with T=0, serve until stdin\n"
      "            closes; CINDERELLA_NET_* env vars supply defaults)\n"
      "  cluster   --snapshot FILE.snap --nodes N --attrs a,b,c\n"
      "            [--policy schema|rr|least] [--no-prune]\n"
      "            (shard the table over N real node servers, run one\n"
      "            scatter/gather query, print per-node outcomes)\n"
      "  sql       --snapshot FILE.snap --query \"SELECT a WHERE b > 5\"\n"
      "            GROUP BY form: --query \"SELECT type, COUNT(*),\n"
      "            SUM(price) GROUP BY type\" [--limit N]\n"
      "            [--strategy adaptive|two_phase|radix|shared_table]\n"
      "  explain   --snapshot FILE.snap --attrs a,b,c\n"
      "  export    --snapshot FILE.snap --out FILE.csv\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Generate(const Args& args) {
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();
  DbpediaConfig config;
  config.num_entities = static_cast<size_t>(args.GetInt("entities", 10000));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  // Stage the rows in an unlimited single-partition table for export.
  CinderellaConfig cc;
  cc.weight = 1.0;
  cc.max_size = config.num_entities + 1;
  UniversalTable table(std::move(Cinderella::Create(cc)).value());
  DbpediaGenerator generator(config, &table.dictionary());
  for (Row& row : generator.Generate()) {
    const Status status = table.InsertRow(std::move(row));
    if (!status.ok()) return Fail(status);
  }
  const Status status = ExportCsvToFile(table, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu entities x %zu attributes to %s\n",
              config.num_entities, config.num_attributes, out.c_str());
  return 0;
}

int PartitionCommand(const Args& args) {
  const std::string in = args.Get("in");
  const std::string snapshot = args.Get("snapshot");
  if (in.empty() || snapshot.empty()) return Usage();

  CinderellaConfig config;
  config.weight = args.GetDouble("weight", 0.3);
  config.max_size = static_cast<uint64_t>(args.GetInt("max-size", 5000));
  config.dissolve_threshold = args.GetDouble("dissolve", 0.0);
  config.use_synopsis_index = args.flags.count("index") > 0;
  auto created = Cinderella::Create(config);
  if (!created.ok()) return Fail(created.status());
  UniversalTable table(std::move(created).value());

  WallTimer timer;
  Status status = ImportCsvFromFile(in, &table);
  if (!status.ok()) return Fail(status);
  const auto& cinderella =
      static_cast<const Cinderella&>(table.partitioner());
  std::printf("loaded %zu entities in %.2fs: %zu partitions, %llu splits\n",
              table.entity_count(), timer.ElapsedSeconds(),
              table.catalog().partition_count(),
              static_cast<unsigned long long>(cinderella.stats().splits));
  status = SaveSnapshotToFile(cinderella, table.dictionary(), snapshot);
  if (!status.ok()) return Fail(status);
  std::printf("snapshot written to %s\n", snapshot.c_str());
  return 0;
}

// Bulk load through the batched ingest pipeline (src/ingest): rows are
// accumulated into batches, rated window-at-a-time against the sharded
// catalog mirror, and committed with placements identical to `partition`.
// --shards 0 (the default) resolves CINDERELLA_INSERT_SHARDS, then the
// hardware concurrency, mirroring how scan_threads is resolved.
int Load(const Args& args) {
  const std::string in = args.Get("in");
  const std::string snapshot = args.Get("snapshot");
  if (in.empty() || snapshot.empty()) return Usage();

  CinderellaConfig config;
  config.weight = args.GetDouble("weight", 0.3);
  config.max_size = static_cast<uint64_t>(args.GetInt("max-size", 5000));
  config.dissolve_threshold = args.GetDouble("dissolve", 0.0);
  config.use_synopsis_index = args.flags.count("index") > 0;
  config.insert_shards = static_cast<int>(args.GetInt("shards", 0));
  auto created = Cinderella::Create(config);
  if (!created.ok()) return Fail(created.status());
  Cinderella* cinderella = created->get();
  UniversalTable table(std::move(created).value());
  const std::unique_ptr<BatchInserter> engine =
      AttachBatchInserter(cinderella);

  // --probe a,b,c: serve snapshot queries on those attributes from a
  // second thread while the load runs — the MVCC read path end to end.
  // The probe attributes are interned and the Query built *before* the
  // import starts: the dictionary grows concurrently with the load and
  // is not safe to read from another thread mid-import. Pre-interning
  // shifts attribute-id assignment relative to a probe-less load, so the
  // snapshot is not byte-comparable to `partition` output; the
  // *placements* are unaffected (every rating cardinality and tie-break
  // is attribute-id-permutation-invariant).
  const std::string probe = args.Get("probe");
  // --tune: run the workload-driven background reorganizer during the
  // load. The probe executors feed the tracker (set_observer), so the
  // daemon sees real per-partition traffic; without --probe it still
  // consolidates cold under-filled partitions. Knobs resolve from the
  // CINDERELLA_TUNER_* environment (README "Tuner knobs").
  const bool tune = args.flags.count("tune") > 0;
  std::unique_ptr<VersionedTable> versioned;
  WorkloadTracker tracker;
  std::unique_ptr<Reorganizer> reorganizer;
  std::thread probe_thread;
  std::atomic<bool> load_done{false};
  std::atomic<uint64_t> probe_queries{0};
  std::atomic<uint64_t> probe_matched{0};
  if (!probe.empty() || tune) {
    versioned = std::make_unique<VersionedTable>(cinderella, engine.get());
  }
  if (!probe.empty()) {
    std::vector<std::string> names;
    std::stringstream ss(probe);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) names.push_back(name);
    }
    for (const std::string& attr : names) {
      table.dictionary().GetOrCreate(attr);
    }
    const Query probe_query = Query::FromNames(table.dictionary(), names);
    probe_thread = std::thread([&, probe_query, tune] {
      while (!load_done.load(std::memory_order_acquire)) {
        {
          const VersionedTable::Snapshot snapshot = versioned->snapshot();
          QueryExecutor executor(snapshot.view());
          if (tune) executor.set_observer(&tracker);
          probe_matched.store(
              executor.Execute(probe_query).metrics.rows_matched,
              std::memory_order_relaxed);
          probe_queries.fetch_add(1, std::memory_order_relaxed);
        }
        // Yield between snapshots so the probe samples the load instead
        // of competing with it for every cycle.
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }
  if (tune) {
    reorganizer = std::make_unique<Reorganizer>(versioned.get(), &tracker,
                                                ReorganizerOptions::FromEnv());
    reorganizer->Start();
  }

  // Tiered storage (opt-in via CINDERELLA_SPILL_BUDGET_BYTES): attach a
  // cold tier backed by <snapshot>.pages and run the spill policy at
  // every committed ingest window — the window commit is the spill
  // boundary, so the MVCC publication closing the window already
  // reflects the demotions. With --tune, probe traffic ranks partitions
  // by activity and the reorganizer's evict-idle plans nominate
  // partitions; the demotion itself always runs at the next boundary,
  // under the same serialization as every other catalog mutation.
  std::unique_ptr<TieredStore> tier;
  std::unique_ptr<TierController> tier_controller;
  std::mutex spill_request_mu;
  std::vector<PartitionId> spill_requests;
  {
    TieredStoreOptions tier_options;
    tier_options.path = snapshot + ".pages";
    tier_options = TieredStoreOptions::FromEnv(std::move(tier_options));
    if (tier_options.budget_bytes > 0) {
      auto opened = TieredStore::Open(tier_options);
      if (!opened.ok()) return Fail(opened.status());
      tier = std::move(opened).value();
      cinderella->set_cold_tier(tier.get());
      tier_controller = std::make_unique<TierController>(
          cinderella, TierControllerOptions{tier_options.budget_bytes,
                                            tier_options.min_idle});
      if (tune) {
        tier_controller->set_activity_probe(
            [&tracker](PartitionId id) { return tracker.ActivityOf(id); });
      }
      engine->set_spill_hook([&] {
        std::vector<PartitionId> forced;
        {
          std::lock_guard<std::mutex> lock(spill_request_mu);
          forced.swap(spill_requests);
        }
        if (!forced.empty()) (void)tier_controller->SpillPartitions(forced);
        (void)tier_controller->EvaluateAndSpill();
      });
      if (reorganizer != nullptr) {
        reorganizer->set_spill_hook(
            [&](const std::vector<PartitionId>& ids) {
              std::lock_guard<std::mutex> lock(spill_request_mu);
              spill_requests.insert(spill_requests.end(), ids.begin(),
                                    ids.end());
              return ids.size();
            });
      }
    }
  }

  CsvOptions csv;
  csv.batch_rows = static_cast<size_t>(args.GetInt("batch", 1024));
  if (csv.batch_rows == 0) csv.batch_rows = 1;
  // --ops COLUMN routes the file through the unified mutation pipeline as
  // a mixed insert/update/delete stream.
  csv.op_column = args.Get("ops");
  WallTimer timer;
  Status status = ImportCsvFromFile(in, &table, csv);
  const double load_seconds = timer.ElapsedSeconds();
  if (probe_thread.joinable()) {
    load_done.store(true, std::memory_order_release);
    probe_thread.join();
  }
  if (reorganizer != nullptr) reorganizer->Stop();
  if (tier != nullptr) engine->set_spill_hook(nullptr);
  if (!status.ok()) return Fail(status);
  const BatchInserter::Stats ingest = engine->stats();
  std::printf(
      "loaded %zu entities in %.2fs: %zu partitions, %llu splits\n"
      "ingest: %llu batches, %llu windows, %llu ratings "
      "(%llu re-rated, %llu rescanned)\n",
      table.entity_count(), load_seconds,
      table.catalog().partition_count(),
      static_cast<unsigned long long>(cinderella->stats().splits),
      static_cast<unsigned long long>(ingest.batches),
      static_cast<unsigned long long>(ingest.windows),
      static_cast<unsigned long long>(ingest.ratings),
      static_cast<unsigned long long>(ingest.reratings),
      static_cast<unsigned long long>(ingest.rescans));
  if (ingest.updates > 0 || ingest.deletes > 0) {
    std::printf("ops: %llu updates (%llu moved), %llu deletes\n",
                static_cast<unsigned long long>(ingest.updates),
                static_cast<unsigned long long>(
                    cinderella->stats().updates_moved),
                static_cast<unsigned long long>(ingest.deletes));
  }
  if (versioned != nullptr) {
    std::printf(
        "probe '%s': %llu snapshot queries during the load "
        "(%.0f/s, never blocked), final generation %llu, "
        "last result %llu rows\n",
        probe.c_str(),
        static_cast<unsigned long long>(probe_queries.load()),
        static_cast<double>(probe_queries.load()) / load_seconds,
        static_cast<unsigned long long>(versioned->published_generation()),
        static_cast<unsigned long long>(probe_matched.load()));
  }
  if (reorganizer != nullptr) {
    const TunerStats tuner = reorganizer->stats();
    std::printf(
        "tuner: %llu ticks, %llu plans considered, %llu applied "
        "(%llu splits, %llu merges, %llu evictions)\n"
        "tuner: %llu rows moved, %llu plans deferred by budget, "
        "%llu cooldown skips\n"
        "tuner: EFFICIENCY %.3f at generation %llu, tracking %zu "
        "partitions / %.0f decayed queries\n",
        static_cast<unsigned long long>(tuner.ticks),
        static_cast<unsigned long long>(tuner.plans_considered),
        static_cast<unsigned long long>(tuner.plans_applied),
        static_cast<unsigned long long>(tuner.splits_applied),
        static_cast<unsigned long long>(tuner.merges_applied),
        static_cast<unsigned long long>(tuner.evictions_applied),
        static_cast<unsigned long long>(tuner.rows_moved),
        static_cast<unsigned long long>(tuner.plans_deferred_budget),
        static_cast<unsigned long long>(tuner.plans_skipped_cooldown),
        tuner.last_efficiency,
        static_cast<unsigned long long>(tuner.last_generation),
        tuner.tracked_partitions, tuner.tracked_queries);
    if (tuner.spills_applied > 0) {
      std::printf("tuner: %llu partitions nominated for demotion\n",
                  static_cast<unsigned long long>(tuner.spills_applied));
    }
  }
  if (tier != nullptr) {
    const TieredStoreStats ts = tier->stats();
    const CinderellaStats& cs = cinderella->stats();
    const uint64_t probes = ts.pool.hits + ts.pool.misses;
    std::printf(
        "tier: %llu cold chains (%llu entities, %.2f MiB, %llu pages) "
        "after %llu spills / %llu faults; hot %.2f MiB vs budget %.2f MiB\n"
        "tier: buffer pool %llu hits / %llu misses (%.1f%% hit rate), "
        "%llu evictions\n",
        static_cast<unsigned long long>(ts.chains),
        static_cast<unsigned long long>(ts.cold_entities),
        static_cast<double>(ts.cold_bytes) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(ts.cold_pages),
        static_cast<unsigned long long>(cs.spills),
        static_cast<unsigned long long>(cs.faults),
        static_cast<double>(tier_controller->HotBytes()) / (1024.0 * 1024.0),
        static_cast<double>(tier->options().budget_bytes) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(ts.pool.hits),
        static_cast<unsigned long long>(ts.pool.misses),
        probes > 0 ? 100.0 * static_cast<double>(ts.pool.hits) /
                         static_cast<double>(probes)
                   : 0.0,
        static_cast<unsigned long long>(ts.pool.evictions));
  }
  status = SaveSnapshotToFile(*cinderella, table.dictionary(), snapshot);
  if (!status.ok()) return Fail(status);
  std::printf("snapshot written to %s\n", snapshot.c_str());
  return 0;
}

StatusOr<RestoredSnapshot> OpenSnapshot(const Args& args) {
  const std::string snapshot = args.Get("snapshot");
  if (snapshot.empty()) {
    return Status::InvalidArgument("--snapshot is required");
  }
  return LoadSnapshotFromFile(snapshot);
}

/// Copies every live row out of a catalog (to shard a restored table
/// across loopback nodes).
std::vector<Row> CollectRows(const PartitionCatalog& catalog) {
  std::vector<Row> rows;
  catalog.ForEachPartition([&](const Partition& partition) {
    for (const Row& row : partition.segment().rows()) rows.push_back(row);
  });
  return rows;
}

PlacementPolicy ParsePolicy(const std::string& name) {
  if (name == "rr" || name == "round-robin") {
    return PlacementPolicy::kRoundRobin;
  }
  if (name == "least" || name == "least-loaded") {
    return PlacementPolicy::kLeastLoaded;
  }
  return PlacementPolicy::kSchemaAware;
}

/// Prints one per-node stats table by round-tripping kStatsRequest frames
/// through the coordinator — the same wire path a remote operator uses.
int PrintNodeStats(net::Coordinator& coordinator) {
  std::printf("per-node stats (over loopback TCP):\n");
  std::printf("  %-5s %-6s %-10s %-10s %-10s %-12s %-8s\n", "node", "port",
              "generation", "partitions", "entities", "bytes", "served");
  for (size_t n = 0; n < coordinator.num_nodes(); ++n) {
    StatusOr<net::NodeStatsMsg> stats = coordinator.FetchStats(n);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("  %-5zu %-6u %-10llu %-10llu %-10llu %-12llu %-8llu\n", n,
                coordinator.endpoints()[n].port,
                static_cast<unsigned long long>(stats->generation),
                static_cast<unsigned long long>(stats->partitions),
                static_cast<unsigned long long>(stats->entities),
                static_cast<unsigned long long>(stats->bytes),
                static_cast<unsigned long long>(stats->queries_served));
  }
  return 0;
}

int Stats(const Args& args) {
  auto restored = OpenSnapshot(args);
  if (!restored.ok()) return Fail(restored.status());
  Cinderella& c = *restored->partitioner;
  std::printf("%s\n", c.name().c_str());
  std::printf("%s", AnalyzePartitioning(c.catalog()).ToString().c_str());

  // Cold tier (opt-in via CINDERELLA_SPILL_BUDGET_BYTES): demote the
  // restored table's idle tail to a page tier beside the snapshot, run
  // one full hybrid scan through it, and report residency plus
  // buffer-pool behavior. The spilled partitions are faulted back hot
  // before the tier closes (below), so the remaining sections see the
  // table exactly as an all-hot restore would.
  std::unique_ptr<TieredStore> tier;
  {
    TieredStoreOptions tier_options;
    tier_options.path = args.Get("snapshot") + ".pages";
    tier_options = TieredStoreOptions::FromEnv(std::move(tier_options));
    if (tier_options.budget_bytes > 0) {
      auto opened = TieredStore::Open(tier_options);
      if (!opened.ok()) return Fail(opened.status());
      tier = std::move(opened).value();
      c.set_cold_tier(tier.get());
      TierController controller(
          &c, TierControllerOptions{tier_options.budget_bytes, 0});
      const StatusOr<size_t> spilled = controller.EvaluateAndSpill();
      if (!spilled.ok()) return Fail(spilled.status());
      // One match-all predicate scan: hot partitions read from their
      // segments, cold ones fetch their chains through the buffer pool.
      QueryExecutor executor(c.catalog(), 0);
      const PredicatePtr match_all = And(std::vector<PredicatePtr>{});
      const QueryResult scanned = executor.ExecutePredicate(*match_all);
      const TieredStoreStats ts = tier->stats();
      const uint64_t probes = ts.pool.hits + ts.pool.misses;
      std::printf("cold tier (budget %.2f MiB):\n",
                  static_cast<double>(tier_options.budget_bytes) /
                      (1024.0 * 1024.0));
      std::printf("  %zu partitions spilled: %llu chains, %llu entities, "
                  "%.2f MiB in %llu pages; hot %.2f MiB\n",
                  *spilled, static_cast<unsigned long long>(ts.chains),
                  static_cast<unsigned long long>(ts.cold_entities),
                  static_cast<double>(ts.cold_bytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(ts.cold_pages),
                  static_cast<double>(controller.HotBytes()) /
                      (1024.0 * 1024.0));
      std::printf("  full hybrid scan: %llu rows; buffer pool %llu hits / "
                  "%llu misses (%.1f%% hit rate), %llu evictions\n",
                  static_cast<unsigned long long>(
                      scanned.metrics.rows_scanned),
                  static_cast<unsigned long long>(ts.pool.hits),
                  static_cast<unsigned long long>(ts.pool.misses),
                  probes > 0 ? 100.0 * static_cast<double>(ts.pool.hits) /
                                   static_cast<double>(probes)
                             : 0.0,
                  static_cast<unsigned long long>(ts.pool.evictions));
    }
  }

  // Snapshot memory footprint: publish one MVCC view of the restored
  // table and report what the read engine holds for it — how many
  // immutable versions the current generation references, the arena
  // bytes they pack, and what the pools would retain across
  // republication (common/arena.h, DESIGN.md §10).
  {
    VersionedTable versioned(&c, nullptr);
    const VersionedTable::MemoryStats m = versioned.memory_stats();
    std::printf("mvcc snapshot footprint:\n");
    std::printf("  generation          %llu\n",
                static_cast<unsigned long long>(m.generation));
    std::printf("  live versions       %zu (%.2f MiB packed)\n",
                m.live_versions,
                static_cast<double>(m.view_bytes) / (1024.0 * 1024.0));
    std::printf("  tier residency      %zu hot / %zu cold versions "
                "(%.2f MiB in %llu cold pages)\n",
                m.hot_versions, m.cold_versions,
                static_cast<double>(m.cold_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(m.cold_pages));
    std::printf("  arenas live/pooled  %zu/%zu (%.2f MiB retained idle)\n",
                m.arenas.live_arenas, m.arenas.pooled_arenas,
                static_cast<double>(m.arenas.bytes_retained) /
                    (1024.0 * 1024.0));
    std::printf("  arena high-water    %.2f MiB (%llu idle blocks trimmed)\n",
                static_cast<double>(m.arenas.bytes_high_water) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(m.arenas.blocks_trimmed));
    std::printf("  version shells      %llu created, %zu pooled\n",
                static_cast<unsigned long long>(m.version_shells.created),
                m.version_shells.pooled);
    std::printf("  retired awaiting gc %zu (reclaimed %llu)\n",
                m.retired_objects,
                static_cast<unsigned long long>(m.reclaimed_objects));
    if (m.tree.enabled) {
      std::printf("  query synopsis tree depth %zu, fanout %zu, %zu internal "
                  "nodes over %llu leaves\n",
                  m.tree.depth, m.tree.fanout, m.tree.internal_nodes,
                  static_cast<unsigned long long>(m.tree.live_leaves));
      std::printf("  query tree maint.   %llu upserts (%llu fast-merged, "
                  "%llu re-ORed nodes), %llu removes, %llu collapses, "
                  "%llu COW copies\n",
                  static_cast<unsigned long long>(m.tree.upserts),
                  static_cast<unsigned long long>(m.tree.fast_merges),
                  static_cast<unsigned long long>(m.tree.node_reors),
                  static_cast<unsigned long long>(m.tree.removes),
                  static_cast<unsigned long long>(m.tree.collapses),
                  static_cast<unsigned long long>(m.tree.nodes_copied));
    }
  }
  // Insert-rating synopsis tree (core/cinderella.h): the structure the
  // partitioner descends on every FindBestPartition.
  if (c.config().use_synopsis_tree) {
    const SynopsisTree& tree = c.synopsis_tree();
    const SynopsisTree::Stats& ts = tree.stats();
    std::printf("rating synopsis tree:\n");
    std::printf("  depth %zu, fanout %zu, %zu internal nodes over %llu "
                "partition leaves\n",
                tree.depth(), tree.fanout(), tree.internal_node_count(),
                static_cast<unsigned long long>(tree.live_count()));
    std::printf("  %llu upserts (%llu fast-merged, %llu re-ORed nodes), "
                "%llu removes, %llu collapses, %llu COW copies\n",
                static_cast<unsigned long long>(ts.upserts),
                static_cast<unsigned long long>(ts.fast_merges),
                static_cast<unsigned long long>(ts.node_reors),
                static_cast<unsigned long long>(ts.removes),
                static_cast<unsigned long long>(ts.collapses),
                static_cast<unsigned long long>(ts.nodes_copied));
  }
  if (args.flags.count("verify") > 0) {
    const Status integrity = c.VerifyIntegrity();
    std::printf("integrity: %s\n", integrity.ToString().c_str());
    if (!integrity.ok()) return 1;
  }

  // Fault everything back hot before the tier closes: the loopback
  // sharding below copies rows out of live segments.
  if (tier != nullptr) {
    std::vector<PartitionId> cold_ids;
    c.catalog().ForEachPartition([&](const Partition& partition) {
      if (partition.cold()) cold_ids.push_back(partition.id());
    });
    for (const PartitionId id : cold_ids) {
      Partition* partition = c.catalog().GetPartition(id);
      if (partition == nullptr) continue;
      const Status hot = c.EnsureHot(*partition);
      if (!hot.ok()) return Fail(hot);
    }
    c.set_cold_tier(nullptr);
  }

  // --nodes N: shard the restored table over N real loopback node
  // servers and print what each reports over the wire.
  const int64_t nodes = args.GetInt("nodes", 0);
  if (nodes > 0) {
    net::LoopbackClusterOptions options = net::LoopbackClusterOptions::FromEnv();
    options.nodes = static_cast<size_t>(nodes);
    options.config = c.config();
    net::LoopbackCluster cluster(std::move(options));
    const Status status = cluster.Load(CollectRows(c.catalog()));
    if (!status.ok()) return Fail(status);
    return PrintNodeStats(cluster.coordinator());
  }
  return 0;
}

int Serve(const Args& args) {
  auto restored = OpenSnapshot(args);
  if (!restored.ok()) return Fail(restored.status());
  Cinderella& c = *restored->partitioner;
  VersionedTable table(&c, nullptr);

  net::NodeServerOptions options = net::NodeServerOptions::FromEnv();
  options.port = static_cast<uint16_t>(args.GetInt("port", options.port));
  const int64_t threads = args.GetInt("threads", 0);
  if (threads > 0) options.threads = static_cast<int>(threads);
  net::NodeServer server(&table, options);
  Status status = server.Start();
  if (!status.ok()) return Fail(status);

  std::printf("serving %zu partitions on 127.0.0.1:%u\n",
              c.catalog().partition_count(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  const int64_t duration_ms = args.GetInt("duration-ms", 0);
  if (duration_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  } else {
    // Serve until stdin closes (Ctrl-D, or the driving pipe ends).
    while (std::getchar() != EOF) {
    }
  }
  server.Stop();
  const net::NodeServer::Stats stats = server.stats();
  std::printf(
      "served %llu queries (%llu rows shipped) over %llu connections, "
      "%llu bad frames rejected\n",
      static_cast<unsigned long long>(stats.queries_served),
      static_cast<unsigned long long>(stats.rows_shipped),
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.frames_rejected));
  return 0;
}

int ClusterCommand(const Args& args) {
  auto restored = OpenSnapshot(args);
  if (!restored.ok()) return Fail(restored.status());
  const std::string attrs = args.Get("attrs");
  if (attrs.empty()) return Usage();
  std::vector<std::string> names;
  std::stringstream ss(attrs);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  const Query query = Query::FromNames(*restored->dictionary, names);

  Cinderella& c = *restored->partitioner;
  net::LoopbackClusterOptions options = net::LoopbackClusterOptions::FromEnv();
  options.nodes = static_cast<size_t>(args.GetInt("nodes", 2));
  options.policy = ParsePolicy(args.Get("policy", "schema"));
  options.config = c.config();
  if (args.flags.count("no-prune") > 0) options.coordinator.prune = false;
  net::LoopbackCluster cluster(std::move(options));
  const Status status = cluster.Load(CollectRows(c.catalog()));
  if (!status.ok()) return Fail(status);

  const net::GatherResult result = cluster.coordinator().Execute(query);
  std::printf(
      "%s: %llu rows gathered in %.3f ms from %llu/%llu nodes "
      "(%llu pruned by digest, %llu failed)\n",
      result.complete ? "complete" : "PARTIAL",
      static_cast<unsigned long long>(result.rows.size()), result.wall_ms,
      static_cast<unsigned long long>(result.nodes_contacted),
      static_cast<unsigned long long>(result.nodes_total),
      static_cast<unsigned long long>(result.nodes_pruned),
      static_cast<unsigned long long>(result.nodes_failed));
  std::printf(
      "scanned %llu/%llu partitions (%llu pruned node-side), "
      "%llu cells shipped, slowest node %.3f ms\n",
      static_cast<unsigned long long>(result.partitions_scanned),
      static_cast<unsigned long long>(result.partitions_total),
      static_cast<unsigned long long>(result.partitions_pruned),
      static_cast<unsigned long long>(result.cells_shipped),
      result.max_node_ms);
  for (const net::NodeOutcome& outcome : result.nodes) {
    std::printf("  node %zu: %s, %llu rows, %d attempt(s), %.3f ms%s%s\n",
                outcome.node,
                outcome.pruned ? "pruned" : (outcome.ok ? "ok" : "FAILED"),
                static_cast<unsigned long long>(outcome.rows),
                outcome.attempts, outcome.wall_ms,
                outcome.error.empty() ? "" : " — ",
                outcome.error.c_str());
  }
  return PrintNodeStats(cluster.coordinator());
}

int QueryCommand(const Args& args) {
  auto restored = OpenSnapshot(args);
  if (!restored.ok()) return Fail(restored.status());
  const std::string attrs = args.Get("attrs");
  if (attrs.empty()) return Usage();
  std::vector<std::string> names;
  std::stringstream ss(attrs);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  const Query query = Query::FromNames(*restored->dictionary, names);
  // Degree 0: honor CINDERELLA_SCAN_THREADS / the hardware, like inserts.
  QueryExecutor executor(restored->partitioner->catalog(), 0);
  WallTimer timer;
  const QueryResult result = executor.Execute(query);
  std::printf(
      "matched %llu rows (selectivity %.4f) in %.3f ms; scanned %llu/%llu "
      "partitions (%llu pruned), %llu cells read\n",
      static_cast<unsigned long long>(result.metrics.rows_matched),
      result.selectivity, timer.ElapsedMillis(),
      static_cast<unsigned long long>(result.metrics.partitions_scanned),
      static_cast<unsigned long long>(result.metrics.partitions_total),
      static_cast<unsigned long long>(result.metrics.partitions_pruned),
      static_cast<unsigned long long>(result.metrics.cells_read));
  return 0;
}

int Explain(const Args& args) {
  auto restored = OpenSnapshot(args);
  if (!restored.ok()) return Fail(restored.status());
  const std::string attrs = args.Get("attrs");
  if (attrs.empty()) return Usage();
  std::vector<std::string> names;
  std::stringstream ss(attrs);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  const Query query = Query::FromNames(*restored->dictionary, names);
  std::fputs(
      ExplainQuery(restored->partitioner->catalog(), query).c_str(),
      stdout);
  return 0;
}

/// Renders one aggregate column of a group row, in SELECT-list order.
std::string AggregateColumn(const AggregateItem& item,
                            const GroupResult& group) {
  switch (item.fn) {
    case AggregateFn::kCount:
      return std::to_string(item.count_all ? group.count
                                           : group.value_count);
    case AggregateFn::kSum:
      return std::to_string(group.sum);
    case AggregateFn::kMin:
      return group.value_count > 0 ? std::to_string(group.min) : "null";
    case AggregateFn::kMax:
      return group.value_count > 0 ? std::to_string(group.max) : "null";
    case AggregateFn::kAvg: {
      if (group.value_count == 0) return "null";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", group.avg());
      return buf;
    }
  }
  return "";
}

int SqlGroupBy(const Args& args, const RestoredSnapshot& restored,
               const SelectStatement& statement) {
  AggregatorOptions options;
  options.scan_threads = 0;  // CINDERELLA_SCAN_THREADS / hardware.
  const std::string strategy = args.Get("strategy", "adaptive");
  if (strategy == "two_phase") {
    options.strategy = AggregateStrategy::kTwoPhase;
  } else if (strategy == "radix") {
    options.strategy = AggregateStrategy::kRadix;
  } else if (strategy == "shared_table") {
    options.strategy = AggregateStrategy::kSharedTable;
  } else if (strategy != "adaptive") {
    std::fprintf(stderr, "error: unknown --strategy '%s'\n",
                 strategy.c_str());
    return 2;
  }
  AggregateSpec spec;
  spec.group_by = statement.group_by;
  spec.where = statement.where.get();
  for (const AggregateItem& item : statement.aggregates) {
    if (!item.count_all) spec.value = item.attribute;
  }
  Aggregator aggregator(restored.partitioner->catalog(), options);
  WallTimer timer;
  const AggregationResult result = aggregator.Aggregate(spec);
  const double elapsed_ms = timer.ElapsedMillis();
  const size_t limit =
      static_cast<size_t>(args.GetInt("limit", 20));
  size_t printed = 0;
  for (const GroupResult& group : result.groups) {
    if (printed >= limit) break;
    ++printed;
    std::string line = group.key.ToString();
    for (const AggregateItem& item : statement.aggregates) {
      line += "  ";
      line += AggregateColumn(item, group);
    }
    std::printf("%s\n", line.c_str());
  }
  if (printed < result.groups.size()) {
    std::printf("... %zu more groups\n", result.groups.size() - printed);
  }
  std::printf(
      "%zu groups from %llu rows in %.3f ms; strategy %s (estimated %llu "
      "groups%s); scanned %llu/%llu partitions (%llu pruned)\n",
      result.groups.size(),
      static_cast<unsigned long long>(result.metrics.rows_matched),
      elapsed_ms, AggregateStrategyName(result.strategy_used),
      static_cast<unsigned long long>(result.estimated_groups),
      result.shared_table_overflow ? ", shared table overflowed" : "",
      static_cast<unsigned long long>(result.metrics.partitions_scanned),
      static_cast<unsigned long long>(result.metrics.partitions_total),
      static_cast<unsigned long long>(result.metrics.partitions_pruned));
  return 0;
}

int Sql(const Args& args) {
  auto restored = OpenSnapshot(args);
  if (!restored.ok()) return Fail(restored.status());
  const std::string text = args.Get("query");
  if (text.empty()) return Usage();
  auto statement = ParseSelect(text, *restored->dictionary);
  if (!statement.ok()) return Fail(statement.status());
  if (statement->has_group_by) {
    return SqlGroupBy(args, *restored, *statement);
  }
  QueryExecutor executor(restored->partitioner->catalog(), 0);
  WallTimer timer;
  const QueryResult result = executor.ExecuteSelect(*statement);
  std::printf(
      "matched %llu rows in %.3f ms; %llu cells materialized; scanned "
      "%llu/%llu partitions (%llu pruned)\n",
      static_cast<unsigned long long>(result.metrics.rows_matched),
      timer.ElapsedMillis(),
      static_cast<unsigned long long>(result.cells_materialized),
      static_cast<unsigned long long>(result.metrics.partitions_scanned),
      static_cast<unsigned long long>(result.metrics.partitions_total),
      static_cast<unsigned long long>(result.metrics.partitions_pruned));
  return 0;
}

int Export(const Args& args) {
  auto restored = OpenSnapshot(args);
  if (!restored.ok()) return Fail(restored.status());
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();
  UniversalTable table(std::move(restored->partitioner),
                       std::move(*restored->dictionary));
  const Status status = ExportCsvToFile(table, out);
  if (!status.ok()) return Fail(status);
  std::printf("exported %zu entities to %s\n", table.entity_count(),
              out.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) return Usage();
    flag = flag.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.flags[flag] = argv[++i];
    } else {
      args.flags[flag] = "true";  // Boolean flag (e.g. --index).
    }
  }
  if (args.command == "generate") return Generate(args);
  if (args.command == "partition") return PartitionCommand(args);
  if (args.command == "load") return Load(args);
  if (args.command == "stats") return Stats(args);
  if (args.command == "query") return QueryCommand(args);
  if (args.command == "serve") return Serve(args);
  if (args.command == "cluster") return ClusterCommand(args);
  if (args.command == "sql") return Sql(args);
  if (args.command == "explain") return Explain(args);
  if (args.command == "export") return Export(args);
  return Usage();
}

}  // namespace
}  // namespace cinderella

int main(int argc, char** argv) { return cinderella::Main(argc, argv); }
