#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, a smoke run
# of every trajectory bench (tiny sizes — catches bitrot in the BENCH_*
# emitters without paying for real numbers), then a
# thread-sanitized side build of the scan engine (thread pool, parallel
# rating scan, parallel query executor), the MVCC read engine, and the
# networked node-server path (loopback TCP clients vs the acceptor/worker
# pool while snapshots republish) to catch
# data races the regular build cannot, then an address-sanitized build of
# the MVCC + arena tests with leak detection on — epoch-based deferred
# reclamation must free every retired version exactly once, and pooled
# arenas/shells must balance their create/recycle counts. The tiered
# cold store runs in both side builds: its spill/fault cycles and
# snapshot readers over a spilling writer under TSan, and chain/page
# ownership under ASan with leak detection. A final
# UBSan side build (fatal, no recover) covers the aggregation engine's
# atomics, hashing, and double->int64 truncation paths.
#
# Usage: tools/tier1.sh [--fast] [jobs]   (jobs defaults to nproc)
#   --fast   skip the multi-threaded stress binaries (the TSan/ASan
#            builds still run the deterministic engine tests); for quick
#            local iteration, not for sign-off.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
JOBS=""
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) JOBS="$arg" ;;
  esac
done
JOBS="${JOBS:-$(nproc)}"

# Every ctest/test invocation gets an explicit wall-clock cap so a hung
# stress test fails the tier instead of wedging it.
CTEST_TIMEOUT=300

echo "== tier-1: standard build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS" --timeout "$CTEST_TIMEOUT")

echo "== tier-1: bench smoke (tiny sizes, scratch dir) =="
tools/bench_all.sh --smoke "$JOBS"

echo "== tier-1: TSan build of the scan + ingest engine tests =="
TSAN_TARGETS=(thread_pool_test parallel_scan_test aggregator_test ingest_test mutation_pipeline_test synopsis_tree_test mvcc_test tuner_test net_cluster_test)
if [[ "$FAST" -eq 0 ]]; then
  TSAN_TARGETS+=(ingest_concurrency_test mvcc_stress_test tuner_stress_test net_stress_test tiered_stress_test)
fi
cmake -B build-tsan -S . -DCINDERELLA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"
# Force the pools to spawn real workers even on small machines.
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/thread_pool_test
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/parallel_scan_test
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/aggregator_test
CINDERELLA_INSERT_SHARDS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/ingest_test
CINDERELLA_INSERT_SHARDS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/mutation_pipeline_test
# COW snapshot trees: readers descend frozen roots while the publisher
# clones the shared spine — the tree's whole concurrency contract.
CINDERELLA_INSERT_SHARDS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/synopsis_tree_test
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/mvcc_test
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/tuner_test
# Coordinator/server round trips over loopback TCP under TSan: the
# acceptor, worker pool, and per-query snapshot pinning race-free.
CINDERELLA_NET_SERVER_THREADS=3 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/net_cluster_test
if [[ "$FAST" -eq 0 ]]; then
  CINDERELLA_INSERT_SHARDS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/ingest_concurrency_test
  CINDERELLA_STRESS_READERS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/mvcc_stress_test
  # The reorganizer daemon planning + applying while snapshot readers and
  # batch writers run: the tuner's whole concurrency contract under TSan.
  CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/tuner_stress_test
  # Concurrent clients vs one NodeServer while a writer republishes MVCC
  # snapshots: the whole server path under TSan.
  CINDERELLA_NET_SERVER_THREADS=3 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/net_stress_test
  # Snapshot readers fetching cold rows through the tier's buffer pool
  # while the writer spills and faults partitions: the tiered read path's
  # whole concurrency contract under TSan.
  CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-tsan/tests/tiered_stress_test
fi

echo "== tier-1: ASan+leak build of the MVCC read engine tests =="
ASAN_TARGETS=(arena_test mvcc_test tuner_test tiered_store_test)
if [[ "$FAST" -eq 0 ]]; then
  ASAN_TARGETS+=(mvcc_stress_test tuner_stress_test tiered_stress_test)
fi
cmake -B build-asan -S . -DCINDERELLA_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS" --target "${ASAN_TARGETS[@]}"
ASAN_OPTIONS=detect_leaks=1 timeout "$CTEST_TIMEOUT" ./build-asan/tests/arena_test
ASAN_OPTIONS=detect_leaks=1 timeout "$CTEST_TIMEOUT" ./build-asan/tests/mvcc_test
# Drain+reinsert batches recycle every drained row through the arena
# pools; leak detection proves the daemon frees what it retires.
ASAN_OPTIONS=detect_leaks=1 timeout "$CTEST_TIMEOUT" ./build-asan/tests/tuner_test
# Spill/fault cycles move rows between arenas and page chains; leak
# detection proves chains release their pages on last reference and the
# out-of-core crash-recovery path frees every recovered version.
ASAN_OPTIONS=detect_leaks=1 timeout "$CTEST_TIMEOUT" ./build-asan/tests/tiered_store_test
if [[ "$FAST" -eq 0 ]]; then
  ASAN_OPTIONS=detect_leaks=1 CINDERELLA_STRESS_READERS=4 \
    timeout "$CTEST_TIMEOUT" ./build-asan/tests/mvcc_stress_test
  ASAN_OPTIONS=detect_leaks=1 timeout "$CTEST_TIMEOUT" ./build-asan/tests/tuner_stress_test
  ASAN_OPTIONS=detect_leaks=1 timeout "$CTEST_TIMEOUT" ./build-asan/tests/tiered_stress_test
fi

echo "== tier-1: UBSan build of the aggregation + scan engine tests =="
# The aggregator mixes atomics, hand-rolled hashing (splitmix64, FNV-1a),
# and double->int64 truncation; UBSan (fatal, no recover) proves none of
# it relies on undefined behavior at any strategy or thread count.
UBSAN_TARGETS=(aggregator_test thread_pool_test parallel_scan_test)
cmake -B build-ubsan -S . -DCINDERELLA_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ubsan -j "$JOBS" --target "${UBSAN_TARGETS[@]}"
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-ubsan/tests/aggregator_test
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-ubsan/tests/thread_pool_test
CINDERELLA_SCAN_THREADS=4 timeout "$CTEST_TIMEOUT" ./build-ubsan/tests/parallel_scan_test

echo "tier-1 OK"
