#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# thread-sanitized side build of the scan engine (thread pool, parallel
# rating scan, parallel query executor) and the MVCC read engine to catch
# data races the regular build cannot, then an address-sanitized build of
# the MVCC tests with leak detection on — epoch-based deferred
# reclamation must free every retired version exactly once.
#
# Usage: tools/tier1.sh [jobs]   (defaults to nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: standard build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== tier-1: TSan build of the scan + ingest engine tests =="
cmake -B build-tsan -S . -DCINDERELLA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target thread_pool_test parallel_scan_test \
  ingest_test ingest_concurrency_test mvcc_test mvcc_stress_test
# Force the pools to spawn real workers even on small machines.
CINDERELLA_SCAN_THREADS=4 ./build-tsan/tests/thread_pool_test
CINDERELLA_SCAN_THREADS=4 ./build-tsan/tests/parallel_scan_test
CINDERELLA_INSERT_SHARDS=4 ./build-tsan/tests/ingest_test
CINDERELLA_INSERT_SHARDS=4 ./build-tsan/tests/ingest_concurrency_test
CINDERELLA_SCAN_THREADS=4 ./build-tsan/tests/mvcc_test
CINDERELLA_STRESS_READERS=4 ./build-tsan/tests/mvcc_stress_test

echo "== tier-1: ASan+leak build of the MVCC read engine tests =="
cmake -B build-asan -S . -DCINDERELLA_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS" --target mvcc_test mvcc_stress_test
ASAN_OPTIONS=detect_leaks=1 ./build-asan/tests/mvcc_test
ASAN_OPTIONS=detect_leaks=1 CINDERELLA_STRESS_READERS=4 ./build-asan/tests/mvcc_stress_test

echo "tier-1 OK"
