# Empty dependencies file for workload_based.
# This may be replaced when dependencies are built.
