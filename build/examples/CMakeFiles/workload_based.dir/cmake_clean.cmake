file(REMOVE_RECURSE
  "CMakeFiles/workload_based.dir/workload_based.cpp.o"
  "CMakeFiles/workload_based.dir/workload_based.cpp.o.d"
  "workload_based"
  "workload_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
