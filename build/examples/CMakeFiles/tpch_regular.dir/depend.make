# Empty dependencies file for tpch_regular.
# This may be replaced when dependencies are built.
