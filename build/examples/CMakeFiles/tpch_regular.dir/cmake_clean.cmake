file(REMOVE_RECURSE
  "CMakeFiles/tpch_regular.dir/tpch_regular.cpp.o"
  "CMakeFiles/tpch_regular.dir/tpch_regular.cpp.o.d"
  "tpch_regular"
  "tpch_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
