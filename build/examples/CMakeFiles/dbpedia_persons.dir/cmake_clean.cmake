file(REMOVE_RECURSE
  "CMakeFiles/dbpedia_persons.dir/dbpedia_persons.cpp.o"
  "CMakeFiles/dbpedia_persons.dir/dbpedia_persons.cpp.o.d"
  "dbpedia_persons"
  "dbpedia_persons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpedia_persons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
