# Empty compiler generated dependencies file for dbpedia_persons.
# This may be replaced when dependencies are built.
