# Empty compiler generated dependencies file for fig4_attribute_distribution.
# This may be replaced when dependencies are built.
