file(REMOVE_RECURSE
  "CMakeFiles/fig7_weight_influence.dir/fig7_weight_influence.cc.o"
  "CMakeFiles/fig7_weight_influence.dir/fig7_weight_influence.cc.o.d"
  "fig7_weight_influence"
  "fig7_weight_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_weight_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
