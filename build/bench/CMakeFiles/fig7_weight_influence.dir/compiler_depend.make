# Empty compiler generated dependencies file for fig7_weight_influence.
# This may be replaced when dependencies are built.
