file(REMOVE_RECURSE
  "CMakeFiles/distributed_fanout.dir/distributed_fanout.cc.o"
  "CMakeFiles/distributed_fanout.dir/distributed_fanout.cc.o.d"
  "distributed_fanout"
  "distributed_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
