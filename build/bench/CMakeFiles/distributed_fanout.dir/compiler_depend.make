# Empty compiler generated dependencies file for distributed_fanout.
# This may be replaced when dependencies are built.
