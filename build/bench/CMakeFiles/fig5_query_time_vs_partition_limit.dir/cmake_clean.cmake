file(REMOVE_RECURSE
  "CMakeFiles/fig5_query_time_vs_partition_limit.dir/fig5_query_time_vs_partition_limit.cc.o"
  "CMakeFiles/fig5_query_time_vs_partition_limit.dir/fig5_query_time_vs_partition_limit.cc.o.d"
  "fig5_query_time_vs_partition_limit"
  "fig5_query_time_vs_partition_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_query_time_vs_partition_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
