# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_query_time_vs_partition_limit.
