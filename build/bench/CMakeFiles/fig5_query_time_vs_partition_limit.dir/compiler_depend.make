# Empty compiler generated dependencies file for fig5_query_time_vs_partition_limit.
# This may be replaced when dependencies are built.
