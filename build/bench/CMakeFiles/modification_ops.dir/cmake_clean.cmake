file(REMOVE_RECURSE
  "CMakeFiles/modification_ops.dir/modification_ops.cc.o"
  "CMakeFiles/modification_ops.dir/modification_ops.cc.o.d"
  "modification_ops"
  "modification_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modification_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
