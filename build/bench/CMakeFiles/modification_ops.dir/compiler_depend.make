# Empty compiler generated dependencies file for modification_ops.
# This may be replaced when dependencies are built.
