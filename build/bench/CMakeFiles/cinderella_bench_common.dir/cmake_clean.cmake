file(REMOVE_RECURSE
  "CMakeFiles/cinderella_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/cinderella_bench_common.dir/bench_common.cc.o.d"
  "libcinderella_bench_common.a"
  "libcinderella_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
