file(REMOVE_RECURSE
  "libcinderella_bench_common.a"
)
