# Empty dependencies file for cinderella_bench_common.
# This may be replaced when dependencies are built.
