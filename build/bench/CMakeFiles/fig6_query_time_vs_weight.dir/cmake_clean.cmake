file(REMOVE_RECURSE
  "CMakeFiles/fig6_query_time_vs_weight.dir/fig6_query_time_vs_weight.cc.o"
  "CMakeFiles/fig6_query_time_vs_weight.dir/fig6_query_time_vs_weight.cc.o.d"
  "fig6_query_time_vs_weight"
  "fig6_query_time_vs_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_query_time_vs_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
