# Empty dependencies file for fig6_query_time_vs_weight.
# This may be replaced when dependencies are built.
