# Empty compiler generated dependencies file for vertical_vs_horizontal.
# This may be replaced when dependencies are built.
