file(REMOVE_RECURSE
  "CMakeFiles/vertical_vs_horizontal.dir/vertical_vs_horizontal.cc.o"
  "CMakeFiles/vertical_vs_horizontal.dir/vertical_vs_horizontal.cc.o.d"
  "vertical_vs_horizontal"
  "vertical_vs_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertical_vs_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
