# Empty compiler generated dependencies file for online_adaptivity.
# This may be replaced when dependencies are built.
