file(REMOVE_RECURSE
  "CMakeFiles/online_adaptivity.dir/online_adaptivity.cc.o"
  "CMakeFiles/online_adaptivity.dir/online_adaptivity.cc.o.d"
  "online_adaptivity"
  "online_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
