file(REMOVE_RECURSE
  "CMakeFiles/micro_pagestore.dir/micro_pagestore.cc.o"
  "CMakeFiles/micro_pagestore.dir/micro_pagestore.cc.o.d"
  "micro_pagestore"
  "micro_pagestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pagestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
