# Empty compiler generated dependencies file for micro_pagestore.
# This may be replaced when dependencies are built.
