file(REMOVE_RECURSE
  "CMakeFiles/table1_tpch.dir/table1_tpch.cc.o"
  "CMakeFiles/table1_tpch.dir/table1_tpch.cc.o.d"
  "table1_tpch"
  "table1_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
