# Empty compiler generated dependencies file for table1_tpch.
# This may be replaced when dependencies are built.
