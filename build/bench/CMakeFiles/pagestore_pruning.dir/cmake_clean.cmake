file(REMOVE_RECURSE
  "CMakeFiles/pagestore_pruning.dir/pagestore_pruning.cc.o"
  "CMakeFiles/pagestore_pruning.dir/pagestore_pruning.cc.o.d"
  "pagestore_pruning"
  "pagestore_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagestore_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
