# Empty compiler generated dependencies file for pagestore_pruning.
# This may be replaced when dependencies are built.
