
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_insert_time.cc" "bench/CMakeFiles/fig8_insert_time.dir/fig8_insert_time.cc.o" "gcc" "bench/CMakeFiles/fig8_insert_time.dir/fig8_insert_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cinderella_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cinderella_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cinderella_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cinderella_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cinderella_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cinderella_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/cinderella_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cinderella_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
