file(REMOVE_RECURSE
  "libcinderella_synopsis.a"
)
