# Empty compiler generated dependencies file for cinderella_synopsis.
# This may be replaced when dependencies are built.
