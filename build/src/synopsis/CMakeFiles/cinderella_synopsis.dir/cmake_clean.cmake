file(REMOVE_RECURSE
  "CMakeFiles/cinderella_synopsis.dir/attribute_dictionary.cc.o"
  "CMakeFiles/cinderella_synopsis.dir/attribute_dictionary.cc.o.d"
  "CMakeFiles/cinderella_synopsis.dir/synopsis.cc.o"
  "CMakeFiles/cinderella_synopsis.dir/synopsis.cc.o.d"
  "libcinderella_synopsis.a"
  "libcinderella_synopsis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
