
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synopsis/attribute_dictionary.cc" "src/synopsis/CMakeFiles/cinderella_synopsis.dir/attribute_dictionary.cc.o" "gcc" "src/synopsis/CMakeFiles/cinderella_synopsis.dir/attribute_dictionary.cc.o.d"
  "/root/repo/src/synopsis/synopsis.cc" "src/synopsis/CMakeFiles/cinderella_synopsis.dir/synopsis.cc.o" "gcc" "src/synopsis/CMakeFiles/cinderella_synopsis.dir/synopsis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cinderella_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
