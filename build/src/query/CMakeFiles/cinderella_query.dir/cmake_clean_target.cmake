file(REMOVE_RECURSE
  "libcinderella_query.a"
)
