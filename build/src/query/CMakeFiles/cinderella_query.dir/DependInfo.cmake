
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/estimator.cc" "src/query/CMakeFiles/cinderella_query.dir/estimator.cc.o" "gcc" "src/query/CMakeFiles/cinderella_query.dir/estimator.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/query/CMakeFiles/cinderella_query.dir/executor.cc.o" "gcc" "src/query/CMakeFiles/cinderella_query.dir/executor.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/cinderella_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/cinderella_query.dir/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/cinderella_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/cinderella_query.dir/predicate.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/cinderella_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/cinderella_query.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cinderella_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cinderella_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/cinderella_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cinderella_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
