# Empty compiler generated dependencies file for cinderella_query.
# This may be replaced when dependencies are built.
