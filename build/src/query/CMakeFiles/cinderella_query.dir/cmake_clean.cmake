file(REMOVE_RECURSE
  "CMakeFiles/cinderella_query.dir/estimator.cc.o"
  "CMakeFiles/cinderella_query.dir/estimator.cc.o.d"
  "CMakeFiles/cinderella_query.dir/executor.cc.o"
  "CMakeFiles/cinderella_query.dir/executor.cc.o.d"
  "CMakeFiles/cinderella_query.dir/parser.cc.o"
  "CMakeFiles/cinderella_query.dir/parser.cc.o.d"
  "CMakeFiles/cinderella_query.dir/predicate.cc.o"
  "CMakeFiles/cinderella_query.dir/predicate.cc.o.d"
  "CMakeFiles/cinderella_query.dir/query.cc.o"
  "CMakeFiles/cinderella_query.dir/query.cc.o.d"
  "libcinderella_query.a"
  "libcinderella_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
