file(REMOVE_RECURSE
  "CMakeFiles/cinderella_workload.dir/dataset_stats.cc.o"
  "CMakeFiles/cinderella_workload.dir/dataset_stats.cc.o.d"
  "CMakeFiles/cinderella_workload.dir/dbpedia_generator.cc.o"
  "CMakeFiles/cinderella_workload.dir/dbpedia_generator.cc.o.d"
  "CMakeFiles/cinderella_workload.dir/query_workload.cc.o"
  "CMakeFiles/cinderella_workload.dir/query_workload.cc.o.d"
  "CMakeFiles/cinderella_workload.dir/tpch/tpch_generator.cc.o"
  "CMakeFiles/cinderella_workload.dir/tpch/tpch_generator.cc.o.d"
  "CMakeFiles/cinderella_workload.dir/tpch/tpch_queries.cc.o"
  "CMakeFiles/cinderella_workload.dir/tpch/tpch_queries.cc.o.d"
  "CMakeFiles/cinderella_workload.dir/tpch/tpch_schema.cc.o"
  "CMakeFiles/cinderella_workload.dir/tpch/tpch_schema.cc.o.d"
  "libcinderella_workload.a"
  "libcinderella_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
