# Empty dependencies file for cinderella_workload.
# This may be replaced when dependencies are built.
