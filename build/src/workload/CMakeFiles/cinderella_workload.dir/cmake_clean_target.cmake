file(REMOVE_RECURSE
  "libcinderella_workload.a"
)
