file(REMOVE_RECURSE
  "libcinderella_distributed.a"
)
