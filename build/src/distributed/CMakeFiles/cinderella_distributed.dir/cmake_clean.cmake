file(REMOVE_RECURSE
  "CMakeFiles/cinderella_distributed.dir/cluster.cc.o"
  "CMakeFiles/cinderella_distributed.dir/cluster.cc.o.d"
  "libcinderella_distributed.a"
  "libcinderella_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
