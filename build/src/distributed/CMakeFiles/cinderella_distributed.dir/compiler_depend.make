# Empty compiler generated dependencies file for cinderella_distributed.
# This may be replaced when dependencies are built.
