file(REMOVE_RECURSE
  "CMakeFiles/cinderella_io.dir/csv.cc.o"
  "CMakeFiles/cinderella_io.dir/csv.cc.o.d"
  "CMakeFiles/cinderella_io.dir/durable_table.cc.o"
  "CMakeFiles/cinderella_io.dir/durable_table.cc.o.d"
  "CMakeFiles/cinderella_io.dir/journal.cc.o"
  "CMakeFiles/cinderella_io.dir/journal.cc.o.d"
  "libcinderella_io.a"
  "libcinderella_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
