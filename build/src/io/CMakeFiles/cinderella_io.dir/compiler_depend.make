# Empty compiler generated dependencies file for cinderella_io.
# This may be replaced when dependencies are built.
