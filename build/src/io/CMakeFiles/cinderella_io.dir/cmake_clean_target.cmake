file(REMOVE_RECURSE
  "libcinderella_io.a"
)
