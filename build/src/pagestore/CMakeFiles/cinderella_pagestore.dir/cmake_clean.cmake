file(REMOVE_RECURSE
  "CMakeFiles/cinderella_pagestore.dir/buffer_pool.cc.o"
  "CMakeFiles/cinderella_pagestore.dir/buffer_pool.cc.o.d"
  "CMakeFiles/cinderella_pagestore.dir/page_codec.cc.o"
  "CMakeFiles/cinderella_pagestore.dir/page_codec.cc.o.d"
  "CMakeFiles/cinderella_pagestore.dir/paged_store.cc.o"
  "CMakeFiles/cinderella_pagestore.dir/paged_store.cc.o.d"
  "CMakeFiles/cinderella_pagestore.dir/pager.cc.o"
  "CMakeFiles/cinderella_pagestore.dir/pager.cc.o.d"
  "libcinderella_pagestore.a"
  "libcinderella_pagestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_pagestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
