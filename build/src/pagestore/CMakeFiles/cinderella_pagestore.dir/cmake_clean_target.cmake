file(REMOVE_RECURSE
  "libcinderella_pagestore.a"
)
