# Empty dependencies file for cinderella_pagestore.
# This may be replaced when dependencies are built.
