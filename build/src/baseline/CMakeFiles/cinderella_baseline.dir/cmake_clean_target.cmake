file(REMOVE_RECURSE
  "libcinderella_baseline.a"
)
