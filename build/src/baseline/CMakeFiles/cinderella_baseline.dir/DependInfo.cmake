
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/fixed_assignment_partitioner.cc" "src/baseline/CMakeFiles/cinderella_baseline.dir/fixed_assignment_partitioner.cc.o" "gcc" "src/baseline/CMakeFiles/cinderella_baseline.dir/fixed_assignment_partitioner.cc.o.d"
  "/root/repo/src/baseline/hash_partitioner.cc" "src/baseline/CMakeFiles/cinderella_baseline.dir/hash_partitioner.cc.o" "gcc" "src/baseline/CMakeFiles/cinderella_baseline.dir/hash_partitioner.cc.o.d"
  "/root/repo/src/baseline/labeled_partitioner.cc" "src/baseline/CMakeFiles/cinderella_baseline.dir/labeled_partitioner.cc.o" "gcc" "src/baseline/CMakeFiles/cinderella_baseline.dir/labeled_partitioner.cc.o.d"
  "/root/repo/src/baseline/offline_cluster_partitioner.cc" "src/baseline/CMakeFiles/cinderella_baseline.dir/offline_cluster_partitioner.cc.o" "gcc" "src/baseline/CMakeFiles/cinderella_baseline.dir/offline_cluster_partitioner.cc.o.d"
  "/root/repo/src/baseline/range_partitioner.cc" "src/baseline/CMakeFiles/cinderella_baseline.dir/range_partitioner.cc.o" "gcc" "src/baseline/CMakeFiles/cinderella_baseline.dir/range_partitioner.cc.o.d"
  "/root/repo/src/baseline/single_partitioner.cc" "src/baseline/CMakeFiles/cinderella_baseline.dir/single_partitioner.cc.o" "gcc" "src/baseline/CMakeFiles/cinderella_baseline.dir/single_partitioner.cc.o.d"
  "/root/repo/src/baseline/vertical_partitioner.cc" "src/baseline/CMakeFiles/cinderella_baseline.dir/vertical_partitioner.cc.o" "gcc" "src/baseline/CMakeFiles/cinderella_baseline.dir/vertical_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cinderella_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cinderella_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/cinderella_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cinderella_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
