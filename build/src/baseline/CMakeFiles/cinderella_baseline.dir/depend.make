# Empty dependencies file for cinderella_baseline.
# This may be replaced when dependencies are built.
