file(REMOVE_RECURSE
  "CMakeFiles/cinderella_baseline.dir/fixed_assignment_partitioner.cc.o"
  "CMakeFiles/cinderella_baseline.dir/fixed_assignment_partitioner.cc.o.d"
  "CMakeFiles/cinderella_baseline.dir/hash_partitioner.cc.o"
  "CMakeFiles/cinderella_baseline.dir/hash_partitioner.cc.o.d"
  "CMakeFiles/cinderella_baseline.dir/labeled_partitioner.cc.o"
  "CMakeFiles/cinderella_baseline.dir/labeled_partitioner.cc.o.d"
  "CMakeFiles/cinderella_baseline.dir/offline_cluster_partitioner.cc.o"
  "CMakeFiles/cinderella_baseline.dir/offline_cluster_partitioner.cc.o.d"
  "CMakeFiles/cinderella_baseline.dir/range_partitioner.cc.o"
  "CMakeFiles/cinderella_baseline.dir/range_partitioner.cc.o.d"
  "CMakeFiles/cinderella_baseline.dir/single_partitioner.cc.o"
  "CMakeFiles/cinderella_baseline.dir/single_partitioner.cc.o.d"
  "CMakeFiles/cinderella_baseline.dir/vertical_partitioner.cc.o"
  "CMakeFiles/cinderella_baseline.dir/vertical_partitioner.cc.o.d"
  "libcinderella_baseline.a"
  "libcinderella_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
