file(REMOVE_RECURSE
  "libcinderella_core.a"
)
