file(REMOVE_RECURSE
  "CMakeFiles/cinderella_core.dir/catalog.cc.o"
  "CMakeFiles/cinderella_core.dir/catalog.cc.o.d"
  "CMakeFiles/cinderella_core.dir/cinderella.cc.o"
  "CMakeFiles/cinderella_core.dir/cinderella.cc.o.d"
  "CMakeFiles/cinderella_core.dir/config.cc.o"
  "CMakeFiles/cinderella_core.dir/config.cc.o.d"
  "CMakeFiles/cinderella_core.dir/efficiency.cc.o"
  "CMakeFiles/cinderella_core.dir/efficiency.cc.o.d"
  "CMakeFiles/cinderella_core.dir/partition.cc.o"
  "CMakeFiles/cinderella_core.dir/partition.cc.o.d"
  "CMakeFiles/cinderella_core.dir/partitioning_stats.cc.o"
  "CMakeFiles/cinderella_core.dir/partitioning_stats.cc.o.d"
  "CMakeFiles/cinderella_core.dir/rating.cc.o"
  "CMakeFiles/cinderella_core.dir/rating.cc.o.d"
  "CMakeFiles/cinderella_core.dir/refcounted_synopsis.cc.o"
  "CMakeFiles/cinderella_core.dir/refcounted_synopsis.cc.o.d"
  "CMakeFiles/cinderella_core.dir/size_measure.cc.o"
  "CMakeFiles/cinderella_core.dir/size_measure.cc.o.d"
  "CMakeFiles/cinderella_core.dir/snapshot.cc.o"
  "CMakeFiles/cinderella_core.dir/snapshot.cc.o.d"
  "CMakeFiles/cinderella_core.dir/synopsis_extractor.cc.o"
  "CMakeFiles/cinderella_core.dir/synopsis_extractor.cc.o.d"
  "CMakeFiles/cinderella_core.dir/synopsis_index.cc.o"
  "CMakeFiles/cinderella_core.dir/synopsis_index.cc.o.d"
  "CMakeFiles/cinderella_core.dir/universal_table.cc.o"
  "CMakeFiles/cinderella_core.dir/universal_table.cc.o.d"
  "libcinderella_core.a"
  "libcinderella_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
