# Empty dependencies file for cinderella_core.
# This may be replaced when dependencies are built.
