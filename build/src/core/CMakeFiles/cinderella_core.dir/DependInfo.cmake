
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/catalog.cc" "src/core/CMakeFiles/cinderella_core.dir/catalog.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/catalog.cc.o.d"
  "/root/repo/src/core/cinderella.cc" "src/core/CMakeFiles/cinderella_core.dir/cinderella.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/cinderella.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/cinderella_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/config.cc.o.d"
  "/root/repo/src/core/efficiency.cc" "src/core/CMakeFiles/cinderella_core.dir/efficiency.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/efficiency.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/cinderella_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/partition.cc.o.d"
  "/root/repo/src/core/partitioning_stats.cc" "src/core/CMakeFiles/cinderella_core.dir/partitioning_stats.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/partitioning_stats.cc.o.d"
  "/root/repo/src/core/rating.cc" "src/core/CMakeFiles/cinderella_core.dir/rating.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/rating.cc.o.d"
  "/root/repo/src/core/refcounted_synopsis.cc" "src/core/CMakeFiles/cinderella_core.dir/refcounted_synopsis.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/refcounted_synopsis.cc.o.d"
  "/root/repo/src/core/size_measure.cc" "src/core/CMakeFiles/cinderella_core.dir/size_measure.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/size_measure.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/cinderella_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/snapshot.cc.o.d"
  "/root/repo/src/core/synopsis_extractor.cc" "src/core/CMakeFiles/cinderella_core.dir/synopsis_extractor.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/synopsis_extractor.cc.o.d"
  "/root/repo/src/core/synopsis_index.cc" "src/core/CMakeFiles/cinderella_core.dir/synopsis_index.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/synopsis_index.cc.o.d"
  "/root/repo/src/core/universal_table.cc" "src/core/CMakeFiles/cinderella_core.dir/universal_table.cc.o" "gcc" "src/core/CMakeFiles/cinderella_core.dir/universal_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/cinderella_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/synopsis/CMakeFiles/cinderella_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cinderella_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
