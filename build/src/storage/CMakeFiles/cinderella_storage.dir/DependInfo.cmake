
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/row.cc" "src/storage/CMakeFiles/cinderella_storage.dir/row.cc.o" "gcc" "src/storage/CMakeFiles/cinderella_storage.dir/row.cc.o.d"
  "/root/repo/src/storage/segment.cc" "src/storage/CMakeFiles/cinderella_storage.dir/segment.cc.o" "gcc" "src/storage/CMakeFiles/cinderella_storage.dir/segment.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/cinderella_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/cinderella_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synopsis/CMakeFiles/cinderella_synopsis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cinderella_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
