file(REMOVE_RECURSE
  "libcinderella_storage.a"
)
