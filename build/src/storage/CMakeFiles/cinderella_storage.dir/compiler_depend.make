# Empty compiler generated dependencies file for cinderella_storage.
# This may be replaced when dependencies are built.
