file(REMOVE_RECURSE
  "CMakeFiles/cinderella_storage.dir/row.cc.o"
  "CMakeFiles/cinderella_storage.dir/row.cc.o.d"
  "CMakeFiles/cinderella_storage.dir/segment.cc.o"
  "CMakeFiles/cinderella_storage.dir/segment.cc.o.d"
  "CMakeFiles/cinderella_storage.dir/value.cc.o"
  "CMakeFiles/cinderella_storage.dir/value.cc.o.d"
  "libcinderella_storage.a"
  "libcinderella_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
