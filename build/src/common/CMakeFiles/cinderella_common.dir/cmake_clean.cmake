file(REMOVE_RECURSE
  "CMakeFiles/cinderella_common.dir/env.cc.o"
  "CMakeFiles/cinderella_common.dir/env.cc.o.d"
  "CMakeFiles/cinderella_common.dir/histogram.cc.o"
  "CMakeFiles/cinderella_common.dir/histogram.cc.o.d"
  "CMakeFiles/cinderella_common.dir/random.cc.o"
  "CMakeFiles/cinderella_common.dir/random.cc.o.d"
  "CMakeFiles/cinderella_common.dir/stats.cc.o"
  "CMakeFiles/cinderella_common.dir/stats.cc.o.d"
  "CMakeFiles/cinderella_common.dir/status.cc.o"
  "CMakeFiles/cinderella_common.dir/status.cc.o.d"
  "CMakeFiles/cinderella_common.dir/table_printer.cc.o"
  "CMakeFiles/cinderella_common.dir/table_printer.cc.o.d"
  "CMakeFiles/cinderella_common.dir/zipf.cc.o"
  "CMakeFiles/cinderella_common.dir/zipf.cc.o.d"
  "libcinderella_common.a"
  "libcinderella_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
