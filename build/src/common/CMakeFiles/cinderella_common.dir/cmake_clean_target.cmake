file(REMOVE_RECURSE
  "libcinderella_common.a"
)
