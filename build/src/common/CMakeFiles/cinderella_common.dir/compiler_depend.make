# Empty compiler generated dependencies file for cinderella_common.
# This may be replaced when dependencies are built.
