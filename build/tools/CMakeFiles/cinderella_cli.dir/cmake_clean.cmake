file(REMOVE_RECURSE
  "CMakeFiles/cinderella_cli.dir/cinderella_cli.cc.o"
  "CMakeFiles/cinderella_cli.dir/cinderella_cli.cc.o.d"
  "cinderella_cli"
  "cinderella_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
