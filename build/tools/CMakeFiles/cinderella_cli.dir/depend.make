# Empty dependencies file for cinderella_cli.
# This may be replaced when dependencies are built.
