# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/synopsis_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/rating_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/cinderella_test[1]_include.cmake")
include("/root/repo/build/tests/cinderella_property_test[1]_include.cmake")
include("/root/repo/build/tests/efficiency_test[1]_include.cmake")
include("/root/repo/build/tests/universal_table_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/pagestore_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/vertical_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_table_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/workload_mode_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
