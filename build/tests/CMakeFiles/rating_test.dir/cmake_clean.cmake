file(REMOVE_RECURSE
  "CMakeFiles/rating_test.dir/rating_test.cc.o"
  "CMakeFiles/rating_test.dir/rating_test.cc.o.d"
  "rating_test"
  "rating_test.pdb"
  "rating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
