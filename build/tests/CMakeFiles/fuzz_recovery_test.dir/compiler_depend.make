# Empty compiler generated dependencies file for fuzz_recovery_test.
# This may be replaced when dependencies are built.
