file(REMOVE_RECURSE
  "CMakeFiles/fuzz_recovery_test.dir/fuzz_recovery_test.cc.o"
  "CMakeFiles/fuzz_recovery_test.dir/fuzz_recovery_test.cc.o.d"
  "fuzz_recovery_test"
  "fuzz_recovery_test.pdb"
  "fuzz_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
