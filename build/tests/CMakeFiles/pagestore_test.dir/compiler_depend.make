# Empty compiler generated dependencies file for pagestore_test.
# This may be replaced when dependencies are built.
