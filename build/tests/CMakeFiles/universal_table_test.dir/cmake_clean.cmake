file(REMOVE_RECURSE
  "CMakeFiles/universal_table_test.dir/universal_table_test.cc.o"
  "CMakeFiles/universal_table_test.dir/universal_table_test.cc.o.d"
  "universal_table_test"
  "universal_table_test.pdb"
  "universal_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
