# Empty dependencies file for universal_table_test.
# This may be replaced when dependencies are built.
