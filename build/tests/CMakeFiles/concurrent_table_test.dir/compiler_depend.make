# Empty compiler generated dependencies file for concurrent_table_test.
# This may be replaced when dependencies are built.
