file(REMOVE_RECURSE
  "CMakeFiles/concurrent_table_test.dir/concurrent_table_test.cc.o"
  "CMakeFiles/concurrent_table_test.dir/concurrent_table_test.cc.o.d"
  "concurrent_table_test"
  "concurrent_table_test.pdb"
  "concurrent_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
