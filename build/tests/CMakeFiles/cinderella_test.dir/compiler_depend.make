# Empty compiler generated dependencies file for cinderella_test.
# This may be replaced when dependencies are built.
