file(REMOVE_RECURSE
  "CMakeFiles/cinderella_test.dir/cinderella_test.cc.o"
  "CMakeFiles/cinderella_test.dir/cinderella_test.cc.o.d"
  "cinderella_test"
  "cinderella_test.pdb"
  "cinderella_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
