# Empty compiler generated dependencies file for cinderella_property_test.
# This may be replaced when dependencies are built.
