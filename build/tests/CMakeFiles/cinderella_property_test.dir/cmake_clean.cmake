file(REMOVE_RECURSE
  "CMakeFiles/cinderella_property_test.dir/cinderella_property_test.cc.o"
  "CMakeFiles/cinderella_property_test.dir/cinderella_property_test.cc.o.d"
  "cinderella_property_test"
  "cinderella_property_test.pdb"
  "cinderella_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cinderella_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
