file(REMOVE_RECURSE
  "CMakeFiles/workload_mode_test.dir/workload_mode_test.cc.o"
  "CMakeFiles/workload_mode_test.dir/workload_mode_test.cc.o.d"
  "workload_mode_test"
  "workload_mode_test.pdb"
  "workload_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
