# Empty dependencies file for workload_mode_test.
# This may be replaced when dependencies are built.
