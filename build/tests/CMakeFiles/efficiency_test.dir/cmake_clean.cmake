file(REMOVE_RECURSE
  "CMakeFiles/efficiency_test.dir/efficiency_test.cc.o"
  "CMakeFiles/efficiency_test.dir/efficiency_test.cc.o.d"
  "efficiency_test"
  "efficiency_test.pdb"
  "efficiency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efficiency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
