# Empty compiler generated dependencies file for efficiency_test.
# This may be replaced when dependencies are built.
