#include "tuner/reorganizer.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/env.h"

namespace cinderella {

ReorganizerOptions ReorganizerOptions::FromEnv() {
  ReorganizerOptions options;
  options.interval_ms =
      Int64FromEnv("CINDERELLA_TUNER_INTERVAL_MS", options.interval_ms);
  options.move_budget =
      Int64FromEnv("CINDERELLA_TUNER_MOVE_BUDGET", options.move_budget);
  options.decay = DoubleFromEnv("CINDERELLA_TUNER_DECAY", options.decay);
  options.cooldown_ticks =
      Int64FromEnv("CINDERELLA_TUNER_COOLDOWN_TICKS", options.cooldown_ticks);
  options.cost.move_cost_per_row =
      DoubleFromEnv("CINDERELLA_TUNER_MOVE_COST", options.cost.move_cost_per_row);
  options.cost.partition_overhead = DoubleFromEnv(
      "CINDERELLA_TUNER_PARTITION_OVERHEAD", options.cost.partition_overhead);
  options.cost.min_net_gain =
      DoubleFromEnv("CINDERELLA_TUNER_MIN_GAIN", options.cost.min_net_gain);
  options.cost.hot_min_queries =
      DoubleFromEnv("CINDERELLA_TUNER_HOT_QUERIES", options.cost.hot_min_queries);
  options.cost.mixed_match_threshold =
      DoubleFromEnv("CINDERELLA_TUNER_MATCH_THRESHOLD",
                    options.cost.mixed_match_threshold);
  options.cost.cold_fill_fraction = DoubleFromEnv(
      "CINDERELLA_TUNER_COLD_FILL", options.cost.cold_fill_fraction);
  return options;
}

Reorganizer::Reorganizer(VersionedTable* table, WorkloadTracker* tracker,
                         ReorganizerOptions options)
    : table_(table),
      tracker_(tracker),
      options_(options),
      model_(options.cost, table->partitioner().config().measure,
             table->partitioner().config().max_size) {}

Reorganizer::~Reorganizer() { Stop(); }

void Reorganizer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Reorganizer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool Reorganizer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Reorganizer::set_spill_hook(SpillHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  spill_hook_ = std::move(hook);
}

void Reorganizer::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

uint64_t Reorganizer::PlanKey(const RepartitionPlan& plan) {
  // FNV-1a over the sorted entity ids: the fingerprint names the row set
  // being moved, not the (ephemeral) partition ids it lives in, so a
  // re-created layout maps to the same cooldown slot.
  std::vector<EntityId> sorted = plan.entities;
  std::sort(sorted.begin(), sorted.end());
  uint64_t hash = 1469598103934665603ull;
  for (EntityId id : sorted) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (id >> shift) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

Reorganizer::TickReport Reorganizer::Tick() {
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  TickReport report;

  // Plan on a pinned snapshot + a tracker copy: no catalog locks are held
  // anywhere in this block, and the pin is released before any move.
  std::vector<RepartitionPlan> plans;
  PlanningReport planning;
  const WorkloadTracker::Snapshot tracked = tracker_->snapshot();
  uint64_t generation = 0;
  {
    const VersionedTable::Snapshot snapshot = table_->snapshot();
    generation = snapshot.view().generation();
    plans = model_.Score(snapshot.view(), tracked, &planning);
  }
  report.plans = plans.size();
  report.efficiency = planning.efficiency;

  uint64_t tick_number = 0;
  SpillHook spill;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spill = spill_hook_;
    tick_number = ++stats_.ticks;
    stats_.plans_considered += plans.size();
    stats_.last_generation = generation;
    stats_.last_efficiency = planning.efficiency;
    stats_.tracked_partitions = tracked.partitions.size();
    stats_.tracked_queries = tracked.total_queries;
    // Age out expired cooldown entries.
    for (auto it = cooldown_.begin(); it != cooldown_.end();) {
      if (tick_number - it->second >
          static_cast<uint64_t>(options_.cooldown_ticks)) {
        it = cooldown_.erase(it);
      } else {
        ++it;
      }
    }
  }

  int64_t budget = options_.move_budget;
  for (const RepartitionPlan& plan : plans) {
    if (static_cast<int64_t>(plan.entities.size()) > budget) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.plans_deferred_budget;
      continue;  // A smaller later plan may still fit this tick.
    }
    const uint64_t key = PlanKey(plan);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cooldown_.count(key) != 0) {
        ++stats_.plans_skipped_cooldown;
        continue;
      }
    }
    if (plan.kind == RepartitionPlan::Kind::kEvictIdle && spill) {
      // Tiered mode: demote the idle partitions instead of coalescing
      // them — the rows leave memory for the cold tier. The plan's rows
      // are written out once, so they charge the tick budget like a move.
      const size_t spilled = spill(plan.partitions);
      budget -= static_cast<int64_t>(plan.entities.size());
      ++report.applied;
      std::lock_guard<std::mutex> lock(mu_);
      cooldown_[key] = tick_number;
      ++stats_.plans_applied;
      ++stats_.evictions_applied;
      stats_.spills_applied += spilled;
      continue;
    }
    VersionedTable::RepartitionResult moved;
    const Status status = table_->RepartitionEntities(plan.entities, &moved);
    budget -= static_cast<int64_t>(moved.moved);
    ++report.applied;
    report.rows_moved += moved.moved;
    std::lock_guard<std::mutex> lock(mu_);
    cooldown_[key] = tick_number;
    ++stats_.plans_applied;
    stats_.rows_moved += moved.moved;
    stats_.rows_missing += moved.missing;
    switch (plan.kind) {
      case RepartitionPlan::Kind::kSplitHot:
        ++stats_.splits_applied;
        break;
      case RepartitionPlan::Kind::kMergeCold:
        ++stats_.merges_applied;
        break;
      case RepartitionPlan::Kind::kEvictIdle:
        ++stats_.evictions_applied;
        break;
    }
    (void)status;  // Stale-plan misses are counted, not errors.
  }

  tracker_->Decay(options_.decay);
  return report;
}

TunerStats Reorganizer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cinderella
