#include "tuner/workload_tracker.h"

#include <algorithm>

namespace cinderella {

WorkloadTracker::WorkloadTracker() : WorkloadTracker(Options()) {}

WorkloadTracker::WorkloadTracker(Options options) : options_(options) {}

void WorkloadTracker::OnScan(const Synopsis& query,
                             const std::vector<PartitionTouch>& touches) {
  std::lock_guard<std::mutex> lock(mu_);
  ++queries_observed_;
  total_queries_ += 1.0;
  for (const PartitionTouch& touch : touches) {
    PartitionStats& stats = partitions_[touch.partition];
    if (!touch.scanned) {
      stats.queries_pruned += 1.0;
      continue;
    }
    stats.queries_scanned += 1.0;
    stats.rows_scanned += static_cast<double>(touch.rows_scanned);
    stats.rows_matched += static_cast<double>(touch.rows_matched);
    if (touch.rows_matched == 0) stats.zero_match_scans += 1.0;
  }
  if (query.Empty()) return;
  auto it = workload_.find(query.words());
  if (it != workload_.end()) {
    it->second.weight += 1.0;
    return;
  }
  if (workload_.size() >= options_.max_workload_queries) {
    // Evict the lightest tracked query (first in key order on ties) to
    // make room; a heavy recurring query can never be displaced by a
    // burst of one-off synopses.
    auto lightest = workload_.begin();
    for (auto cand = workload_.begin(); cand != workload_.end(); ++cand) {
      if (cand->second.weight < lightest->second.weight) lightest = cand;
    }
    if (lightest->second.weight > 1.0) return;  // All heavier than the newcomer.
    workload_.erase(lightest);
  }
  workload_.emplace(query.words(), TrackedQuery{query, 1.0});
}

void WorkloadTracker::Decay(double factor) {
  std::lock_guard<std::mutex> lock(mu_);
  total_queries_ *= factor;
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    PartitionStats& stats = it->second;
    stats.queries_scanned *= factor;
    stats.queries_pruned *= factor;
    stats.rows_scanned *= factor;
    stats.rows_matched *= factor;
    stats.zero_match_scans *= factor;
    if (stats.queries_scanned + stats.queries_pruned < options_.min_weight) {
      it = partitions_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = workload_.begin(); it != workload_.end();) {
    it->second.weight *= factor;
    if (it->second.weight < options_.min_weight) {
      it = workload_.erase(it);
    } else {
      ++it;
    }
  }
}

double WorkloadTracker::ActivityOf(PartitionId partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = partitions_.find(partition);
  return it != partitions_.end() ? it->second.queries_scanned : 0.0;
}

WorkloadTracker::Snapshot WorkloadTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.partitions.reserve(partitions_.size());
  for (const auto& [id, stats] : partitions_) {
    snap.partitions.emplace_back(id, stats);
  }
  snap.workload.reserve(workload_.size());
  for (const auto& [words, query] : workload_) {
    snap.workload.push_back(query);
  }
  snap.total_queries = total_queries_;
  snap.queries_observed = queries_observed_;
  return snap;
}

void WorkloadTracker::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.clear();
  workload_.clear();
  total_queries_ = 0.0;
  queries_observed_ = 0;
}

}  // namespace cinderella
