#include "tuner/cost_model.h"

#include <algorithm>
#include <unordered_set>

#include "core/efficiency.h"
#include "mvcc/partition_version.h"

namespace cinderella {
namespace {

uint64_t VersionSize(const PartitionVersion& version, SizeMeasure measure) {
  switch (measure) {
    case SizeMeasure::kEntityCount:
      return version.entity_count();
    case SizeMeasure::kAttributeCount:
      return version.cell_count();
    case SizeMeasure::kByteSize:
      return version.byte_size();
  }
  return version.entity_count();
}

void HarvestEntities(const PartitionVersion& version,
                     std::vector<EntityId>* entities) {
  version.ForEachRow(
      [&](const RowView& row) { entities->push_back(row.id()); });
}

}  // namespace

const char* PlanKindName(RepartitionPlan::Kind kind) {
  switch (kind) {
    case RepartitionPlan::Kind::kSplitHot:
      return "split_hot";
    case RepartitionPlan::Kind::kMergeCold:
      return "merge_cold";
    case RepartitionPlan::Kind::kEvictIdle:
      return "evict_idle";
  }
  return "unknown";
}

TunerCostModel::TunerCostModel(CostModelOptions options, SizeMeasure measure,
                               uint64_t max_size)
    : options_(options), measure_(measure), max_size_(max_size) {}

std::vector<RepartitionPlan> TunerCostModel::Score(
    const CatalogView& view, const WorkloadTracker::Snapshot& tracked,
    PlanningReport* report) const {
  // Join the view's partitions (ascending id) with the tracker's stats
  // (same order). Untracked partitions carry zero counters: never
  // scanned, never pruned.
  struct Candidate {
    const PartitionVersion* version = nullptr;
    WorkloadTracker::PartitionStats stats;
    uint64_t size = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(view.partition_count());
  size_t cursor = 0;
  view.ForEachPartition([&](const PartitionVersion& version) {
    // Cold (spilled) partitions are not repartitioning candidates: their
    // rows already left the hot path, and harvesting their entities would
    // cost chain I/O. They rejoin planning if a mutation faults them hot.
    if (version.cold()) return;
    Candidate candidate;
    candidate.version = &version;
    candidate.size = VersionSize(version, measure_);
    while (cursor < tracked.partitions.size() &&
           tracked.partitions[cursor].first < version.id()) {
      ++cursor;
    }
    if (cursor < tracked.partitions.size() &&
        tracked.partitions[cursor].first == version.id()) {
      candidate.stats = tracked.partitions[cursor].second;
    }
    candidates.push_back(candidate);
  });

  if (report != nullptr) {
    *report = PlanningReport();
    report->partitions = candidates.size();
    if (!tracked.workload.empty()) {
      std::vector<Synopsis> queries;
      std::vector<double> weights;
      queries.reserve(tracked.workload.size());
      weights.reserve(tracked.workload.size());
      for (const WorkloadTracker::TrackedQuery& q : tracked.workload) {
        queries.push_back(q.synopsis);
        weights.push_back(q.weight);
      }
      report->efficiency =
          ComputeEfficiency(view, queries, weights, measure_).efficiency;
    }
  }

  std::vector<RepartitionPlan> plans;
  std::unordered_set<PartitionId> claimed;

  // -- Split hot mixed partitions (one plan each). --------------------------
  for (const Candidate& candidate : candidates) {
    const WorkloadTracker::PartitionStats& stats = candidate.stats;
    if (stats.queries_scanned < options_.hot_min_queries) continue;
    if (stats.match_rate() > options_.mixed_match_threshold) continue;
    if (candidate.version->entity_count() < 2) continue;  // Nothing to split.
    if (candidate.version->entity_count() > options_.max_plan_rows) continue;
    if (report != nullptr) ++report->hot_mixed;
    RepartitionPlan plan;
    plan.kind = RepartitionPlan::Kind::kSplitHot;
    plan.partitions.push_back(candidate.version->id());
    HarvestEntities(*candidate.version, &plan.entities);
    // The waste is what every future decay window keeps paying while the
    // mixed rows stay co-resident; separating them reclaims it.
    plan.projected_gain = stats.waste();
    plan.move_cost =
        options_.move_cost_per_row * static_cast<double>(plan.entities.size());
    plan.net_gain = plan.projected_gain - plan.move_cost;
    if (plan.net_gain < options_.min_net_gain) continue;
    claimed.insert(candidate.version->id());
    plans.push_back(std::move(plan));
  }

  // -- Greedy id-order binning shared by merge-cold and evict-idle. ---------
  const auto bin_group = [&](const std::vector<const Candidate*>& group,
                             RepartitionPlan::Kind kind, double gain_factor) {
    size_t begin = 0;
    while (begin < group.size()) {
      uint64_t bin_size = 0;
      size_t bin_rows = 0;
      size_t end = begin;
      while (end < group.size()) {
        const Candidate& candidate = *group[end];
        const size_t rows = candidate.version->entity_count();
        if (end > begin && (bin_size + candidate.size > max_size_ ||
                            bin_rows + rows > options_.max_plan_rows)) {
          break;
        }
        bin_size += candidate.size;
        bin_rows += rows;
        ++end;
      }
      if (end - begin >= 2) {
        RepartitionPlan plan;
        plan.kind = kind;
        for (size_t i = begin; i < end; ++i) {
          plan.partitions.push_back(group[i]->version->id());
          HarvestEntities(*group[i]->version, &plan.entities);
        }
        // Coalescing k partitions into (ideally) one removes k-1 of them
        // from every future query's consideration.
        plan.projected_gain = gain_factor * options_.partition_overhead *
                              static_cast<double>(end - begin - 1);
        plan.move_cost = options_.move_cost_per_row *
                         static_cast<double>(plan.entities.size());
        plan.net_gain = plan.projected_gain - plan.move_cost;
        if (plan.net_gain >= options_.min_net_gain) {
          for (PartitionId id : plan.partitions) claimed.insert(id);
          plans.push_back(std::move(plan));
        }
      }
      begin = end;
    }
  };

  // -- Merge cold under-filled partitions. ----------------------------------
  // Like evict-idle below, coalescing needs table-wide workload evidence:
  // with no traffic at all, "cold" is indistinguishable from "not yet
  // queried", and a workload-driven tuner must not churn rows on zero
  // signal. (A daemon running beside a pure-ingest phase would otherwise
  // merge every young partition it sees, then re-merge the re-separated
  // remnants forever — unbounded background writes for no query benefit.)
  if (tracked.total_queries >= options_.idle_min_total_queries) {
    const double cold_fill =
        options_.cold_fill_fraction * static_cast<double>(max_size_);
    std::vector<const Candidate*> cold;
    for (const Candidate& candidate : candidates) {
      if (claimed.count(candidate.version->id()) != 0) continue;
      if (static_cast<double>(candidate.size) > cold_fill) continue;
      if (candidate.stats.queries_scanned > options_.cold_max_queries) continue;
      if (report != nullptr) ++report->cold;
      cold.push_back(&candidate);
    }
    bin_group(cold, RepartitionPlan::Kind::kMergeCold, 1.0);
  }

  // -- Evict/demote never-queried partitions. -------------------------------
  // Only meaningful when the table is actually serving queries; idle
  // partitions keep paying their synopsis check on every one of them.
  // Cold-merge already claimed the under-filled ones, so what remains
  // here are well-filled partitions no query reads: coalescing them is
  // less urgent (half the overhead credit) but still frees catalog slots.
  if (tracked.total_queries >= options_.idle_min_total_queries) {
    std::vector<const Candidate*> idle;
    for (const Candidate& candidate : candidates) {
      if (claimed.count(candidate.version->id()) != 0) continue;
      if (candidate.stats.queries_scanned > 0.0) continue;
      if (candidate.stats.queries_pruned <= 0.0) continue;  // Never considered.
      if (report != nullptr) ++report->idle;
      idle.push_back(&candidate);
    }
    bin_group(idle, RepartitionPlan::Kind::kEvictIdle, 0.5);
  }

  std::stable_sort(plans.begin(), plans.end(),
                   [](const RepartitionPlan& a, const RepartitionPlan& b) {
                     if (a.net_gain != b.net_gain) {
                       return a.net_gain > b.net_gain;
                     }
                     return a.partitions.front() < b.partitions.front();
                   });
  return plans;
}

}  // namespace cinderella
