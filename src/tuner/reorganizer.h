#ifndef CINDERELLA_TUNER_REORGANIZER_H_
#define CINDERELLA_TUNER_REORGANIZER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "mvcc/versioned_table.h"
#include "tuner/cost_model.h"
#include "tuner/workload_tracker.h"

namespace cinderella {

/// Daemon configuration. Every field resolves from a CINDERELLA_TUNER_*
/// environment variable via FromEnv() (README "Tuner knobs").
struct ReorganizerOptions {
  /// Planning cadence (CINDERELLA_TUNER_INTERVAL_MS).
  int64_t interval_ms = 200;
  /// Rows moved per tick at most (CINDERELLA_TUNER_MOVE_BUDGET). The
  /// throttle that keeps foreground p99 flat: each tick's accepted plans
  /// must fit this budget; the rest wait for later ticks.
  int64_t move_budget = 2048;
  /// Per-tick tracker decay factor in (0, 1]
  /// (CINDERELLA_TUNER_DECAY).
  double decay = 0.8;
  /// Ticks during which a just-applied plan's exact entity set is not
  /// re-applied (CINDERELLA_TUNER_COOLDOWN_TICKS). Guards against
  /// oscillation when a move does not change the layout (e.g. a merge
  /// whose rows re-separate on reinsertion).
  int64_t cooldown_ticks = 16;
  /// Cost model knobs (CINDERELLA_TUNER_MOVE_COST, _PARTITION_OVERHEAD,
  /// _MIN_GAIN, _HOT_QUERIES, _MATCH_THRESHOLD, _COLD_FILL).
  CostModelOptions cost;

  /// Resolves every knob from the environment over the defaults above.
  static ReorganizerOptions FromEnv();
};

/// Lifetime counters of one Reorganizer (monotonic; read via stats()).
struct TunerStats {
  uint64_t ticks = 0;
  uint64_t plans_considered = 0;
  uint64_t plans_applied = 0;
  uint64_t splits_applied = 0;
  uint64_t merges_applied = 0;
  uint64_t evictions_applied = 0;
  uint64_t spills_applied = 0;  // Partitions spilled via the spill hook.
  uint64_t plans_deferred_budget = 0;   // Did not fit the tick's budget.
  uint64_t plans_skipped_cooldown = 0;  // Identical set applied recently.
  uint64_t rows_moved = 0;
  uint64_t rows_missing = 0;  // Plan entries already deleted at apply time.
  /// Last planning pass, for dashboards: snapshot generation planned
  /// over, weighted EFFICIENCY of that snapshot against the tracked
  /// workload, and the tracker's footprint.
  uint64_t last_generation = 0;
  double last_efficiency = 1.0;
  size_t tracked_partitions = 0;
  double tracked_queries = 0.0;
};

/// The workload-driven background reorganizer: a self-tuning daemon that
/// repartitions under live traffic.
///
///   tracker  ── per-partition decayed traffic counters (fed by the
///                query layer's ScanObserver hook)
///   cost model ─ scores split-hot / merge-cold / evict-idle candidates
///                as projected EFFICIENCY gain minus move cost
///   daemon ───── this class: plans on pinned MVCC snapshots, applies
///                accepted plans as bounded drain+reinsert batches
///
/// Concurrency contract:
///  - Planning takes **no catalog locks**: the tick pins a snapshot
///    (epoch pin, lock-free), copies the tracker state under the
///    tracker's own mutex, scores, and unpins before applying anything.
///  - Applying goes through VersionedTable::RepartitionEntities — the
///    same writer-serialized, ValidateMutations-checked mutation
///    pipeline as every foreground write, publishing MVCC views per
///    committed window. Readers never block; foreground writers contend
///    only on the writer mutex for the bounded batch, which is what the
///    move budget bounds.
///  - Decisions are deterministic: same snapshot generation + same
///    tracker snapshot → same plans in the same order (see
///    TunerCostModel). The daemon adds only the clock; TickForTesting
///    removes it for tests.
class Reorganizer {
 public:
  /// `table` and `tracker` must outlive the reorganizer. The tracker
  /// should be attached (set_observer) to the executors/aggregators
  /// serving queries; the reorganizer only reads it.
  Reorganizer(VersionedTable* table, WorkloadTracker* tracker,
              ReorganizerOptions options);

  /// Stops the daemon if running.
  ~Reorganizer();

  Reorganizer(const Reorganizer&) = delete;
  Reorganizer& operator=(const Reorganizer&) = delete;

  /// Starts the background thread (idempotent).
  void Start();

  /// Stops and joins the background thread (idempotent). In-flight ticks
  /// finish; no new tick starts.
  void Stop();

  bool running() const;

  /// Outcome of one planning+apply pass.
  struct TickReport {
    size_t plans = 0;       // Scored above the gain threshold.
    size_t applied = 0;     // Applied this tick (within budget+cooldown).
    size_t rows_moved = 0;
    double efficiency = 1.0;  // Of the planned-over snapshot.
  };

  /// Runs exactly one synchronous tick on the calling thread — the
  /// deterministic test entry point (no daemon needed; safe alongside a
  /// running daemon too, ticks serialize internally).
  TickReport TickForTesting() { return Tick(); }

  TunerStats stats() const;

  const ReorganizerOptions& options() const { return options_; }

  /// Tiered-storage bridge. When set, evict-idle plans demote their
  /// partitions to the cold tier through this hook (typically
  /// VersionedTable::SpillPartitions) instead of coalescing their rows
  /// via drain+reinsert — the rows leave memory entirely rather than
  /// being repacked into fewer hot partitions. The hook receives the
  /// plan's partition ids and returns how many it actually spilled
  /// (already-cold or vanished ids don't count). nullptr restores the
  /// coalescing behavior.
  using SpillHook = std::function<size_t(const std::vector<PartitionId>&)>;
  void set_spill_hook(SpillHook hook);

 private:
  void ThreadMain();
  TickReport Tick();

  /// Order-insensitive fingerprint of a plan's entity set (cooldown key).
  static uint64_t PlanKey(const RepartitionPlan& plan);

  VersionedTable* table_;
  WorkloadTracker* tracker_;
  ReorganizerOptions options_;
  TunerCostModel model_;

  mutable std::mutex mu_;  // Guards stats_, cooldown_, stop_/thread state.
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  TunerStats stats_;
  SpillHook spill_hook_;  // Guarded by mu_; copied per tick.
  /// plan fingerprint -> tick it was applied at.
  std::map<uint64_t, uint64_t> cooldown_;

  std::mutex tick_mu_;  // Serializes Tick bodies (daemon + TickForTesting).
};

}  // namespace cinderella

#endif  // CINDERELLA_TUNER_REORGANIZER_H_
