#ifndef CINDERELLA_TUNER_WORKLOAD_TRACKER_H_
#define CINDERELLA_TUNER_WORKLOAD_TRACKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "query/executor.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Decayed per-partition traffic statistics, fed by the query layer's
/// ScanObserver hook and consumed by the tuner's cost model.
///
/// Lock-cheap by construction: OnScan runs once per query (never per
/// row — the executor aggregates per-partition counts inside its scan
/// chunks) and takes one mutex for O(#partitions touched) map updates.
/// The same tracker instance may be attached to executors/aggregators on
/// any number of querying threads.
///
/// All counters decay exponentially: the reorganizer daemon calls
/// Decay(factor) once per tick, so a partition that stops being queried
/// fades toward zero instead of being pinned hot by ancient history.
/// Entries whose decayed evidence drops below Options::min_weight are
/// erased, which bounds the maps under partition churn.
class WorkloadTracker : public ScanObserver {
 public:
  struct Options {
    /// Distinct query synopses retained as the observed workload W (the
    /// cost model evaluates EFFICIENCY against exactly this set). When a
    /// new synopsis arrives at capacity, the lightest tracked one is
    /// evicted.
    size_t max_workload_queries = 64;
    /// Decayed entries below this weight are dropped.
    double min_weight = 1e-3;
  };

  /// Decayed counters for one partition.
  struct PartitionStats {
    double queries_scanned = 0.0;  // Queries whose scan read this partition.
    double queries_pruned = 0.0;   // Queries that pruned it via the synopsis.
    double rows_scanned = 0.0;
    double rows_matched = 0.0;
    /// Scans that matched zero rows: the partition's synopsis intersected
    /// the query but no resident row did — a pure synopsis false positive.
    double zero_match_scans = 0.0;

    /// Rows read but not matched (decayed) — the read waste the cost
    /// model wants to eliminate.
    double waste() const { return rows_scanned - rows_matched; }
    double match_rate() const {
      return rows_scanned > 0.0 ? rows_matched / rows_scanned : 1.0;
    }
    /// Fraction of scans that were synopsis false positives.
    double false_positive_rate() const {
      return queries_scanned > 0.0 ? zero_match_scans / queries_scanned : 0.0;
    }
  };

  /// One distinct observed query synopsis with its decayed multiplicity.
  struct TrackedQuery {
    Synopsis synopsis;
    double weight = 0.0;
  };

  /// A consistent copy of the tracker state, safe to score against
  /// without holding the tracker lock. Partitions ascend by id and the
  /// workload ascends by synopsis bit pattern, so two trackers fed the
  /// same queries produce identical snapshots — the planner's determinism
  /// rests on this.
  struct Snapshot {
    std::vector<std::pair<PartitionId, PartitionStats>> partitions;
    std::vector<TrackedQuery> workload;
    double total_queries = 0.0;     // Decayed query count.
    uint64_t queries_observed = 0;  // Monotonic, never decayed.
  };

  /// The zero-argument overload uses default Options (GCC rejects
  /// `Options options = {}` as a default argument when the nested struct
  /// carries member initializers — same workaround as VersionedTable).
  WorkloadTracker();
  explicit WorkloadTracker(Options options);

  /// ScanObserver hook (query layer). Queries with an empty pruning
  /// synopsis (predicates with no conservative synopsis) update the
  /// partition counters but are not tracked as workload queries — an
  /// empty synopsis intersects nothing, so it cannot participate in
  /// EFFICIENCY.
  void OnScan(const Synopsis& query,
              const std::vector<PartitionTouch>& touches) override;

  /// Multiplies every counter by `factor` in (0, 1] and drops entries
  /// that fall below Options::min_weight. Called once per daemon tick.
  void Decay(double factor);

  Snapshot snapshot() const;

  /// Decayed scan evidence for one partition — queries whose scan
  /// actually read it; 0.0 when untracked. This is the tiering
  /// controller's activity probe: lower values spill to the cold tier
  /// first (see TierController::set_activity_probe).
  double ActivityOf(PartitionId partition) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  Options options_;
  std::map<PartitionId, PartitionStats> partitions_;
  /// Keyed by the synopsis bitset words: deterministic order, cheap
  /// equality, no hashing of Synopsis needed.
  std::map<std::vector<uint64_t>, TrackedQuery> workload_;
  double total_queries_ = 0.0;
  uint64_t queries_observed_ = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_TUNER_WORKLOAD_TRACKER_H_
