#ifndef CINDERELLA_TUNER_COST_MODEL_H_
#define CINDERELLA_TUNER_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/size_measure.h"
#include "storage/row.h"
#include "tuner/workload_tracker.h"

namespace cinderella {

class CatalogView;  // mvcc/partition_version.h

/// Knobs of the repartitioning cost model. All gains and costs are in
/// decayed read-units (rows read per tracker decay window under
/// kEntityCount; cells or bytes under the other measures), so
/// `projected_gain − move_cost` compares what a plan saves future queries
/// against what applying it costs now.
struct CostModelOptions {
  /// Cost of draining + reinserting one row, in read-units. Reinsertion
  /// re-rates the row against every live partition, so this is the
  /// knob that keeps the daemon from churning data for marginal wins.
  double move_cost_per_row = 1.0;
  /// Read-units saved per decay window by removing one partition from
  /// the catalog: per-query synopsis checks, subplan startup, and the
  /// false-positive scans an extra under-filled partition attracts.
  double partition_overhead = 256.0;
  /// A partition is *hot* when its decayed scan count reaches this.
  double hot_min_queries = 2.0;
  /// A hot partition is *mixed* (split candidate) when at most this
  /// fraction of its scanned rows matched: the synopsis says relevant,
  /// most resident rows say otherwise.
  double mixed_match_threshold = 0.5;
  /// A partition is under-filled (merge candidate) when its size is at
  /// most this fraction of MAXSIZE.
  double cold_fill_fraction = 0.25;
  /// ... and *cold* when its decayed scan count is at most this.
  double cold_max_queries = 0.5;
  /// Merge-cold and evict-idle plans require this much decayed
  /// table-wide query traffic: with no queries at all, "cold" and "never
  /// queried" carry no signal, and a workload-driven tuner plans nothing.
  double idle_min_total_queries = 8.0;
  /// Plans whose net gain falls below this are discarded.
  double min_net_gain = 1.0;
  /// Upper bound on rows per plan (keeps each Reorganize batch bounded
  /// regardless of the daemon's per-tick move budget).
  size_t max_plan_rows = 4096;
};

/// One scored repartitioning candidate: drain `entities` (resident in
/// `partitions` at planning time) and reinsert them through the mutation
/// pipeline.
struct RepartitionPlan {
  enum class Kind {
    /// A hot partition whose synopsis intersects the workload but whose
    /// rows mostly don't match: reinsertion into the mature catalog
    /// separates the mixed row population (arrival-order damage repair).
    kSplitHot,
    /// A group of cold under-filled partitions whose combined size fits
    /// MAXSIZE: reinsertion coalesces them, shedding per-partition
    /// overhead.
    kMergeCold,
    /// Partitions no query has touched while the table saw traffic:
    /// demote by coalescing them out of the hot catalog's partition
    /// count.
    kEvictIdle,
  };

  Kind kind = Kind::kSplitHot;
  std::vector<PartitionId> partitions;  // Ascending.
  std::vector<EntityId> entities;       // Residents at planning time.
  double projected_gain = 0.0;          // Read-units saved per decay window.
  double move_cost = 0.0;               // entities × move_cost_per_row.
  double net_gain = 0.0;                // projected_gain − move_cost.
};

/// Stable display name ("split_hot", "merge_cold", "evict_idle").
const char* PlanKindName(RepartitionPlan::Kind kind);

/// Classification summary of one scoring pass (CLI stats / bench JSON).
struct PlanningReport {
  size_t partitions = 0;
  size_t hot_mixed = 0;
  size_t cold = 0;
  size_t idle = 0;
  /// Weighted EFFICIENCY (Definition 1) of the planned-over snapshot
  /// against the tracked workload; 1.0 when no workload is tracked.
  double efficiency = 1.0;
};

/// Scores repartitioning candidates over a pinned MVCC snapshot and a
/// tracker snapshot. Pure function of its inputs — no locks, no clocks,
/// no randomness — so the same (view generation, tracker snapshot) pair
/// always yields the same plan list in the same order: net gain
/// descending, lowest leading partition id on ties.
class TunerCostModel {
 public:
  TunerCostModel(CostModelOptions options, SizeMeasure measure,
                 uint64_t max_size);

  /// Plans worth applying (net_gain >= min_net_gain), best first. Each
  /// partition appears in at most one plan per call. `report` (optional)
  /// receives the classification summary; computing its EFFICIENCY term
  /// costs one weighted Definition-1 pass over the view.
  std::vector<RepartitionPlan> Score(const CatalogView& view,
                                     const WorkloadTracker::Snapshot& tracked,
                                     PlanningReport* report = nullptr) const;

  const CostModelOptions& options() const { return options_; }

 private:
  CostModelOptions options_;
  SizeMeasure measure_;
  uint64_t max_size_;
};

}  // namespace cinderella

#endif  // CINDERELLA_TUNER_COST_MODEL_H_
