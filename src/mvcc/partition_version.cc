#include "mvcc/partition_version.h"

namespace cinderella {

PartitionVersion::PartitionVersion(const Partition& partition)
    : id_(partition.id()),
      rows_(partition.segment().rows()),
      attributes_(partition.attribute_refcounts()),
      cell_count_(partition.segment().cell_count()),
      byte_size_(partition.segment().byte_size()) {
  index_.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) index_.emplace(rows_[i].id(), i);
}

const Row* PartitionVersion::Find(EntityId entity) const {
  const auto it = index_.find(entity);
  return it != index_.end() ? &rows_[it->second] : nullptr;
}

const Row* CatalogView::Find(EntityId entity) const {
  for (const PartitionVersion* version : partitions_) {
    const Row* row = version->Find(entity);
    if (row != nullptr) return row;
  }
  return nullptr;
}

}  // namespace cinderella
