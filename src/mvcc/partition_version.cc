#include "mvcc/partition_version.h"

#include <cstring>
#include <memory>
#include <new>

#include "common/logging.h"
#include "core/refcounted_synopsis.h"

namespace cinderella {
namespace {

/// SplitMix64 finalizer: entity ids are often small and sequential, so
/// the flat index needs a mixer to spread them across the table.
inline uint64_t MixEntity(EntityId id) {
  uint64_t x = id + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

// -- ShellPool ----------------------------------------------------------------

ShellPool::~ShellPool() {
  for (void* p : free_) ::operator delete(p);
}

void* ShellPool::Acquire(size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  CINDERELLA_CHECK(size_ == 0 || size_ == size);
  size_ = size;
  if (!free_.empty()) {
    void* p = free_.back();
    free_.pop_back();
    ++reused_;
    return p;
  }
  ++created_;
  return ::operator new(size);
}

void ShellPool::Return(void* storage) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(storage);
  ++recycled_;
}

ShellPool::Stats ShellPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{created_, reused_, recycled_, free_.size()};
}

// -- PartitionVersion ---------------------------------------------------------

PartitionVersion::PartitionVersion(const Partition& partition, Arena* arena,
                                   const ColdTier* tier)
    : id_(partition.id()), arena_(arena) {
  arena_->Ref();
  const size_t used_before = arena_->bytes_used();

  if (partition.cold()) {
    // Cold capture: share the page chain, pack only the memory-resident
    // digests (below). Counts come from the chain — identical to what the
    // rows would sum to, since SetCold checked them at eviction.
    cold_chain_ = partition.cold_chain();
    tier_ = tier;
    row_count_ = static_cast<uint32_t>(cold_chain_->entities);
    cell_total_ = 0;  // No packed cells; the destructor's destroy pass skips.
    rows_ = nullptr;
    cells_ = nullptr;
    index_ = nullptr;
  } else {
    const std::vector<Row>& src = partition.segment().rows();
    row_count_ = static_cast<uint32_t>(src.size());

    size_t total_cells = 0;
    for (const Row& row : src) total_cells += row.cells().size();
    cell_total_ = static_cast<uint32_t>(total_cells);

    // Row headers, then the shared cell array: one pass copy-constructs
    // every cell in scan order, so a sequential scan of this version reads
    // monotonically increasing addresses.
    PackedRow* rows = arena_->AllocateArrayOf<PackedRow>(row_count_);
    cells_ = arena_->AllocateArrayOf<Row::Cell>(total_cells);
    uint32_t cursor = 0;
    for (uint32_t i = 0; i < row_count_; ++i) {
      const std::vector<Row::Cell>& cells = src[i].cells();
      rows[i] = PackedRow{src[i].id(), cursor,
                          static_cast<uint32_t>(cells.size())};
      for (const Row::Cell& cell : cells) {
        new (&cells_[cursor++]) Row::Cell{cell.attribute, cell.value};
      }
    }
    rows_ = rows;

    // Open-addressing point index at load factor <= 0.5.
    size_t capacity = 2;
    while (capacity < size_t{2} * row_count_) capacity <<= 1;
    index_mask_ = static_cast<uint32_t>(capacity - 1);
    IndexSlot* slots = arena_->AllocateArrayOf<IndexSlot>(capacity);
    for (size_t i = 0; i < capacity; ++i) slots[i].row = kEmptySlot;
    for (uint32_t i = 0; i < row_count_; ++i) {
      uint32_t h = static_cast<uint32_t>(MixEntity(rows[i].id)) & index_mask_;
      while (slots[h].row != kEmptySlot) h = (h + 1) & index_mask_;
      slots[h] = IndexSlot{rows[i].id, i};
    }
    index_ = slots;
  }

  // Synopsis words plus the dense carrier-count table (one uint32 per
  // attribute id covered by the words).
  const RefcountedSynopsis& refcounts = partition.attribute_refcounts();
  const std::vector<uint64_t>& words = refcounts.synopsis().words();
  synopsis_word_count_ = words.size();
  synopsis_cardinality_ = refcounts.synopsis().Count();
  uint64_t* packed_words = arena_->AllocateArrayOf<uint64_t>(words.size());
  if (!words.empty()) {
    std::memcpy(packed_words, words.data(), words.size() * sizeof(uint64_t));
  }
  synopsis_words_ = packed_words;
  carrier_len_ = static_cast<uint32_t>(words.size() * 64);
  uint32_t* counts = arena_->AllocateArrayOf<uint32_t>(carrier_len_);
  if (carrier_len_ != 0) {
    std::memset(counts, 0, carrier_len_ * sizeof(uint32_t));
  }
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      const AttributeId attribute = static_cast<AttributeId>(w * 64 + bit);
      counts[attribute] = refcounts.RefCount(attribute);
    }
  }
  carrier_counts_ = counts;

  byte_size_ = cold_chain_ != nullptr ? cold_chain_->bytes
                                      : partition.segment().byte_size();
  arena_bytes_ = arena_->bytes_used() - used_before;
}

PartitionVersion::~PartitionVersion() {
  // Cell Values may own heap strings; destroy them before the arena's
  // storage is recycled. (Cold versions packed none.)
  if (cells_ != nullptr) std::destroy_n(cells_, cell_total_);
  arena_->Unref();
}

RowView PartitionVersion::Find(EntityId entity) const {
  // Cold versions carry no point index; VersionedTable::Get falls back to
  // a chain scan for them.
  if (cold_chain_ != nullptr) return RowView();
  if (row_count_ == 0) return RowView();
  uint32_t h = static_cast<uint32_t>(MixEntity(entity)) & index_mask_;
  for (;;) {
    const IndexSlot& slot = index_[h];
    if (slot.row == kEmptySlot) return RowView();
    if (slot.entity == entity) return row(slot.row);
    h = (h + 1) & index_mask_;
  }
}

// -- CatalogView --------------------------------------------------------------

RowView CatalogView::Find(EntityId entity) const {
  for (const PartitionVersion* version : partitions_) {
    RowView row = version->Find(entity);
    if (row.valid()) return row;
  }
  return RowView();
}

Synopsis CatalogView::UnionSynopsis() const {
  // The tree root already holds the OR over every partition; the digest
  // falls out of the incremental maintenance for free.
  if (tree_.valid()) {
    const Synopsis* root = tree_.root_union();
    return root != nullptr ? *root : Synopsis();
  }
  Synopsis digest;
  for (const PartitionVersion* version : partitions_) {
    const SynopsisSpan span = version->attribute_synopsis();
    digest.UnionWithWords(span.words, span.num_words);
  }
  return digest;
}

uint64_t CatalogView::byte_size() const {
  uint64_t total = 0;
  for (const PartitionVersion* version : partitions_) {
    total += version->byte_size();
  }
  return total;
}

// -- ViewPool -----------------------------------------------------------------

ViewPool::~ViewPool() {
  for (CatalogView* view : free_) delete view;
}

CatalogView* ViewPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    CatalogView* view = free_.back();
    free_.pop_back();
    ++reused_;
    return view;
  }
  ++created_;
  auto* view = new CatalogView();
  view->pool_ = this;
  return view;
}

void ViewPool::Return(CatalogView* view) {
  view->partitions_.clear();  // Keeps capacity for the next generation.
  view->generation_ = 0;
  view->entity_count_ = 0;
  view->tree_ = SynopsisTreeSnapshot();  // Drop the tree-root reference.
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(view);
  ++recycled_;
}

ViewPool::Stats ViewPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{created_, reused_, recycled_, free_.size()};
}

}  // namespace cinderella
