#include "mvcc/versioned_table.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace cinderella {

VersionedTable::VersionedTable(std::unique_ptr<Cinderella> table)
    : VersionedTable(std::move(table), Options()) {}

VersionedTable::VersionedTable(std::unique_ptr<Cinderella> table,
                               Options options)
    : owned_(std::move(table)), cinderella_(owned_.get()) {
  CINDERELLA_CHECK(cinderella_ != nullptr);
  if (options.batched_ingest) {
    owned_engine_ = AttachBatchInserter(cinderella_, options.ingest);
    engine_ = owned_engine_.get();
  }
  Hook();
}

VersionedTable::VersionedTable(Cinderella* table, BatchInserter* engine)
    : cinderella_(table), engine_(engine) {
  CINDERELLA_CHECK(cinderella_ != nullptr);
  Hook();
}

void VersionedTable::Hook() {
  cinderella_->set_version_capture(&pending_);
  if (engine_ != nullptr) {
    engine_->set_commit_hook([this] {
      std::lock_guard<std::mutex> lock(publish_mu_);
      PublishLocked();
    });
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  RebuildViewLocked();
}

VersionedTable::~VersionedTable() {
  if (engine_ != nullptr) engine_->set_commit_hook(nullptr);
  cinderella_->set_version_capture(nullptr);

  // The contract requires every Snapshot to be released before the table
  // dies — a pinned reader would otherwise scan freed memory no epoch can
  // protect once the manager itself is gone.
  CINDERELLA_CHECK(epochs_.pinned_count() == 0);
  const CatalogView* view = current_.load(std::memory_order_seq_cst);
  if (view != nullptr) {
    for (const PartitionVersion* version : view->partitions()) {
      epochs_.Retire(version);
    }
    epochs_.Retire(view);
  }
  epochs_.Advance();
  CINDERELLA_CHECK(epochs_.retired_count() == 0);
}

// -- Read path ----------------------------------------------------------------

VersionedTable::Snapshot VersionedTable::snapshot() const {
  // Pin first, then load: any view reachable through current_ after the
  // pin was retired (if ever) no earlier than the pinned epoch, so it
  // cannot be freed until Unpin.
  const size_t slot = epochs_.Pin();
  const CatalogView* view = current_.load(std::memory_order_seq_cst);
  return Snapshot(&epochs_, slot, view);
}

StatusOr<Row> VersionedTable::Get(EntityId entity) const {
  Snapshot snap = snapshot();
  const Row* row = snap.view().Find(entity);
  if (row == nullptr) {
    return Status::NotFound("entity " + std::to_string(entity) +
                            " not in table");
  }
  return Row(*row);  // Copy before the snapshot (and its pin) is released.
}

size_t VersionedTable::entity_count() const {
  return snapshot().view().entity_count();
}

size_t VersionedTable::partition_count() const {
  return snapshot().view().partition_count();
}

uint64_t VersionedTable::published_generation() const {
  return snapshot().view().generation();
}

// -- Write path ---------------------------------------------------------------

Status VersionedTable::Apply(const std::function<Status()>& op) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  const Status status = op();
  // Publish even on failure: a failed operation may have mutated the
  // catalog on a partial path (e.g. a split cascade that errors late), and
  // the captured delta must reach the published view either way.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  return status;
}

Status VersionedTable::Insert(Row row) {
  return Apply([&] { return cinderella_->Insert(std::move(row)); });
}

Status VersionedTable::Update(Row row) {
  return Apply([&] { return cinderella_->Update(std::move(row)); });
}

Status VersionedTable::Delete(EntityId entity) {
  return Apply([&] { return cinderella_->Delete(entity); });
}

Status VersionedTable::DeleteBatch(const std::vector<EntityId>& entities) {
  return Apply([&] { return cinderella_->DeleteBatch(entities); });
}

Status VersionedTable::InsertBatch(std::vector<Row> rows) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  // Routes through the attached engine when one is set; its commit hook
  // publishes one view per committed window (under commit_mu_, which nests
  // inside write_mu_ here). The publication below catches the tail: the
  // serial fallback path, and the committed prefix of a batch that failed
  // mid-window (whose hook never ran).
  const Status status = cinderella_->InsertBatch(std::move(rows));
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  return status;
}

Status VersionedTable::Reorganize() {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  const Status status = cinderella_->Reorganize();
  // Reorganize rewrites the whole catalog; a full rebuild is both simpler
  // and cheaper than a delta covering every partition.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  RebuildViewLocked();
  return status;
}

void VersionedTable::RefreshView() {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  RebuildViewLocked();
}

// -- Publication --------------------------------------------------------------

void VersionedTable::PublishLocked() {
  CatalogMutations delta;
  delta.touched.swap(pending_.touched);
  delta.created.swap(pending_.created);
  delta.dropped.swap(pending_.dropped);
  if (delta.touched.empty() && delta.created.empty() && delta.dropped.empty()) {
    return;  // Nothing changed since the last publication.
  }

  const PartitionCatalog& catalog = cinderella_->catalog();

  std::unordered_set<PartitionId> dropped(delta.dropped.begin(),
                                          delta.dropped.end());
  // Fresh versions for every partition the delta touched or created that
  // is still live. A touched-then-dropped partition (split source, drained
  // empty partition) lands in `dropped` or resolves to nullptr and is
  // excluded either way.
  std::unordered_map<PartitionId, const PartitionVersion*> fresh;
  auto consider = [&](PartitionId id) {
    if (dropped.count(id) != 0 || fresh.count(id) != 0) return;
    const Partition* partition = catalog.GetPartition(id);
    if (partition == nullptr) {
      dropped.insert(id);
      return;
    }
    fresh.emplace(id, new PartitionVersion(*partition));
  };
  for (PartitionId id : delta.touched) consider(id);
  for (PartitionId id : delta.created) consider(id);

  const CatalogView* old_view = current_.load(std::memory_order_seq_cst);
  auto* view = new CatalogView();
  std::vector<const PartitionVersion*> superseded;
  view->partitions_.reserve(old_view->partitions().size() + fresh.size());
  for (const PartitionVersion* old_version : old_view->partitions()) {
    const PartitionId id = old_version->id();
    if (dropped.count(id) != 0) {
      superseded.push_back(old_version);
      continue;
    }
    const auto it = fresh.find(id);
    if (it != fresh.end()) {
      view->partitions_.push_back(it->second);
      superseded.push_back(old_version);
      fresh.erase(it);
    } else {
      view->partitions_.push_back(old_version);  // Shared with old_view.
    }
  }
  // What remains in `fresh` was created since the old view. Created ids
  // are always larger than any id live before them (catalog slots are
  // never reused), so appending in ascending id order keeps the whole
  // array sorted.
  std::vector<const PartitionVersion*> created(fresh.size());
  size_t created_count = 0;
  for (const auto& [id, version] : fresh) created[created_count++] = version;
  std::sort(created.begin(), created.end(),
            [](const PartitionVersion* a, const PartitionVersion* b) {
              return a->id() < b->id();
            });
  view->partitions_.insert(view->partitions_.end(), created.begin(),
                           created.end());

  size_t entities = 0;
  for (const PartitionVersion* version : view->partitions_) {
    entities += version->entity_count();
  }
  view->entity_count_ = entities;

  InstallLocked(view, superseded);
}

void VersionedTable::RebuildViewLocked() {
  // A rebuild supersedes the delta wholesale.
  pending_.touched.clear();
  pending_.created.clear();
  pending_.dropped.clear();

  auto* view = new CatalogView();
  const PartitionCatalog& catalog = cinderella_->catalog();
  view->partitions_.reserve(catalog.partition_count());
  catalog.ForEachPartition([&](const Partition& partition) {
    view->partitions_.push_back(new PartitionVersion(partition));
  });
  view->entity_count_ = catalog.entity_count();

  const CatalogView* old_view = current_.load(std::memory_order_seq_cst);
  std::vector<const PartitionVersion*> superseded;
  if (old_view != nullptr) superseded = old_view->partitions();
  InstallLocked(view, superseded);
}

void VersionedTable::InstallLocked(
    CatalogView* view, const std::vector<const PartitionVersion*>& superseded) {
  view->generation_ = ++view_generation_;
  const CatalogView* old_view =
      current_.exchange(view, std::memory_order_seq_cst);
  // Retire before Advance: the garbage is tagged with the pre-advance
  // epoch, so a reader whose verified pin predates this publication keeps
  // it alive, while post-advance readers (who can only load the new view)
  // never block its reclamation.
  for (const PartitionVersion* version : superseded) epochs_.Retire(version);
  if (old_view != nullptr) epochs_.Retire(old_view);
  epochs_.Advance();
}

}  // namespace cinderella
