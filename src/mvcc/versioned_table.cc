#include "mvcc/versioned_table.h"

#include <algorithm>
#include <new>
#include <string>
#include <utility>

#include "common/logging.h"

namespace cinderella {

VersionedTable::VersionedTable(std::unique_ptr<Cinderella> table)
    : VersionedTable(std::move(table), Options()) {}

VersionedTable::VersionedTable(std::unique_ptr<Cinderella> table,
                               Options options)
    : owned_(std::move(table)), cinderella_(owned_.get()) {
  CINDERELLA_CHECK(cinderella_ != nullptr);
  if (options.batched_ingest) {
    owned_engine_ = AttachBatchInserter(cinderella_, options.ingest);
    engine_ = owned_engine_.get();
  }
  Hook();
}

VersionedTable::VersionedTable(Cinderella* table, BatchInserter* engine)
    : cinderella_(table), engine_(engine) {
  CINDERELLA_CHECK(cinderella_ != nullptr);
  Hook();
}

void VersionedTable::Hook() {
  cinderella_->AddMutationListener(&pending_);
  if (cinderella_->config().use_synopsis_tree) {
    // Unlike the insert-rating tree this one indexes *attribute* synopses
    // (what queries probe), so it is useful at any rating weight — no
    // weight < 1 gate.
    query_tree_ = std::make_unique<SynopsisTree>(
        static_cast<size_t>(cinderella_->config().tree_fanout));
  }
  if (engine_ != nullptr) {
    engine_->set_commit_hook([this](const BatchInserter::WindowCommit& commit) {
      std::lock_guard<std::mutex> lock(publish_mu_);
      // The window's dirty-partition count bounds the publication delta;
      // passing it pre-sizes the fresh-version scratch.
      PublishLocked(commit.dirty_partitions);
    });
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  RebuildViewLocked();
}

VersionedTable::~VersionedTable() {
  if (engine_ != nullptr) engine_->set_commit_hook(nullptr);
  cinderella_->RemoveMutationListener(&pending_);

  // The contract requires every Snapshot to be released before the table
  // dies — a pinned reader would otherwise scan freed memory no epoch can
  // protect once the manager itself is gone.
  CINDERELLA_CHECK(epochs_.pinned_count() == 0);
  const CatalogView* view = current_.load(std::memory_order_seq_cst);
  if (view != nullptr) {
    for (const PartitionVersion* version : view->partitions()) {
      epochs_.RetireObject(const_cast<PartitionVersion*>(version),
                           &VersionedTable::ReclaimVersion);
    }
    epochs_.RetireObject(const_cast<CatalogView*>(view),
                         &VersionedTable::ReclaimView);
  }
  epochs_.Advance();
  CINDERELLA_CHECK(epochs_.retired_count() == 0);
  // Member destruction frees the pools after epochs_: every version, view
  // shell, and arena is back in its pool by now.
}

// -- Read path ----------------------------------------------------------------

VersionedTable::Snapshot VersionedTable::snapshot() const {
  // Pin first, then load: any view reachable through current_ after the
  // pin was retired (if ever) no earlier than the pinned epoch, so it
  // cannot be freed until Unpin.
  const size_t slot = epochs_.Pin();
  const CatalogView* view = current_.load(std::memory_order_seq_cst);
  return Snapshot(&epochs_, slot, view);
}

StatusOr<Row> VersionedTable::Get(EntityId entity) const {
  Snapshot snap = snapshot();
  const RowView row = snap.view().Find(entity);
  if (row.valid()) {
    return row.ToRow();  // Copy before the snapshot (and its pin) is released.
  }
  // Cold versions carry no point index; scan their (snapshot-pinned) page
  // chains. The shared chain keeps the pages alive even if the live
  // partition was faulted hot or re-spilled since this view published.
  for (const PartitionVersion* version : snap.view().partitions()) {
    if (!version->cold()) continue;
    Row found;
    bool hit = false;
    CINDERELLA_RETURN_IF_ERROR(version->cold_tier()->ReadChain(
        *version->cold_chain(), [&](Row&& candidate) {
          if (candidate.id() == entity) {
            found = std::move(candidate);
            hit = true;
          }
        }));
    if (hit) return found;
  }
  return Status::NotFound("entity " + std::to_string(entity) +
                          " not in table");
}

size_t VersionedTable::entity_count() const {
  return snapshot().view().entity_count();
}

size_t VersionedTable::partition_count() const {
  return snapshot().view().partition_count();
}

uint64_t VersionedTable::published_generation() const {
  return snapshot().view().generation();
}

VersionedTable::MemoryStats VersionedTable::memory_stats() const {
  MemoryStats stats;
  {
    Snapshot snap = snapshot();
    stats.generation = snap.view().generation();
    stats.live_versions = snap.view().partition_count();
    for (const PartitionVersion* version : snap.view().partitions()) {
      stats.view_bytes += version->arena_bytes();
      if (version->cold()) {
        ++stats.cold_versions;
        stats.cold_bytes += version->cold_chain()->bytes;
        stats.cold_pages += version->cold_chain()->pages;
      } else {
        ++stats.hot_versions;
      }
    }
  }
  stats.retired_objects = epochs_.retired_count();
  stats.reclaimed_objects = epochs_.reclaimed_count();
  stats.arenas = arena_pool_.stats();
  stats.version_shells = version_pool_.stats();
  stats.views = view_pool_.stats();
  if (query_tree_ != nullptr) {
    std::lock_guard<std::mutex> lock(publish_mu_);
    const SynopsisTree::Stats& tree = query_tree_->stats();
    stats.tree.enabled = true;
    stats.tree.depth = query_tree_->depth();
    stats.tree.fanout = query_tree_->fanout();
    stats.tree.internal_nodes = query_tree_->internal_node_count();
    stats.tree.live_leaves = query_tree_->live_count();
    stats.tree.upserts = tree.upserts;
    stats.tree.removes = tree.removes;
    stats.tree.fast_merges = tree.fast_merges;
    stats.tree.node_reors = tree.node_reors;
    stats.tree.nodes_copied = tree.nodes_copied;
    stats.tree.collapses = tree.collapses;
  }
  return stats;
}

// -- Write path ---------------------------------------------------------------

Status VersionedTable::Apply(const std::function<Status()>& op) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  const Status status = op();
  // Publish even on failure: a failed operation may have mutated the
  // catalog on a partial path (e.g. a split cascade that errors late), and
  // the captured delta must reach the published view either way.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  return status;
}

Status VersionedTable::Insert(Row row) {
  return Apply([&] { return cinderella_->Insert(std::move(row)); });
}

Status VersionedTable::Update(Row row) {
  return Apply([&] { return cinderella_->Update(std::move(row)); });
}

Status VersionedTable::Delete(EntityId entity) {
  return Apply([&] { return cinderella_->Delete(entity); });
}

Status VersionedTable::DeleteBatch(const std::vector<EntityId>& entities) {
  return Apply([&] { return cinderella_->DeleteBatch(entities); });
}

Status VersionedTable::InsertBatch(std::vector<Row> rows) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  // Routes through the attached engine when one is set; its commit hook
  // publishes one view per committed window (under commit_mu_, which nests
  // inside write_mu_ here). The publication below catches the tail: the
  // serial fallback path, and the committed prefix of a batch that failed
  // mid-window (whose hook never ran).
  const Status status = cinderella_->InsertBatch(std::move(rows));
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  return status;
}

Status VersionedTable::UpdateBatch(std::vector<Row> rows) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  // Same per-window publication story as InsertBatch: an update that moves
  // an entity dirties both its old and new partitions, and the window's
  // commit hook publishes them together as one consistent snapshot.
  const Status status = cinderella_->UpdateBatch(std::move(rows));
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  return status;
}

Status VersionedTable::ApplyMutations(std::vector<Mutation> ops,
                                      size_t* applied) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  const Status status = cinderella_->ApplyMutations(std::move(ops), applied);
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  return status;
}

Status VersionedTable::RepartitionEntities(
    const std::vector<EntityId>& entities, RepartitionResult* result) {
  RepartitionResult local;
  std::lock_guard<std::mutex> write_lock(write_mu_);
  // Capture the drain set from the live catalog under the writer lock:
  // every row copied here is guaranteed live for the whole apply (no
  // other writer can run until we release write_mu_).
  const PartitionCatalog& catalog = cinderella_->catalog();
  std::vector<Row> rows;
  rows.reserve(entities.size());
  std::unordered_set<EntityId> seen;
  seen.reserve(entities.size());
  for (EntityId entity : entities) {
    if (!seen.insert(entity).second) continue;
    ++local.requested;
    const std::optional<PartitionId> home = catalog.FindEntity(entity);
    const Partition* partition =
        home.has_value() ? catalog.GetPartition(*home) : nullptr;
    const Row* row =
        partition != nullptr ? partition->segment().Find(entity) : nullptr;
    if (row == nullptr) {
      ++local.missing;
      continue;
    }
    rows.push_back(*row);
  }
  if (rows.empty()) {
    if (result != nullptr) *result = local;
    return Status::OK();
  }
  // Reinsert most-descriptive rows first (DrainForReorganize's order):
  // they seed partitions and split starters, so sparser rows join
  // well-formed groups.
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.attribute_count() > b.attribute_count();
  });
  std::vector<Mutation> ops;
  ops.reserve(rows.size() * 2);
  for (const Row& row : rows) ops.push_back(Mutation::Delete(row.id()));
  for (Row& row : rows) ops.push_back(Mutation::Insert(std::move(row)));
  const size_t drained = ops.size() / 2;
  size_t applied = 0;
  const Status status = cinderella_->ApplyMutations(std::move(ops), &applied);
  // moved = reinsertions committed; deletes occupy the first half of the
  // op list, so a partial prefix beyond it counts applied inserts.
  local.moved =
      status.ok() ? drained : (applied > drained ? applied - drained : 0);
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  if (result != nullptr) *result = local;
  return status;
}

Status VersionedTable::Reorganize() {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  const Status status = cinderella_->Reorganize();
  // Reorganize rewrites the whole catalog; a full rebuild is both simpler
  // and cheaper than a delta covering every partition.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  RebuildViewLocked();
  return status;
}

void VersionedTable::RefreshView() {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  RebuildViewLocked();
}

Status VersionedTable::SpillPartitions(const std::vector<PartitionId>& ids,
                                       size_t* spilled) {
  if (spilled != nullptr) *spilled = 0;
  if (cinderella_->cold_tier() == nullptr) {
    return Status::FailedPrecondition("no cold tier attached");
  }
  std::lock_guard<std::mutex> write_lock(write_mu_);
  size_t count = 0;
  Status status = Status::OK();
  for (const PartitionId id : ids) {
    // Plans are made on pinned snapshots; a partition may have been
    // dropped, emptied, or already spilled since — skip, never fail.
    const Partition* partition = cinderella_->catalog().GetPartition(id);
    if (partition == nullptr || partition->cold() ||
        partition->entity_count() == 0) {
      continue;
    }
    status = cinderella_->SpillPartition(id);
    if (!status.ok()) break;
    ++count;
  }
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  PublishLocked();
  if (spilled != nullptr) *spilled = count;
  return status;
}

// -- Publication --------------------------------------------------------------

const PartitionVersion* VersionedTable::MakeVersionLocked(
    const Partition& partition, Arena* arena) {
  void* storage = version_pool_.Acquire(sizeof(PartitionVersion));
  auto* version =
      new (storage) PartitionVersion(partition, arena, cinderella_->cold_tier());
  version->shell_pool_ = &version_pool_;
  return version;
}

void VersionedTable::ReclaimVersion(void* object) {
  auto* version = static_cast<PartitionVersion*>(object);
  ShellPool* pool = version->shell_pool_;
  version->~PartitionVersion();
  if (pool != nullptr) {
    pool->Return(object);
  } else {
    ::operator delete(object);
  }
}

void VersionedTable::ReclaimView(void* object) {
  auto* view = static_cast<CatalogView*>(object);
  if (view->pool_ != nullptr) {
    view->pool_->Return(view);
  } else {
    delete view;
  }
}

void VersionedTable::PublishLocked(size_t delta_hint) {
  // Ping-pong the delta buffers with pending_: both sides keep their
  // vector capacity, so draining the capture allocates nothing at steady
  // state.
  delta_scratch_.touched.clear();
  delta_scratch_.created.clear();
  delta_scratch_.dropped.clear();
  delta_scratch_.touched.swap(pending_.touched);
  delta_scratch_.created.swap(pending_.created);
  delta_scratch_.dropped.swap(pending_.dropped);
  const CatalogMutations& delta = delta_scratch_;
  if (delta.touched.empty() && delta.created.empty() && delta.dropped.empty()) {
    return;  // Nothing changed since the last publication.
  }

  const PartitionCatalog& catalog = cinderella_->catalog();

  dropped_scratch_.clear();
  dropped_scratch_.insert(delta.dropped.begin(), delta.dropped.end());
  std::unordered_set<PartitionId>& dropped = dropped_scratch_;
  fresh_scratch_.clear();
  if (delta_hint != 0) fresh_scratch_.reserve(delta_hint);
  std::unordered_map<PartitionId, const PartitionVersion*>& fresh =
      fresh_scratch_;

  // Fresh versions for every partition the delta touched or created that
  // is still live, packed into one pooled arena (acquired lazily: a
  // delta that only drops partitions needs none). A touched-then-dropped
  // partition (split source, drained empty partition) lands in `dropped`
  // or resolves to nullptr and is excluded either way.
  Arena* arena = nullptr;
  auto consider = [&](PartitionId id) {
    if (dropped.count(id) != 0 || fresh.count(id) != 0) return;
    const Partition* partition = catalog.GetPartition(id);
    // A live-but-empty partition (a DeleteBatch drained it and the drop
    // is still pending, or a cascade failed before its sweep) is dropped
    // from the view: published views never carry empty versions, keeping
    // estimator totals consistent with entity counts.
    if (partition == nullptr || partition->entity_count() == 0) {
      dropped.insert(id);
      return;
    }
    if (arena == nullptr) arena = arena_pool_.Acquire();
    fresh.emplace(id, MakeVersionLocked(*partition, arena));
  };
  for (PartitionId id : delta.touched) consider(id);
  for (PartitionId id : delta.created) consider(id);

  // Incremental tree maintenance: the delta's drops and fresh versions
  // are exactly the leaves that changed. Must run while `fresh` is still
  // intact (the splice loop below erases from it). Remove is a no-op for
  // ids never published (created-then-dropped), so the dropped set can be
  // applied wholesale.
  if (query_tree_ != nullptr) {
    for (PartitionId id : dropped) query_tree_->Remove(id);
    for (const auto& [id, version] : fresh) {
      const SynopsisSpan span = version->attribute_synopsis();
      query_tree_->UpsertWords(id, span.words, span.num_words);
    }
  }

  const CatalogView* old_view = current_.load(std::memory_order_seq_cst);
  CatalogView* view = view_pool_.Acquire();
  superseded_scratch_.clear();
  std::vector<const PartitionVersion*>& superseded = superseded_scratch_;
  view->partitions_.reserve(old_view->partitions().size() + fresh.size());
  for (const PartitionVersion* old_version : old_view->partitions()) {
    const PartitionId id = old_version->id();
    if (dropped.count(id) != 0) {
      superseded.push_back(old_version);
      continue;
    }
    const auto it = fresh.find(id);
    if (it != fresh.end()) {
      view->partitions_.push_back(it->second);
      superseded.push_back(old_version);
      fresh.erase(it);
    } else {
      view->partitions_.push_back(old_version);  // Shared with old_view.
    }
  }
  // What remains in `fresh` was created since the old view. Created ids
  // are always larger than any id live before them (catalog slots are
  // never reused), so appending in ascending id order keeps the whole
  // array sorted.
  created_scratch_.clear();
  for (const auto& [id, version] : fresh) created_scratch_.push_back(version);
  std::sort(created_scratch_.begin(), created_scratch_.end(),
            [](const PartitionVersion* a, const PartitionVersion* b) {
              return a->id() < b->id();
            });
  view->partitions_.insert(view->partitions_.end(), created_scratch_.begin(),
                           created_scratch_.end());

  size_t entities = 0;
  for (const PartitionVersion* version : view->partitions_) {
    entities += version->entity_count();
  }
  view->entity_count_ = entities;
  if (query_tree_ != nullptr) view->tree_ = query_tree_->Share();

  InstallLocked(view, superseded);
  // Drop the publisher's arena reference; the versions built above hold
  // theirs until reclamation, and the last one recycles the arena.
  if (arena != nullptr) arena->Unref();
}

void VersionedTable::RebuildViewLocked() {
  // A rebuild supersedes the delta wholesale.
  pending_.touched.clear();
  pending_.created.clear();
  pending_.dropped.clear();

  CatalogView* view = view_pool_.Acquire();
  const PartitionCatalog& catalog = cinderella_->catalog();
  view->partitions_.reserve(catalog.partition_count());
  Arena* arena = nullptr;
  // Full rebuilds regenerate the tree bulk-bottom-up: one union per
  // internal node instead of a re-OR spine per leaf. The leaf synopsis
  // pointers reference the live partitions, valid for the whole pass.
  std::vector<std::pair<uint64_t, const Synopsis*>> leaves;
  if (query_tree_ != nullptr) leaves.reserve(catalog.partition_count());
  catalog.ForEachPartition([&](const Partition& partition) {
    // Same invariant as PublishLocked: views never carry empty versions.
    if (partition.entity_count() == 0) return;
    if (arena == nullptr) arena = arena_pool_.Acquire();
    const PartitionVersion* version = MakeVersionLocked(partition, arena);
    view->partitions_.push_back(version);
    if (query_tree_ != nullptr) {
      leaves.emplace_back(partition.id(),
                          &partition.attribute_refcounts().synopsis());
    }
  });
  if (query_tree_ != nullptr) query_tree_->BulkBuild(std::move(leaves));
  view->entity_count_ = catalog.entity_count();
  if (query_tree_ != nullptr) view->tree_ = query_tree_->Share();

  const CatalogView* old_view = current_.load(std::memory_order_seq_cst);
  std::vector<const PartitionVersion*> superseded;
  if (old_view != nullptr) superseded = old_view->partitions();
  InstallLocked(view, superseded);
  if (arena != nullptr) arena->Unref();
}

void VersionedTable::InstallLocked(
    CatalogView* view, const std::vector<const PartitionVersion*>& superseded) {
  view->generation_ = ++view_generation_;
  const CatalogView* old_view =
      current_.exchange(view, std::memory_order_seq_cst);
  // Retire before Advance: the garbage is tagged with the pre-advance
  // epoch, so a reader whose verified pin predates this publication keeps
  // it alive, while post-advance readers (who can only load the new view)
  // never block its reclamation.
  for (const PartitionVersion* version : superseded) {
    epochs_.RetireObject(const_cast<PartitionVersion*>(version),
                         &VersionedTable::ReclaimVersion);
  }
  if (old_view != nullptr) {
    epochs_.RetireObject(const_cast<CatalogView*>(old_view),
                         &VersionedTable::ReclaimView);
  }
  epochs_.Advance();
}

}  // namespace cinderella
