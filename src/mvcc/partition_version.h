#ifndef CINDERELLA_MVCC_PARTITION_VERSION_H_
#define CINDERELLA_MVCC_PARTITION_VERSION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/partition.h"
#include "core/refcounted_synopsis.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// An immutable copy-on-write snapshot of one partition, taken at a
/// publication point (see versioned_table.h). Readers scan versions
/// instead of live Partition objects, so the ingest writer never has to
/// take a lock the read path contends on.
///
/// The version carries everything the query stack consumes: the rows (in
/// the segment's scan order at capture time), the attribute synopsis for
/// Definition-1 pruning, the per-attribute carrier counts for the
/// selectivity estimator, the size totals for scan metrics, and a hash
/// index for point lookups. It deliberately does NOT carry split starters
/// or the rating synopsis of workload mode — versions serve reads, not
/// the rating scan.
///
/// Lifetime: versions are created by the publisher, shared by any number
/// of CatalogViews, retired to the EpochManager exactly once (when they
/// leave the newest view), and freed when no pinned reader can reach them.
class PartitionVersion {
 public:
  /// Deep-copies the partition's current state. Must be called while the
  /// catalog is quiescent (the publisher's lock).
  explicit PartitionVersion(const Partition& partition);

  PartitionVersion(const PartitionVersion&) = delete;
  PartitionVersion& operator=(const PartitionVersion&) = delete;

  PartitionId id() const { return id_; }

  /// Rows in the segment's scan order at capture time.
  const std::vector<Row>& rows() const { return rows_; }

  size_t entity_count() const { return rows_.size(); }
  uint64_t cell_count() const { return cell_count_; }
  uint64_t byte_size() const { return byte_size_; }

  /// The pruning synopsis (set of attributes instantiated by residents).
  const Synopsis& attribute_synopsis() const { return attributes_.synopsis(); }

  /// Residents instantiating `attribute` (estimator input), mirroring
  /// Partition::AttributeCarrierCount.
  uint32_t AttributeCarrierCount(AttributeId attribute) const {
    return attributes_.RefCount(attribute);
  }

  /// Point lookup; nullptr when the entity is not resident.
  const Row* Find(EntityId entity) const;

 private:
  PartitionId id_;
  std::vector<Row> rows_;
  std::unordered_map<EntityId, size_t> index_;  // entity -> rows_ slot.
  RefcountedSynopsis attributes_;
  uint64_t cell_count_ = 0;
  uint64_t byte_size_ = 0;
};

/// One immutable generation of the whole catalog: an ascending-id array
/// of partition versions plus the table totals. A reader that pins an
/// epoch and loads the current view gets a transactionally consistent
/// image — prune-then-scan never observes a half-applied split cascade,
/// because cascades publish a single view swap after the cascade settled.
///
/// Views share unchanged versions with their predecessor; only partitions
/// the mutation touched are re-copied (COW at partition granularity).
class CatalogView {
 public:
  CatalogView() = default;

  CatalogView(const CatalogView&) = delete;
  CatalogView& operator=(const CatalogView&) = delete;

  /// Monotonic publication counter (1 = the initial view).
  uint64_t generation() const { return generation_; }

  size_t partition_count() const { return partitions_.size(); }
  size_t entity_count() const { return entity_count_; }

  /// Versions in ascending partition-id order.
  const std::vector<const PartitionVersion*>& partitions() const {
    return partitions_;
  }

  /// Invokes `fn(const PartitionVersion&)` for every partition in id
  /// order — the same shape as PartitionCatalog::ForEachPartition, so the
  /// estimator templates over both.
  template <typename Fn>
  void ForEachPartition(Fn&& fn) const {
    for (const PartitionVersion* version : partitions_) fn(*version);
  }

  /// Point lookup across all partitions of this generation.
  const Row* Find(EntityId entity) const;

 private:
  friend class VersionedTable;

  std::vector<const PartitionVersion*> partitions_;
  uint64_t generation_ = 0;
  size_t entity_count_ = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_MVCC_PARTITION_VERSION_H_
