#ifndef CINDERELLA_MVCC_PARTITION_VERSION_H_
#define CINDERELLA_MVCC_PARTITION_VERSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/arena.h"
#include "core/partition.h"
#include "storage/cold_tier.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"
#include "synopsis/synopsis_tree.h"

namespace cinderella {

/// Fixed-size raw-storage free list for pooled version/view shells. The
/// publisher places PartitionVersion objects into recycled storage so
/// steady-state publication allocates nothing; the epoch reclaimer runs
/// the destructor and returns the storage here instead of freeing it.
/// Thread-safe (Acquire on the publisher thread, Return on whichever
/// thread drives reclamation).
class ShellPool {
 public:
  struct Stats {
    uint64_t created = 0;   // Acquire() misses (::operator new).
    uint64_t reused = 0;    // Acquire() hits.
    uint64_t recycled = 0;  // Returns.
    size_t pooled = 0;      // Currently idle.
  };

  ShellPool() = default;
  ~ShellPool();

  ShellPool(const ShellPool&) = delete;
  ShellPool& operator=(const ShellPool&) = delete;

  /// Storage of `size` bytes (the same size every call — one pool per
  /// shell type).
  void* Acquire(size_t size);

  /// Returns storage previously handed out by Acquire.
  void Return(void* storage);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<void*> free_;
  size_t size_ = 0;
  uint64_t created_ = 0;
  uint64_t reused_ = 0;
  uint64_t recycled_ = 0;
};

/// An immutable copy-on-write snapshot of one partition, taken at a
/// publication point (see versioned_table.h). Readers scan versions
/// instead of live Partition objects, so the ingest writer never has to
/// take a lock the read path contends on.
///
/// Storage: everything the version owns — row headers, cell payloads,
/// point index, synopsis words, carrier counts — is packed into one
/// publication-shared Arena, so a ForEachPartition scan walks sequential
/// memory instead of chasing per-version heap blocks:
///
///   PackedRow[row_count]   (id, cell range)     8+4+4 bytes each
///   Row::Cell[cell_total]  cell payloads, per-row slices sorted by attr
///   IndexSlot[pow2]        open-addressing point index, load <= 0.5
///   uint64_t[words]        synopsis bitset words
///   uint32_t[words*64]     dense per-attribute carrier counts
///
/// Cells hold Value variants; string payloads beyond the SSO buffer
/// remain heap-backed (the std::string inside the variant owns them), so
/// the destructor destroys the cell array before the arena is recycled.
///
/// Lifetime: versions are created by the publisher, shared by any number
/// of CatalogViews, retired to the EpochManager exactly once (when they
/// leave the newest view), and reclaimed when no pinned reader can reach
/// them. Each version holds one reference on its arena; the arena
/// recycles into the publisher's ArenaPool when its last version dies.
class PartitionVersion {
 public:
  /// One row header: entity id plus its slice of the packed cell array.
  struct PackedRow {
    EntityId id;
    uint32_t cell_begin;
    uint32_t cell_count;
  };

  /// Packs the partition's current state into `arena` and takes one
  /// arena reference. Must be called while the catalog is quiescent (the
  /// publisher's lock).
  ///
  /// A *cold* partition (rows evicted to a page chain) yields a cold
  /// version: the synopsis, carrier counts, and size totals are packed
  /// into the arena as usual — pruning and estimation stay I/O-free —
  /// but no rows, cells, or point index are materialized. The version
  /// instead shares ownership of the partition's ColdChain (keeping its
  /// pages alive for snapshot readers even across a later fault-in or
  /// re-spill) and remembers `tier` so scans can fetch the chain.
  PartitionVersion(const Partition& partition, Arena* arena,
                   const ColdTier* tier = nullptr);

  ~PartitionVersion();

  PartitionVersion(const PartitionVersion&) = delete;
  PartitionVersion& operator=(const PartitionVersion&) = delete;

  PartitionId id() const { return id_; }

  size_t entity_count() const { return row_count_; }
  uint64_t cell_count() const {
    // Cold versions pack no cells; the logical count lives in the chain.
    return cold_chain_ != nullptr ? cold_chain_->cells : cell_total_;
  }
  uint64_t byte_size() const { return byte_size_; }

  /// True when this version's rows live in a cold page chain. Cold
  /// versions answer entity_count/byte_size/synopsis/carrier queries from
  /// memory; packed_rows/cell_data/row/ForEachRow must not be called on
  /// them (scan through cold_tier()->ReadChain(*cold_chain(), ...)), and
  /// Find returns an invalid view (no point index — the table facade
  /// falls back to a chain scan).
  bool cold() const { return cold_chain_ != nullptr; }

  /// The shared page chain backing a cold version (nullptr when hot).
  const ColdChain* cold_chain() const { return cold_chain_.get(); }

  /// The tier to read the chain through (nullptr when hot).
  const ColdTier* cold_tier() const { return tier_; }

  /// Row headers in the segment's scan order at capture time.
  const PackedRow* packed_rows() const { return rows_; }

  /// The shared cell array; row i's cells are
  /// cell_data()[rows[i].cell_begin .. +rows[i].cell_count).
  const Row::Cell* cell_data() const { return cells_; }

  /// View of row `i` (i < entity_count()).
  RowView row(size_t i) const {
    const PackedRow& r = rows_[i];
    return RowView(r.id, cells_ + r.cell_begin, r.cell_count);
  }

  /// Invokes `fn(const RowView&)` over the rows in scan order.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (size_t i = 0; i < row_count_; ++i) fn(row(i));
  }

  /// The pruning synopsis (set of attributes instantiated by residents).
  SynopsisSpan attribute_synopsis() const {
    return SynopsisSpan{synopsis_words_, synopsis_word_count_,
                        synopsis_cardinality_};
  }

  /// Residents instantiating `attribute` (estimator input), mirroring
  /// Partition::AttributeCarrierCount.
  uint32_t AttributeCarrierCount(AttributeId attribute) const {
    return attribute < carrier_len_ ? carrier_counts_[attribute] : 0;
  }

  /// Point lookup; an invalid view when the entity is not resident.
  RowView Find(EntityId entity) const;

  /// Bytes this version consumed from its arena (diagnostics).
  size_t arena_bytes() const { return arena_bytes_; }

  /// The shell pool this version's storage returns to on reclamation;
  /// nullptr when the shell was plain-new'ed. Set by the publisher.
  ShellPool* shell_pool() const { return shell_pool_; }

 private:
  friend class VersionedTable;

  struct IndexSlot {
    EntityId entity;
    uint32_t row;  // kEmptySlot when free.
  };
  static constexpr uint32_t kEmptySlot = ~uint32_t{0};

  PartitionId id_;
  Arena* arena_;
  const PackedRow* rows_;
  Row::Cell* cells_;  // Mutable only for the destructor's destroy pass.
  const IndexSlot* index_;
  uint32_t index_mask_ = 0;  // Index capacity - 1 (capacity: power of 2).
  uint32_t row_count_ = 0;
  uint32_t cell_total_ = 0;
  const uint64_t* synopsis_words_;
  size_t synopsis_word_count_ = 0;
  size_t synopsis_cardinality_ = 0;
  const uint32_t* carrier_counts_;
  uint32_t carrier_len_ = 0;
  uint64_t byte_size_ = 0;
  size_t arena_bytes_ = 0;
  ShellPool* shell_pool_ = nullptr;
  std::shared_ptr<const ColdChain> cold_chain_;  // Null when hot.
  const ColdTier* tier_ = nullptr;
};

/// One immutable generation of the whole catalog: an ascending-id array
/// of partition versions plus the table totals. A reader that pins an
/// epoch and loads the current view gets a transactionally consistent
/// image — prune-then-scan never observes a half-applied split cascade,
/// because cascades publish a single view swap after the cascade settled.
///
/// Views share unchanged versions with their predecessor; only partitions
/// the mutation touched are re-copied (COW at partition granularity).
/// View objects themselves are pooled (see VersionedTable): reclamation
/// clears and recycles them, keeping the partitions_ capacity.
class CatalogView {
 public:
  CatalogView() = default;

  CatalogView(const CatalogView&) = delete;
  CatalogView& operator=(const CatalogView&) = delete;

  /// Monotonic publication counter (1 = the initial view).
  uint64_t generation() const { return generation_; }

  size_t partition_count() const { return partitions_.size(); }
  size_t entity_count() const { return entity_count_; }

  /// Versions in ascending partition-id order.
  const std::vector<const PartitionVersion*>& partitions() const {
    return partitions_;
  }

  /// Invokes `fn(const PartitionVersion&)` for every partition in id
  /// order — the same shape as PartitionCatalog::ForEachPartition, so the
  /// estimator templates over both.
  template <typename Fn>
  void ForEachPartition(Fn&& fn) const {
    for (const PartitionVersion* version : partitions_) fn(*version);
  }

  /// Point lookup across all partitions of this generation; an invalid
  /// view when the entity is absent.
  RowView Find(EntityId entity) const;

  /// Union of every partition's attribute synopsis: the attributes any
  /// resident of this generation instantiates. This is the per-node
  /// pruning digest the networked coordinator caches — a query whose
  /// synopsis misses the union cannot match anything this node hosts
  /// (Definition 1 lifted from partitions to whole nodes). When the
  /// publisher attached a synopsis tree, this is the tree root's union
  /// (already maintained — no per-partition OR pass).
  Synopsis UnionSynopsis() const;

  /// Immutable synopsis tree over this generation's attribute synopses
  /// (leaf key = partition id), frozen at publication. Invalid (valid()
  /// == false) when the table runs without use_synopsis_tree. Readers
  /// descend it lock-free to skip whole subtrees whose union cannot
  /// intersect a query.
  const SynopsisTreeSnapshot& tree() const { return tree_; }

  /// Total byte footprint of the generation's rows (sum of version
  /// byte_size()), shipped in node-stats frames.
  uint64_t byte_size() const;

 private:
  friend class VersionedTable;
  friend class ViewPool;

  std::vector<const PartitionVersion*> partitions_;
  uint64_t generation_ = 0;
  size_t entity_count_ = 0;
  SynopsisTreeSnapshot tree_;
  /// Recycle target on reclamation; nullptr when plain-new'ed. The
  /// pointer doubles as the free-list link owner — see
  /// VersionedTable::ReclaimView.
  class ViewPool* pool_ = nullptr;
};

/// Free list of recycled CatalogView objects (kept constructed so their
/// partitions_ capacity survives reuse). Thread-safety mirrors ShellPool.
class ViewPool {
 public:
  struct Stats {
    uint64_t created = 0;
    uint64_t reused = 0;
    uint64_t recycled = 0;
    size_t pooled = 0;
  };

  ViewPool() = default;
  ~ViewPool();

  ViewPool(const ViewPool&) = delete;
  ViewPool& operator=(const ViewPool&) = delete;

  /// An empty view whose pool_ points here.
  CatalogView* Acquire();

  /// Clears `view` (keeping capacity) and free-lists it.
  void Return(CatalogView* view);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<CatalogView*> free_;
  uint64_t created_ = 0;
  uint64_t reused_ = 0;
  uint64_t recycled_ = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_MVCC_PARTITION_VERSION_H_
