#ifndef CINDERELLA_MVCC_EPOCH_H_
#define CINDERELLA_MVCC_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cinderella {

/// Epoch-based memory reclamation for the MVCC read path.
///
/// Readers pin the current epoch in a per-reader slot before touching any
/// version-managed object and unpin when done; writers retire superseded
/// objects tagged with the epoch at retirement and advance the global
/// epoch after every publication. A retired object is freed only once
/// every pinned slot holds a strictly larger epoch, so a reader that
/// pinned before (or while) the object was current can never observe a
/// freed pointer.
///
/// Why the protocol is safe: a reader stores epoch `e` into its slot and
/// re-checks the global epoch until both agree, so by the time Pin()
/// returns, any writer that later retires an object reads a global epoch
/// >= e and tags the garbage accordingly; the reclaimer frees a retired
/// object only when `tag < min(pinned)`, which the reader's slot blocks.
///
/// Concurrency: Pin/Unpin are wait-free apart from slot acquisition (a
/// bounded CAS scan while fewer than kMaxReaders readers are active) and
/// never block on writers — this is what makes snapshot queries
/// non-blocking during ingest. Retire/Advance are writer-side and
/// serialize on an internal mutex; the intended use is one call per view
/// publication, under the publisher's own lock.
class EpochManager {
 public:
  /// Maximum simultaneously pinned readers; Pin() spins (yielding) when
  /// all slots are taken.
  static constexpr size_t kMaxReaders = 64;

  /// Slot value meaning "not pinned".
  static constexpr uint64_t kIdle = ~uint64_t{0};

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Pins the current epoch; returns the slot to pass to Unpin(). The
  /// caller may dereference version-managed pointers loaded *after* this
  /// call until the matching Unpin().
  size_t Pin();

  /// Releases the pin held in `slot`.
  void Unpin(size_t slot);

  /// Hands `object` to the manager for deferred deletion. Thread-safe;
  /// typically called by the publisher right after swapping it out of the
  /// live structure.
  template <typename T>
  void Retire(const T* object) {
    RetireObject(const_cast<T*>(object),
                 [](void* p) { delete static_cast<T*>(p); });
  }

  /// Type-erased Retire.
  void RetireObject(void* object, void (*deleter)(void*));

  /// Advances the global epoch and frees every retired object no pinned
  /// reader can still observe. Returns the number of objects freed.
  size_t Advance();

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  /// Retired-but-not-yet-freed objects (tests observe reclamation).
  size_t retired_count() const;

  /// Total objects freed so far.
  uint64_t reclaimed_count() const;

  /// Number of currently pinned slots (diagnostics).
  size_t pinned_count() const;

 private:
  struct Retired {
    uint64_t epoch;
    void* object;
    void (*deleter)(void*);
  };

  /// Smallest epoch pinned by any reader, or kIdle when none is pinned.
  uint64_t MinPinnedEpoch() const;

  // seq_cst throughout: the pin protocol needs the slot publication to be
  // ordered before the subsequent pointer load, and the writer's epoch
  // advance to be ordered before its slot scan. The cost is irrelevant
  // next to a query scan; the simplicity is not.
  std::array<std::atomic<uint64_t>, kMaxReaders> slots_;
  std::atomic<uint64_t> global_epoch_{1};

  mutable std::mutex retired_mu_;
  std::vector<Retired> retired_;
  uint64_t reclaimed_ = 0;
};

/// RAII pin: holds an EpochManager slot for its lifetime.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager)
      : manager_(manager), slot_(manager->Pin()) {}

  EpochGuard(EpochGuard&& other) noexcept
      : manager_(other.manager_), slot_(other.slot_) {
    other.manager_ = nullptr;
  }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
  EpochGuard& operator=(EpochGuard&&) = delete;

  ~EpochGuard() {
    if (manager_ != nullptr) manager_->Unpin(slot_);
  }

 private:
  EpochManager* manager_;
  size_t slot_;
};

}  // namespace cinderella

#endif  // CINDERELLA_MVCC_EPOCH_H_
