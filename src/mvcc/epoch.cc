#include "mvcc/epoch.h"

#include <algorithm>
#include <thread>

namespace cinderella {

EpochManager::EpochManager() {
  for (auto& slot : slots_) slot.store(kIdle, std::memory_order_relaxed);
}

EpochManager::~EpochManager() {
  // Whatever is still retired can no longer be reached (the owner retired
  // it); free it unconditionally.
  std::lock_guard<std::mutex> lock(retired_mu_);
  for (const Retired& r : retired_) r.deleter(r.object);
  retired_.clear();
}

size_t EpochManager::Pin() {
  for (;;) {
    for (size_t i = 0; i < kMaxReaders; ++i) {
      uint64_t expected = kIdle;
      uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
      if (!slots_[i].compare_exchange_strong(expected, epoch,
                                             std::memory_order_seq_cst)) {
        continue;  // Slot taken; try the next one.
      }
      // Re-check until the published slot matches the global epoch: once
      // they agree, any retirement the writer performs afterwards is
      // tagged >= epoch and our slot blocks its reclamation.
      for (;;) {
        const uint64_t global = global_epoch_.load(std::memory_order_seq_cst);
        if (global == epoch) return i;
        epoch = global;
        slots_[i].store(epoch, std::memory_order_seq_cst);
      }
    }
    // More than kMaxReaders concurrent pins: wait for a slot.
    std::this_thread::yield();
  }
}

void EpochManager::Unpin(size_t slot) {
  slots_[slot].store(kIdle, std::memory_order_seq_cst);
}

void EpochManager::RetireObject(void* object, void (*deleter)(void*)) {
  const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(retired_mu_);
  retired_.push_back(Retired{epoch, object, deleter});
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min_epoch = kIdle;
  for (const auto& slot : slots_) {
    min_epoch = std::min(min_epoch, slot.load(std::memory_order_seq_cst));
  }
  return min_epoch;
}

size_t EpochManager::Advance() {
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t min_pinned = MinPinnedEpoch();

  std::lock_guard<std::mutex> lock(retired_mu_);
  size_t freed = 0;
  size_t kept = 0;
  for (size_t i = 0; i < retired_.size(); ++i) {
    // kIdle (no pinned reader) frees everything retired so far.
    if (retired_[i].epoch < min_pinned) {
      retired_[i].deleter(retired_[i].object);
      ++freed;
    } else {
      retired_[kept++] = retired_[i];
    }
  }
  retired_.resize(kept);
  reclaimed_ += freed;
  return freed;
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  return retired_.size();
}

uint64_t EpochManager::reclaimed_count() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  return reclaimed_;
}

size_t EpochManager::pinned_count() const {
  size_t pinned = 0;
  for (const auto& slot : slots_) {
    if (slot.load(std::memory_order_seq_cst) != kIdle) ++pinned;
  }
  return pinned;
}

}  // namespace cinderella
