#ifndef CINDERELLA_MVCC_VERSIONED_TABLE_H_
#define CINDERELLA_MVCC_VERSIONED_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "core/cinderella.h"
#include "ingest/batch_inserter.h"
#include "mvcc/epoch.h"
#include "mvcc/partition_version.h"
#include "storage/row.h"

namespace cinderella {

/// The epoch-based MVCC read engine: a facade over a Cinderella
/// partitioner that supersedes ConcurrentTable for the read path.
///
/// ConcurrentTable serializes every reader against the ingest writer on
/// one shared_mutex; during batched ingest (whose rating scans and split
/// cascades run under the exclusive lock) selective queries starve
/// exactly when the partitioning is adapting. VersionedTable removes the
/// reader lock entirely:
///
///  - Writers (Insert/Update/Delete/DeleteBatch/InsertBatch) mutate the
///    live catalog as before, serialized on an internal writer mutex, and
///    then *publish*: every partition the mutation touched is re-copied
///    into an immutable PartitionVersion, spliced copy-on-write into a
///    fresh CatalogView, and the view pointer is swapped atomically.
///    InsertBatch publishes once per committed ingest window (the
///    BatchInserter's commit hook), so a long batch becomes a sequence of
///    consistent snapshots rather than one opaque lock hold.
///  - Readers pin an epoch, load the current view, and scan immutable
///    data — no lock, no waiting, and a prune-then-scan that always sees
///    one consistent generation even mid-split-cascade.
///  - Superseded versions and views are retired to the EpochManager and
///    reclaimed once no pinned reader can reach them.
///
/// Storage: each publication packs its fresh versions into one Arena
/// from an internal ArenaPool, and version/view shells come from free
/// lists — reclamation recycles all three instead of freeing, so steady-
/// state publication performs zero allocator calls (see common/arena.h
/// and DESIGN.md §10). The published view is also guaranteed free of
/// empty partitions: a partition drained by a DeleteBatch (or left empty
/// by a failed cascade) is dropped from the next view even if the live
/// catalog briefly keeps it, so estimator totals stay consistent.
///
/// Contract: all mutations must go through this facade (or be followed by
/// RefreshView()); mutating the underlying Cinderella directly leaves the
/// published view stale. Reads are safe from any number of threads;
/// writes from multiple threads serialize internally. The placements the
/// facade produces are bit-identical to bare serial inserts — it changes
/// when readers see state, never what the state is.
class VersionedTable {
 public:
  struct Options {
    /// Attach (and own) a BatchInserter so InsertBatch runs the batched
    /// ingest pipeline with per-window publication. When false,
    /// InsertBatch falls back to the validated serial loop and publishes
    /// once per batch.
    bool batched_ingest = true;
    BatchInserterOptions ingest;
  };

  /// Owning constructor: takes the partitioner, registers the publication
  /// hooks, publishes the initial view. The single-argument overload uses
  /// default Options (GCC rejects `Options options = {}` as a default
  /// argument when the nested struct carries member initializers).
  explicit VersionedTable(std::unique_ptr<Cinderella> table);
  VersionedTable(std::unique_ptr<Cinderella> table, Options options);

  /// Borrowing constructor for tables whose partitioner is owned
  /// elsewhere (e.g. inside a UniversalTable): `table` and `engine` (may
  /// be nullptr) must outlive this facade. When `engine` is non-null its
  /// window commits publish a view each (the CLI's load-while-querying
  /// path).
  VersionedTable(Cinderella* table, BatchInserter* engine);

  /// Unhooks, retires the final view, and frees everything. All readers
  /// must have released their snapshots; outstanding pins fail a CHECK
  /// rather than silently leaking.
  ~VersionedTable();

  VersionedTable(const VersionedTable&) = delete;
  VersionedTable& operator=(const VersionedTable&) = delete;

  // -- Read path (lock-free) ------------------------------------------------

  /// A pinned, immutable image of the table. Holding it keeps every
  /// version it references alive; release promptly — long-lived pins
  /// delay reclamation of everything retired since.
  class Snapshot {
   public:
    Snapshot(Snapshot&& other) noexcept
        : epochs_(other.epochs_), slot_(other.slot_), view_(other.view_) {
      other.epochs_ = nullptr;
    }

    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    Snapshot& operator=(Snapshot&&) = delete;

    ~Snapshot() {
      if (epochs_ != nullptr) epochs_->Unpin(slot_);
    }

    const CatalogView& view() const { return *view_; }
    const CatalogView* operator->() const { return view_; }

   private:
    friend class VersionedTable;
    Snapshot(EpochManager* epochs, size_t slot, const CatalogView* view)
        : epochs_(epochs), slot_(slot), view_(view) {}

    EpochManager* epochs_;
    size_t slot_;
    const CatalogView* view_;
  };

  /// Pins the current generation. Never blocks on writers.
  Snapshot snapshot() const;

  /// Owned copy of the entity's row from the current generation.
  StatusOr<Row> Get(EntityId entity) const;

  size_t entity_count() const;
  size_t partition_count() const;

  /// Generation of the currently published view (tests and benches watch
  /// this advance per window during InsertBatch).
  uint64_t published_generation() const;

  // -- Write path (internally serialized) -----------------------------------

  Status Insert(Row row);
  Status Update(Row row);
  Status Delete(EntityId entity);

  /// Batched delete with InsertBatch-mirroring semantics: validated
  /// before any mutation (unknown or duplicated ids fail with NotFound
  /// and leave the table unchanged), then applied in order. Publishes one
  /// view; dropped empty partitions retire their versions through the
  /// epoch machinery.
  Status DeleteBatch(const std::vector<EntityId>& entities);

  /// Routes through the attached ingest engine (placements identical to
  /// serial), publishing a view per committed window.
  Status InsertBatch(std::vector<Row> rows);

  /// Batched update through the mutation pipeline, publishing a view per
  /// committed window; placements identical to serial Update calls.
  Status UpdateBatch(std::vector<Row> rows);

  /// Mixed, ordered mutation batch (validate-first) through the pipeline,
  /// publishing a view per committed window. *applied (when non-null)
  /// receives the committed op prefix.
  Status ApplyMutations(std::vector<Mutation> ops, size_t* applied = nullptr);

  /// Full reorganization pass (Cinderella::Reorganize). With an engine
  /// attached, the batched pass publishes a view per reinsertion window
  /// (readers watch the catalog rebuild incrementally, including the
  /// drained-empty state); a final full rebuild reconciles either way.
  Status Reorganize();

  /// Outcome of a RepartitionEntities call.
  struct RepartitionResult {
    size_t requested = 0;  // Ids in the plan (after deduplication).
    size_t moved = 0;      // Rows drained and reinserted.
    size_t missing = 0;    // Ids no longer live (stale plan; skipped).
  };

  /// Targeted reorganization — the background tuner's apply path. Drains
  /// the given entities and reinserts them as one ordered delete+insert
  /// batch through ApplyMutations, i.e. through the same
  /// Partitioner::ValidateMutations-checked, windowed pipeline as every
  /// other write, with a view published per committed window. Reinsertion
  /// re-rates each row against the *current* catalog (most-descriptive
  /// rows first, mirroring Reorganize's drain order), which is what
  /// repairs arrival-order damage in hot mixed partitions and coalesces
  /// cold remnants.
  ///
  /// Plans are made on pinned snapshots, so ids may have been deleted by
  /// the time the plan applies: those are skipped (counted in
  /// result->missing), never failed — a stale plan degrades to a smaller
  /// move. The whole drain set is captured under the writer lock before
  /// any mutation, so a concurrent writer can never race a row into or
  /// out of the batch (no lost updates, no duplicated rows).
  Status RepartitionEntities(const std::vector<EntityId>& entities,
                             RepartitionResult* result = nullptr);

  /// Re-publishes a full view from the live catalog. Call after mutating
  /// the underlying partitioner outside the facade.
  void RefreshView();

  /// Spills the given partitions to the partitioner's cold tier and
  /// publishes the residency change as one view (the tuner's evict-idle
  /// apply path). Already-cold, since-dropped, and empty partitions are
  /// skipped; *spilled (when non-null) receives the number evicted.
  /// FailedPrecondition when no cold tier is attached.
  Status SpillPartitions(const std::vector<PartitionId>& ids,
                         size_t* spilled = nullptr);

  // -- Introspection --------------------------------------------------------

  Cinderella& partitioner() { return *cinderella_; }
  const Cinderella& partitioner() const { return *cinderella_; }
  EpochManager& epochs() { return epochs_; }

  /// Snapshot memory footprint: what the current generation holds, what
  /// the pools retain, and what reclamation still owes. Safe to call
  /// concurrently with readers and writers.
  struct MemoryStats {
    uint64_t generation = 0;
    size_t live_versions = 0;    // Versions in the current view.
    size_t view_bytes = 0;       // Arena bytes those versions consume.
    size_t hot_versions = 0;     // Versions with arena-packed rows.
    size_t cold_versions = 0;    // Versions backed by cold page chains.
    uint64_t cold_bytes = 0;     // Logical row bytes resident in chains.
    uint64_t cold_pages = 0;     // Pages those chains occupy.
    size_t retired_objects = 0;  // Awaiting epoch reclamation.
    uint64_t reclaimed_objects = 0;
    ArenaPool::Stats arenas;
    ShellPool::Stats version_shells;
    ViewPool::Stats views;
    /// Publisher-side synopsis tree (the one frozen into each view);
    /// counters are cumulative since construction.
    struct TreeStats {
      bool enabled = false;
      size_t depth = 0;
      size_t fanout = 0;
      size_t internal_nodes = 0;
      uint64_t live_leaves = 0;
      uint64_t upserts = 0;
      uint64_t removes = 0;
      uint64_t fast_merges = 0;
      uint64_t node_reors = 0;
      uint64_t nodes_copied = 0;
      uint64_t collapses = 0;
    };
    TreeStats tree;
  };
  MemoryStats memory_stats() const;

 private:
  void Hook();

  /// Runs `op` under the writer lock and publishes the captured delta.
  Status Apply(const std::function<Status()>& op);

  /// Publishes pending_ as a COW delta against the current view. Requires
  /// publish_mu_; the catalog must be quiescent (writer lock or the
  /// engine's commit lock). `delta_hint` pre-sizes the publication
  /// scratch (the ingest commit hook passes its window's dirty-partition
  /// count).
  void PublishLocked(size_t delta_hint = 0);

  /// Replaces the view with a full copy of the live catalog (initial
  /// publication and RefreshView).
  void RebuildViewLocked();

  /// Swaps `view` in, retires the previous view and `superseded`, and
  /// runs a reclamation pass.
  void InstallLocked(CatalogView* view,
                     const std::vector<const PartitionVersion*>& superseded);

  /// Builds one version in pooled shell storage from the publication
  /// arena. `partition` must be non-empty.
  const PartitionVersion* MakeVersionLocked(const Partition& partition,
                                            Arena* arena);

  /// Epoch deleters: run the destructor, then recycle the shell into its
  /// pool (plain delete when unpooled).
  static void ReclaimVersion(void* object);
  static void ReclaimView(void* object);

  // Destruction order matters twice over: owned_engine_ detaches from the
  // partitioner in its destructor, so it must die before owned_; and the
  // pools must outlive epochs_ (whose reclamation recycles into them), so
  // they are declared before it.
  std::unique_ptr<Cinderella> owned_;
  std::unique_ptr<BatchInserter> owned_engine_;
  Cinderella* cinderella_;
  BatchInserter* engine_ = nullptr;

  ArenaPool arena_pool_;
  ShellPool version_pool_;
  ViewPool view_pool_;

  mutable EpochManager epochs_;
  /// Serializes facade write operations. Lock order: write_mu_ before the
  /// engine's commit lock before publish_mu_.
  std::mutex write_mu_;
  /// Serializes view publication (facade writes and the engine's window
  /// commit hook reach PublishLocked under different outer locks).
  /// Mutable so memory_stats() can read the publisher tree.
  mutable std::mutex publish_mu_;
  /// Mutation delta since the last publication; registered as the
  /// partitioner's version capture, drained by PublishLocked.
  CatalogMutations pending_;
  std::atomic<const CatalogView*> current_{nullptr};
  uint64_t view_generation_ = 0;  // Guarded by publish_mu_.
  /// Read-side synopsis tree over attribute synopses (leaf key =
  /// partition id), maintained incrementally per publication and frozen
  /// into every view via Share() — snapshot readers descend it lock-free
  /// to prune scans. Null when the partitioner runs without
  /// use_synopsis_tree. Guarded by publish_mu_.
  std::unique_ptr<SynopsisTree> query_tree_;

  // Publication scratch, guarded by publish_mu_. Reused so steady-state
  // publication allocates nothing: the delta ping-pongs its vector
  // capacity with pending_, and the set/map keep their buckets across
  // clear().
  CatalogMutations delta_scratch_;
  std::unordered_set<PartitionId> dropped_scratch_;
  std::unordered_map<PartitionId, const PartitionVersion*> fresh_scratch_;
  std::vector<const PartitionVersion*> superseded_scratch_;
  std::vector<const PartitionVersion*> created_scratch_;
};

}  // namespace cinderella

#endif  // CINDERELLA_MVCC_VERSIONED_TABLE_H_
