#include "baseline/single_partitioner.h"

namespace cinderella {

Partition& SinglePartitioner::ChoosePartition(const Row& row) {
  (void)row;
  Partition* first = nullptr;
  catalog().ForEachPartition([&](Partition& p) {
    if (first == nullptr) first = &p;
  });
  if (first != nullptr) return *first;
  return catalog().CreatePartition();
}

}  // namespace cinderella
