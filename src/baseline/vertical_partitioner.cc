#include "baseline/vertical_partitioner.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"

namespace cinderella {

VerticalPartitioner::VerticalPartitioner(const VerticalConfig& config)
    : config_(config) {
  CINDERELLA_CHECK(config.k >= 1);
}

Status VerticalPartitioner::Build(const std::vector<Row>& rows,
                                  size_t num_attributes) {
  if (built_) {
    return Status::FailedPrecondition("Build() may only be called once");
  }
  built_ = true;
  num_attributes_ = num_attributes;
  carrier_count_.assign(num_attributes, 0);

  // Carrier sets and pairwise co-occurrence counts.
  std::vector<std::vector<uint64_t>> both(
      num_attributes, std::vector<uint64_t>(num_attributes, 0));
  for (const Row& row : rows) {
    const auto& cells = row.cells();
    for (size_t i = 0; i < cells.size(); ++i) {
      const AttributeId a = cells[i].attribute;
      if (a >= num_attributes) continue;
      ++carrier_count_[a];
      for (size_t j = i + 1; j < cells.size(); ++j) {
        const AttributeId b = cells[j].attribute;
        if (b >= num_attributes) continue;
        ++both[a][b];
        ++both[b][a];
      }
    }
  }

  // Jaccard adjacency matrix over carrier sets:
  //   J(a,b) = |carriers(a) ∩ carriers(b)| / |carriers(a) ∪ carriers(b)|.
  jaccard_.assign(num_attributes, std::vector<double>(num_attributes, 0.0));
  for (size_t a = 0; a < num_attributes; ++a) {
    jaccard_[a][a] = 1.0;
    for (size_t b = a + 1; b < num_attributes; ++b) {
      const uint64_t intersection = both[a][b];
      const uint64_t union_count =
          carrier_count_[a] + carrier_count_[b] - intersection;
      const double j =
          union_count > 0
              ? static_cast<double>(intersection) /
                    static_cast<double>(union_count)
              : 0.0;
      jaccard_[a][b] = j;
      jaccard_[b][a] = j;
    }
  }

  // Agglomerative clustering with average linkage down to k clusters.
  std::vector<std::vector<AttributeId>> clusters;
  for (size_t a = 0; a < num_attributes; ++a) {
    clusters.push_back({static_cast<AttributeId>(a)});
  }
  auto average_linkage = [&](const std::vector<AttributeId>& x,
                             const std::vector<AttributeId>& y) {
    double total = 0.0;
    for (AttributeId a : x) {
      for (AttributeId b : y) total += jaccard_[a][b];
    }
    return total / (static_cast<double>(x.size()) *
                    static_cast<double>(y.size()));
  };
  while (clusters.size() > config_.k) {
    size_t best_i = 0;
    size_t best_j = 1;
    double best = -1.0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        const double link = average_linkage(clusters[i], clusters[j]);
        if (link > best) {
          best = link;
          best_i = i;
          best_j = j;
        }
      }
    }
    clusters[best_i].insert(clusters[best_i].end(),
                            clusters[best_j].begin(),
                            clusters[best_j].end());
    clusters.erase(clusters.begin() + static_cast<ptrdiff_t>(best_j));
  }

  groups_ = std::move(clusters);
  for (auto& group : groups_) std::sort(group.begin(), group.end());
  group_of_.assign(num_attributes, 0);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (AttributeId a : groups_[g]) group_of_[a] = g;
  }
  return Status::OK();
}

std::optional<size_t> VerticalPartitioner::GroupOf(
    AttributeId attribute) const {
  if (!built_ || attribute >= num_attributes_) return std::nullopt;
  return group_of_[attribute];
}

VerticalPartitioner::QueryCost VerticalPartitioner::CostOf(
    const Synopsis& query) const {
  QueryCost cost;
  std::vector<uint8_t> touched(groups_.size(), 0);
  for (AttributeId attribute : query.ToIds()) {
    const auto group = GroupOf(attribute);
    if (group.has_value()) touched[*group] = 1;
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!touched[g]) continue;
    ++cost.groups_read;
    for (AttributeId a : groups_[g]) cost.cells_read += carrier_count_[a];
  }
  if (cost.groups_read > 1) cost.joins_needed = cost.groups_read - 1;
  return cost;
}

double VerticalPartitioner::CoOccurrence(AttributeId a, AttributeId b) const {
  CINDERELLA_CHECK(built_ && a < num_attributes_ && b < num_attributes_);
  return jaccard_[a][b];
}

}  // namespace cinderella
