#include "baseline/range_partitioner.h"

#include "common/logging.h"

namespace cinderella {

RangePartitioner::RangePartitioner(uint64_t max_entities)
    : max_entities_(max_entities) {
  CINDERELLA_CHECK(max_entities >= 1);
}

std::string RangePartitioner::name() const {
  return "range(B=" + std::to_string(max_entities_) + ")";
}

Partition& RangePartitioner::ChoosePartition(const Row& row) {
  (void)row;
  if (current_plus_one_ != 0) {
    Partition* current = catalog().GetPartition(current_plus_one_ - 1);
    if (current != nullptr && current->entity_count() < max_entities_) {
      return *current;
    }
  }
  Partition& fresh = catalog().CreatePartition();
  current_plus_one_ = fresh.id() + 1;
  return fresh;
}

}  // namespace cinderella
