#include "baseline/hash_partitioner.h"

#include "common/logging.h"

namespace cinderella {
namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

HashPartitioner::HashPartitioner(size_t num_buckets)
    : num_buckets_(num_buckets), bucket_partitions_(num_buckets, 0) {
  CINDERELLA_CHECK(num_buckets >= 1);
}

std::string HashPartitioner::name() const {
  return "hash(" + std::to_string(num_buckets_) + ")";
}

Partition& HashPartitioner::ChoosePartition(const Row& row) {
  const size_t bucket = static_cast<size_t>(Mix(row.id()) % num_buckets_);
  const PartitionId stored = bucket_partitions_[bucket];
  if (stored != 0) {
    Partition* partition = catalog().GetPartition(stored - 1);
    if (partition != nullptr) return *partition;  // Not dropped meanwhile.
  }
  Partition& fresh = catalog().CreatePartition();
  bucket_partitions_[bucket] = fresh.id() + 1;
  return fresh;
}

}  // namespace cinderella
