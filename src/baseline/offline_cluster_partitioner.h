#ifndef CINDERELLA_BASELINE_OFFLINE_CLUSTER_PARTITIONER_H_
#define CINDERELLA_BASELINE_OFFLINE_CLUSTER_PARTITIONER_H_

#include <string>
#include <vector>

#include "baseline/fixed_assignment_partitioner.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Parameters of the offline clustering comparator.
struct OfflineClusterConfig {
  /// Minimum Jaccard similarity between an entity and a cluster leader to
  /// join the cluster during leader discovery.
  double jaccard_threshold = 0.4;
  /// Capacity of the physical partitions each cluster is chunked into,
  /// comparable to Cinderella's B.
  uint64_t max_entities_per_partition = 5000;

  Status Validate() const;
};

/// Offline schema-clustering comparator, in the spirit of the "hidden
/// schema" related work the paper cites ([18], Chu et al.): attribute-set
/// similarity is measured with the Jaccard coefficient and entities are
/// clustered with full knowledge of the data set, then packed into
/// capacity-bounded partitions.
///
/// Two passes: (1) leader discovery over all entity synopses (an entity
/// whose best-leader Jaccard falls below the threshold opens a new
/// leader); (2) every entity is assigned to its globally best leader.
/// Unlike Cinderella this is not online: Build() must see the whole data
/// set, and later modifications do not reorganize the partitioning — which
/// is exactly the trade-off the paper argues against for evolving data.
class OfflineClusterPartitioner : public FixedAssignmentPartitioner {
 public:
  explicit OfflineClusterPartitioner(OfflineClusterConfig config);

  /// Clusters and loads `rows`. Must be called once, before any online
  /// operation; fails on a second call.
  Status Build(std::vector<Row> rows);

  std::string name() const override;

  size_t cluster_count() const { return leaders_.size(); }

 protected:
  /// Online path (post-Build inserts): assigns to the best leader's open
  /// chunk, creating a new leader when the threshold is missed.
  Partition& ChoosePartition(const Row& row) override;

 private:
  /// Index of the best leader for `synopsis` and its Jaccard score.
  std::pair<size_t, double> BestLeader(const Synopsis& synopsis) const;

  /// Returns the open (non-full) chunk partition of cluster `cluster`,
  /// creating one if necessary.
  Partition& OpenChunk(size_t cluster);

  OfflineClusterConfig config_;
  bool built_ = false;
  std::vector<Synopsis> leaders_;
  // cluster -> open chunk partition id (+1; 0 = none).
  std::vector<PartitionId> open_chunks_;
};

/// Jaccard coefficient |a∧b| / |a∨b|; 1.0 when both sets are empty.
double JaccardSimilarity(const Synopsis& a, const Synopsis& b);

}  // namespace cinderella

#endif  // CINDERELLA_BASELINE_OFFLINE_CLUSTER_PARTITIONER_H_
