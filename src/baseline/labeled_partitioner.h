#ifndef CINDERELLA_BASELINE_LABELED_PARTITIONER_H_
#define CINDERELLA_BASELINE_LABELED_PARTITIONER_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "baseline/fixed_assignment_partitioner.h"

namespace cinderella {

/// Partitions by a caller-provided labeling function (e.g. "the TPC-H
/// table an entity belongs to"). Used to materialize the ground-truth
/// schema partitioning for the Table I "Standard TPC-H" scenario and as a
/// quality oracle in tests.
class LabeledPartitioner : public FixedAssignmentPartitioner {
 public:
  using LabelFn = std::function<size_t(const Row&)>;

  /// `label_of` maps a row to its group; one partition per group.
  explicit LabeledPartitioner(LabelFn label_of, std::string display_name);

  std::string name() const override { return display_name_; }

 protected:
  Partition& ChoosePartition(const Row& row) override;

 private:
  LabelFn label_of_;
  std::string display_name_;
  std::unordered_map<size_t, PartitionId> label_partitions_;
};

}  // namespace cinderella

#endif  // CINDERELLA_BASELINE_LABELED_PARTITIONER_H_
