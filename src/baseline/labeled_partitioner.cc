#include "baseline/labeled_partitioner.h"

#include <utility>

namespace cinderella {

LabeledPartitioner::LabeledPartitioner(LabelFn label_of,
                                       std::string display_name)
    : label_of_(std::move(label_of)),
      display_name_(std::move(display_name)) {}

Partition& LabeledPartitioner::ChoosePartition(const Row& row) {
  const size_t label = label_of_(row);
  auto it = label_partitions_.find(label);
  if (it != label_partitions_.end()) {
    Partition* partition = catalog().GetPartition(it->second);
    if (partition != nullptr) return *partition;
  }
  Partition& fresh = catalog().CreatePartition();
  label_partitions_[label] = fresh.id();
  return fresh;
}

}  // namespace cinderella
