#include "baseline/fixed_assignment_partitioner.h"

#include "common/logging.h"

namespace cinderella {

Status FixedAssignmentPartitioner::Insert(Row row) {
  if (catalog_.FindEntity(row.id()).has_value()) {
    return Status::AlreadyExists("entity " + std::to_string(row.id()) +
                                 " already in table");
  }
  Partition& partition = ChoosePartition(row);
  const EntityId entity = row.id();
  const Synopsis synopsis = row.AttributeSynopsis();
  CINDERELLA_RETURN_IF_ERROR(partition.AddRow(std::move(row), synopsis));
  catalog_.BindEntity(entity, partition.id());
  return Status::OK();
}

Status FixedAssignmentPartitioner::Delete(EntityId entity) {
  const auto home = catalog_.FindEntity(entity);
  if (!home.has_value()) {
    return Status::NotFound("entity " + std::to_string(entity) +
                            " not in table");
  }
  Partition* partition = catalog_.GetPartition(*home);
  CINDERELLA_CHECK(partition != nullptr);
  const Row* row = partition->segment().Find(entity);
  CINDERELLA_CHECK(row != nullptr);
  const Synopsis synopsis = row->AttributeSynopsis();
  CINDERELLA_RETURN_IF_ERROR(
      partition->RemoveRow(entity, synopsis).status());
  catalog_.UnbindEntity(entity);
  if (partition->entity_count() == 0) {
    CINDERELLA_RETURN_IF_ERROR(catalog_.DropPartition(partition->id()));
  }
  return Status::OK();
}

Status FixedAssignmentPartitioner::Update(Row row) {
  const auto home = catalog_.FindEntity(row.id());
  if (!home.has_value()) {
    return Status::NotFound("entity " + std::to_string(row.id()) +
                            " not in table");
  }
  Partition* partition = catalog_.GetPartition(*home);
  CINDERELLA_CHECK(partition != nullptr);
  const Row* old_row = partition->segment().Find(row.id());
  CINDERELLA_CHECK(old_row != nullptr);
  const Synopsis old_synopsis = old_row->AttributeSynopsis();
  const Synopsis new_synopsis = row.AttributeSynopsis();
  return partition->ReplaceRow(std::move(row), old_synopsis, new_synopsis);
}

}  // namespace cinderella
