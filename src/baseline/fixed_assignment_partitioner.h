#ifndef CINDERELLA_BASELINE_FIXED_ASSIGNMENT_PARTITIONER_H_
#define CINDERELLA_BASELINE_FIXED_ASSIGNMENT_PARTITIONER_H_

#include <string>

#include "core/partitioner.h"

namespace cinderella {

/// Base for non-adaptive baseline partitioners whose placement decision is
/// a pure function of the row (hash, arrival order, user-provided label).
///
/// Inserts call ChoosePartition(); deletes remove the row and drop emptied
/// partitions; updates replace the row in place — a fixed scheme has no
/// schema-aware reason to move entities, which is exactly the contrast to
/// Cinderella the benches measure.
class FixedAssignmentPartitioner : public Partitioner {
 public:
  Status Insert(Row row) final;
  Status Delete(EntityId entity) final;
  Status Update(Row row) final;

  PartitionCatalog& catalog() final { return catalog_; }
  const PartitionCatalog& catalog() const final { return catalog_; }

 protected:
  FixedAssignmentPartitioner() = default;

  /// Returns the partition that must host `row`, creating it if needed.
  virtual Partition& ChoosePartition(const Row& row) = 0;

 private:
  PartitionCatalog catalog_;
};

}  // namespace cinderella

#endif  // CINDERELLA_BASELINE_FIXED_ASSIGNMENT_PARTITIONER_H_
