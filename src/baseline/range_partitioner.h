#ifndef CINDERELLA_BASELINE_RANGE_PARTITIONER_H_
#define CINDERELLA_BASELINE_RANGE_PARTITIONER_H_

#include <string>

#include "baseline/fixed_assignment_partitioner.h"

namespace cinderella {

/// Arrival-order range partitioning: entities fill the current partition
/// up to a capacity of `max_entities`, then a new partition opens — the
/// behaviour of classic range partitioning on a monotonically growing key.
/// Schema-oblivious like HashPartitioner, but with Cinderella-compatible
/// partition sizes, isolating the value of schema-aware placement.
class RangePartitioner : public FixedAssignmentPartitioner {
 public:
  explicit RangePartitioner(uint64_t max_entities);

  std::string name() const override;

 protected:
  Partition& ChoosePartition(const Row& row) override;

 private:
  uint64_t max_entities_;
  PartitionId current_plus_one_ = 0;  // 0 = none open yet.
};

}  // namespace cinderella

#endif  // CINDERELLA_BASELINE_RANGE_PARTITIONER_H_
