#include "baseline/offline_cluster_partitioner.h"

#include <cstdio>
#include <utility>

#include "common/logging.h"

namespace cinderella {

double JaccardSimilarity(const Synopsis& a, const Synopsis& b) {
  const size_t union_count = a.UnionCount(b);
  if (union_count == 0) return 1.0;
  return static_cast<double>(a.IntersectCount(b)) /
         static_cast<double>(union_count);
}

Status OfflineClusterConfig::Validate() const {
  if (jaccard_threshold < 0.0 || jaccard_threshold > 1.0) {
    return Status::InvalidArgument("jaccard_threshold must be in [0, 1]");
  }
  if (max_entities_per_partition == 0) {
    return Status::InvalidArgument(
        "max_entities_per_partition must be positive");
  }
  return Status::OK();
}

OfflineClusterPartitioner::OfflineClusterPartitioner(
    OfflineClusterConfig config)
    : config_(config) {
  CINDERELLA_CHECK(config.Validate().ok());
}

std::string OfflineClusterPartitioner::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "offline-jaccard(t=%.2f,B=%llu)",
                config_.jaccard_threshold,
                static_cast<unsigned long long>(
                    config_.max_entities_per_partition));
  return buf;
}

std::pair<size_t, double> OfflineClusterPartitioner::BestLeader(
    const Synopsis& synopsis) const {
  size_t best = 0;
  double best_score = -1.0;
  for (size_t i = 0; i < leaders_.size(); ++i) {
    const double score = JaccardSimilarity(synopsis, leaders_[i]);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return {best, best_score};
}

Status OfflineClusterPartitioner::Build(std::vector<Row> rows) {
  if (built_) {
    return Status::FailedPrecondition("Build() may only be called once");
  }
  built_ = true;

  // Pass 1: leader discovery over all synopses.
  std::vector<Synopsis> synopses;
  synopses.reserve(rows.size());
  for (const Row& row : rows) synopses.push_back(row.AttributeSynopsis());
  for (const Synopsis& synopsis : synopses) {
    if (leaders_.empty()) {
      leaders_.push_back(synopsis);
      continue;
    }
    const auto [leader, score] = BestLeader(synopsis);
    (void)leader;
    if (score < config_.jaccard_threshold) leaders_.push_back(synopsis);
  }
  open_chunks_.assign(leaders_.size(), 0);

  // Pass 2: globally best assignment, chunked by capacity; routed through
  // Insert() so the catalog and bindings stay consistent.
  for (Row& row : rows) {
    CINDERELLA_RETURN_IF_ERROR(Insert(std::move(row)));
  }
  return Status::OK();
}

Partition& OfflineClusterPartitioner::OpenChunk(size_t cluster) {
  const PartitionId stored = open_chunks_[cluster];
  if (stored != 0) {
    Partition* partition = catalog().GetPartition(stored - 1);
    if (partition != nullptr &&
        partition->entity_count() < config_.max_entities_per_partition) {
      return *partition;
    }
  }
  Partition& fresh = catalog().CreatePartition();
  open_chunks_[cluster] = fresh.id() + 1;
  return fresh;
}

Partition& OfflineClusterPartitioner::ChoosePartition(const Row& row) {
  const Synopsis synopsis = row.AttributeSynopsis();
  if (leaders_.empty()) {
    leaders_.push_back(synopsis);
    open_chunks_.push_back(0);
    return OpenChunk(0);
  }
  const auto [leader, score] = BestLeader(synopsis);
  if (score < config_.jaccard_threshold) {
    leaders_.push_back(synopsis);
    open_chunks_.push_back(0);
    return OpenChunk(leaders_.size() - 1);
  }
  return OpenChunk(leader);
}

}  // namespace cinderella
