#ifndef CINDERELLA_BASELINE_SINGLE_PARTITIONER_H_
#define CINDERELLA_BASELINE_SINGLE_PARTITIONER_H_

#include <string>

#include "baseline/fixed_assignment_partitioner.h"

namespace cinderella {

/// The unpartitioned universal table: every entity lives in one partition.
/// This is the paper's comparison baseline in Figures 5 and 6 ("the
/// original universal table"): every query reads everything.
class SinglePartitioner : public FixedAssignmentPartitioner {
 public:
  SinglePartitioner() = default;

  std::string name() const override { return "universal-table"; }

 protected:
  Partition& ChoosePartition(const Row& row) override;
};

}  // namespace cinderella

#endif  // CINDERELLA_BASELINE_SINGLE_PARTITIONER_H_
