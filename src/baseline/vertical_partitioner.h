#ifndef CINDERELLA_BASELINE_VERTICAL_PARTITIONER_H_
#define CINDERELLA_BASELINE_VERTICAL_PARTITIONER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Parameters of the hidden-schema vertical partitioner.
struct VerticalConfig {
  /// Number of attribute clusters (the "k" the paper's related-work
  /// discussion criticizes as requiring "additional knowledge about the
  /// data to provide a reasonably good k").
  size_t k = 10;
};

/// The "hidden schema" comparator of the paper's related work ([18],
/// Chu/Beckmann/Naughton, SIGMOD'07): an *offline, vertical* partitioning
/// of the universal table. Attribute co-occurrence is measured with the
/// Jaccard coefficient over carrier sets, and attributes are merged by
/// agglomerative clustering (the spirit of their k-NN clustering over the
/// adjacency matrix) into k column groups.
///
/// A column group physically stores, for each attribute, its non-null
/// cells (narrow tables). An attribute-set query reads every group that
/// contains one of its attributes; reconstructing entities across groups
/// costs one join per extra group.
///
/// This is *not* a Partitioner: it partitions columns, not entities, and
/// it is offline by construction — exactly the two reasons the paper
/// gives for why the technique "is not directly applicable to our
/// problem". The bench compares its query cost profile against
/// Cinderella's horizontal pruning on the same data.
class VerticalPartitioner {
 public:
  explicit VerticalPartitioner(const VerticalConfig& config);

  /// Clusters the attributes of `rows` (ids < num_attributes). May only
  /// be called once.
  Status Build(const std::vector<Row>& rows, size_t num_attributes);

  /// The column groups, each a sorted list of attribute ids.
  const std::vector<std::vector<AttributeId>>& groups() const {
    return groups_;
  }

  /// Group containing `attribute` (ids are group indexes), or nullopt for
  /// attributes unseen at Build time.
  std::optional<size_t> GroupOf(AttributeId attribute) const;

  /// Cost profile of an attribute-set query:
  struct QueryCost {
    uint64_t groups_read = 0;   // Column groups intersecting the query.
    uint64_t cells_read = 0;    // Non-null cells stored in those groups.
    uint64_t joins_needed = 0;  // groups_read - 1 (entity reconstruction).
  };
  QueryCost CostOf(const Synopsis& query) const;

  /// Jaccard co-occurrence of two attributes as computed at Build time.
  double CoOccurrence(AttributeId a, AttributeId b) const;

 private:
  VerticalConfig config_;
  bool built_ = false;
  size_t num_attributes_ = 0;
  std::vector<uint64_t> carrier_count_;      // Non-null cells per attribute.
  std::vector<std::vector<double>> jaccard_;  // Co-occurrence matrix.
  std::vector<std::vector<AttributeId>> groups_;
  std::vector<size_t> group_of_;  // attribute -> group index.
};

}  // namespace cinderella

#endif  // CINDERELLA_BASELINE_VERTICAL_PARTITIONER_H_
