#ifndef CINDERELLA_BASELINE_HASH_PARTITIONER_H_
#define CINDERELLA_BASELINE_HASH_PARTITIONER_H_

#include <string>
#include <vector>

#include "baseline/fixed_assignment_partitioner.h"

namespace cinderella {

/// Hash partitioning on the entity id over a fixed number of buckets — the
/// web-scale load-balancing scheme of the paper's related work (Bigtable /
/// Dynamo / Cassandra). Schema-oblivious: partition synopses converge to
/// the full attribute set, so queries can prune (almost) nothing.
class HashPartitioner : public FixedAssignmentPartitioner {
 public:
  explicit HashPartitioner(size_t num_buckets);

  std::string name() const override;

 protected:
  Partition& ChoosePartition(const Row& row) override;

 private:
  size_t num_buckets_;
  // bucket -> live partition id (+1; 0 = none yet / dropped).
  std::vector<PartitionId> bucket_partitions_;
};

}  // namespace cinderella

#endif  // CINDERELLA_BASELINE_HASH_PARTITIONER_H_
