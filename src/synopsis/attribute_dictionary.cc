#include "synopsis/attribute_dictionary.h"

namespace cinderella {

AttributeId AttributeDictionary::GetOrCreate(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const AttributeId id = static_cast<AttributeId>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  return id;
}

std::optional<AttributeId> AttributeDictionary::Find(
    const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

StatusOr<std::string> AttributeDictionary::Name(AttributeId id) const {
  if (id >= names_.size()) {
    return Status::NotFound("attribute id " + std::to_string(id) +
                            " not in dictionary");
  }
  return names_[id];
}

Synopsis AttributeDictionary::MakeSynopsis(
    const std::vector<std::string>& names) {
  Synopsis s;
  for (const auto& name : names) s.Add(GetOrCreate(name));
  return s;
}

}  // namespace cinderella
