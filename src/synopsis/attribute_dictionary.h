#ifndef CINDERELLA_SYNOPSIS_ATTRIBUTE_DICTIONARY_H_
#define CINDERELLA_SYNOPSIS_ATTRIBUTE_DICTIONARY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Bidirectional mapping between attribute names and dense AttributeIds.
///
/// The universal table's attribute space evolves online (new attributes
/// appear with new entities); the dictionary hands out ids in arrival order
/// so synopses stay dense.
class AttributeDictionary {
 public:
  AttributeDictionary() = default;

  // Movable but not copyable: the dictionary is shared by reference between
  // the table, the partitioner, and the query layer.
  AttributeDictionary(const AttributeDictionary&) = delete;
  AttributeDictionary& operator=(const AttributeDictionary&) = delete;
  AttributeDictionary(AttributeDictionary&&) = default;
  AttributeDictionary& operator=(AttributeDictionary&&) = default;

  /// Returns the id for `name`, interning it if unseen.
  AttributeId GetOrCreate(const std::string& name);

  /// Returns the id for `name` if it has been interned.
  std::optional<AttributeId> Find(const std::string& name) const;

  /// Returns the name for `id`.
  StatusOr<std::string> Name(AttributeId id) const;

  /// Number of interned attributes.
  size_t size() const { return names_.size(); }

  /// Builds a synopsis from attribute names, interning unseen ones.
  Synopsis MakeSynopsis(const std::vector<std::string>& names);

 private:
  std::unordered_map<std::string, AttributeId> ids_;
  std::vector<std::string> names_;
};

}  // namespace cinderella

#endif  // CINDERELLA_SYNOPSIS_ATTRIBUTE_DICTIONARY_H_
