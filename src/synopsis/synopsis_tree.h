#ifndef CINDERELLA_SYNOPSIS_SYNOPSIS_TREE_H_
#define CINDERELLA_SYNOPSIS_SYNOPSIS_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "synopsis/synopsis.h"

namespace cinderella {

/// Word-wise intersection test between two raw bitset spans; the
/// Definition-1 pruning test without materializing Synopsis objects.
inline bool SynopsisWordsIntersect(const uint64_t* a, size_t an,
                                   const uint64_t* b, size_t bn) {
  const size_t common = an < bn ? an : bn;
  for (size_t i = 0; i < common; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

/// One node of the synopsis tree. Leaves (empty `children`) carry the
/// synopsis of a single partition; internal nodes carry the word-wise OR
/// of every live leaf below them plus the live-leaf count. Nodes are
/// immutable once shared through SynopsisTree::Share() — the writer clones
/// any shared node before mutating it (copy-on-write), so snapshot readers
/// walk their pinned root without locks.
struct SynopsisTreeNode {
  Synopsis set;       // Leaf: the partition synopsis. Internal: OR of live leaves.
  uint64_t live = 0;  // Live leaves in this subtree (1 for a leaf).
  std::vector<std::shared_ptr<SynopsisTreeNode>> children;  // Empty => leaf.

  bool is_leaf() const { return children.empty(); }
};

/// An immutable, shareable picture of a SynopsisTree: the root pointer plus
/// the geometry needed to descend it. Produced by SynopsisTree::Share()
/// under the writer's lock; readers may then descend `root` concurrently
/// with further writer mutations, because the writer never mutates a node
/// reachable from a shared root (it clones instead). Default-constructed
/// snapshots are invalid (no tree attached).
class SynopsisTreeSnapshot {
 public:
  SynopsisTreeSnapshot() = default;
  SynopsisTreeSnapshot(std::shared_ptr<const SynopsisTreeNode> root,
                       size_t fanout, size_t height, uint64_t live)
      : root_(std::move(root)), fanout_(fanout), height_(height), live_(live) {}

  /// True when this snapshot came from a tree (the tree may still be
  /// empty: valid() && live() == 0 && !root()).
  bool valid() const { return fanout_ != 0; }
  uint64_t live() const { return live_; }
  size_t fanout() const { return fanout_; }
  size_t height() const { return height_; }
  const SynopsisTreeNode* root() const { return root_.get(); }

  /// Union synopsis over every live partition (the root's OR set), or
  /// nullptr when the tree is empty.
  const Synopsis* root_union() const { return root_ ? &root_->set : nullptr; }

  /// Invokes `fn(uint64_t key)` for every live leaf whose synopsis
  /// intersects the query words, in ascending key order, skipping whole
  /// subtrees whose union misses the query. Empty query words match
  /// nothing.
  template <typename Fn>
  void ForEachCandidate(const uint64_t* qwords, size_t qn, Fn&& fn) const {
    if (root_ && qn > 0) DescendCandidates(root_.get(), height_, 0, qwords, qn, fn);
  }

  /// Invokes `fn(uint64_t key, const Synopsis&)` for every live leaf in
  /// ascending key order.
  template <typename Fn>
  void ForEachLeaf(Fn&& fn) const {
    if (root_) DescendLeaves(root_.get(), height_, 0, fn);
  }

 private:
  template <typename Fn>
  void DescendCandidates(const SynopsisTreeNode* node, size_t height,
                         uint64_t base, const uint64_t* qwords, size_t qn,
                         Fn&& fn) const {
    const std::vector<uint64_t>& set = node->set.words();
    if (!SynopsisWordsIntersect(set.data(), set.size(), qwords, qn)) return;
    if (node->is_leaf()) {
      fn(base);
      return;
    }
    uint64_t span = 1;
    for (size_t h = 1; h < height; ++h) span *= fanout_;
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (node->children[i] == nullptr) continue;
      DescendCandidates(node->children[i].get(), height - 1,
                        base + static_cast<uint64_t>(i) * span, qwords, qn, fn);
    }
  }

  template <typename Fn>
  void DescendLeaves(const SynopsisTreeNode* node, size_t height,
                     uint64_t base, Fn&& fn) const {
    if (node->is_leaf()) {
      fn(base, node->set);
      return;
    }
    uint64_t span = 1;
    for (size_t h = 1; h < height; ++h) span *= fanout_;
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (node->children[i] == nullptr) continue;
      DescendLeaves(node->children[i].get(), height - 1,
                    base + static_cast<uint64_t>(i) * span, fn);
    }
  }

  std::shared_ptr<const SynopsisTreeNode> root_;
  size_t fanout_ = 0;  // 0 marks an invalid (detached) snapshot.
  size_t height_ = 0;
  uint64_t live_ = 0;
};

/// Fixed-fanout synopsis tree over the partition-id key space (the
/// JanusAQP partition-tree idea applied to Cinderella synopses): leaves
/// are partitions, internal nodes hold the word-wise OR of their live
/// leaves, so insert-time rating and query-time pruning descend only
/// subtrees whose union can still intersect the probe. The tree is
/// *implicit* in the key: a node at height h covers fanout^h consecutive
/// keys and key k lives under child (k / fanout^(h-1)) % fanout, so no
/// per-node key ranges are stored and a leaf's key is recomputed from the
/// descent path.
///
/// Persistence: Share() hands out the current root as an immutable
/// snapshot; every later mutation clones the shared spine it touches
/// (copy-on-write at node granularity), so snapshots stay frozen while
/// the writer keeps amortized O(fanout · height) per update.
///
/// Thread-safety: none. Callers serialize mutations and Share() under
/// their own lock (the core catalog mutation lock, a shard mutex, or the
/// MVCC publish lock); snapshot *reads* are lock-free by construction.
class SynopsisTree {
 public:
  struct Stats {
    uint64_t upserts = 0;
    uint64_t removes = 0;
    uint64_t fast_merges = 0;   // Superset upserts: OR-ed up, no re-OR.
    uint64_t node_reors = 0;    // Dirty internal nodes rebuilt by re-OR.
    uint64_t nodes_copied = 0;  // COW clones taken for snapshot isolation.
    uint64_t collapses = 0;     // Zero-live internal nodes collapsed away.
  };

  /// `fanout` 0 resolves from the CINDERELLA_TREE_FANOUT environment
  /// variable (default 16, clamped to [2, 256]), mirroring the
  /// scan_threads/insert_shards convention.
  explicit SynopsisTree(size_t fanout = 0);

  /// Resolved fanout for a requested value (0 = environment / default).
  static size_t ResolveFanout(size_t fanout);

  /// Inserts or replaces the leaf for `key`. Growing upserts (new synopsis
  /// a superset of the old) OR the new set into the ancestor spine; a
  /// shrinking replace re-ORs each ancestor from its children (dirty
  /// re-OR). Identical replacement is a no-op detected without cloning.
  void Upsert(uint64_t key, const Synopsis& synopsis);

  /// Upsert from raw bitset words (trailing zero words tolerated).
  void UpsertWords(uint64_t key, const uint64_t* words, size_t num_words);

  /// Removes the leaf for `key` (no-op if absent). Ancestors whose
  /// live-leaf count drops to zero are collapsed (their slot nulled) so
  /// the descent never visits an empty subtree; surviving ancestors are
  /// re-OR-ed. An emptied tree resets to the empty state.
  void Remove(uint64_t key);

  /// Replaces the whole tree in one bottom-up pass from (key, synopsis)
  /// leaf pairs (keys must be distinct; the pointers must stay valid for
  /// the duration of the call). Produces the identical tree a Clear()
  /// followed by one Upsert per pair would, but computes each internal
  /// union once instead of re-OR-ing per leaf — O(total leaf words)
  /// instead of O(leaves · height). Snapshot load and full view rebuilds
  /// use this.
  void BulkBuild(std::vector<std::pair<uint64_t, const Synopsis*>> leaves);

  /// Drops every leaf and resets to the empty state. Counters survive.
  void Clear();

  /// Current root as an immutable snapshot (see SynopsisTreeSnapshot).
  SynopsisTreeSnapshot Share();

  uint64_t live_count() const { return root_ ? root_->live : 0; }
  size_t fanout() const { return fanout_; }
  /// Levels above the leaves (0 when empty; >= 1 otherwise — the root is
  /// always an internal node).
  size_t depth() const { return height_; }
  const Stats& stats() const { return stats_; }

  /// Internal (non-leaf) node count, by walk.
  size_t internal_node_count() const;

  /// Union synopsis over every live partition, or nullptr when empty.
  const Synopsis* root_union() const {
    return root_ ? &root_->set : nullptr;
  }

  /// Candidate descent over the live tree (same contract as the snapshot
  /// form). Only safe while no mutation is concurrent.
  template <typename Fn>
  void ForEachCandidate(const uint64_t* qwords, size_t qn, Fn&& fn) const {
    SynopsisTreeSnapshot(root_, fanout_, height_, live_count())
        .ForEachCandidate(qwords, qn, fn);
  }

  template <typename Fn>
  void ForEachLeaf(Fn&& fn) const {
    SynopsisTreeSnapshot(root_, fanout_, height_, live_count())
        .ForEachLeaf(fn);
  }

  /// Verifies the structural invariants — live counts sum bottom-up, no
  /// zero-live or all-null internal node survives, every internal set is
  /// exactly the OR of its children. Returns false and fills `*error`
  /// (when non-null) on the first violation.
  bool CheckInvariants(std::string* error) const;

 private:
  using NodePtr = std::shared_ptr<SynopsisTreeNode>;

  /// Capacity of the current root: fanout_^height_ keys (saturating).
  uint64_t Capacity() const;

  /// Grows the root (wrapping the old root as child 0) until `key` fits.
  void EnsureRootCovers(uint64_t key);

  /// Returns an exclusively-owned clone-or-self of `node` (clones when the
  /// node is shared with a snapshot).
  NodePtr Exclusive(const NodePtr& node);

  /// Recursive worker of BulkBuild: builds the subtree at `height`
  /// covering keys [base, base + fanout^height), consuming the sorted
  /// leaves at *pos that fall inside the range. Returns nullptr for an
  /// empty range.
  NodePtr BuildSubtree(
      size_t height, uint64_t base,
      const std::vector<std::pair<uint64_t, const Synopsis*>>& leaves,
      size_t* pos);

  /// Rebuilds an internal node's set as the OR of its children.
  void ReOr(SynopsisTreeNode* node);

  bool CheckNode(const SynopsisTreeNode* node, size_t height,
                 std::string* error) const;

  NodePtr root_;       // Null when the tree is empty.
  size_t fanout_;
  size_t height_ = 0;  // Internal levels; key depth of every leaf.
  Stats stats_;
};

}  // namespace cinderella

#endif  // CINDERELLA_SYNOPSIS_SYNOPSIS_TREE_H_
