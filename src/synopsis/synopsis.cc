#include "synopsis/synopsis.h"

#include <algorithm>
#include <bit>

namespace cinderella {

Synopsis::Synopsis(std::initializer_list<AttributeId> ids) {
  for (AttributeId id : ids) Add(id);
}

Synopsis Synopsis::FromIds(const std::vector<AttributeId>& ids) {
  Synopsis s;
  for (AttributeId id : ids) s.Add(id);
  return s;
}

void Synopsis::EnsureCapacity(AttributeId id) {
  const size_t word = id / kBitsPerWord;
  if (word >= words_.size()) words_.resize(word + 1, 0);
}

void Synopsis::ShrinkTrailingZeroWords() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

void Synopsis::Add(AttributeId id) {
  EnsureCapacity(id);
  uint64_t& word = words_[id / kBitsPerWord];
  const uint64_t mask = uint64_t{1} << (id % kBitsPerWord);
  count_ += (word & mask) == 0;
  word |= mask;
}

void Synopsis::Remove(AttributeId id) {
  const size_t word = id / kBitsPerWord;
  if (word >= words_.size()) return;
  const uint64_t mask = uint64_t{1} << (id % kBitsPerWord);
  count_ -= (words_[word] & mask) != 0;
  words_[word] &= ~mask;
  ShrinkTrailingZeroWords();
}

bool Synopsis::Contains(AttributeId id) const {
  const size_t word = id / kBitsPerWord;
  if (word >= words_.size()) return false;
  return (words_[word] >> (id % kBitsPerWord)) & 1;
}

void Synopsis::Clear() {
  words_.clear();
  count_ = 0;
}

void Synopsis::UnionWith(const Synopsis& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  size_t total = 0;
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
    total += static_cast<size_t>(std::popcount(words_[i]));
  }
  for (size_t i = other.words_.size(); i < words_.size(); ++i) {
    total += static_cast<size_t>(std::popcount(words_[i]));
  }
  count_ = total;
}

void Synopsis::UnionWithWords(const uint64_t* words, size_t num_words) {
  // Ignore trailing zero words so the no-trailing-zero-words invariant
  // survives arbitrary spans.
  while (num_words > 0 && words[num_words - 1] == 0) --num_words;
  if (num_words > words_.size()) words_.resize(num_words, 0);
  size_t total = 0;
  for (size_t i = 0; i < num_words; ++i) {
    words_[i] |= words[i];
    total += static_cast<size_t>(std::popcount(words_[i]));
  }
  for (size_t i = num_words; i < words_.size(); ++i) {
    total += static_cast<size_t>(std::popcount(words_[i]));
  }
  count_ = total;
}

size_t Synopsis::IntersectCount(const Synopsis& other) const {
  const size_t n = std::min(words_.size(), other.words_.size());
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

size_t Synopsis::UnionCount(const Synopsis& other) const {
  const size_t n = std::max(words_.size(), other.words_.size());
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a = i < words_.size() ? words_[i] : 0;
    const uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    total += static_cast<size_t>(std::popcount(a | b));
  }
  return total;
}

size_t Synopsis::XorCount(const Synopsis& other) const {
  const size_t n = std::max(words_.size(), other.words_.size());
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a = i < words_.size() ? words_[i] : 0;
    const uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    total += static_cast<size_t>(std::popcount(a ^ b));
  }
  return total;
}

size_t Synopsis::AndNotCount(const Synopsis& other) const {
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    total += static_cast<size_t>(std::popcount(words_[i] & ~b));
  }
  return total;
}

Synopsis::RatingCounts Synopsis::RateCounts(const Synopsis& other) const {
  size_t intersect = 0;
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) {
    intersect +=
        static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  RatingCounts counts;
  counts.intersect = intersect;
  // The exclusive cardinalities fall out of the cached totals; bits past
  // the common prefix are exclusive by construction and already included
  // in the respective count.
  counts.only_this = count_ - intersect;
  counts.only_other = other.count_ - intersect;
  return counts;
}

bool Synopsis::Intersects(const Synopsis& other) const {
  const size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool Synopsis::IsSubsetOf(const Synopsis& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~b) != 0) return false;
  }
  return true;
}

std::vector<AttributeId> Synopsis::ToIds() const {
  std::vector<AttributeId> ids;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      ids.push_back(static_cast<AttributeId>(i * kBitsPerWord + bit));
      w &= w - 1;
    }
  }
  return ids;
}

std::string Synopsis::ToString() const {
  std::string out = "{";
  bool first = true;
  for (AttributeId id : ToIds()) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(id);
  }
  out += "}";
  return out;
}

bool operator==(const Synopsis& a, const Synopsis& b) {
  const size_t n = std::max(a.words_.size(), b.words_.size());
  for (size_t i = 0; i < n; ++i) {
    const uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
    const uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
    if (wa != wb) return false;
  }
  return true;
}

}  // namespace cinderella
