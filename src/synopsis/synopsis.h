#ifndef CINDERELLA_SYNOPSIS_SYNOPSIS_H_
#define CINDERELLA_SYNOPSIS_SYNOPSIS_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace cinderella {

/// Dense identifier of an attribute (entity-based mode) or of a workload
/// query (workload-based mode). Assigned by AttributeDictionary.
using AttributeId = uint32_t;

class Synopsis;

/// A non-owning view of a synopsis bitset: `num_words` little-endian
/// 64-bit words plus the cached cardinality. The MVCC snapshot layer
/// stores version synopses as packed words inside an arena
/// (mvcc/partition_version.h) and hands them to the executor/estimator
/// through this view, so both the live path (Synopsis::span()) and the
/// packed path run the same pruning code.
struct SynopsisSpan {
  const uint64_t* words = nullptr;
  size_t num_words = 0;
  size_t cardinality = 0;

  size_t Count() const { return cardinality; }
  bool Empty() const { return num_words == 0; }

  /// Definition-1 pruning test against a full synopsis (declared below;
  /// defined after Synopsis).
  bool Intersects(const Synopsis& other) const;
};

/// A synopsis is a set over dictionary-encoded ids, stored as a dynamic
/// bitset (Section II of the paper: "Each partition is described in the
/// system catalog using a partition synopsis p, which lists the attributes
/// of the entities in the partition").
///
/// The Cinderella rating (Section IV) and the split-starter DIFF need four
/// set cardinalities; all are computed word-wise with popcount:
///   |a ∧ b|   IntersectCount
///   |a ∨ b|   UnionCount
///   |a ⊕ b|   XorCount        (DIFF between split starters)
///   |¬a ∧ b|  AndNotCount(b, a)  -- ids in b missing from a
///
/// Synopses grow automatically when an id beyond the current capacity is
/// added; all binary operations accept operands of different lengths.
class Synopsis {
 public:
  /// The three disjoint cardinalities the Section IV rating needs, from
  /// one fused word-wise pass (see RateCounts). The union cardinality is
  /// their sum; no separate pass required.
  struct RatingCounts {
    size_t intersect = 0;   // |this ∧ other|
    size_t only_this = 0;   // |this ∧ ¬other|
    size_t only_other = 0;  // |¬this ∧ other|

    size_t union_count() const { return intersect + only_this + only_other; }
  };

  /// Constructs an empty synopsis.
  Synopsis() = default;

  /// Constructs a synopsis containing the given ids.
  Synopsis(std::initializer_list<AttributeId> ids);

  /// Constructs a synopsis from a vector of ids.
  static Synopsis FromIds(const std::vector<AttributeId>& ids);

  /// Adds `id` to the set. Idempotent.
  void Add(AttributeId id);

  /// Removes `id` from the set if present.
  void Remove(AttributeId id);

  /// True if `id` is in the set.
  bool Contains(AttributeId id) const;

  /// Number of ids in the set. O(1): maintained incrementally by the
  /// mutators.
  size_t Count() const { return count_; }

  /// True if the set is empty. O(1): every mutator restores the
  /// no-trailing-zero-words invariant (ShrinkTrailingZeroWords), so the
  /// set is empty iff no words are stored.
  bool Empty() const { return words_.empty(); }

  /// Removes all ids.
  void Clear();

  /// Adds every id of `other` to this synopsis (set union in place).
  void UnionWith(const Synopsis& other);

  /// Unions raw bitset words (64 ids per word, little-endian) into this
  /// synopsis. Lets consumers of packed word arrays — MVCC version spans
  /// and the wire protocol's synopsis digests — build union synopses
  /// without materializing intermediate Synopsis objects.
  void UnionWithWords(const uint64_t* words, size_t num_words);

  /// |this ∧ other|
  size_t IntersectCount(const Synopsis& other) const;

  /// |this ∨ other|
  size_t UnionCount(const Synopsis& other) const;

  /// |this ⊕ other| — the paper's DIFF between entity synopses.
  size_t XorCount(const Synopsis& other) const;

  /// |this ∧ ¬other| — ids present here but missing from `other`.
  size_t AndNotCount(const Synopsis& other) const;

  /// Fused rating kernel: computes |this ∧ other|, |this ∧ ¬other| and
  /// |¬this ∧ other| from a single word-wise popcount pass over the
  /// common prefix (the exclusive counts fall out of the cached
  /// cardinalities: |a∧¬b| = |a| − |a∧b|) — one third of the work of
  /// calling IntersectCount plus two AndNotCounts, which is what the
  /// per-insert rating of every live partition (Algorithm 1) used to do.
  RatingCounts RateCounts(const Synopsis& other) const;

  /// True if the two sets intersect; the pruning test of Definition 1
  /// (sgn(|p ∧ q|) != 0) without computing the full count.
  bool Intersects(const Synopsis& other) const;

  /// True if every id of this set is also in `other`.
  bool IsSubsetOf(const Synopsis& other) const;

  /// Read-only view of the underlying bitset words (64 ids per word,
  /// little-endian within a word, no trailing zero words). The packed
  /// batch-rating kernel (src/ingest) copies these into its per-shard
  /// arenas so it can popcount without going through Synopsis.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Non-owning view over this synopsis; valid while the synopsis is
  /// neither mutated nor destroyed.
  SynopsisSpan span() const {
    return SynopsisSpan{words_.data(), words_.size(), count_};
  }

  /// Enumerates the ids in ascending order.
  std::vector<AttributeId> ToIds() const;

  /// Renders as "{1, 5, 9}" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Synopsis& a, const Synopsis& b);

 private:
  static constexpr size_t kBitsPerWord = 64;

  void EnsureCapacity(AttributeId id);
  void ShrinkTrailingZeroWords();

  std::vector<uint64_t> words_;
  // Cached popcount of words_, maintained by every mutator. Makes Count()
  // O(1) and lets RateCounts derive both exclusive cardinalities from the
  // intersection alone.
  size_t count_ = 0;
};

bool operator==(const Synopsis& a, const Synopsis& b);
inline bool operator!=(const Synopsis& a, const Synopsis& b) {
  return !(a == b);
}

inline bool SynopsisSpan::Intersects(const Synopsis& other) const {
  const std::vector<uint64_t>& other_words = other.words();
  const size_t common =
      num_words < other_words.size() ? num_words : other_words.size();
  for (size_t i = 0; i < common; ++i) {
    if ((words[i] & other_words[i]) != 0) return true;
  }
  return false;
}

}  // namespace cinderella

#endif  // CINDERELLA_SYNOPSIS_SYNOPSIS_H_
