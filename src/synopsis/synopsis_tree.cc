#include "synopsis/synopsis_tree.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace cinderella {
namespace {

constexpr size_t kDefaultFanout = 16;
constexpr size_t kMinFanout = 2;
constexpr size_t kMaxFanout = 256;

// fanout^exp without overflow surprises; callers only ask for exponents
// below the current height, where the product is known to fit.
uint64_t Pow(size_t fanout, size_t exp) {
  uint64_t result = 1;
  for (size_t i = 0; i < exp; ++i) result *= fanout;
  return result;
}

}  // namespace

size_t SynopsisTree::ResolveFanout(size_t fanout) {
  if (fanout == 0) {
    if (const char* env = std::getenv("CINDERELLA_TREE_FANOUT")) {
      char* end = nullptr;
      const long value = std::strtol(env, &end, 10);
      if (end != env && value > 0) fanout = static_cast<size_t>(value);
    }
    if (fanout == 0) fanout = kDefaultFanout;
  }
  if (fanout < kMinFanout) fanout = kMinFanout;
  if (fanout > kMaxFanout) fanout = kMaxFanout;
  return fanout;
}

SynopsisTree::SynopsisTree(size_t fanout) : fanout_(ResolveFanout(fanout)) {}

uint64_t SynopsisTree::Capacity() const {
  uint64_t capacity = 1;
  for (size_t h = 0; h < height_; ++h) {
    if (capacity > UINT64_MAX / fanout_) return UINT64_MAX;
    capacity *= fanout_;
  }
  return capacity;
}

void SynopsisTree::EnsureRootCovers(uint64_t key) {
  if (root_ == nullptr) {
    root_ = std::make_shared<SynopsisTreeNode>();
    root_->children.resize(fanout_);
    height_ = 1;
  }
  // Grow by wrapping the old root as child 0 of a fresh root: the old
  // root keeps covering [0, fanout^height) and is never mutated here, so
  // growth is snapshot-safe without a clone.
  while (key >= Capacity()) {
    if (root_->live == 0) {
      // A freshly created (still empty) root covers any span by just
      // raising the height — wrapping it would pin a zero-live child 0
      // that no Remove ever collapses. Happens when the first key after
      // an empty state is large (partition ids grow monotonically, so a
      // reorganize drain restarts the tree at a high id).
      ++height_;
      continue;
    }
    NodePtr wrap = std::make_shared<SynopsisTreeNode>();
    wrap->children.resize(fanout_);
    wrap->set = root_->set;
    wrap->live = root_->live;
    wrap->children[0] = root_;
    root_ = std::move(wrap);
    ++height_;
  }
}

SynopsisTree::NodePtr SynopsisTree::Exclusive(const NodePtr& node) {
  // A node referenced only through the writer's exclusive parent chain
  // (use_count == 1) cannot be reachable from any snapshot, so it may be
  // mutated in place. Anything shared gets cloned; the clone shares the
  // child pointers, which are themselves cloned on the way down if the
  // descent continues through them.
  if (node.use_count() == 1) return node;
  ++stats_.nodes_copied;
  return std::make_shared<SynopsisTreeNode>(*node);
}

void SynopsisTree::ReOr(SynopsisTreeNode* node) {
  node->set.Clear();
  for (const NodePtr& child : node->children) {
    if (child) node->set.UnionWith(child->set);
  }
  ++stats_.node_reors;
}

void SynopsisTree::Upsert(uint64_t key, const Synopsis& synopsis) {
  const std::vector<uint64_t>& words = synopsis.words();
  UpsertWords(key, words.data(), words.size());
}

void SynopsisTree::UpsertWords(uint64_t key, const uint64_t* words,
                               size_t num_words) {
  while (num_words > 0 && words[num_words - 1] == 0) --num_words;
  ++stats_.upserts;
  EnsureRootCovers(key);

  // Read-only pre-check: an identical replacement must not clone the COW
  // spine (the common case under re-publication is "nothing changed").
  {
    const SynopsisTreeNode* node = root_.get();
    uint64_t rel = key;
    for (size_t h = height_; h >= 1 && node != nullptr; --h) {
      const uint64_t span = Pow(fanout_, h - 1);
      node = node->children[static_cast<size_t>(rel / span)].get();
      rel %= span;
    }
    if (node != nullptr) {
      const std::vector<uint64_t>& old = node->set.words();
      if (old.size() == num_words) {
        bool same = true;
        for (size_t i = 0; i < num_words; ++i) {
          if (old[i] != words[i]) {
            same = false;
            break;
          }
        }
        if (same) return;
      }
    }
  }

  root_ = Exclusive(root_);
  std::vector<SynopsisTreeNode*> path;
  path.reserve(height_);
  SynopsisTreeNode* node = root_.get();
  uint64_t rel = key;
  for (size_t h = height_; h >= 2; --h) {
    path.push_back(node);
    const uint64_t span = Pow(fanout_, h - 1);
    NodePtr& slot = node->children[static_cast<size_t>(rel / span)];
    rel %= span;
    if (slot == nullptr) {
      slot = std::make_shared<SynopsisTreeNode>();
      slot->children.resize(fanout_);
    } else {
      slot = Exclusive(slot);
    }
    node = slot.get();
  }
  path.push_back(node);  // Height-1 parent of the leaf.

  NodePtr& leaf_slot = node->children[static_cast<size_t>(rel)];
  const bool created = (leaf_slot == nullptr);
  bool superset = true;
  if (created) {
    leaf_slot = std::make_shared<SynopsisTreeNode>();
  } else {
    leaf_slot = Exclusive(leaf_slot);
    const std::vector<uint64_t>& old = leaf_slot->set.words();
    if (old.size() > num_words) {
      superset = false;
    } else {
      for (size_t i = 0; i < old.size(); ++i) {
        if ((old[i] & ~words[i]) != 0) {
          superset = false;
          break;
        }
      }
    }
  }
  SynopsisTreeNode* leaf = leaf_slot.get();
  leaf->set.Clear();
  leaf->set.UnionWithWords(words, num_words);
  leaf->live = 1;

  if (created) {
    for (SynopsisTreeNode* ancestor : path) {
      ancestor->live += 1;
      ancestor->set.UnionWithWords(words, num_words);
    }
    ++stats_.fast_merges;
  } else if (superset) {
    // The old leaf set is already OR-ed into every ancestor; OR-ing the
    // (super)set on top yields the exact new union without a rebuild.
    for (SynopsisTreeNode* ancestor : path) {
      ancestor->set.UnionWithWords(words, num_words);
    }
    ++stats_.fast_merges;
  } else {
    // Shrinking replace: ancestors may carry bits no live leaf still has;
    // rebuild each one from its children, bottom-up (dirty re-OR).
    for (size_t i = path.size(); i-- > 0;) ReOr(path[i]);
  }
}

void SynopsisTree::Remove(uint64_t key) {
  if (root_ == nullptr || key >= Capacity()) return;
  // Read-only presence check so removing an absent key never clones.
  {
    const SynopsisTreeNode* node = root_.get();
    uint64_t rel = key;
    for (size_t h = height_; h >= 1; --h) {
      const uint64_t span = Pow(fanout_, h - 1);
      node = node->children[static_cast<size_t>(rel / span)].get();
      rel %= span;
      if (node == nullptr) return;
    }
  }
  ++stats_.removes;

  root_ = Exclusive(root_);
  // (node, index of the child the descent took) for every internal level.
  std::vector<std::pair<SynopsisTreeNode*, size_t>> path;
  path.reserve(height_);
  SynopsisTreeNode* node = root_.get();
  uint64_t rel = key;
  for (size_t h = height_; h >= 2; --h) {
    const uint64_t span = Pow(fanout_, h - 1);
    const size_t index = static_cast<size_t>(rel / span);
    rel %= span;
    path.emplace_back(node, index);
    NodePtr& slot = node->children[index];
    slot = Exclusive(slot);
    node = slot.get();
  }
  path.emplace_back(node, static_cast<size_t>(rel));
  node->children[static_cast<size_t>(rel)] = nullptr;

  // Bottom-up repair: a subtree left with zero live leaves is collapsed
  // (its slot nulled) so no descent ever visits it — the guard for the
  // split-cascade case where an eager empty-partition sweep empties a
  // whole internal node. Survivors are re-OR-ed from their children.
  for (size_t i = path.size(); i-- > 0;) {
    SynopsisTreeNode* ancestor = path[i].first;
    ancestor->live -= 1;
    if (ancestor->live == 0) {
      ++stats_.collapses;
      if (i == 0) {
        root_ = nullptr;
        height_ = 0;
      } else {
        path[i - 1].first->children[path[i - 1].second] = nullptr;
      }
    } else {
      ReOr(ancestor);
    }
  }
}

void SynopsisTree::Clear() {
  root_ = nullptr;
  height_ = 0;
}

SynopsisTree::NodePtr SynopsisTree::BuildSubtree(
    size_t height, uint64_t base,
    const std::vector<std::pair<uint64_t, const Synopsis*>>& leaves,
    size_t* pos) {
  if (*pos >= leaves.size()) return nullptr;
  if (height == 0) {
    if (leaves[*pos].first != base) return nullptr;
    NodePtr leaf = std::make_shared<SynopsisTreeNode>();
    leaf->set = *leaves[*pos].second;
    leaf->live = 1;
    ++*pos;
    return leaf;
  }
  const uint64_t span = Pow(fanout_, height - 1);
  const uint64_t limit = base + span * fanout_;
  NodePtr node = std::make_shared<SynopsisTreeNode>();
  node->children.resize(fanout_);
  while (*pos < leaves.size() && leaves[*pos].first < limit) {
    const size_t index = static_cast<size_t>((leaves[*pos].first - base) / span);
    NodePtr child =
        BuildSubtree(height - 1, base + index * span, leaves, pos);
    if (child == nullptr) break;  // Defensive; cannot happen on sorted keys.
    node->live += child->live;
    node->set.UnionWith(child->set);
    node->children[index] = std::move(child);
  }
  return node->live > 0 ? node : nullptr;
}

void SynopsisTree::BulkBuild(
    std::vector<std::pair<uint64_t, const Synopsis*>> leaves) {
  Clear();
  if (leaves.empty()) return;
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  stats_.upserts += leaves.size();
  height_ = 1;
  while (leaves.back().first >= Capacity()) ++height_;
  size_t pos = 0;
  root_ = BuildSubtree(height_, 0, leaves, &pos);
}

SynopsisTreeSnapshot SynopsisTree::Share() {
  return SynopsisTreeSnapshot(root_, fanout_, height_, live_count());
}

namespace {

size_t CountInternal(const SynopsisTreeNode* node) {
  if (node == nullptr || node->is_leaf()) return 0;
  size_t count = 1;
  for (const std::shared_ptr<SynopsisTreeNode>& child : node->children) {
    count += CountInternal(child.get());
  }
  return count;
}

}  // namespace

size_t SynopsisTree::internal_node_count() const {
  return CountInternal(root_.get());
}

bool SynopsisTree::CheckNode(const SynopsisTreeNode* node, size_t height,
                             std::string* error) const {
  if (height == 0) {
    if (!node->is_leaf()) {
      if (error) *error = "internal node at leaf height";
      return false;
    }
    if (node->live != 1) {
      if (error) *error = "leaf live != 1";
      return false;
    }
    return true;
  }
  if (node->is_leaf()) {
    if (error) *error = "leaf above height 0";
    return false;
  }
  if (node->children.size() != fanout_) {
    if (error) *error = "internal node child vector != fanout";
    return false;
  }
  uint64_t live = 0;
  Synopsis expected;
  for (const NodePtr& child : node->children) {
    if (child == nullptr) continue;
    if (child->live == 0) {
      if (error) *error = "zero-live child not collapsed";
      return false;
    }
    if (!CheckNode(child.get(), height - 1, error)) return false;
    live += child->live;
    expected.UnionWith(child->set);
  }
  if (live == 0) {
    if (error) *error = "zero-live internal node not collapsed";
    return false;
  }
  if (live != node->live) {
    if (error) *error = "live count mismatch";
    return false;
  }
  if (expected != node->set) {
    if (error) *error = "internal set is not the OR of its children";
    return false;
  }
  return true;
}

bool SynopsisTree::CheckInvariants(std::string* error) const {
  if (root_ == nullptr) {
    if (height_ != 0) {
      if (error) *error = "empty tree with nonzero height";
      return false;
    }
    return true;
  }
  if (height_ == 0) {
    if (error) *error = "non-empty tree with zero height";
    return false;
  }
  return CheckNode(root_.get(), height_, error);
}

}  // namespace cinderella
