#ifndef CINDERELLA_PAGESTORE_PAGER_H_
#define CINDERELLA_PAGESTORE_PAGER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/status.h"
#include "pagestore/page_codec.h"

namespace cinderella {

/// File-backed page manager: allocates, reads, writes, and frees
/// fixed-size pages in a single file.
///
/// Page 0 is the file header (magic, version, page size, page count, free
/// list head); freed pages form an intrusive linked list (first 8 payload
/// bytes hold the next free page id, 0 = end).
///
/// Counters (pages_read/pages_written) let the benches report physical
/// I/O — the quantity partition pruning saves in the paper's disk-based
/// scenario.
class Pager {
 public:
  /// Creates (`truncate` = true) or opens an existing file. On open, the
  /// header's page size must equal `page_size`.
  static StatusOr<std::unique_ptr<Pager>> Open(const std::string& path,
                                               size_t page_size,
                                               bool truncate);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }

  /// Total pages in the file, including the header and freed pages.
  uint64_t page_count() const { return page_count_; }

  /// Pages currently on the free list.
  uint64_t free_page_count() const { return free_count_; }

  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }

  /// Allocates a zeroed page (reusing the free list when possible).
  StatusOr<PageId> AllocatePage();

  /// Reads a page into `buffer` (page_size bytes).
  Status ReadPage(PageId page, uint8_t* buffer);

  /// Writes `buffer` to the page.
  Status WritePage(PageId page, const uint8_t* buffer);

  /// Returns a page to the free list.
  Status FreePage(PageId page);

  /// Persists the header and flushes the file.
  Status Flush();

 private:
  Pager(std::fstream file, std::string path, size_t page_size);

  Status WriteHeader();
  Status Seek(PageId page);

  std::fstream file_;
  std::string path_;
  size_t page_size_;
  uint64_t page_count_ = 1;  // Header page.
  uint64_t free_head_ = 0;   // 0 = empty free list.
  uint64_t free_count_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_PAGESTORE_PAGER_H_
