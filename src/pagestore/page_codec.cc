#include "pagestore/page_codec.h"

#include <cstring>
#include <vector>

#include "common/logging.h"

namespace cinderella {
namespace {

constexpr size_t kHeaderBytes = 4;
constexpr size_t kSlotBytes = 4;

uint16_t Load16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void Store16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void Store64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void Store32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

// Slot entry address: 4 bytes at page_size - 4*(slot+1).
const uint8_t* SlotEntry(const uint8_t* page, size_t page_size,
                         uint16_t slot) {
  return page + page_size - kSlotBytes * (static_cast<size_t>(slot) + 1);
}

uint8_t* SlotEntry(uint8_t* page, size_t page_size, uint16_t slot) {
  return page + page_size - kSlotBytes * (static_cast<size_t>(slot) + 1);
}

}  // namespace

PageCodec::PageCodec(size_t page_size) : page_size_(page_size) {
  CINDERELLA_CHECK(page_size >= 64 && page_size <= 65536);
}

void PageCodec::InitPage(uint8_t* page) const {
  std::memset(page, 0, page_size_);
  Store16(page, 0);                                    // slot_count
  Store16(page + 2, static_cast<uint16_t>(kHeaderBytes));  // free_offset
}

uint16_t PageCodec::SlotCount(const uint8_t* page) const {
  return Load16(page);
}

size_t PageCodec::FreeSpace(const uint8_t* page) const {
  const size_t slots = SlotCount(page);
  const size_t free_offset = Load16(page + 2);
  const size_t directory_start = page_size_ - kSlotBytes * slots;
  const size_t available = directory_start - free_offset;
  return available > kSlotBytes ? available - kSlotBytes : 0;
}

size_t PageCodec::EncodedRowSize(const Row& row) {
  size_t size = 8 + 2;  // id + cell count
  for (const Row::Cell& cell : row.cells()) {
    size += 4 + 1;  // attribute + type tag
    switch (cell.value.type()) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        size += 8;
        break;
      case ValueType::kString:
        size += 2 + cell.value.as_string().size();
        break;
    }
  }
  return size;
}

std::optional<uint16_t> PageCodec::AppendRow(uint8_t* page,
                                             const Row& row) const {
  const size_t payload = EncodedRowSize(row);
  if (payload > 65535 || row.attribute_count() > 65535) return std::nullopt;
  if (payload > FreeSpace(page)) return std::nullopt;

  const uint16_t slot = SlotCount(page);
  const uint16_t offset = Load16(page + 2);
  uint8_t* out = page + offset;
  Store64(out, row.id());
  out += 8;
  Store16(out, static_cast<uint16_t>(row.attribute_count()));
  out += 2;
  for (const Row::Cell& cell : row.cells()) {
    Store32(out, cell.attribute);
    out += 4;
    *out++ = static_cast<uint8_t>(cell.value.type());
    switch (cell.value.type()) {
      case ValueType::kInt64: {
        Store64(out, static_cast<uint64_t>(cell.value.as_int64()));
        out += 8;
        break;
      }
      case ValueType::kDouble: {
        double d = cell.value.as_double();
        std::memcpy(out, &d, 8);
        out += 8;
        break;
      }
      case ValueType::kString: {
        const std::string& s = cell.value.as_string();
        Store16(out, static_cast<uint16_t>(s.size()));
        out += 2;
        std::memcpy(out, s.data(), s.size());
        out += s.size();
        break;
      }
    }
  }
  CINDERELLA_DCHECK(static_cast<size_t>(out - (page + offset)) == payload);

  Store16(page, slot + 1);
  Store16(page + 2, static_cast<uint16_t>(offset + payload));
  uint8_t* entry = SlotEntry(page, page_size_, slot);
  Store16(entry, offset);
  Store16(entry + 2, static_cast<uint16_t>(payload));
  return slot;
}

bool PageCodec::IsLive(const uint8_t* page, uint16_t slot) const {
  if (slot >= SlotCount(page)) return false;
  return Load16(SlotEntry(page, page_size_, slot) + 2) != 0;
}

StatusOr<Row> PageCodec::ReadRow(const uint8_t* page, uint16_t slot) const {
  if (slot >= SlotCount(page)) {
    return Status::OutOfRange("slot " + std::to_string(slot) +
                              " out of range");
  }
  const uint8_t* entry = SlotEntry(page, page_size_, slot);
  const uint16_t offset = Load16(entry);
  const uint16_t length = Load16(entry + 2);
  if (length == 0) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " is tombstoned");
  }
  const uint8_t* in = page + offset;
  const uint8_t* end = in + length;
  Row row(Load64(in));
  in += 8;
  const uint16_t cells = Load16(in);
  in += 2;
  for (uint16_t c = 0; c < cells; ++c) {
    if (in + 5 > end) return Status::OutOfRange("corrupt row payload");
    const uint32_t attribute = Load32(in);
    in += 4;
    const uint8_t type = *in++;
    switch (static_cast<ValueType>(type)) {
      case ValueType::kInt64:
        if (in + 8 > end) return Status::OutOfRange("corrupt row payload");
        row.Set(attribute, Value(static_cast<int64_t>(Load64(in))));
        in += 8;
        break;
      case ValueType::kDouble: {
        if (in + 8 > end) return Status::OutOfRange("corrupt row payload");
        double d;
        std::memcpy(&d, in, 8);
        row.Set(attribute, Value(d));
        in += 8;
        break;
      }
      case ValueType::kString: {
        if (in + 2 > end) return Status::OutOfRange("corrupt row payload");
        const uint16_t size = Load16(in);
        in += 2;
        if (in + size > end) return Status::OutOfRange("corrupt row payload");
        row.Set(attribute,
                Value(std::string(reinterpret_cast<const char*>(in), size)));
        in += size;
        break;
      }
      default:
        return Status::OutOfRange("corrupt value type tag");
    }
  }
  return row;
}

void PageCodec::Tombstone(uint8_t* page, uint16_t slot) const {
  if (slot >= SlotCount(page)) return;
  Store16(SlotEntry(page, page_size_, slot) + 2, 0);
}

size_t PageCodec::Compact(uint8_t* page) const {
  const uint16_t slots = SlotCount(page);
  std::vector<Row> live;
  for (uint16_t slot = 0; slot < slots; ++slot) {
    if (!IsLive(page, slot)) continue;
    StatusOr<Row> row = ReadRow(page, slot);
    CINDERELLA_CHECK(row.ok());
    live.push_back(std::move(row).value());
  }
  InitPage(page);
  for (const Row& row : live) {
    const auto slot = AppendRow(page, row);
    CINDERELLA_CHECK(slot.has_value());
  }
  return live.size();
}

}  // namespace cinderella
