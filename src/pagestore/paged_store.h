#ifndef CINDERELLA_PAGESTORE_PAGED_STORE_H_
#define CINDERELLA_PAGESTORE_PAGED_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/page_codec.h"
#include "query/query.h"

namespace cinderella {

/// Physical I/O counters of one paged query.
struct PagedScanResult {
  uint64_t partitions_total = 0;
  uint64_t partitions_scanned = 0;
  uint64_t partitions_pruned = 0;
  uint64_t pages_fetched = 0;    // Buffer pool fetches issued by the scan.
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
};

/// Disk-resident image of a horizontal partitioning: each partition is a
/// chain of slotted pages, with the partition synopses kept in memory for
/// pruning — the paper's "pages may represent a partition granularity"
/// deployment (Section II).
///
/// A query fetches only the page chains of partitions whose synopsis
/// intersects the query, so the number of pages read (the physical cost
/// on a disk-based system) shrinks exactly with the pruning rate.
class PagedStore {
 public:
  /// `pool` must be constructed over `pager`; the store allocates and
  /// frees pages through the pager and reads/writes them through the
  /// pool. With `track_entities` false the per-entity index is not
  /// maintained: Insert skips the duplicate-id check (the same entity may
  /// appear in several chains) and Delete/Lookup are unavailable — the
  /// mode the cold tier uses, where chains are dropped wholesale and the
  /// hot engine owns entity identity.
  PagedStore(Pager* pager, BufferPool* pool, bool track_entities = true);

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  /// Materializes one partition from an in-memory catalog partition:
  /// writes its rows into a fresh page chain and registers its synopsis.
  /// Returns the store-local partition index.
  StatusOr<size_t> AddPartition(const Partition& partition);

  /// Creates an empty partition, reusing the slot of a dropped partition
  /// when one exists.
  size_t AddEmptyPartition();

  /// Frees every page of partition `index` and retires its slot for reuse
  /// by AddEmptyPartition. Entity-index entries pointing into the chain
  /// are erased.
  Status DropPartition(size_t index);

  /// Appends a row to partition `index`, growing its chain as needed and
  /// updating its synopsis.
  Status Insert(size_t index, const Row& row);

  /// Tombstones an entity's row. The synopsis is *not* shrunk (a
  /// conservative over-approximation, like real systems' stale catalog
  /// stats); once the chain's tombstone ratio reaches vacuum_threshold()
  /// the chain is compacted and its synopsis rebuilt automatically.
  Status Delete(EntityId entity);

  /// Point lookup via the in-memory entity index.
  StatusOr<Row> Lookup(EntityId entity);

  /// Streams the live rows of partition `index`, in chain order, into
  /// `fn`.
  Status ForEachRow(size_t index, const std::function<void(Row&&)>& fn);

  /// Executes an attribute-set query with synopsis pruning; rows of
  /// non-pruned partitions are decoded and matched.
  StatusOr<PagedScanResult> ExecuteQuery(const Query& query);

  /// Compacts one chain (dropping tombstones), frees its surplus pages,
  /// and recomputes its synopsis.
  Status VacuumChain(size_t index);

  /// Compacts every page (dropping tombstones) and recomputes synopses.
  Status Vacuum();

  /// Tombstone ratio (tombstones / stored slots, per chain) at which
  /// Delete triggers an automatic VacuumChain. <= 0 disables the
  /// trigger. Default 0.5.
  double vacuum_threshold() const { return vacuum_threshold_; }
  void set_vacuum_threshold(double ratio) { vacuum_threshold_ = ratio; }

  /// Partition slots, including dropped ones awaiting reuse.
  size_t partition_count() const { return partitions_.size(); }
  uint64_t entity_count() const { return entity_index_.size(); }

  bool PartitionDropped(size_t index) const;

  /// Pages used by partition `index`.
  size_t PartitionPageCount(size_t index) const;

  /// Live (non-tombstoned) rows stored in partition `index`.
  uint64_t PartitionRowCount(size_t index) const;

  /// Tombstoned slots in partition `index` (reset by vacuum).
  uint64_t PartitionTombstoneCount(size_t index) const;

  const Synopsis& PartitionSynopsis(size_t index) const;

 private:
  struct PartitionChain {
    std::vector<PageId> pages;
    Synopsis synopsis;
    uint64_t live_rows = 0;
    uint64_t tombstones = 0;
    bool dropped = false;
  };
  struct RowLocation {
    size_t partition;
    PageId page;
    uint16_t slot;
  };

  Status AppendToChain(PartitionChain& chain, size_t partition_index,
                       const Row& row);
  Status FreeChainPages(PartitionChain& chain);

  Pager* pager_;
  BufferPool* pool_;
  PageCodec codec_;
  bool track_entities_;
  double vacuum_threshold_ = 0.5;
  std::vector<PartitionChain> partitions_;
  std::vector<size_t> free_slots_;
  std::unordered_map<EntityId, RowLocation> entity_index_;
};

}  // namespace cinderella

#endif  // CINDERELLA_PAGESTORE_PAGED_STORE_H_
