#ifndef CINDERELLA_PAGESTORE_PAGED_STORE_H_
#define CINDERELLA_PAGESTORE_PAGED_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/page_codec.h"
#include "query/query.h"

namespace cinderella {

/// Physical I/O counters of one paged query.
struct PagedScanResult {
  uint64_t partitions_total = 0;
  uint64_t partitions_scanned = 0;
  uint64_t partitions_pruned = 0;
  uint64_t pages_fetched = 0;    // Buffer pool fetches issued by the scan.
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
};

/// Disk-resident image of a horizontal partitioning: each partition is a
/// chain of slotted pages, with the partition synopses kept in memory for
/// pruning — the paper's "pages may represent a partition granularity"
/// deployment (Section II).
///
/// A query fetches only the page chains of partitions whose synopsis
/// intersects the query, so the number of pages read (the physical cost
/// on a disk-based system) shrinks exactly with the pruning rate.
class PagedStore {
 public:
  /// `pool` must be constructed over `pager`; the store allocates and
  /// frees pages through the pager and reads/writes them through the
  /// pool.
  PagedStore(Pager* pager, BufferPool* pool);

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  /// Materializes one partition from an in-memory catalog partition:
  /// writes its rows into a fresh page chain and registers its synopsis.
  /// Returns the store-local partition index.
  StatusOr<size_t> AddPartition(const Partition& partition);

  /// Creates an empty partition with an explicit synopsis (for direct
  /// use without an in-memory catalog).
  size_t AddEmptyPartition();

  /// Appends a row to partition `index`, growing its chain as needed and
  /// updating its synopsis.
  Status Insert(size_t index, const Row& row);

  /// Tombstones an entity's row. The synopsis is *not* shrunk (a
  /// conservative over-approximation, like real systems' stale catalog
  /// stats); call Vacuum() to compact pages and rebuild synopses.
  Status Delete(EntityId entity);

  /// Point lookup via the in-memory entity index.
  StatusOr<Row> Lookup(EntityId entity);

  /// Executes an attribute-set query with synopsis pruning; rows of
  /// non-pruned partitions are decoded and matched.
  StatusOr<PagedScanResult> ExecuteQuery(const Query& query);

  /// Compacts every page (dropping tombstones) and recomputes synopses.
  Status Vacuum();

  size_t partition_count() const { return partitions_.size(); }
  uint64_t entity_count() const { return entity_index_.size(); }

  /// Pages used by partition `index`.
  size_t PartitionPageCount(size_t index) const;

  const Synopsis& PartitionSynopsis(size_t index) const;

 private:
  struct PartitionChain {
    std::vector<PageId> pages;
    Synopsis synopsis;
  };
  struct RowLocation {
    size_t partition;
    PageId page;
    uint16_t slot;
  };

  Status AppendToChain(PartitionChain& chain, size_t partition_index,
                       const Row& row);

  Pager* pager_;
  BufferPool* pool_;
  PageCodec codec_;
  std::vector<PartitionChain> partitions_;
  std::unordered_map<EntityId, RowLocation> entity_index_;
};

}  // namespace cinderella

#endif  // CINDERELLA_PAGESTORE_PAGED_STORE_H_
