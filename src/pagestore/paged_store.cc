#include "pagestore/paged_store.h"

#include "common/logging.h"

namespace cinderella {

PagedStore::PagedStore(Pager* pager, BufferPool* pool, bool track_entities)
    : pager_(pager),
      pool_(pool),
      codec_(pager->page_size()),
      track_entities_(track_entities) {
  CINDERELLA_CHECK(pager != nullptr && pool != nullptr);
}

StatusOr<size_t> PagedStore::AddPartition(const Partition& partition) {
  const size_t index = AddEmptyPartition();
  for (const Row& row : partition.segment().rows()) {
    CINDERELLA_RETURN_IF_ERROR(Insert(index, row));
  }
  return index;
}

size_t PagedStore::AddEmptyPartition() {
  if (!free_slots_.empty()) {
    const size_t index = free_slots_.back();
    free_slots_.pop_back();
    partitions_[index] = PartitionChain{};
    return index;
  }
  partitions_.push_back({});
  return partitions_.size() - 1;
}

Status PagedStore::FreeChainPages(PartitionChain& chain) {
  for (PageId page : chain.pages) {
    CINDERELLA_RETURN_IF_ERROR(pool_->Discard(page));
    CINDERELLA_RETURN_IF_ERROR(pager_->FreePage(page));
  }
  chain.pages.clear();
  return Status::OK();
}

Status PagedStore::DropPartition(size_t index) {
  if (index >= partitions_.size()) {
    return Status::OutOfRange("no partition " + std::to_string(index));
  }
  PartitionChain& chain = partitions_[index];
  if (chain.dropped) {
    return Status::FailedPrecondition("partition " + std::to_string(index) +
                                      " already dropped");
  }
  CINDERELLA_RETURN_IF_ERROR(FreeChainPages(chain));
  if (track_entities_) {
    for (auto it = entity_index_.begin(); it != entity_index_.end();) {
      if (it->second.partition == index) {
        it = entity_index_.erase(it);
      } else {
        ++it;
      }
    }
  }
  chain = PartitionChain{};
  chain.dropped = true;
  free_slots_.push_back(index);
  return Status::OK();
}

Status PagedStore::AppendToChain(PartitionChain& chain,
                                 size_t partition_index, const Row& row) {
  if (!chain.pages.empty()) {
    StatusOr<PageHandle> handle = pool_->Fetch(chain.pages.back());
    CINDERELLA_RETURN_IF_ERROR(handle.status());
    const auto slot = codec_.AppendRow(handle->mutable_data(), row);
    if (slot.has_value()) {
      handle->MarkDirty();
      if (track_entities_) {
        entity_index_[row.id()] =
            RowLocation{partition_index, chain.pages.back(), *slot};
      }
      ++chain.live_rows;
      return Status::OK();
    }
  }
  StatusOr<PageId> page = pager_->AllocatePage();
  CINDERELLA_RETURN_IF_ERROR(page.status());
  StatusOr<PageHandle> handle = pool_->Fetch(*page);
  CINDERELLA_RETURN_IF_ERROR(handle.status());
  codec_.InitPage(handle->mutable_data());
  const auto slot = codec_.AppendRow(handle->mutable_data(), row);
  if (!slot.has_value()) {
    return Status::InvalidArgument(
        "row " + std::to_string(row.id()) + " does not fit in one page (" +
        std::to_string(PageCodec::EncodedRowSize(row)) + " bytes)");
  }
  handle->MarkDirty();
  chain.pages.push_back(*page);
  if (track_entities_) {
    entity_index_[row.id()] = RowLocation{partition_index, *page, *slot};
  }
  ++chain.live_rows;
  return Status::OK();
}

Status PagedStore::Insert(size_t index, const Row& row) {
  if (index >= partitions_.size() || partitions_[index].dropped) {
    return Status::OutOfRange("no partition " + std::to_string(index));
  }
  if (track_entities_ && entity_index_.count(row.id()) > 0) {
    return Status::AlreadyExists("entity " + std::to_string(row.id()) +
                                 " already stored");
  }
  PartitionChain& chain = partitions_[index];
  CINDERELLA_RETURN_IF_ERROR(AppendToChain(chain, index, row));
  chain.synopsis.UnionWith(row.AttributeSynopsis());
  return Status::OK();
}

Status PagedStore::Delete(EntityId entity) {
  if (!track_entities_) {
    return Status::FailedPrecondition("entity tracking disabled");
  }
  auto it = entity_index_.find(entity);
  if (it == entity_index_.end()) {
    return Status::NotFound("entity " + std::to_string(entity) +
                            " not stored");
  }
  const size_t index = it->second.partition;
  {
    StatusOr<PageHandle> handle = pool_->Fetch(it->second.page);
    CINDERELLA_RETURN_IF_ERROR(handle.status());
    codec_.Tombstone(handle->mutable_data(), it->second.slot);
    handle->MarkDirty();
  }
  entity_index_.erase(it);
  PartitionChain& chain = partitions_[index];
  CINDERELLA_CHECK(chain.live_rows > 0);
  --chain.live_rows;
  ++chain.tombstones;
  // Automatic vacuum: once a chain is mostly dead space its synopsis is a
  // stale over-approximation and scans fetch pages of tombstones — compact
  // it and rebuild the synopsis from the survivors.
  const uint64_t slots = chain.live_rows + chain.tombstones;
  if (vacuum_threshold_ > 0.0 && slots > 0 &&
      static_cast<double>(chain.tombstones) >=
          vacuum_threshold_ * static_cast<double>(slots)) {
    CINDERELLA_RETURN_IF_ERROR(VacuumChain(index));
  }
  return Status::OK();
}

StatusOr<Row> PagedStore::Lookup(EntityId entity) {
  if (!track_entities_) {
    return Status::FailedPrecondition("entity tracking disabled");
  }
  auto it = entity_index_.find(entity);
  if (it == entity_index_.end()) {
    return Status::NotFound("entity " + std::to_string(entity) +
                            " not stored");
  }
  StatusOr<PageHandle> handle = pool_->Fetch(it->second.page);
  CINDERELLA_RETURN_IF_ERROR(handle.status());
  return codec_.ReadRow(handle->data(), it->second.slot);
}

Status PagedStore::ForEachRow(size_t index,
                              const std::function<void(Row&&)>& fn) {
  if (index >= partitions_.size() || partitions_[index].dropped) {
    return Status::OutOfRange("no partition " + std::to_string(index));
  }
  for (PageId page : partitions_[index].pages) {
    StatusOr<PageHandle> handle = pool_->Fetch(page);
    CINDERELLA_RETURN_IF_ERROR(handle.status());
    const uint16_t slots = codec_.SlotCount(handle->data());
    for (uint16_t slot = 0; slot < slots; ++slot) {
      if (!codec_.IsLive(handle->data(), slot)) continue;
      StatusOr<Row> row = codec_.ReadRow(handle->data(), slot);
      CINDERELLA_RETURN_IF_ERROR(row.status());
      fn(std::move(row).value());
    }
  }
  return Status::OK();
}

StatusOr<PagedScanResult> PagedStore::ExecuteQuery(const Query& query) {
  PagedScanResult result;
  for (const PartitionChain& chain : partitions_) {
    if (chain.dropped) continue;
    ++result.partitions_total;
    if (!chain.synopsis.Intersects(query.attributes())) {
      ++result.partitions_pruned;
      continue;
    }
    ++result.partitions_scanned;
    for (PageId page : chain.pages) {
      StatusOr<PageHandle> handle = pool_->Fetch(page);
      CINDERELLA_RETURN_IF_ERROR(handle.status());
      ++result.pages_fetched;
      const uint16_t slots = codec_.SlotCount(handle->data());
      for (uint16_t slot = 0; slot < slots; ++slot) {
        if (!codec_.IsLive(handle->data(), slot)) continue;
        StatusOr<Row> row = codec_.ReadRow(handle->data(), slot);
        CINDERELLA_RETURN_IF_ERROR(row.status());
        ++result.rows_scanned;
        if (query.Matches(row->AttributeSynopsis())) ++result.rows_matched;
      }
    }
  }
  return result;
}

Status PagedStore::VacuumChain(size_t index) {
  if (index >= partitions_.size() || partitions_[index].dropped) {
    return Status::OutOfRange("no partition " + std::to_string(index));
  }
  PartitionChain& chain = partitions_[index];
  // Collect live rows of the whole chain, rewrite densely, free the
  // now-unused old pages.
  std::vector<Row> live;
  for (PageId page : chain.pages) {
    StatusOr<PageHandle> handle = pool_->Fetch(page);
    CINDERELLA_RETURN_IF_ERROR(handle.status());
    const uint16_t slots = codec_.SlotCount(handle->data());
    for (uint16_t slot = 0; slot < slots; ++slot) {
      if (!codec_.IsLive(handle->data(), slot)) continue;
      StatusOr<Row> row = codec_.ReadRow(handle->data(), slot);
      CINDERELLA_RETURN_IF_ERROR(row.status());
      live.push_back(std::move(row).value());
    }
  }
  std::vector<PageId> old_pages = std::move(chain.pages);
  chain.pages.clear();
  chain.synopsis.Clear();
  chain.live_rows = 0;
  chain.tombstones = 0;
  for (const Row& row : live) {
    CINDERELLA_RETURN_IF_ERROR(AppendToChain(chain, index, row));
    chain.synopsis.UnionWith(row.AttributeSynopsis());
  }
  // Free the old chain (the new one uses freshly allocated pages).
  for (PageId page : old_pages) {
    CINDERELLA_RETURN_IF_ERROR(pool_->Discard(page));
    CINDERELLA_RETURN_IF_ERROR(pager_->FreePage(page));
  }
  return Status::OK();
}

Status PagedStore::Vacuum() {
  for (size_t index = 0; index < partitions_.size(); ++index) {
    if (partitions_[index].dropped) continue;
    CINDERELLA_RETURN_IF_ERROR(VacuumChain(index));
  }
  return Status::OK();
}

bool PagedStore::PartitionDropped(size_t index) const {
  CINDERELLA_CHECK(index < partitions_.size());
  return partitions_[index].dropped;
}

size_t PagedStore::PartitionPageCount(size_t index) const {
  CINDERELLA_CHECK(index < partitions_.size());
  return partitions_[index].pages.size();
}

uint64_t PagedStore::PartitionRowCount(size_t index) const {
  CINDERELLA_CHECK(index < partitions_.size());
  return partitions_[index].live_rows;
}

uint64_t PagedStore::PartitionTombstoneCount(size_t index) const {
  CINDERELLA_CHECK(index < partitions_.size());
  return partitions_[index].tombstones;
}

const Synopsis& PagedStore::PartitionSynopsis(size_t index) const {
  CINDERELLA_CHECK(index < partitions_.size());
  return partitions_[index].synopsis;
}

}  // namespace cinderella
