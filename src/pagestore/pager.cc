#include "pagestore/pager.h"

#include <cstring>
#include <vector>

#include "common/logging.h"

namespace cinderella {
namespace {

constexpr uint32_t kMagic = 0x50444e43;  // "CNDP"
constexpr uint32_t kVersion = 1;

struct Header {
  uint32_t magic;
  uint32_t version;
  uint64_t page_size;
  uint64_t page_count;
  uint64_t free_head;
  uint64_t free_count;
};

}  // namespace

Pager::Pager(std::fstream file, std::string path, size_t page_size)
    : file_(std::move(file)), path_(std::move(path)), page_size_(page_size) {}

Pager::~Pager() { Flush(); }

StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                             size_t page_size,
                                             bool truncate) {
  if (page_size < sizeof(Header) || page_size > 65536) {
    return Status::InvalidArgument("unsupported page size");
  }
  std::ios::openmode mode = std::ios::binary | std::ios::in | std::ios::out;
  if (truncate) mode |= std::ios::trunc;
  std::fstream file(path, mode);
  if (!file.is_open() && truncate) {
    // in|out|trunc fails when the file does not exist on some platforms;
    // create it first.
    std::ofstream create(path, std::ios::binary | std::ios::trunc);
    create.close();
    file.open(path, std::ios::binary | std::ios::in | std::ios::out);
  }
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  std::unique_ptr<Pager> pager(new Pager(std::move(file), path, page_size));

  if (truncate) {
    CINDERELLA_RETURN_IF_ERROR(pager->WriteHeader());
    return pager;
  }

  // Existing file: read and validate the header.
  Header header{};
  pager->file_.seekg(0);
  pager->file_.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!pager->file_.good() || header.magic != kMagic ||
      header.version != kVersion) {
    return Status::InvalidArgument(path + " is not a Cinderella page file");
  }
  if (header.page_size != page_size) {
    return Status::InvalidArgument(
        "page size mismatch: file has " + std::to_string(header.page_size));
  }
  pager->page_count_ = header.page_count;
  pager->free_head_ = header.free_head;
  pager->free_count_ = header.free_count;
  return pager;
}

Status Pager::WriteHeader() {
  Header header{kMagic, kVersion, page_size_, page_count_, free_head_,
                free_count_};
  std::vector<uint8_t> buffer(page_size_, 0);
  std::memcpy(buffer.data(), &header, sizeof(header));
  file_.clear();
  file_.seekp(0);
  file_.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(page_size_));
  if (!file_.good()) return Status::Internal("header write failure");
  return Status::OK();
}

Status Pager::Seek(PageId page) {
  if (page == 0 || page >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " out of range");
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(page * page_size_));
  file_.seekp(static_cast<std::streamoff>(page * page_size_));
  return Status::OK();
}

StatusOr<PageId> Pager::AllocatePage() {
  std::vector<uint8_t> zero(page_size_, 0);
  if (free_head_ != 0) {
    const PageId page = free_head_;
    CINDERELLA_RETURN_IF_ERROR(ReadPage(page, zero.data()));
    std::memcpy(&free_head_, zero.data(), sizeof(free_head_));
    --free_count_;
    std::fill(zero.begin(), zero.end(), 0);
    CINDERELLA_RETURN_IF_ERROR(WritePage(page, zero.data()));
    return page;
  }
  const PageId page = page_count_++;
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(page * page_size_));
  file_.write(reinterpret_cast<const char*>(zero.data()),
              static_cast<std::streamsize>(page_size_));
  if (!file_.good()) return Status::Internal("page extension failure");
  ++pages_written_;
  return page;
}

Status Pager::ReadPage(PageId page, uint8_t* buffer) {
  CINDERELLA_RETURN_IF_ERROR(Seek(page));
  file_.read(reinterpret_cast<char*>(buffer),
             static_cast<std::streamsize>(page_size_));
  if (!file_.good()) return Status::Internal("page read failure");
  ++pages_read_;
  return Status::OK();
}

Status Pager::WritePage(PageId page, const uint8_t* buffer) {
  CINDERELLA_RETURN_IF_ERROR(Seek(page));
  file_.write(reinterpret_cast<const char*>(buffer),
              static_cast<std::streamsize>(page_size_));
  if (!file_.good()) return Status::Internal("page write failure");
  ++pages_written_;
  return Status::OK();
}

Status Pager::FreePage(PageId page) {
  if (page == 0 || page >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " out of range");
  }
  std::vector<uint8_t> buffer(page_size_, 0);
  std::memcpy(buffer.data(), &free_head_, sizeof(free_head_));
  CINDERELLA_RETURN_IF_ERROR(WritePage(page, buffer.data()));
  free_head_ = page;
  ++free_count_;
  return Status::OK();
}

Status Pager::Flush() {
  CINDERELLA_RETURN_IF_ERROR(WriteHeader());
  file_.flush();
  if (!file_.good()) return Status::Internal("flush failure");
  return Status::OK();
}

}  // namespace cinderella
