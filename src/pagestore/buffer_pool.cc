#include "pagestore/buffer_pool.h"

#include "common/logging.h"

namespace cinderella {

// -- PageHandle ----------------------------------------------------------------

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), page_(other.page_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    other.pool_ = nullptr;
  }
  return *this;
}

const uint8_t* PageHandle::data() const {
  CINDERELLA_DCHECK(valid());
  return pool_->frames_[frame_].data.data();
}

uint8_t* PageHandle::mutable_data() {
  CINDERELLA_DCHECK(valid());
  return pool_->frames_[frame_].data.data();
}

void PageHandle::MarkDirty() {
  CINDERELLA_DCHECK(valid());
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

// -- BufferPool ----------------------------------------------------------------

BufferPool::BufferPool(Pager* pager, size_t capacity_frames)
    : pager_(pager), frames_(capacity_frames) {
  CINDERELLA_CHECK(pager != nullptr);
  CINDERELLA_CHECK(capacity_frames >= 1);
  for (Frame& frame : frames_) frame.data.resize(pager->page_size());
  free_frames_.reserve(capacity_frames);
  for (size_t i = capacity_frames; i > 0; --i) {
    free_frames_.push_back(i - 1);
  }
}

BufferPool::~BufferPool() { FlushAll(); }

StatusOr<PageHandle> BufferPool::Fetch(PageId page) {
  auto it = page_to_frame_.find(page);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_position);
      frame.in_lru = false;
    }
    ++frame.pins;
    return PageHandle(this, it->second, page);
  }

  ++stats_.misses;
  size_t slot;
  if (!free_frames_.empty()) {
    slot = free_frames_.back();
    free_frames_.pop_back();
  } else {
    CINDERELLA_RETURN_IF_ERROR(EvictOne(&slot));
  }
  Frame& frame = frames_[slot];
  CINDERELLA_RETURN_IF_ERROR(pager_->ReadPage(page, frame.data.data()));
  frame.page = page;
  frame.pins = 1;
  frame.dirty = false;
  frame.in_lru = false;
  page_to_frame_[page] = slot;
  return PageHandle(this, slot, page);
}

Status BufferPool::EvictOne(size_t* frame_out) {
  if (lru_.empty()) {
    return Status::FailedPrecondition("all buffer pool frames are pinned");
  }
  const size_t slot = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[slot];
  frame.in_lru = false;
  CINDERELLA_DCHECK(frame.pins == 0);
  ++stats_.evictions;
  CINDERELLA_RETURN_IF_ERROR(WriteBack(frame));
  page_to_frame_.erase(frame.page);
  frame.page = 0;
  *frame_out = slot;
  return Status::OK();
}

Status BufferPool::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  CINDERELLA_RETURN_IF_ERROR(pager_->WritePage(frame.page, frame.data.data()));
  frame.dirty = false;
  ++stats_.writebacks;
  return Status::OK();
}

void BufferPool::Unpin(size_t slot) {
  Frame& frame = frames_[slot];
  CINDERELLA_DCHECK(frame.pins > 0);
  if (--frame.pins == 0) {
    lru_.push_back(slot);
    frame.lru_position = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.page != 0) {
      CINDERELLA_RETURN_IF_ERROR(WriteBack(frame));
    }
  }
  return pager_->Flush();
}

Status BufferPool::Discard(PageId page) {
  auto it = page_to_frame_.find(page);
  if (it == page_to_frame_.end()) return Status::OK();
  Frame& frame = frames_[it->second];
  if (frame.pins > 0) {
    return Status::FailedPrecondition("page " + std::to_string(page) +
                                      " is pinned");
  }
  if (frame.in_lru) {
    lru_.erase(frame.lru_position);
    frame.in_lru = false;
  }
  free_frames_.push_back(it->second);
  frame.page = 0;
  frame.dirty = false;
  page_to_frame_.erase(it);
  return Status::OK();
}

}  // namespace cinderella
