#ifndef CINDERELLA_PAGESTORE_PAGE_CODEC_H_
#define CINDERELLA_PAGESTORE_PAGE_CODEC_H_

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "storage/row.h"

namespace cinderella {

/// Identifier of a page within a Pager file. Page 0 is the file header;
/// data pages start at 1.
using PageId = uint64_t;

/// Slotted-page layout for sparse universal-table rows.
///
/// The paper's third deployment scenario puts the partitioning at page
/// granularity in a disk-based system; this codec is the physical row
/// format for that scenario.
///
/// Layout (little-endian):
///   [0..2)  uint16 slot_count
///   [2..4)  uint16 free_offset   -- next free payload byte
///   [4..free_offset)             -- row payloads, append-only
///   ...free space...
///   [page_size - 4*slot_count .. page_size)
///           slot directory, growing downwards; slot i occupies the 4
///           bytes at page_size - 4*(i+1): uint16 offset, uint16 length
///           (length 0 = tombstone).
///
/// Row payload: uint64 entity id, uint16 cell count, then per cell:
/// uint32 attribute, uint8 type tag, and 8 bytes (int64/double) or
/// uint16 length + bytes (string).
class PageCodec {
 public:
  /// `page_size` must be >= 64 and <= 65536 (slot offsets are 16-bit).
  explicit PageCodec(size_t page_size);

  size_t page_size() const { return page_size_; }

  /// Formats an empty page in `page` (page_size bytes).
  void InitPage(uint8_t* page) const;

  /// Number of slots (live + tombstoned).
  uint16_t SlotCount(const uint8_t* page) const;

  /// Contiguous free bytes available for one more row (accounting for the
  /// 4-byte slot entry it would need).
  size_t FreeSpace(const uint8_t* page) const;

  /// Encoded payload size of a row.
  static size_t EncodedRowSize(const Row& row);

  /// Appends `row`, returning its slot, or nullopt if it does not fit.
  std::optional<uint16_t> AppendRow(uint8_t* page, const Row& row) const;

  /// True if the slot exists and is not tombstoned.
  bool IsLive(const uint8_t* page, uint16_t slot) const;

  /// Decodes the row in `slot`; fails on tombstones and bad slots.
  StatusOr<Row> ReadRow(const uint8_t* page, uint16_t slot) const;

  /// Tombstones a slot (idempotent). The payload bytes become dead space
  /// until Compact().
  void Tombstone(uint8_t* page, uint16_t slot) const;

  /// Rewrites the page keeping only live rows; slot indexes change.
  /// Returns the number of live rows kept.
  size_t Compact(uint8_t* page) const;

 private:
  size_t page_size_;
};

}  // namespace cinderella

#endif  // CINDERELLA_PAGESTORE_PAGE_CODEC_H_
