#ifndef CINDERELLA_PAGESTORE_BUFFER_POOL_H_
#define CINDERELLA_PAGESTORE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "pagestore/pager.h"

namespace cinderella {

class BufferPool;

/// Pinned view of one cached page. Unpins on destruction. Mutations must
/// be announced with MarkDirty() so the frame is written back on eviction
/// or FlushAll().
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle();
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  const uint8_t* data() const;
  uint8_t* mutable_data();
  PageId page() const { return page_; }
  void MarkDirty();

  /// Explicit early unpin.
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page)
      : pool_(pool), frame_(frame), page_(page) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_ = 0;
};

/// Cache statistics for the benches.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

/// Fixed-capacity LRU buffer pool over a Pager.
///
/// Pinned frames are never evicted; Fetch fails with FailedPrecondition
/// when every frame is pinned. Single-threaded, like the rest of the
/// engine.
class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, reading it from the pager on a miss.
  StatusOr<PageHandle> Fetch(PageId page);

  /// Writes back every dirty frame.
  Status FlushAll();

  /// Drops a page from the cache (e.g. after FreePage); it must not be
  /// pinned.
  Status Discard(PageId page);

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return frames_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page = 0;  // 0 = empty frame.
    std::vector<uint8_t> data;
    uint32_t pins = 0;
    bool dirty = false;
    std::list<size_t>::iterator lru_position;
    bool in_lru = false;
  };

  void Unpin(size_t frame);
  void Touch(size_t frame);
  Status EvictOne(size_t* frame_out);
  Status WriteBack(Frame& frame);

  Pager* pager_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_to_frame_;
  std::list<size_t> lru_;  // Front = least recently used, unpinned only.
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace cinderella

#endif  // CINDERELLA_PAGESTORE_BUFFER_POOL_H_
