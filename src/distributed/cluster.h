#ifndef CINDERELLA_DISTRIBUTED_CLUSTER_H_
#define CINDERELLA_DISTRIBUTED_CLUSTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "query/query.h"

namespace cinderella {

/// How partitions are assigned to nodes.
enum class PlacementPolicy {
  kRoundRobin,   // Partition i -> node i mod N.
  kLeastLoaded,  // Each partition goes to the node with fewest entities.
  /// Extension: co-locate schema-similar partitions. Partitions are
  /// placed (largest first) on the node whose accumulated attribute set
  /// is most Jaccard-similar, subject to a soft load cap of 1.25x the
  /// mean — so selective queries touch few nodes while the balance stays
  /// bounded.
  kSchemaAware,
};

/// Identifier of a simulated node.
using NodeId = uint32_t;

/// Static load of one node after placement.
struct NodeLoad {
  uint64_t partitions = 0;
  uint64_t entities = 0;
  uint64_t bytes = 0;
};

/// Outcome of one distributed query under the simulation's cost model.
struct DistributedQueryResult {
  uint64_t nodes_total = 0;
  /// Nodes holding at least one non-pruned partition; each contact costs
  /// a round trip in a real system.
  uint64_t nodes_contacted = 0;
  uint64_t partitions_scanned = 0;
  uint64_t partitions_pruned = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  /// Rows scanned by the busiest contacted node — the parallel critical
  /// path (straggler) of the scatter-gather.
  uint64_t max_node_rows = 0;
  /// Cells of matched rows shipped back to the coordinator.
  uint64_t result_cells_shipped = 0;
};

/// Simulation of the paper's first deployment scenario (Section II):
/// "Most obviously in distributed databases or distributed file systems,
/// partitions are distributed among the nodes."
///
/// The cluster assigns the partitions of a catalog to N nodes and models
/// scatter-gather execution of attribute-set queries: the coordinator
/// prunes partitions by synopsis, contacts only nodes owning surviving
/// partitions, every contacted node scans its local partitions in
/// parallel, and matched rows are shipped back. The interesting tension —
/// why web-scale systems hash instead (Bigtable/Dynamo/Cassandra, the
/// paper's related work) — is pruning fan-out vs load balance, which the
/// bench quantifies.
class Cluster {
 public:
  /// `num_nodes` >= 1.
  Cluster(size_t num_nodes, PlacementPolicy policy);

  /// Assigns every live partition of `catalog` to a node. May be called
  /// again after the catalog changes (re-places everything).
  void Place(const PartitionCatalog& catalog);

  /// What one PlaceIncremental call changed.
  struct PlacementDelta {
    size_t placed = 0;   // New partitions assigned this call.
    size_t removed = 0;  // Assignments dropped (partition no longer live).
    size_t kept = 0;     // Existing assignments left untouched.
  };

  /// Stable re-placement after the catalog changed: partitions already
  /// assigned keep their node (no data movement in a real deployment),
  /// assignments of dropped partitions are forgotten, and only partitions
  /// new since the last placement are assigned — per the policy, against
  /// the loads and (for kSchemaAware) node synopses implied by the kept
  /// assignments. First call on an empty cluster behaves like Place.
  PlacementDelta PlaceIncremental(const PartitionCatalog& catalog);

  /// Node owning a partition; NotFound before Place() or for unknown ids.
  StatusOr<NodeId> NodeOf(PartitionId partition) const;

  /// Executes a query against the placed catalog.
  DistributedQueryResult Execute(const Query& query,
                                 const PartitionCatalog& catalog) const;

  /// Static per-node load after Place().
  std::vector<NodeLoad> node_loads(const PartitionCatalog& catalog) const;

  /// max/mean entity load across nodes (1.0 = perfectly balanced); 0 when
  /// the cluster is empty.
  double LoadImbalance(const PartitionCatalog& catalog) const;

  size_t num_nodes() const { return num_nodes_; }

 private:
  size_t num_nodes_;
  PlacementPolicy policy_;
  std::unordered_map<PartitionId, NodeId> assignment_;
};

}  // namespace cinderella

#endif  // CINDERELLA_DISTRIBUTED_CLUSTER_H_
