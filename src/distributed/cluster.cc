#include "distributed/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace cinderella {

Cluster::Cluster(size_t num_nodes, PlacementPolicy policy)
    : num_nodes_(num_nodes), policy_(policy) {
  CINDERELLA_CHECK(num_nodes >= 1);
}

void Cluster::Place(const PartitionCatalog& catalog) {
  assignment_.clear();
  std::vector<uint64_t> load(num_nodes_, 0);

  if (policy_ == PlacementPolicy::kSchemaAware) {
    // Largest-first greedy with per-node synopsis affinity.
    std::vector<const Partition*> partitions;
    uint64_t total_entities = 0;
    catalog.ForEachPartition([&](const Partition& partition) {
      partitions.push_back(&partition);
      total_entities += partition.entity_count();
    });
    std::sort(partitions.begin(), partitions.end(),
              [](const Partition* a, const Partition* b) {
                if (a->entity_count() != b->entity_count()) {
                  return a->entity_count() > b->entity_count();
                }
                return a->id() < b->id();
              });
    const double cap =
        1.25 * static_cast<double>(total_entities) /
        static_cast<double>(num_nodes_);
    std::vector<Synopsis> node_synopsis(num_nodes_);
    for (const Partition* partition : partitions) {
      NodeId best = 0;
      double best_score = -1.0;
      for (size_t n = 0; n < num_nodes_; ++n) {
        if (static_cast<double>(load[n] + partition->entity_count()) > cap &&
            load[n] > 0) {
          continue;  // Soft cap (always allow an empty node).
        }
        const Synopsis& mine = partition->attribute_synopsis();
        const size_t union_count = mine.UnionCount(node_synopsis[n]);
        const double jaccard =
            union_count == 0
                ? 1.0
                : static_cast<double>(
                      mine.IntersectCount(node_synopsis[n])) /
                      static_cast<double>(union_count);
        // Prefer affinity; break ties toward the lighter node.
        const double score =
            jaccard - 1e-9 * static_cast<double>(load[n]);
        if (score > best_score) {
          best_score = score;
          best = static_cast<NodeId>(n);
        }
      }
      if (best_score < 0.0) {
        // Every node over cap: fall back to least loaded.
        best = static_cast<NodeId>(
            std::min_element(load.begin(), load.end()) - load.begin());
      }
      assignment_[partition->id()] = best;
      load[best] += partition->entity_count();
      node_synopsis[best].UnionWith(partition->attribute_synopsis());
    }
    return;
  }

  size_t next = 0;
  catalog.ForEachPartition([&](const Partition& partition) {
    NodeId node = 0;
    switch (policy_) {
      case PlacementPolicy::kRoundRobin:
        node = static_cast<NodeId>(next++ % num_nodes_);
        break;
      case PlacementPolicy::kLeastLoaded:
        node = static_cast<NodeId>(
            std::min_element(load.begin(), load.end()) - load.begin());
        break;
      case PlacementPolicy::kSchemaAware:
        break;  // Handled above.
    }
    assignment_[partition.id()] = node;
    load[node] += partition.entity_count();
  });
}

Cluster::PlacementDelta Cluster::PlaceIncremental(
    const PartitionCatalog& catalog) {
  PlacementDelta delta;

  // Forget assignments whose partition is gone.
  std::unordered_map<PartitionId, const Partition*> live;
  catalog.ForEachPartition(
      [&](const Partition& partition) { live[partition.id()] = &partition; });
  for (auto it = assignment_.begin(); it != assignment_.end();) {
    if (live.find(it->first) == live.end()) {
      it = assignment_.erase(it);
      ++delta.removed;
    } else {
      ++it;
    }
  }
  delta.kept = assignment_.size();

  // Loads and node synopses implied by the pinned assignments.
  std::vector<uint64_t> load(num_nodes_, 0);
  std::vector<Synopsis> node_synopsis(num_nodes_);
  uint64_t total_entities = 0;
  std::vector<const Partition*> fresh;
  for (const auto& [id, partition] : live) {
    total_entities += partition->entity_count();
    auto it = assignment_.find(id);
    if (it == assignment_.end()) {
      fresh.push_back(partition);
      continue;
    }
    load[it->second] += partition->entity_count();
    node_synopsis[it->second].UnionWith(partition->attribute_synopsis());
  }
  // Deterministic placement order: largest first (the schema-aware greedy
  // order), ties by id; round-robin/least-loaded just follow it too.
  std::sort(fresh.begin(), fresh.end(),
            [](const Partition* a, const Partition* b) {
              if (a->entity_count() != b->entity_count()) {
                return a->entity_count() > b->entity_count();
              }
              return a->id() < b->id();
            });

  const double cap = 1.25 * static_cast<double>(total_entities) /
                     static_cast<double>(num_nodes_);
  size_t next = assignment_.size();
  for (const Partition* partition : fresh) {
    NodeId best = 0;
    switch (policy_) {
      case PlacementPolicy::kRoundRobin:
        best = static_cast<NodeId>(next++ % num_nodes_);
        break;
      case PlacementPolicy::kLeastLoaded:
        best = static_cast<NodeId>(
            std::min_element(load.begin(), load.end()) - load.begin());
        break;
      case PlacementPolicy::kSchemaAware: {
        double best_score = -1.0;
        for (size_t n = 0; n < num_nodes_; ++n) {
          if (static_cast<double>(load[n] + partition->entity_count()) > cap &&
              load[n] > 0) {
            continue;  // Soft cap (always allow an empty node).
          }
          const Synopsis& mine = partition->attribute_synopsis();
          const size_t union_count = mine.UnionCount(node_synopsis[n]);
          const double jaccard =
              union_count == 0
                  ? 1.0
                  : static_cast<double>(mine.IntersectCount(node_synopsis[n])) /
                        static_cast<double>(union_count);
          const double score = jaccard - 1e-9 * static_cast<double>(load[n]);
          if (score > best_score) {
            best_score = score;
            best = static_cast<NodeId>(n);
          }
        }
        if (best_score < 0.0) {
          best = static_cast<NodeId>(
              std::min_element(load.begin(), load.end()) - load.begin());
        }
        break;
      }
    }
    assignment_[partition->id()] = best;
    load[best] += partition->entity_count();
    node_synopsis[best].UnionWith(partition->attribute_synopsis());
    ++delta.placed;
  }
  return delta;
}

StatusOr<NodeId> Cluster::NodeOf(PartitionId partition) const {
  auto it = assignment_.find(partition);
  if (it == assignment_.end()) {
    return Status::NotFound("partition " + std::to_string(partition) +
                            " is not placed");
  }
  return it->second;
}

DistributedQueryResult Cluster::Execute(
    const Query& query, const PartitionCatalog& catalog) const {
  DistributedQueryResult result;
  result.nodes_total = num_nodes_;
  std::vector<uint64_t> node_rows(num_nodes_, 0);
  std::vector<uint8_t> contacted(num_nodes_, 0);

  catalog.ForEachPartition([&](const Partition& partition) {
    if (!partition.attribute_synopsis().Intersects(query.attributes())) {
      ++result.partitions_pruned;
      return;
    }
    ++result.partitions_scanned;
    auto node = NodeOf(partition.id());
    CINDERELLA_CHECK(node.ok());
    contacted[*node] = 1;
    node_rows[*node] += partition.entity_count();
    result.rows_scanned += partition.entity_count();
    for (const Row& row : partition.segment().rows()) {
      bool matched = false;
      size_t cells = 0;
      for (AttributeId attribute : query.projection()) {
        if (row.Has(attribute)) {
          matched = true;
          ++cells;
        }
      }
      if (matched) {
        ++result.rows_matched;
        result.result_cells_shipped += cells;
      }
    }
  });

  for (size_t n = 0; n < num_nodes_; ++n) {
    result.nodes_contacted += contacted[n];
    result.max_node_rows = std::max(result.max_node_rows, node_rows[n]);
  }
  return result;
}

std::vector<NodeLoad> Cluster::node_loads(
    const PartitionCatalog& catalog) const {
  std::vector<NodeLoad> loads(num_nodes_);
  catalog.ForEachPartition([&](const Partition& partition) {
    auto node = NodeOf(partition.id());
    if (!node.ok()) return;
    NodeLoad& load = loads[*node];
    ++load.partitions;
    load.entities += partition.entity_count();
    load.bytes += partition.segment().byte_size();
  });
  return loads;
}

double Cluster::LoadImbalance(const PartitionCatalog& catalog) const {
  const std::vector<NodeLoad> loads = node_loads(catalog);
  uint64_t total = 0;
  uint64_t peak = 0;
  for (const NodeLoad& load : loads) {
    total += load.entities;
    peak = std::max(peak, load.entities);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(num_nodes_);
  return static_cast<double>(peak) / mean;
}

}  // namespace cinderella
