#ifndef CINDERELLA_INGEST_SHARDED_CATALOG_H_
#define CINDERELLA_INGEST_SHARDED_CATALOG_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/partition.h"
#include "synopsis/synopsis.h"
#include "synopsis/synopsis_tree.h"

namespace cinderella {

/// A sharded, packed mirror of the partition catalog, maintained by the
/// batched insert engine (batch_inserter.h) as the data structure its
/// rating scans run over.
///
/// Layout: partitions are assigned to `id % shard_count()` and each shard
/// keeps structure-of-arrays state — ascending partition ids, SIZE(p)
/// under the engine's measure, synopsis cardinality |p|, and the synopsis
/// bitset words packed into one arena at a fixed per-shard stride. The
/// rating kernel therefore streams cache-dense rows instead of chasing
/// Partition objects, and the three cardinalities the Section IV rating
/// needs come from one popcount loop over the packed words plus the two
/// cached counts (|e∧¬p| = |e| − |e∧p|, |¬e∧p| = |p| − |e∧p|).
///
/// Locking: one mutex per shard, and every accessor holds exactly one
/// shard mutex at a time (never two), so there is no lock-order concern.
/// Scans (ScanShard) and point reads (WithEntry) of shard s only contend
/// with writers (Upsert/Remove) of the same shard — concurrent batches
/// rating different shards proceed in parallel with no snapshot step.
class ShardedCatalog {
 public:
  /// Borrowed view of one packed entry, valid only inside the callback
  /// that received it (the shard mutex is held for the duration).
  struct EntryView {
    PartitionId id = 0;
    uint64_t size = 0;          // SIZE(p) under the engine's measure.
    uint32_t count = 0;         // |p|: cardinality of the rating synopsis.
    const uint64_t* words = nullptr;  // `num_words` words, zero-padded.
    size_t num_words = 0;
  };

  /// With `enable_tree` each shard additionally maintains a synopsis tree
  /// over its entries (dense leaf key `id / shard_count` — within a shard
  /// every id is congruent mod shard_count, so the keying is bijective
  /// and the leaves pack densely). ScanShardCandidates then descends only
  /// subtrees whose union intersects the probe. `tree_fanout` 0 resolves
  /// from CINDERELLA_TREE_FANOUT.
  explicit ShardedCatalog(size_t num_shards, bool enable_tree = false,
                          size_t tree_fanout = 0);

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  size_t shard_count() const { return shards_.size(); }
  size_t ShardOf(PartitionId id) const { return id % shards_.size(); }

  /// Live entries across all shards. Locks each shard briefly; the total
  /// is only a snapshot under concurrent writers.
  size_t partition_count() const;

  /// Inserts or refreshes the entry for `id`. `synopsis` is the
  /// partition's rating synopsis; `size` its SIZE under the engine's
  /// measure. Grows the shard's word stride when the synopsis is wider
  /// than any seen before.
  void Upsert(PartitionId id, uint64_t size, const Synopsis& synopsis);

  /// Removes the entry for `id`; false if absent.
  bool Remove(PartitionId id);

  /// True if `id` has an entry.
  bool Contains(PartitionId id) const;

  /// Drops every entry (shard count is preserved).
  void Clear();

  /// Invokes `fn(const EntryView&)` for every entry of shard
  /// `shard_index` in ascending partition-id order, under that shard's
  /// mutex.
  template <typename Fn>
  void ScanShard(size_t shard_index, Fn&& fn) const {
    const Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t stride = shard.words_per_entry;
    const uint64_t* words = shard.arena.data();
    for (size_t i = 0; i < shard.ids.size(); ++i) {
      fn(EntryView{shard.ids[i], shard.sizes[i], shard.counts[i],
                   words + i * stride, stride});
    }
  }

  /// True when per-shard synopsis trees are maintained (construction
  /// flag).
  bool tree_enabled() const { return tree_enabled_; }

  /// Candidate-restricted form of ScanShard: invokes `fn(const
  /// EntryView&)` under the shard mutex for (a) every entry whose
  /// synopsis intersects the probe words — found by descending the
  /// shard's tree — and (b) every empty-synopsis entry (they intersect
  /// nothing but rate exactly 0 and must stay rateable). Entries skipped
  /// by the descent rate strictly negative, so an argmax with a
  /// rating-desc/id-asc comparator over these candidates equals the full
  /// shard scan's whenever the winner rates >= 0. Requires tree_enabled();
  /// emission order is candidates ascending, then empties ascending.
  template <typename Fn>
  void ScanShardCandidates(size_t shard_index, const uint64_t* probe_words,
                           size_t num_probe_words, Fn&& fn) const {
    const Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    const size_t stride = shard.words_per_entry;
    const uint64_t* words = shard.arena.data();
    auto emit = [&](PartitionId id) {
      const auto it = std::lower_bound(shard.ids.begin(), shard.ids.end(), id);
      if (it == shard.ids.end() || *it != id) return;
      const size_t i = static_cast<size_t>(it - shard.ids.begin());
      fn(EntryView{shard.ids[i], shard.sizes[i], shard.counts[i],
                   words + i * stride, stride});
    };
    const size_t shards = shards_.size();
    shard.tree->ForEachCandidate(
        probe_words, num_probe_words, [&](uint64_t key) {
          emit(static_cast<PartitionId>(key * shards + shard_index));
        });
    for (PartitionId id : shard.empty_ids) emit(id);
  }

  /// Aggregated tree maintenance counters across all shards (zeros when
  /// trees are disabled).
  SynopsisTree::Stats TreeStats() const;

  /// Invokes `fn(const EntryView&)` for the entry of `id` under its
  /// shard's mutex; false if absent (fn not invoked).
  template <typename Fn>
  bool WithEntry(PartitionId id, Fn&& fn) const {
    const Shard& shard = *shards_[ShardOf(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = std::lower_bound(shard.ids.begin(), shard.ids.end(), id);
    if (it == shard.ids.end() || *it != id) return false;
    const size_t i = static_cast<size_t>(it - shard.ids.begin());
    const size_t stride = shard.words_per_entry;
    fn(EntryView{shard.ids[i], shard.sizes[i], shard.counts[i],
                 shard.arena.data() + i * stride, stride});
    return true;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // All vectors below are guarded by mu. `ids` ascending; the entry at
    // index i owns arena[i*words_per_entry, (i+1)*words_per_entry).
    size_t words_per_entry = 1;
    std::vector<PartitionId> ids;
    std::vector<uint64_t> sizes;
    std::vector<uint32_t> counts;
    std::vector<uint64_t> arena;
    // Synopsis tree over this shard's entries (leaf key = id /
    // shard_count); null unless the catalog was built with enable_tree.
    std::unique_ptr<SynopsisTree> tree;
    // Entries whose synopsis is empty (count == 0), ascending: they have
    // no tree candidacy but must ride along in ScanShardCandidates.
    std::vector<PartitionId> empty_ids;
  };

  // unique_ptr slots: Shard holds a mutex and cannot move on vector
  // growth (the vector itself is fixed after construction anyway).
  std::vector<std::unique_ptr<Shard>> shards_;
  bool tree_enabled_ = false;
};

}  // namespace cinderella

#endif  // CINDERELLA_INGEST_SHARDED_CATALOG_H_
