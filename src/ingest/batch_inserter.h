#ifndef CINDERELLA_INGEST_BATCH_INSERTER_H_
#define CINDERELLA_INGEST_BATCH_INSERTER_H_

// Historical header from PR 2, when the engine batched inserts only. The
// machinery now lives in ingest/mutation_pipeline.h as MutationPipeline,
// one write path for the full mutation stream (insert, update, delete,
// reorganize); these aliases keep the original names working for callers
// and option structs layered on them (io/durable_table.h,
// mvcc/versioned_table.h, tools, benches).

#include <memory>

#include "ingest/mutation_pipeline.h"

namespace cinderella {

using BatchInserterOptions = MutationPipelineOptions;
using BatchInserter = MutationPipeline;

/// Creates a MutationPipeline over `cinderella` and attaches it (the
/// original insert-era entry point; identical to AttachMutationPipeline).
inline std::unique_ptr<MutationPipeline> AttachBatchInserter(
    Cinderella* cinderella, MutationPipelineOptions options = {}) {
  return AttachMutationPipeline(cinderella, options);
}

}  // namespace cinderella

#endif  // CINDERELLA_INGEST_BATCH_INSERTER_H_
