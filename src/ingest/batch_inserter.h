#ifndef CINDERELLA_INGEST_BATCH_INSERTER_H_
#define CINDERELLA_INGEST_BATCH_INSERTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cinderella.h"
#include "ingest/sharded_catalog.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Tuning knobs of the batched insert engine.
struct BatchInserterOptions {
  /// Catalog shards (= scan parallelism). Positive wins; 0 resolves from
  /// CinderellaConfig::insert_shards, then the CINDERELLA_INSERT_SHARDS
  /// environment variable, then the hardware concurrency.
  int shards = 0;

  /// Rows placed per rating pass. Larger windows amortize the scan over
  /// more entities (duplicate synopses within a window rate once) but
  /// grow the dirty set the commit phase must revalidate against.
  size_t window = 128;
};

/// The batched insert engine (ISSUE 2 tentpole): amortizes the Algorithm 1
/// rating scan over a window of pending entities and commits placements
/// that are bit-identical to serial single-row inserts.
///
/// How a window is processed:
///  1. Group: rows with identical (rating synopsis, SIZE(e)) collapse
///     into one entity group — one rating per (group, partition) pair.
///  2. Scan (no global lock): every shard of the packed ShardedCatalog
///     mirror is rated against all groups in one partition-major pass
///     (the packed kernel; RatingTermsFromCounts, i.e. the same inline
///     the serial scan evaluates). Each (shard, group) slot keeps the
///     top-2 candidates under the serial comparator (rating descending,
///     partition id ascending — exactly the strict `>` ascending-id scan
///     of Algorithm 1). Shards scan in parallel on the engine's pool and
///     only contend with commits touching the same shard.
///  3. Commit (serialized on one mutex): rows are placed in batch order
///     through Cinderella::InsertResolved. Because commits mutate
///     partitions the scan already rated, every commit logs the touched
///     partition ids into a dirty log; a placement is resolved from the
///     merged top-2 plus exact re-ratings of the dirty ids. The top-2
///     invariant makes this exact (see DESIGN.md §8): if the best slot is
///     clean it is the true argmax; if only the best is dirty, every
///     clean partition is bounded by the second slot; if both are dirty
///     (or the scan predates a mirror rebuild) the entity is fully
///     re-scanned under the lock.
///
/// Determinism: placements, splits, partition ids and all catalog state
/// equal a serial Insert() loop over the same rows in the same order, at
/// any shard count and window size — the rating arithmetic is the shared
/// inline of core/rating.h, so even floating-point ties break
/// identically.
///
/// Concurrency: InsertBatch may be called from multiple threads; scans
/// run concurrently, commits serialize. Each batch's rows commit in
/// order, interleaved at window granularity with other batches. Serial
/// mutations (Insert/Delete/Update/...) remain safe when not concurrent
/// with InsertBatch: the engine detects them via catalog_generation() and
/// rebuilds its mirror. A batch that loses an id race to a concurrent
/// batch fails with AlreadyExists after committing a prefix.
class BatchInserter : public BatchInsertEngine {
 public:
  /// Operation counters (batched-side complement of CinderellaStats).
  struct Stats {
    uint64_t batches = 0;
    uint64_t rows = 0;
    uint64_t windows = 0;
    uint64_t ratings = 0;     // (group, partition) rating evaluations.
    uint64_t reratings = 0;   // Exact dirty re-ratings at commit time.
    uint64_t rescans = 0;     // Entities fully re-scanned under the lock.
    uint64_t rebuilds = 0;    // Mirror rebuilds after external mutations.
  };

  /// Does not attach itself; see AttachBatchInserter. The mirror is
  /// built from the current catalog immediately.
  BatchInserter(Cinderella* cinderella, BatchInserterOptions options);

  /// Detaches from the Cinderella instance if still attached.
  ~BatchInserter() override;

  BatchInserter(const BatchInserter&) = delete;
  BatchInserter& operator=(const BatchInserter&) = delete;

  /// Inserts `rows` in order with serial-identical placements. Fails with
  /// AlreadyExists — before touching the table — when a row duplicates an
  /// existing entity or another row of the batch.
  Status InsertBatch(std::vector<Row> rows) override;

  size_t shard_count() const { return catalog_.shard_count(); }
  const ShardedCatalog& sharded_catalog() const { return catalog_; }
  Stats stats() const;

  /// What one committed window changed — passed to the commit hook so the
  /// MVCC publisher can size its publication (the arena-pooled snapshot
  /// layer pre-sizes its fresh-version scratch from dirty_partitions).
  struct WindowCommit {
    size_t rows = 0;              // Rows this window applied.
    size_t dirty_partitions = 0;  // Distinct partitions it touched.
  };

  /// Called at the end of every committed window, while the commit lock is
  /// still held (the catalog is quiescent and exactly the window's rows
  /// are applied). The MVCC publisher registers here so each window
  /// becomes one consistent published snapshot. The hook must not call
  /// back into the engine. nullptr clears.
  using CommitHook = std::function<void(const WindowCommit&)>;
  void set_commit_hook(CommitHook hook);

 private:
  /// A scan/revalidation candidate under the serial comparator.
  struct Candidate {
    double rating = 0.0;
    PartitionId id = 0;
    bool valid = false;
  };
  struct Top2 {
    Candidate best;
    Candidate second;
  };
  /// One deduplicated (synopsis, size) entity class of a window.
  struct EntityGroup {
    size_t words_offset = 0;  // Into the window's packed entity arena.
    uint32_t count = 0;       // |e|.
    double size = 0.0;        // SIZE(e) under the engine's measure.
  };
  /// Window-scoped scratch shared by the scan and commit phases.
  struct Window;

  static void Consider(Candidate* c, double rating, PartitionId id);
  static void Offer(Top2* top, double rating, PartitionId id);

  /// Rates one packed entry against one group: the packed kernel. Exact
  /// same expression as core/rating.h Rate().
  double RateEntry(const ShardedCatalog::EntryView& entry,
                   const uint64_t* entity_words, size_t entity_stride,
                   const EntityGroup& group) const;

  Status ProcessWindow(std::vector<Row>* rows,
                       const std::vector<Synopsis>* synopses, size_t begin,
                       size_t end);

  // All *Locked methods require commit_mu_.
  void SyncMirrorLocked();
  void RebuildLocked();
  void AppendMutationsLocked(const CatalogMutations& mutations,
                             std::unordered_set<PartitionId>* dirty);
  void PublishDirtyStateLocked();

  // Dirty-state encoding: epoch in the high bits, log length in the low
  // kSizeBits. A scanner snapshots this before rating; at commit time the
  // log suffix past the snapshot is the dirty set, and an epoch mismatch
  // (log trimmed, or mirror rebuilt) forces the full-rescan path.
  static constexpr uint64_t kSizeBits = 40;
  static constexpr size_t kDirtyLogTrim = 1 << 16;

  Cinderella* const cinderella_;
  const BatchInserterOptions options_;
  const double weight_;
  const bool normalize_;
  const SizeMeasure measure_;
  ShardedCatalog catalog_;
  std::unique_ptr<ThreadPool> pool_;  // Null when shard_count() == 1.

  // Serializes commit phases (and all mutations of the state below).
  mutable std::mutex commit_mu_;
  CommitHook commit_hook_;
  uint64_t synced_generation_ = 0;
  uint64_t dirty_epoch_ = 0;
  std::vector<PartitionId> dirty_log_;
  std::atomic<uint64_t> dirty_state_{0};
  Stats stats_;
};

/// Creates a BatchInserter over `cinderella` and attaches it, so
/// Cinderella::InsertBatch (and everything layered on it: UniversalTable,
/// DurableTable, CSV import) routes through the batched engine. The
/// returned engine must outlive the attachment; destroying it detaches.
std::unique_ptr<BatchInserter> AttachBatchInserter(
    Cinderella* cinderella, BatchInserterOptions options = {});

}  // namespace cinderella

#endif  // CINDERELLA_INGEST_BATCH_INSERTER_H_
