#include "ingest/mutation_pipeline.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "core/rating.h"
#include "core/size_measure.h"

namespace cinderella {

namespace {

size_t ResolveShardCount(const Cinderella& cinderella,
                         const MutationPipelineOptions& options) {
  const int configured =
      options.shards > 0 ? options.shards : cinderella.config().insert_shards;
  return static_cast<size_t>(
      ThreadPool::ResolveDegree(configured, "CINDERELLA_INSERT_SHARDS"));
}

}  // namespace

/// Per-window scratch: the deduplicated entity groups of the placement
/// ops, their packed bitset words, and the op -> group mapping (kNoGroup
/// for deletes, which need no rating).
struct MutationPipeline::Window {
  std::vector<size_t> group_of;      // Window-relative op -> group index.
  std::vector<EntityGroup> groups;
  std::vector<uint64_t> entity_arena;  // groups.size() * stride words.
  size_t stride = 1;
};

MutationPipeline::MutationPipeline(Cinderella* cinderella,
                                   MutationPipelineOptions options)
    : cinderella_(cinderella),
      options_(options),
      weight_(cinderella->config().weight),
      normalize_(cinderella->config().normalize_rating),
      measure_(cinderella->config().measure),
      catalog_(ResolveShardCount(*cinderella, options),
               /*enable_tree=*/cinderella->tree_enabled(),
               static_cast<size_t>(cinderella->config().tree_fanout)) {
  if (catalog_.shard_count() > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<int>(catalog_.shard_count()));
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  RebuildLocked();
  stats_.rebuilds = 0;  // The initial fill is not an external-mutation event.
}

MutationPipeline::~MutationPipeline() {
  if (cinderella_->batch_engine() == this) {
    cinderella_->set_batch_engine(nullptr);
  }
}

MutationPipeline::Stats MutationPipeline::stats() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return stats_;
}

void MutationPipeline::set_commit_hook(CommitHook hook) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  commit_hook_ = std::move(hook);
}

void MutationPipeline::set_spill_hook(SpillHook hook) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  spill_hook_ = std::move(hook);
}

void MutationPipeline::Consider(Candidate* c, double rating, PartitionId id) {
  if (!c->valid || rating > c->rating ||
      (rating == c->rating && id < c->id)) {
    *c = Candidate{rating, id, true};
  }
}

void MutationPipeline::Offer(Top2* top, double rating, PartitionId id) {
  if (!top->best.valid || rating > top->best.rating ||
      (rating == top->best.rating && id < top->best.id)) {
    top->second = top->best;
    top->best = Candidate{rating, id, true};
  } else if (!top->second.valid || rating > top->second.rating ||
             (rating == top->second.rating && id < top->second.id)) {
    top->second = Candidate{rating, id, true};
  }
}

double MutationPipeline::RateEntry(const ShardedCatalog::EntryView& entry,
                                   const uint64_t* entity_words,
                                   size_t entity_stride,
                                   const EntityGroup& group) const {
  // Words past either stride are zero (absent ids) and contribute nothing
  // to the intersection; the exclusive counts come from the cached
  // cardinalities exactly as Synopsis::RateCounts derives them.
  const size_t common = std::min(entity_stride, entry.num_words);
  size_t intersect = 0;
  for (size_t w = 0; w < common; ++w) {
    intersect += static_cast<size_t>(
        std::popcount(entity_words[w] & entry.words[w]));
  }
  return RateFromCounts(
      static_cast<double>(intersect),
      static_cast<double>(entry.count - intersect),   // |¬e∧p|
      static_cast<double>(group.count - intersect),   // |e∧¬p|
      group.size, static_cast<double>(entry.size), weight_, normalize_);
}

double MutationPipeline::RateLive(const Partition& partition,
                                  const Synopsis& synopsis,
                                  double entity_size) const {
  return Rate(synopsis, entity_size, partition.rating_synopsis(),
              static_cast<double>(partition.Size(measure_)), weight_,
              normalize_);
}

// ---------------------------------------------------------------------------
// Batch entry points.
// ---------------------------------------------------------------------------

Status MutationPipeline::InsertBatch(std::vector<Row> rows) {
  std::vector<Mutation> ops;
  ops.reserve(rows.size());
  for (Row& row : rows) ops.push_back(Mutation::Insert(std::move(row)));
  return ApplyMutations(std::move(ops), nullptr);
}

Status MutationPipeline::UpdateBatch(std::vector<Row> rows) {
  std::vector<Mutation> ops;
  ops.reserve(rows.size());
  for (Row& row : rows) ops.push_back(Mutation::Update(std::move(row)));
  return ApplyMutations(std::move(ops), nullptr);
}

Status MutationPipeline::DeleteBatch(const std::vector<EntityId>& entities) {
  std::vector<Mutation> ops;
  ops.reserve(entities.size());
  for (EntityId entity : entities) ops.push_back(Mutation::Delete(entity));
  return ApplyMutations(std::move(ops), nullptr);
}

Status MutationPipeline::ApplyMutations(std::vector<Mutation> ops,
                                        size_t* applied) {
  if (applied != nullptr) *applied = 0;
  if (ops.empty()) return Status::OK();

  // Validate before touching anything, under the commit lock (concurrent
  // commits mutate the binding map the liveness simulation reads).
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    CINDERELLA_RETURN_IF_ERROR(cinderella_->ValidateMutations(ops));
  }

  // One synopsis extraction per placement op, outside every lock (the
  // extractor only reads the row and the immutable workload).
  std::vector<Synopsis> synopses(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != Mutation::Kind::kDelete) {
      synopses[i] = cinderella_->ExtractSynopsis(ops[i].row);
    }
  }

  const size_t window = std::max<size_t>(1, options_.window);
  for (size_t begin = 0; begin < ops.size(); begin += window) {
    const size_t end = std::min(ops.size(), begin + window);
    CINDERELLA_RETURN_IF_ERROR(
        ProcessWindow(&ops, &synopses, begin, end, applied));
  }

  std::lock_guard<std::mutex> lock(commit_mu_);
  ++stats_.batches;
  stats_.rows += ops.size();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Window machinery.
// ---------------------------------------------------------------------------

void MutationPipeline::BuildWindow(const std::vector<Mutation>& ops,
                                   const std::vector<Synopsis>& synopses,
                                   size_t begin, size_t end,
                                   Window* win) const {
  const size_t n = end - begin;
  win->group_of.assign(n, kNoGroup);
  std::unordered_map<std::string, size_t> dedupe;
  dedupe.reserve(n);
  std::vector<const std::vector<uint64_t>*> group_words;
  for (size_t i = 0; i < n; ++i) {
    const Mutation& op = ops[begin + i];
    if (op.kind == Mutation::Kind::kDelete) continue;
    const Synopsis& synopsis = synopses[begin + i];
    const std::vector<uint64_t>& words = synopsis.words();
    const uint64_t size = RowSize(op.row, measure_);
    std::string key(reinterpret_cast<const char*>(words.data()),
                    words.size() * sizeof(uint64_t));
    key.append(reinterpret_cast<const char*>(&size), sizeof(size));
    const auto [it, inserted] = dedupe.emplace(std::move(key),
                                               win->groups.size());
    if (inserted) {
      EntityGroup group;
      group.count = static_cast<uint32_t>(synopsis.Count());
      group.size = static_cast<double>(size);
      win->groups.push_back(group);
      group_words.push_back(&words);
      win->stride = std::max(win->stride, words.size());
    }
    win->group_of[i] = it->second;
  }
  const size_t num_groups = win->groups.size();
  win->entity_arena.assign(num_groups * win->stride, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    win->groups[g].words_offset = g * win->stride;
    std::copy(group_words[g]->begin(), group_words[g]->end(),
              win->entity_arena.begin() +
                  static_cast<ptrdiff_t>(win->groups[g].words_offset));
  }
}

void MutationPipeline::ScanWindow(const Window& win, std::vector<Top2>* merged,
                                  uint64_t* rated) const {
  const size_t num_groups = win.groups.size();
  merged->assign(num_groups, Top2{});
  if (num_groups == 0) return;
  const size_t num_shards = catalog_.shard_count();

  // Per-(shard, group) top-2, no commit lock required.
  std::vector<Top2> slab(num_shards * num_groups);
  std::vector<uint64_t> shard_ratings(num_shards, 0);
  auto scan_shard = [&](size_t s) {
    Top2* tops = slab.data() + s * num_groups;
    uint64_t local_rated = 0;
    auto rate_one = [&](const ShardedCatalog::EntryView& entry, size_t g) {
      const EntityGroup& group = win.groups[g];
      const uint64_t* entity_words =
          win.entity_arena.data() + group.words_offset;
      const size_t common = std::min(win.stride, entry.num_words);
      size_t intersect = 0;
      for (size_t w = 0; w < common; ++w) {
        intersect += static_cast<size_t>(
            std::popcount(entity_words[w] & entry.words[w]));
      }
      ++local_rated;
      const RatingTerms terms = RatingTermsFromCounts(
          static_cast<double>(intersect),
          static_cast<double>(entry.count - intersect),
          static_cast<double>(group.count - intersect), group.size,
          static_cast<double>(entry.size), weight_);
      Top2& top = tops[g];
      double r;
      if (normalize_) {
        // Skip the divide for a provably-losing candidate: local < 0
        // requires a positive heterogeneity term, which needs both a
        // positive size and a missing id — so the normalizer is
        // positive too and r = local/normalizer < 0 strictly. A
        // negative candidate cannot displace a non-negative best; it
        // may understate the second slot, which the commit phase
        // tolerates (DESIGN.md §8: an understated second is only
        // consulted when every surviving candidate is negative, where
        // serial also creates a new partition).
        if (terms.local < 0.0 && top.best.valid && top.best.rating >= 0.0) {
          return;
        }
        r = terms.normalizer > 0.0 ? terms.local / terms.normalizer : 0.0;
      } else {
        r = terms.local;
      }
      Offer(&top, r, entry.id);
    };
    if (catalog_.tree_enabled()) {
      // Group-major tree descent: rate only the entries whose synopsis
      // intersects the group (plus the empty-synopsis side list). Every
      // skipped entry rates strictly negative (the same bound as the
      // skip-divide shortcut above), so the merged top-2 keeps the exact
      // argmax whenever it is >= 0 — the only case the commit phase
      // consumes it.
      for (size_t g = 0; g < num_groups; ++g) {
        const uint64_t* entity_words =
            win.entity_arena.data() + win.groups[g].words_offset;
        catalog_.ScanShardCandidates(
            s, entity_words, win.stride,
            [&](const ShardedCatalog::EntryView& entry) {
              rate_one(entry, g);
            });
      }
    } else {
      catalog_.ScanShard(s, [&](const ShardedCatalog::EntryView& entry) {
        for (size_t g = 0; g < num_groups; ++g) rate_one(entry, g);
      });
    }
    shard_ratings[s] = local_rated;
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(num_shards, 1,
                       [&](size_t chunk_begin, size_t chunk_end, size_t) {
                         for (size_t s = chunk_begin; s < chunk_end; ++s) {
                           scan_shard(s);
                         }
                       });
  } else {
    for (size_t s = 0; s < num_shards; ++s) scan_shard(s);
  }

  // Merge the shard slabs per group (order-independent comparator).
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t g = 0; g < num_groups; ++g) {
      const Top2& top = slab[s * num_groups + g];
      if (top.best.valid) Offer(&(*merged)[g], top.best.rating, top.best.id);
      if (top.second.valid) {
        Offer(&(*merged)[g], top.second.rating, top.second.id);
      }
    }
  }
  for (const uint64_t r : shard_ratings) *rated += r;
}

MutationPipeline::Candidate MutationPipeline::ResolvePlacementLocked(
    const Window& win, size_t group_index, const std::vector<Top2>& merged,
    bool stale, const std::unordered_set<PartitionId>& dirty) {
  const EntityGroup& group = win.groups[group_index];
  const uint64_t* entity_words = win.entity_arena.data() + group.words_offset;
  const Top2& top = merged[group_index];

  Candidate chosen;
  const bool best_dirty = top.best.valid && dirty.count(top.best.id) > 0;
  const bool second_dirty =
      top.second.valid && dirty.count(top.second.id) > 0;
  if (stale || (best_dirty && second_dirty)) {
    // The top-2 no longer bounds the clean partitions: re-scan this
    // entity exactly under the lock (rare; the dirty set is small).
    ++stats_.rescans;
    for (size_t s = 0; s < catalog_.shard_count(); ++s) {
      catalog_.ScanShard(s, [&](const ShardedCatalog::EntryView& entry) {
        ++stats_.reratings;
        Consider(&chosen, RateEntry(entry, entity_words, win.stride, group),
                 entry.id);
      });
    }
  } else {
    if (top.best.valid && !best_dirty) {
      Consider(&chosen, top.best.rating, top.best.id);
    }
    if (top.second.valid && !second_dirty) {
      Consider(&chosen, top.second.rating, top.second.id);
    }
    for (const PartitionId id : dirty) {
      // Dropped partitions have no entry and stop being candidates.
      catalog_.WithEntry(id, [&](const ShardedCatalog::EntryView& entry) {
        ++stats_.reratings;
        Consider(&chosen, RateEntry(entry, entity_words, win.stride, group),
                 entry.id);
      });
    }
  }
  return chosen;
}

Status MutationPipeline::ProcessWindow(std::vector<Mutation>* ops,
                                       const std::vector<Synopsis>* synopses,
                                       size_t begin, size_t end,
                                       size_t* applied) {
  Window win;
  BuildWindow(*ops, *synopses, begin, end, &win);

  // Snapshot the dirty state before scanning: at commit time the log
  // suffix past the snapshot is exactly the set of partitions other
  // commits invalidated underneath this scan.
  const uint64_t dirty_snap = dirty_state_.load(std::memory_order_acquire);
  std::vector<Top2> merged;
  uint64_t rated = 0;
  ScanWindow(win, &merged, &rated);

  // -- Commit phase: serialized, placements resolved exactly. ------------
  std::lock_guard<std::mutex> lock(commit_mu_);
  ++stats_.windows;
  stats_.ratings += rated;

  // External serial mutations invalidate the mirror (and, via the epoch
  // bump, this window's scan).
  SyncMirrorLocked();
  const uint64_t snap_epoch = dirty_snap >> kSizeBits;
  const uint64_t snap_size = dirty_snap & ((uint64_t{1} << kSizeBits) - 1);
  const bool stale = snap_epoch != dirty_epoch_;
  std::unordered_set<PartitionId> dirty;
  if (!stale) {
    for (size_t i = static_cast<size_t>(snap_size); i < dirty_log_.size();
         ++i) {
      dirty.insert(dirty_log_[i]);
    }
  }

  CatalogMutations capture;
  for (size_t i = begin; i < end; ++i) {
    Mutation& op = (*ops)[i];
    capture.touched.clear();
    capture.created.clear();
    capture.dropped.clear();
    Status status;
    switch (op.kind) {
      case Mutation::Kind::kInsert: {
        const Candidate chosen = ResolvePlacementLocked(
            win, win.group_of[i - begin], merged, stale, dirty);
        // Serial create-new rule: no partition, or best rating < 0.
        Partition* target = nullptr;
        if (chosen.valid && chosen.rating >= 0.0) {
          target = cinderella_->catalog().GetPartition(chosen.id);
          CINDERELLA_CHECK(target != nullptr);
        }
        cinderella_->AddMutationListener(&capture);
        status = cinderella_->InsertResolved(std::move(op.row),
                                             (*synopses)[i], target);
        cinderella_->RemoveMutationListener(&capture);
        break;
      }
      case Mutation::Kind::kUpdate: {
        const size_t g = win.group_of[i - begin];
        const Top2& top = merged[g];
        // The home partition's live state changes mid-op (the old row is
        // removed between the two scans of UpdateResolved), so it joins
        // the dirty set for resolution — and all re-ratings come from the
        // live catalog, which the mirror matches exactly for every id
        // dirtied by *completed* commits but not for home mid-op.
        const std::optional<PartitionId> home =
            cinderella_->catalog().FindEntity(op.entity);
        auto resolver = [&](const Synopsis& synopsis,
                            double entity_size) -> Cinderella::ResolvedScan {
          const PartitionId home_id = *home;
          auto excluded = [&](PartitionId id) {
            return dirty.count(id) > 0 || id == home_id;
          };
          Candidate chosen;
          const bool best_excl = top.best.valid && excluded(top.best.id);
          const bool second_excl = top.second.valid && excluded(top.second.id);
          if (stale || (best_excl && second_excl)) {
            ++stats_.rescans;
            cinderella_->catalog().ForEachPartition([&](Partition& partition) {
              ++stats_.reratings;
              Consider(&chosen, RateLive(partition, synopsis, entity_size),
                       partition.id());
            });
          } else {
            if (top.best.valid && !best_excl) {
              Consider(&chosen, top.best.rating, top.best.id);
            }
            if (top.second.valid && !second_excl) {
              Consider(&chosen, top.second.rating, top.second.id);
            }
            auto rerate = [&](PartitionId id) {
              // Dropped partitions stop being candidates.
              const Partition* partition =
                  cinderella_->catalog().GetPartition(id);
              if (partition == nullptr) return;
              ++stats_.reratings;
              Consider(&chosen, RateLive(*partition, synopsis, entity_size),
                       id);
            };
            for (const PartitionId id : dirty) rerate(id);
            if (dirty.count(home_id) == 0) rerate(home_id);
          }
          Cinderella::ResolvedScan scan;
          if (chosen.valid) {
            scan.valid = true;
            scan.id = chosen.id;
            scan.rating = chosen.rating;
          }
          return scan;
        };
        cinderella_->AddMutationListener(&capture);
        status = cinderella_->UpdateResolved(std::move(op.row), (*synopses)[i],
                                             resolver);
        cinderella_->RemoveMutationListener(&capture);
        if (status.ok()) ++stats_.updates;
        break;
      }
      case Mutation::Kind::kDelete: {
        // Deletes need no placement; the serial routine (incl. a possible
        // dissolution, which re-rates from the live catalog) runs under
        // the commit lock and its effects enter the dirty log below.
        cinderella_->AddMutationListener(&capture);
        status = cinderella_->Delete(op.entity);
        cinderella_->RemoveMutationListener(&capture);
        if (status.ok()) ++stats_.deletes;
        break;
      }
    }
    if (!status.ok()) {
      // A failed op may have partially mutated the catalog (mid-cascade
      // internal error, or an id race lost to a concurrent batch);
      // rebuild the mirror defensively.
      RebuildLocked();
      return status;
    }
    AppendMutationsLocked(capture, &dirty);
    synced_generation_ = cinderella_->catalog_generation();
    if (applied != nullptr) ++*applied;
  }
  // Window committed in full: first the spill boundary (cold-partition
  // eviction, whose residency changes land in the same pending delta),
  // then the MVCC publisher snapshots it while the catalog is still
  // quiescent under the commit lock. (The failure return above skips
  // both — the facade publishes the partial prefix itself.)
  if (spill_hook_) spill_hook_();
  if (commit_hook_) {
    WindowCommit commit;
    commit.rows = end - begin;
    commit.dirty_partitions = dirty.size();
    commit_hook_(commit);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reorganize.
// ---------------------------------------------------------------------------

Status MutationPipeline::Reorganize() {
  // The whole pass holds the commit lock: reorganize is stop-the-world by
  // nature (every partition is drained), and holding the lock means the
  // mirror is exactly live at each window's scan.
  std::lock_guard<std::mutex> lock(commit_mu_);
  StatusOr<std::vector<std::pair<Row, Synopsis>>> drained =
      cinderella_->DrainForReorganize();
  if (!drained.ok()) {
    RebuildLocked();
    return drained.status();
  }
  // Mirror the now-empty catalog; the epoch bump sends any in-flight
  // concurrent scan to the full-rescan path at its commit.
  RebuildLocked();

  std::vector<Mutation> ops;
  std::vector<Synopsis> synopses;
  ops.reserve(drained.value().size());
  synopses.reserve(drained.value().size());
  for (auto& [row, synopsis] : drained.value()) {
    ops.push_back(Mutation::Insert(std::move(row)));
    synopses.push_back(std::move(synopsis));
  }

  const size_t window = std::max<size_t>(1, options_.window);
  for (size_t begin = 0; begin < ops.size(); begin += window) {
    const size_t end = std::min(ops.size(), begin + window);
    CINDERELLA_RETURN_IF_ERROR(
        ReinsertWindowLocked(&ops, &synopses, begin, end));
  }
  ++stats_.batches;
  stats_.reinserts += ops.size();
  return Status::OK();
}

Status MutationPipeline::ReinsertWindowLocked(
    std::vector<Mutation>* ops, const std::vector<Synopsis>* synopses,
    size_t begin, size_t end) {
  Window win;
  BuildWindow(*ops, *synopses, begin, end, &win);
  std::vector<Top2> merged;
  uint64_t rated = 0;
  ScanWindow(win, &merged, &rated);
  ++stats_.windows;
  stats_.ratings += rated;

  // The lock is held across the whole reorganize: the mirror was fresh at
  // scan time and only this window's own commits dirty it.
  std::unordered_set<PartitionId> dirty;
  CatalogMutations capture;
  for (size_t i = begin; i < end; ++i) {
    const Candidate chosen = ResolvePlacementLocked(
        win, win.group_of[i - begin], merged, /*stale=*/false, dirty);
    Partition* target = nullptr;
    if (chosen.valid && chosen.rating >= 0.0) {
      target = cinderella_->catalog().GetPartition(chosen.id);
      CINDERELLA_CHECK(target != nullptr);
    }
    capture.touched.clear();
    capture.created.clear();
    capture.dropped.clear();
    cinderella_->AddMutationListener(&capture);
    const Status status = cinderella_->ReinsertResolved(
        std::move((*ops)[i].row), (*synopses)[i], target);
    cinderella_->RemoveMutationListener(&capture);
    if (!status.ok()) {
      RebuildLocked();
      return status;
    }
    AppendMutationsLocked(capture, &dirty);
    synced_generation_ = cinderella_->catalog_generation();
  }
  if (spill_hook_) spill_hook_();
  if (commit_hook_) {
    WindowCommit commit;
    commit.rows = end - begin;
    commit.dirty_partitions = dirty.size();
    commit_hook_(commit);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Mirror maintenance.
// ---------------------------------------------------------------------------

void MutationPipeline::SyncMirrorLocked() {
  if (cinderella_->catalog_generation() != synced_generation_) {
    RebuildLocked();
    ++stats_.rebuilds;
  }
}

void MutationPipeline::RebuildLocked() {
  catalog_.Clear();
  cinderella_->catalog().ForEachPartition([&](const Partition& partition) {
    catalog_.Upsert(partition.id(), partition.Size(measure_),
                    partition.rating_synopsis());
  });
  dirty_log_.clear();
  ++dirty_epoch_;
  PublishDirtyStateLocked();
  synced_generation_ = cinderella_->catalog_generation();
}

void MutationPipeline::AppendMutationsLocked(
    const CatalogMutations& mutations,
    std::unordered_set<PartitionId>* dirty) {
  auto refresh = [&](PartitionId id) {
    const Partition* partition = cinderella_->catalog().GetPartition(id);
    if (partition != nullptr) {
      catalog_.Upsert(id, partition->Size(measure_),
                      partition->rating_synopsis());
    }
    dirty_log_.push_back(id);
    dirty->insert(id);
  };
  for (const PartitionId id : mutations.created) refresh(id);
  for (const PartitionId id : mutations.touched) refresh(id);
  for (const PartitionId id : mutations.dropped) {
    catalog_.Remove(id);
    dirty_log_.push_back(id);
    dirty->insert(id);
  }
  if (dirty_log_.size() > kDirtyLogTrim) {
    // Bound the log; in-flight scans that snapshotted the old epoch fall
    // back to the full-rescan path at their commit.
    dirty_log_.clear();
    ++dirty_epoch_;
  }
  PublishDirtyStateLocked();
}

void MutationPipeline::PublishDirtyStateLocked() {
  CINDERELLA_DCHECK(dirty_log_.size() <
                    (size_t{1} << kSizeBits));
  dirty_state_.store((dirty_epoch_ << kSizeBits) |
                         static_cast<uint64_t>(dirty_log_.size()),
                     std::memory_order_release);
}

std::unique_ptr<MutationPipeline> AttachMutationPipeline(
    Cinderella* cinderella, MutationPipelineOptions options) {
  auto engine = std::make_unique<MutationPipeline>(cinderella, options);
  cinderella->set_batch_engine(engine.get());
  return engine;
}

}  // namespace cinderella
