#ifndef CINDERELLA_INGEST_MUTATION_PIPELINE_H_
#define CINDERELLA_INGEST_MUTATION_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cinderella.h"
#include "ingest/sharded_catalog.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Tuning knobs of the batched mutation engine.
struct MutationPipelineOptions {
  /// Catalog shards (= scan parallelism). Positive wins; 0 resolves from
  /// CinderellaConfig::insert_shards, then the CINDERELLA_INSERT_SHARDS
  /// environment variable, then the hardware concurrency.
  int shards = 0;

  /// Ops placed per rating pass. Larger windows amortize the scan over
  /// more entities (duplicate synopses within a window rate once) but
  /// grow the dirty set the commit phase must revalidate against.
  size_t window = 128;
};

/// The unified mutation pipeline (ISSUE 5 tentpole): one batched write
/// path for the full mutation stream — inserts, updates, deletes, and
/// reorganize — with placements bit-identical to the serial operations.
///
/// A typed op list (Mutation, core/partitioner.h) flows through one
/// engine. Every op that needs a placement (insert, update, reorganize
/// reinsertion) is rated against the packed ShardedCatalog mirror with
/// the window machinery of the PR 2 insert engine:
///  1. Group: placement ops with identical (rating synopsis, SIZE(e))
///     collapse into one entity group — one rating per (group, partition)
///     pair. Deletes carry no synopsis and skip the scan entirely.
///  2. Scan (no global lock): every shard of the packed mirror is rated
///     against all groups in one partition-major pass (the packed kernel;
///     RatingTermsFromCounts, i.e. the same inline the serial scan
///     evaluates). Each (shard, group) slot keeps the top-2 candidates
///     under the serial comparator (rating descending, partition id
///     ascending — exactly the strict `>` ascending-id scan of
///     Algorithm 1).
///  3. Commit (serialized on one mutex): ops apply in batch order through
///     the Cinderella *Resolved hooks. Every commit logs the partition
///     ids it touched into a dirty log; a placement is resolved from the
///     merged top-2 plus exact re-ratings of the dirty ids. The top-2
///     invariant makes this exact (DESIGN.md §8): if the best slot is
///     clean it is the true argmax; if only the best is dirty, every
///     clean partition is bounded by the second slot; if both are dirty
///     (or the scan predates a mirror rebuild) the entity is fully
///     re-scanned under the lock.
///
/// Updates re-rate exactly like inserts, with two wrinkles (DESIGN.md
/// §11): the entity's home partition joins the dirty set for both scans
/// of Cinderella::UpdateResolved (its live state changes mid-op when the
/// old row is removed, which the mirror cannot see until the op commits),
/// and dirty re-ratings are taken from the live catalog rather than the
/// mirror for the same reason. Both sources agree bit-exactly whenever
/// the mirror is fresh, so insert resolution is unchanged.
///
/// Validate-first: a mixed batch is validated by simulating entity
/// liveness across the whole op list (Partitioner::ValidateMutations)
/// under the commit lock before anything applies, so a rejected batch
/// leaves the table unchanged; insert-after-delete of one id within a
/// batch is legal, exactly as in a serial loop.
///
/// Determinism: placements, splits, partition ids and all catalog state
/// equal a serial op loop over the same stream in the same order, at any
/// shard count and window size — the rating arithmetic is the shared
/// inline of core/rating.h, so even floating-point ties break
/// identically.
///
/// Concurrency: the batch entry points may be called from multiple
/// threads; scans run concurrently, commits serialize. Each batch's ops
/// commit in order, interleaved at window granularity with other batches.
/// Serial mutations remain safe when not concurrent with a batch: the
/// engine detects them via catalog_generation() and rebuilds its mirror.
/// A batch that loses an id race to a concurrent batch fails at the op
/// that lost, after committing its prefix.
class MutationPipeline : public BatchMutationEngine {
 public:
  /// Operation counters (batched-side complement of CinderellaStats).
  struct Stats {
    uint64_t batches = 0;
    uint64_t rows = 0;        // Ops accepted through the batch entry points.
    uint64_t windows = 0;
    uint64_t ratings = 0;     // (group, partition) rating evaluations.
    uint64_t reratings = 0;   // Exact dirty re-ratings at commit time.
    uint64_t rescans = 0;     // Entities fully re-scanned under the lock.
    uint64_t rebuilds = 0;    // Mirror rebuilds after external mutations.
    uint64_t updates = 0;     // Update ops committed.
    uint64_t deletes = 0;     // Delete ops committed.
    uint64_t reinserts = 0;   // Rows re-placed by Reorganize.
  };

  /// Does not attach itself; see AttachMutationPipeline. The mirror is
  /// built from the current catalog immediately.
  MutationPipeline(Cinderella* cinderella, MutationPipelineOptions options);

  /// Detaches from the Cinderella instance if still attached.
  ~MutationPipeline() override;

  MutationPipeline(const MutationPipeline&) = delete;
  MutationPipeline& operator=(const MutationPipeline&) = delete;

  // -- BatchMutationEngine ---------------------------------------------------

  /// Inserts `rows` in order with serial-identical placements. Fails with
  /// AlreadyExists — before touching the table — when a row duplicates an
  /// existing entity or another row of the batch.
  Status InsertBatch(std::vector<Row> rows) override;

  /// Updates `rows` in order with serial-identical placements. Fails with
  /// NotFound — before touching the table — when a row names an unknown
  /// entity; duplicate ids within the batch apply in turn.
  Status UpdateBatch(std::vector<Row> rows) override;

  /// Deletes `entities` in order. Fails with NotFound — before touching
  /// the table — when an id is unknown or duplicated within the batch.
  Status DeleteBatch(const std::vector<EntityId>& entities) override;

  /// Applies a mixed, ordered op list with effects identical to a serial
  /// dispatch loop. Validate-first across the batch (liveness simulated,
  /// so insert-after-delete of one id is legal); *applied (when non-null)
  /// receives the committed op prefix on both success and failure.
  Status ApplyMutations(std::vector<Mutation> ops, size_t* applied) override;

  /// Full reorganization with the same final catalog as the serial pass:
  /// drains every partition under the commit lock, then re-places the
  /// rows (descending synopsis cardinality) through the windowed
  /// pipeline, firing the commit hook per window so MVCC readers see the
  /// rebuild incrementally.
  Status Reorganize() override;

  size_t shard_count() const { return catalog_.shard_count(); }
  const ShardedCatalog& sharded_catalog() const { return catalog_; }
  Stats stats() const;

  /// What one committed window changed — passed to the commit hook so the
  /// MVCC publisher can size its publication (the arena-pooled snapshot
  /// layer pre-sizes its fresh-version scratch from dirty_partitions).
  struct WindowCommit {
    size_t rows = 0;              // Ops this window applied.
    size_t dirty_partitions = 0;  // Distinct partitions it touched.
  };

  /// Called at the end of every committed window, while the commit lock is
  /// still held (the catalog is quiescent and exactly the window's ops
  /// are applied). The MVCC publisher registers here so each window
  /// becomes one consistent published snapshot. The hook must not call
  /// back into the engine. nullptr clears.
  using CommitHook = std::function<void(const WindowCommit&)>;
  void set_commit_hook(CommitHook hook);

  /// Called at the end of every committed window, while the commit lock
  /// is still held, immediately BEFORE the commit hook — the window
  /// commit is the tiered-storage spill boundary. A registered spill
  /// policy (TierController) evicts cold partitions here; the residency
  /// changes it makes are captured by the same mutation listeners as the
  /// window's ops, so the commit hook's publication already reflects
  /// them. The hook may mutate partition residency through the engine's
  /// spill entry points but must not add/remove rows. nullptr clears.
  using SpillHook = std::function<void()>;
  void set_spill_hook(SpillHook hook);

 private:
  /// A scan/revalidation candidate under the serial comparator.
  struct Candidate {
    double rating = 0.0;
    PartitionId id = 0;
    bool valid = false;
  };
  struct Top2 {
    Candidate best;
    Candidate second;
  };
  /// One deduplicated (synopsis, size) entity class of a window.
  struct EntityGroup {
    size_t words_offset = 0;  // Into the window's packed entity arena.
    uint32_t count = 0;       // |e|.
    double size = 0.0;        // SIZE(e) under the engine's measure.
  };
  /// Window-scoped scratch shared by the scan and commit phases.
  struct Window;

  static void Consider(Candidate* c, double rating, PartitionId id);
  static void Offer(Top2* top, double rating, PartitionId id);

  /// Rates one packed entry against one group: the packed kernel. Exact
  /// same expression as core/rating.h Rate().
  double RateEntry(const ShardedCatalog::EntryView& entry,
                   const uint64_t* entity_words, size_t entity_stride,
                   const EntityGroup& group) const;

  /// Rates one live partition against a synopsis — the serial Rate() call,
  /// used where the mirror may be mid-op stale (update re-ratings).
  double RateLive(const Partition& partition, const Synopsis& synopsis,
                  double entity_size) const;

  /// Builds the window scratch (groups, packed arena) over the placement
  /// ops of [begin, end); deletes get kNoGroup.
  void BuildWindow(const std::vector<Mutation>& ops,
                   const std::vector<Synopsis>& synopses, size_t begin,
                   size_t end, Window* win) const;

  /// Scan phase over the packed mirror: fills the merged per-group top-2
  /// and bumps the rating counter. No commit lock required (may also be
  /// called with it held, as Reorganize does).
  void ScanWindow(const Window& win, std::vector<Top2>* merged,
                  uint64_t* rated) const;

  Status ProcessWindow(std::vector<Mutation>* ops,
                       const std::vector<Synopsis>* synopses, size_t begin,
                       size_t end, size_t* applied);

  // All *Locked methods require commit_mu_.

  /// Resolves one placement from the merged top-2 + exact mirror
  /// re-ratings of the dirty ids (the insert/reinsert path).
  Candidate ResolvePlacementLocked(const Window& win, size_t group_index,
                                   const std::vector<Top2>& merged, bool stale,
                                   const std::unordered_set<PartitionId>& dirty);

  /// Commits one reinsertion window of drained reorganize rows (wrapped
  /// as insert ops). The commit lock is already held for the whole
  /// reorganize.
  Status ReinsertWindowLocked(std::vector<Mutation>* ops,
                              const std::vector<Synopsis>* synopses,
                              size_t begin, size_t end);

  void SyncMirrorLocked();
  void RebuildLocked();
  void AppendMutationsLocked(const CatalogMutations& mutations,
                             std::unordered_set<PartitionId>* dirty);
  void PublishDirtyStateLocked();

  // Dirty-state encoding: epoch in the high bits, log length in the low
  // kSizeBits. A scanner snapshots this before rating; at commit time the
  // log suffix past the snapshot is the dirty set, and an epoch mismatch
  // (log trimmed, or mirror rebuilt) forces the full-rescan path.
  static constexpr uint64_t kSizeBits = 40;
  static constexpr size_t kDirtyLogTrim = 1 << 16;
  static constexpr size_t kNoGroup = static_cast<size_t>(-1);

  Cinderella* const cinderella_;
  const MutationPipelineOptions options_;
  const double weight_;
  const bool normalize_;
  const SizeMeasure measure_;
  ShardedCatalog catalog_;
  std::unique_ptr<ThreadPool> pool_;  // Null when shard_count() == 1.

  // Serializes commit phases (and all mutations of the state below).
  mutable std::mutex commit_mu_;
  CommitHook commit_hook_;
  SpillHook spill_hook_;
  uint64_t synced_generation_ = 0;
  uint64_t dirty_epoch_ = 0;
  std::vector<PartitionId> dirty_log_;
  std::atomic<uint64_t> dirty_state_{0};
  Stats stats_;
};

/// Creates a MutationPipeline over `cinderella` and attaches it, so the
/// Cinderella batch entry points (and everything layered on them:
/// UniversalTable, DurableTable, VersionedTable, CSV import) route
/// through the batched engine. The returned engine must outlive the
/// attachment; destroying it detaches.
std::unique_ptr<MutationPipeline> AttachMutationPipeline(
    Cinderella* cinderella, MutationPipelineOptions options = {});

}  // namespace cinderella

#endif  // CINDERELLA_INGEST_MUTATION_PIPELINE_H_
