#include "ingest/sharded_catalog.h"

#include "common/logging.h"

namespace cinderella {

ShardedCatalog::ShardedCatalog(size_t num_shards, bool enable_tree,
                               size_t tree_fanout)
    : tree_enabled_(enable_tree) {
  CINDERELLA_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    if (enable_tree) {
      shards_.back()->tree = std::make_unique<SynopsisTree>(tree_fanout);
    }
  }
}

SynopsisTree::Stats ShardedCatalog::TreeStats() const {
  SynopsisTree::Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->tree == nullptr) continue;
    const SynopsisTree::Stats& s = shard->tree->stats();
    total.upserts += s.upserts;
    total.removes += s.removes;
    total.fast_merges += s.fast_merges;
    total.node_reors += s.node_reors;
    total.nodes_copied += s.nodes_copied;
    total.collapses += s.collapses;
  }
  return total;
}

size_t ShardedCatalog::partition_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->ids.size();
  }
  return total;
}

void ShardedCatalog::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->words_per_entry = 1;
    shard->ids.clear();
    shard->sizes.clear();
    shard->counts.clear();
    shard->arena.clear();
    if (shard->tree != nullptr) shard->tree->Clear();
    shard->empty_ids.clear();
  }
}

void ShardedCatalog::Upsert(PartitionId id, uint64_t size,
                            const Synopsis& synopsis) {
  Shard& shard = *shards_[ShardOf(id)];
  const std::vector<uint64_t>& words = synopsis.words();
  std::lock_guard<std::mutex> lock(shard.mu);

  // Widen the stride first so every entry (old and new) keeps the shard's
  // uniform layout; old entries are re-packed with zero padding.
  if (words.size() > shard.words_per_entry) {
    const size_t new_stride = words.size();
    std::vector<uint64_t> arena(shard.ids.size() * new_stride, 0);
    for (size_t i = 0; i < shard.ids.size(); ++i) {
      std::copy(shard.arena.begin() +
                    static_cast<ptrdiff_t>(i * shard.words_per_entry),
                shard.arena.begin() +
                    static_cast<ptrdiff_t>((i + 1) * shard.words_per_entry),
                arena.begin() + static_cast<ptrdiff_t>(i * new_stride));
    }
    shard.arena = std::move(arena);
    shard.words_per_entry = new_stride;
  }

  const auto it = std::lower_bound(shard.ids.begin(), shard.ids.end(), id);
  const size_t i = static_cast<size_t>(it - shard.ids.begin());
  if (it == shard.ids.end() || *it != id) {
    // New entry. Partition ids are assigned monotonically by the catalog,
    // so in practice this is a push_back; the general insert keeps the
    // mirror correct for arbitrary rebuild orders.
    shard.ids.insert(it, id);
    shard.sizes.insert(shard.sizes.begin() + static_cast<ptrdiff_t>(i), size);
    shard.counts.insert(shard.counts.begin() + static_cast<ptrdiff_t>(i),
                        static_cast<uint32_t>(synopsis.Count()));
    shard.arena.insert(
        shard.arena.begin() + static_cast<ptrdiff_t>(i * shard.words_per_entry),
        shard.words_per_entry, 0);
  } else {
    shard.sizes[i] = size;
    shard.counts[i] = static_cast<uint32_t>(synopsis.Count());
  }
  uint64_t* entry = shard.arena.data() + i * shard.words_per_entry;
  std::copy(words.begin(), words.end(), entry);
  std::fill(entry + words.size(), entry + shard.words_per_entry, 0);

  if (shard.tree != nullptr) {
    shard.tree->Upsert(id / shards_.size(), synopsis);
    const auto eit =
        std::lower_bound(shard.empty_ids.begin(), shard.empty_ids.end(), id);
    const bool listed = eit != shard.empty_ids.end() && *eit == id;
    if (synopsis.Count() == 0) {
      if (!listed) shard.empty_ids.insert(eit, id);
    } else if (listed) {
      shard.empty_ids.erase(eit);
    }
  }
}

bool ShardedCatalog::Remove(PartitionId id) {
  Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = std::lower_bound(shard.ids.begin(), shard.ids.end(), id);
  if (it == shard.ids.end() || *it != id) return false;
  const size_t i = static_cast<size_t>(it - shard.ids.begin());
  shard.ids.erase(it);
  shard.sizes.erase(shard.sizes.begin() + static_cast<ptrdiff_t>(i));
  shard.counts.erase(shard.counts.begin() + static_cast<ptrdiff_t>(i));
  shard.arena.erase(
      shard.arena.begin() + static_cast<ptrdiff_t>(i * shard.words_per_entry),
      shard.arena.begin() +
          static_cast<ptrdiff_t>((i + 1) * shard.words_per_entry));
  if (shard.tree != nullptr) {
    shard.tree->Remove(id / shards_.size());
    const auto eit =
        std::lower_bound(shard.empty_ids.begin(), shard.empty_ids.end(), id);
    if (eit != shard.empty_ids.end() && *eit == id) shard.empty_ids.erase(eit);
  }
  return true;
}

bool ShardedCatalog::Contains(PartitionId id) const {
  const Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return std::binary_search(shard.ids.begin(), shard.ids.end(), id);
}

}  // namespace cinderella
