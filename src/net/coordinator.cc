#include "net/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/env.h"

namespace cinderella {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Transient failures worth a retry: the node may be restarting
/// (Unavailable) or momentarily overloaded (DeadlineExceeded). Anything
/// else — a corrupt stream, a server-side error — fails immediately.
bool Retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

CoordinatorOptions CoordinatorOptions::FromEnv() {
  CoordinatorOptions options;
  options.timeout_ms = static_cast<int>(
      Int64FromEnv("CINDERELLA_NET_TIMEOUT_MS", options.timeout_ms));
  options.retries = static_cast<int>(
      Int64FromEnv("CINDERELLA_NET_RETRIES", options.retries));
  return options;
}

Coordinator::Coordinator(std::vector<Endpoint> nodes,
                         CoordinatorOptions options)
    : nodes_(std::move(nodes)), options_(options), digests_(nodes_.size()) {
  if (options_.timeout_ms <= 0) options_.timeout_ms = 2000;
  if (options_.retries < 0) options_.retries = 0;
  if (options_.backoff_ms < 0) options_.backoff_ms = 0;
}

Status Coordinator::RefreshDigests() {
  Status first_error = Status::OK();
  for (size_t n = 0; n < nodes_.size(); ++n) {
    StatusOr<Socket> conn = Socket::Connect(nodes_[n].host, nodes_[n].port,
                                            options_.timeout_ms);
    Status status = conn.status();
    Frame frame;
    if (status.ok()) {
      status = WriteFrame(&*conn, FrameType::kSynopsisRequest, "",
                          options_.timeout_ms);
    }
    if (status.ok()) {
      status = ReadFrame(&*conn, &frame, options_.timeout_ms);
    }
    if (status.ok() && frame.type != FrameType::kSynopsisResponse) {
      status = Status::InvalidArgument("unexpected digest response frame");
    }
    SynopsisDigestMsg digest;
    if (status.ok()) {
      status = DecodeSynopsisDigest(frame.payload, &digest);
    }
    if (!status.ok()) {
      if (first_error.ok()) first_error = status;
      continue;  // Keep any previously cached digest for this node.
    }
    Digest& cached = digests_[n];
    cached.valid = true;
    cached.generation = digest.generation;
    cached.synopsis.Clear();
    cached.synopsis.UnionWithWords(digest.union_words.data(),
                                   digest.union_words.size());
  }
  return first_error;
}

Status Coordinator::QueryOnce(const Endpoint& endpoint,
                              const QueryRequestMsg& request,
                              std::vector<Row>* rows,
                              QueryDoneMsg* done) const {
  rows->clear();
  StatusOr<Socket> conn =
      Socket::Connect(endpoint.host, endpoint.port, options_.timeout_ms);
  CINDERELLA_RETURN_IF_ERROR(conn.status());
  CINDERELLA_RETURN_IF_ERROR(WriteFrame(&*conn, FrameType::kQueryRequest,
                                        EncodeQueryRequest(request),
                                        options_.timeout_ms));
  uint32_t expected_sequence = 0;
  while (true) {
    Frame frame;
    CINDERELLA_RETURN_IF_ERROR(ReadFrame(&*conn, &frame,
                                         options_.timeout_ms));
    switch (frame.type) {
      case FrameType::kRowBatch: {
        RowBatchMsg batch;
        CINDERELLA_RETURN_IF_ERROR(DecodeRowBatch(frame.payload, &batch));
        if (batch.request_id != request.request_id) {
          return Status::InvalidArgument("row batch for wrong request");
        }
        if (batch.sequence != expected_sequence) {
          return Status::InvalidArgument("row batch out of sequence");
        }
        ++expected_sequence;
        for (Row& row : batch.rows) rows->push_back(std::move(row));
        break;
      }
      case FrameType::kQueryDone: {
        CINDERELLA_RETURN_IF_ERROR(DecodeQueryDone(frame.payload, done));
        if (done->request_id != request.request_id) {
          return Status::InvalidArgument("query done for wrong request");
        }
        if (done->batches != expected_sequence) {
          return Status::InvalidArgument("dropped row batch in response");
        }
        return Status::OK();
      }
      case FrameType::kError: {
        ErrorMsg error;
        CINDERELLA_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
        return ErrorToStatus(error);
      }
      default:
        return Status::InvalidArgument("unexpected frame in query response");
    }
  }
}

void Coordinator::QueryNode(const Endpoint& endpoint,
                            const QueryRequestMsg& request,
                            NodeResponse* response) const {
  const auto start = Clock::now();
  int backoff = options_.backoff_ms;
  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    response->attempts = attempt + 1;
    response->status =
        QueryOnce(endpoint, request, &response->rows, &response->done);
    if (response->status.ok() || !Retryable(response->status)) break;
    if (attempt < options_.retries && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
  }
  response->wall_ms = MsSince(start);
}

GatherResult Coordinator::Execute(const Query& query) {
  const auto start = Clock::now();
  GatherResult result;
  result.nodes_total = nodes_.size();
  result.nodes.resize(nodes_.size());

  QueryRequestMsg request;
  request.request_id = next_request_id_++;
  request.attributes = query.attributes().ToIds();

  // Per-node pruning: a node whose cached union synopsis misses the query
  // cannot host a matching row (Definition 1 over the union of its
  // partition synopses), so it is never contacted.
  std::vector<size_t> contacted;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    NodeOutcome& outcome = result.nodes[n];
    outcome.node = n;
    if (options_.prune && digests_[n].valid &&
        !digests_[n].synopsis.Intersects(query.attributes())) {
      outcome.pruned = true;
      outcome.ok = true;
      ++result.nodes_pruned;
      continue;
    }
    contacted.push_back(n);
  }
  result.nodes_contacted = contacted.size();

  // Scatter: one client thread per contacted node.
  std::vector<NodeResponse> responses(contacted.size());
  std::vector<std::thread> clients;
  clients.reserve(contacted.size());
  for (size_t i = 0; i < contacted.size(); ++i) {
    clients.emplace_back(&Coordinator::QueryNode, this,
                         std::cref(nodes_[contacted[i]]), std::cref(request),
                         &responses[i]);
  }
  for (std::thread& client : clients) client.join();

  // Gather: merge counters and rows; sort by entity id for the
  // node-count-independent deterministic order.
  for (size_t i = 0; i < contacted.size(); ++i) {
    NodeResponse& response = responses[i];
    NodeOutcome& outcome = result.nodes[contacted[i]];
    outcome.attempts = response.attempts;
    outcome.wall_ms = response.wall_ms;
    result.max_node_ms = std::max(result.max_node_ms, response.wall_ms);
    if (!response.status.ok()) {
      outcome.ok = false;
      outcome.error = response.status.ToString();
      ++result.nodes_failed;
      result.complete = false;
      continue;
    }
    outcome.ok = true;
    outcome.rows = response.done.rows_matched;
    result.partitions_total += response.done.partitions_total;
    result.partitions_scanned += response.done.partitions_scanned;
    result.partitions_pruned += response.done.partitions_pruned;
    result.rows_scanned += response.done.rows_scanned;
    result.rows_matched += response.done.rows_matched;
    result.cells_shipped += response.done.cells_shipped;
    result.max_node_rows =
        std::max(result.max_node_rows, response.done.rows_matched);
    for (Row& row : response.rows) result.rows.push_back(std::move(row));
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const Row& a, const Row& b) { return a.id() < b.id(); });
  result.wall_ms = MsSince(start);
  return result;
}

StatusOr<NodeStatsMsg> Coordinator::FetchStats(size_t node) const {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  StatusOr<Socket> conn = Socket::Connect(nodes_[node].host,
                                          nodes_[node].port,
                                          options_.timeout_ms);
  CINDERELLA_RETURN_IF_ERROR(conn.status());
  CINDERELLA_RETURN_IF_ERROR(
      WriteFrame(&*conn, FrameType::kStatsRequest, "", options_.timeout_ms));
  Frame frame;
  CINDERELLA_RETURN_IF_ERROR(ReadFrame(&*conn, &frame, options_.timeout_ms));
  if (frame.type == FrameType::kError) {
    ErrorMsg error;
    CINDERELLA_RETURN_IF_ERROR(DecodeError(frame.payload, &error));
    return ErrorToStatus(error);
  }
  if (frame.type != FrameType::kStatsResponse) {
    return Status::InvalidArgument("unexpected stats response frame");
  }
  NodeStatsMsg stats;
  CINDERELLA_RETURN_IF_ERROR(DecodeNodeStats(frame.payload, &stats));
  return stats;
}

Status Coordinator::Ping(size_t node) const {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  StatusOr<Socket> conn = Socket::Connect(nodes_[node].host,
                                          nodes_[node].port,
                                          options_.timeout_ms);
  CINDERELLA_RETURN_IF_ERROR(conn.status());
  CINDERELLA_RETURN_IF_ERROR(
      WriteFrame(&*conn, FrameType::kPing, "", options_.timeout_ms));
  Frame frame;
  CINDERELLA_RETURN_IF_ERROR(ReadFrame(&*conn, &frame, options_.timeout_ms));
  if (frame.type != FrameType::kPong) {
    return Status::InvalidArgument("unexpected ping response frame");
  }
  return Status::OK();
}

uint64_t Coordinator::digest_generation(size_t node) const {
  if (node >= digests_.size() || !digests_[node].valid) return 0;
  return digests_[node].generation;
}

}  // namespace net
}  // namespace cinderella
