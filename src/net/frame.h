#ifndef CINDERELLA_NET_FRAME_H_
#define CINDERELLA_NET_FRAME_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/status.h"

namespace cinderella {
namespace net {

/// Message types of the Cinderella wire protocol (DESIGN.md §14). The
/// conversation is strictly request/response over one TCP connection:
/// the client sends one request frame, the server answers with one
/// response frame — except queries, which stream zero or more kRowBatch
/// frames followed by exactly one kQueryDone (so a gather can start
/// merging before the last batch lands).
enum class FrameType : uint8_t {
  kPing = 1,
  kPong = 2,
  kQueryRequest = 3,
  kRowBatch = 4,
  kQueryDone = 5,
  kSynopsisRequest = 6,
  kSynopsisResponse = 7,
  kStatsRequest = 8,
  kStatsResponse = 9,
  kError = 10,
};

/// Highest valid FrameType value; anything above is a corrupt frame.
constexpr uint8_t kMaxFrameType = static_cast<uint8_t>(FrameType::kError);

/// "CIND" little-endian. A connection speaking anything else is rejected
/// on the first header.
constexpr uint32_t kFrameMagic = 0x444E4943u;

/// Bumped on any incompatible layout change; both sides must match.
constexpr uint8_t kWireVersion = 1;

/// Hard cap on one frame's payload. Row batches are sliced well below
/// this (node_server.h); the cap exists so a corrupt length field can
/// never drive a multi-gigabyte allocation.
constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Bytes of the fixed frame header:
///   u32 magic, u8 version, u8 type, u16 reserved(0),
///   u32 payload length, u32 FNV-1a checksum of the payload.
constexpr size_t kFrameHeaderBytes = 16;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// 32-bit FNV-1a over `data` — the frame checksum. Cheap, endian-free,
/// and catches the torn/bit-flipped frames the fuzz tests inject; this
/// is corruption *detection* for a local transport, not cryptography.
uint32_t FrameChecksum(std::string_view data);

/// Serializes a complete frame (header + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental decode from the front of `buffer`:
///  - returns true and fills `*frame` when a complete, well-formed frame
///    is present; `*consumed` is its total size (header + payload);
///  - returns false when `buffer` is a valid but incomplete prefix (read
///    more bytes and retry); `*consumed` is 0;
///  - returns an error Status when the bytes can never become a valid
///    frame (bad magic, unsupported version, unknown type, oversized
///    length, checksum mismatch). Never reads past `buffer`.
StatusOr<bool> DecodeFrame(std::string_view buffer, Frame* frame,
                           size_t* consumed);

/// Bounds-checked cursor over a frame payload. Every Try* returns false
/// instead of reading past the end, so message decoders degrade to a
/// clean InvalidArgument on truncated or corrupt payloads — the codec
/// never trusts a length field it has not ranged-checked.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads exactly `n` bytes into `*out` (resized).
  bool ReadBytes(std::string* out, size_t n) {
    if (data_.size() - pos_ < n) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

template <typename T>
inline void WirePod(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace net
}  // namespace cinderella

#endif  // CINDERELLA_NET_FRAME_H_
