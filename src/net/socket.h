#ifndef CINDERELLA_NET_SOCKET_H_
#define CINDERELLA_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace cinderella {
namespace net {

/// A minimal RAII TCP socket for the loopback transport. All fds are
/// non-blocking; every operation polls against a caller-supplied timeout
/// and returns DeadlineExceeded when it expires, Unavailable when the
/// peer refused or hung up — the two codes the coordinator's retry and
/// partial-result policies key on. Move-only; the destructor closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port; read it
  /// back via local_port) and listens.
  static StatusOr<Socket> Listen(uint16_t port);

  /// Accepts one pending connection; DeadlineExceeded when none arrives
  /// within `timeout_ms`.
  StatusOr<Socket> Accept(int timeout_ms);

  /// Connects to `host`:`port` within `timeout_ms`. A refused connection
  /// returns Unavailable (the node is down), a missed deadline
  /// DeadlineExceeded.
  static StatusOr<Socket> Connect(const std::string& host, uint16_t port,
                                  int timeout_ms);

  /// Writes exactly `len` bytes or fails.
  Status SendAll(const void* data, size_t len, int timeout_ms);

  /// Reads exactly `len` bytes or fails; a clean peer close mid-read is
  /// Unavailable.
  Status RecvAll(void* data, size_t len, int timeout_ms);

  /// Polls for readability: true when a read would not block, false on
  /// timeout. Used by server connection loops to interleave stop checks
  /// with idle waiting.
  StatusOr<bool> WaitReadable(int timeout_ms);

  /// The locally bound port (listener sockets; 0 on error).
  uint16_t local_port() const;

 private:
  int fd_ = -1;
};

/// Writes one complete frame.
Status WriteFrame(Socket* socket, FrameType type, std::string_view payload,
                  int timeout_ms);

/// Reads one complete frame (header, then payload) and validates it.
/// Corrupt bytes surface as InvalidArgument, timeouts as
/// DeadlineExceeded, peer close as Unavailable.
Status ReadFrame(Socket* socket, Frame* frame, int timeout_ms);

}  // namespace net
}  // namespace cinderella

#endif  // CINDERELLA_NET_SOCKET_H_
