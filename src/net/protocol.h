#ifndef CINDERELLA_NET_PROTOCOL_H_
#define CINDERELLA_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"

namespace cinderella {
namespace net {

/// Payload serializers for every frame type (net/frame.h). Encoding is
/// little-endian host order (the snapshot format's convention); every
/// decoder is bounds-checked through WireReader and returns
/// InvalidArgument — never crashes or over-reads — on torn or corrupt
/// payloads, which the frame fuzz tests exercise byte by byte.

/// kQueryRequest: an attribute-set query (the paper's workload shape).
/// Attribute ids are the coordinator's dictionary ids; nodes host rows
/// that carry the same ids, so no name resolution happens server-side.
struct QueryRequestMsg {
  uint64_t request_id = 0;
  std::vector<AttributeId> attributes;
};

/// kRowBatch: one slice of a query's matched rows, in the node's
/// deterministic scan order. `sequence` numbers the batches of one
/// response 0,1,2,... so a gather can detect a dropped batch.
struct RowBatchMsg {
  uint64_t request_id = 0;
  uint32_t sequence = 0;
  std::vector<Row> rows;
};

/// kQueryDone: terminates a query response with the node's measured scan
/// counters and the number of row batches that preceded it.
struct QueryDoneMsg {
  uint64_t request_id = 0;
  uint32_t batches = 0;
  uint64_t partitions_total = 0;
  uint64_t partitions_scanned = 0;
  uint64_t partitions_pruned = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t cells_shipped = 0;
};

/// kSynopsisResponse: the node's pruning digest — the union synopsis of
/// every partition it hosts at `generation`, plus per-partition count.
/// The coordinator caches this and skips contacting the node entirely
/// when a query's synopsis misses the union (Definition 1 lifted to
/// nodes).
struct SynopsisDigestMsg {
  uint64_t generation = 0;
  uint64_t partitions = 0;
  uint64_t entities = 0;
  std::vector<uint64_t> union_words;
};

/// kStatsResponse: static load and service counters of one node, the
/// per-node section of `cinderella_cli stats`.
struct NodeStatsMsg {
  uint64_t generation = 0;
  uint64_t partitions = 0;
  uint64_t entities = 0;
  uint64_t bytes = 0;
  uint64_t queries_served = 0;
  uint64_t rows_shipped = 0;
};

/// kError: a Status shipped back to the client.
struct ErrorMsg {
  uint8_t code = 0;  // StatusCode cast.
  std::string message;
};

std::string EncodeQueryRequest(const QueryRequestMsg& msg);
Status DecodeQueryRequest(std::string_view payload, QueryRequestMsg* msg);

std::string EncodeRowBatch(const RowBatchMsg& msg);
Status DecodeRowBatch(std::string_view payload, RowBatchMsg* msg);

std::string EncodeQueryDone(const QueryDoneMsg& msg);
Status DecodeQueryDone(std::string_view payload, QueryDoneMsg* msg);

std::string EncodeSynopsisDigest(const SynopsisDigestMsg& msg);
Status DecodeSynopsisDigest(std::string_view payload, SynopsisDigestMsg* msg);

std::string EncodeNodeStats(const NodeStatsMsg& msg);
Status DecodeNodeStats(std::string_view payload, NodeStatsMsg* msg);

std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload, ErrorMsg* msg);

/// Reconstructs the Status an ErrorMsg carries.
Status ErrorToStatus(const ErrorMsg& msg);

/// Row wire helpers shared by the batch codec (format identical in shape
/// to the journal's row payload: u64 id, u32 cell count, then per cell
/// u32 attribute, u8 type tag, payload).
void EncodeRowPayload(std::string* out, const Row& row);
bool DecodeRowPayload(WireReader* reader, Row* row);

}  // namespace net
}  // namespace cinderella

#endif  // CINDERELLA_NET_PROTOCOL_H_
