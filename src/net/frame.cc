#include "net/frame.h"

#include <algorithm>

namespace cinderella {
namespace net {

uint32_t FrameChecksum(std::string_view data) {
  uint32_t hash = 2166136261u;  // FNV offset basis.
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 16777619u;  // FNV prime.
  }
  return hash;
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  WirePod<uint32_t>(&out, kFrameMagic);
  WirePod<uint8_t>(&out, kWireVersion);
  WirePod<uint8_t>(&out, static_cast<uint8_t>(type));
  WirePod<uint16_t>(&out, 0);  // Reserved.
  WirePod<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  WirePod<uint32_t>(&out, FrameChecksum(payload));
  out.append(payload.data(), payload.size());
  return out;
}

StatusOr<bool> DecodeFrame(std::string_view buffer, Frame* frame,
                           size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < kFrameHeaderBytes) {
    // A short buffer can still be rejected early: whatever is present of
    // the magic must match, else no amount of further bytes helps.
    const size_t check = std::min(buffer.size(), sizeof(uint32_t));
    uint32_t magic = kFrameMagic;
    if (std::memcmp(buffer.data(), &magic, check) != 0) {
      return Status::InvalidArgument("bad frame magic");
    }
    return false;
  }
  WireReader reader(buffer);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t reserved = 0;
  uint32_t length = 0;
  uint32_t checksum = 0;
  reader.Read(&magic);
  reader.Read(&version);
  reader.Read(&type);
  reader.Read(&reserved);
  reader.Read(&length);
  reader.Read(&checksum);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  if (type == 0 || type > kMaxFrameType) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved frame bits");
  }
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(length) + " exceeds cap");
  }
  if (reader.remaining() < length) return false;  // Incomplete payload.
  frame->type = static_cast<FrameType>(type);
  if (!reader.ReadBytes(&frame->payload, length)) {
    return Status::Internal("frame payload read failed");  // Unreachable.
  }
  if (FrameChecksum(frame->payload) != checksum) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  *consumed = kFrameHeaderBytes + length;
  return true;
}

}  // namespace net
}  // namespace cinderella
