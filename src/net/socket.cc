#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace cinderella {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineFrom(int timeout_ms) {
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

/// Milliseconds until `deadline`, clamped to >= 0.
int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Polls `fd` for `events` until `deadline`; true when ready, false on
/// timeout, error Status on poll failure.
StatusOr<bool> PollFd(int fd, short events, Clock::time_point deadline) {
  while (true) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout = RemainingMs(deadline);
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) return false;
    return true;
  }
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> Socket::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  CINDERELLA_RETURN_IF_ERROR(SetNonBlocking(fd));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::Unavailable("bind 127.0.0.1:" + std::to_string(port) +
                               ": " + std::strerror(errno));
  }
  if (::listen(fd, 64) < 0) return Errno("listen");
  return socket;
}

StatusOr<Socket> Socket::Accept(int timeout_ms) {
  const auto deadline = DeadlineFrom(timeout_ms);
  while (true) {
    StatusOr<bool> ready = PollFd(fd_, POLLIN, deadline);
    CINDERELLA_RETURN_IF_ERROR(ready.status());
    if (!*ready) return Status::DeadlineExceeded("accept timed out");
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // Raced another acceptor; poll again.
      }
      return Errno("accept");
    }
    Socket accepted(conn);
    CINDERELLA_RETURN_IF_ERROR(SetNonBlocking(conn));
    const int one = 1;
    (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return accepted;
  }
}

StatusOr<Socket> Socket::Connect(const std::string& host, uint16_t port,
                                 int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  CINDERELLA_RETURN_IF_ERROR(SetNonBlocking(fd));
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address " + host);
  }
  const auto deadline = DeadlineFrom(timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    return socket;
  }
  if (errno == ECONNREFUSED) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": connection refused");
  }
  if (errno != EINPROGRESS && errno != EINTR) return Errno("connect");
  // Non-blocking connect: wait for writability, then read SO_ERROR.
  StatusOr<bool> ready = PollFd(fd, POLLOUT, deadline);
  CINDERELLA_RETURN_IF_ERROR(ready.status());
  if (!*ready) {
    return Status::DeadlineExceeded("connect " + host + ":" +
                                    std::to_string(port) + " timed out");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(err));
  }
  return socket;
}

Status Socket::SendAll(const void* data, size_t len, int timeout_ms) {
  const auto deadline = DeadlineFrom(timeout_ms);
  const char* bytes = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("peer closed during send");
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Errno("send");
    }
    StatusOr<bool> ready = PollFd(fd_, POLLOUT, deadline);
    CINDERELLA_RETURN_IF_ERROR(ready.status());
    if (!*ready) return Status::DeadlineExceeded("send timed out");
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len, int timeout_ms) {
  const auto deadline = DeadlineFrom(timeout_ms);
  char* bytes = static_cast<char*>(data);
  size_t received = 0;
  while (received < len) {
    const ssize_t n = ::recv(fd_, bytes + received, len - received, 0);
    if (n > 0) {
      received += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::Unavailable("peer closed during recv");
    if (errno == ECONNRESET) {
      return Status::Unavailable("connection reset during recv");
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Errno("recv");
    }
    StatusOr<bool> ready = PollFd(fd_, POLLIN, deadline);
    CINDERELLA_RETURN_IF_ERROR(ready.status());
    if (!*ready) return Status::DeadlineExceeded("recv timed out");
  }
  return Status::OK();
}

StatusOr<bool> Socket::WaitReadable(int timeout_ms) {
  return PollFd(fd_, POLLIN, DeadlineFrom(timeout_ms));
}

uint16_t Socket::local_port() const {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Status WriteFrame(Socket* socket, FrameType type, std::string_view payload,
                  int timeout_ms) {
  const std::string frame = EncodeFrame(type, payload);
  return socket->SendAll(frame.data(), frame.size(), timeout_ms);
}

Status ReadFrame(Socket* socket, Frame* frame, int timeout_ms) {
  const auto deadline = DeadlineFrom(timeout_ms);
  std::string header(kFrameHeaderBytes, '\0');
  CINDERELLA_RETURN_IF_ERROR(
      socket->RecvAll(header.data(), header.size(), RemainingMs(deadline)));
  size_t consumed = 0;
  StatusOr<bool> decoded = DecodeFrame(header, frame, &consumed);
  CINDERELLA_RETURN_IF_ERROR(decoded.status());
  if (*decoded) return Status::OK();  // Empty-payload frame.
  // The header was valid but announces a payload; read exactly that many
  // bytes and re-run the full validation (checksum included).
  uint32_t length = 0;
  std::memcpy(&length, header.data() + 8, sizeof(length));
  std::string buffer = std::move(header);
  buffer.resize(kFrameHeaderBytes + length);
  CINDERELLA_RETURN_IF_ERROR(socket->RecvAll(
      buffer.data() + kFrameHeaderBytes, length, RemainingMs(deadline)));
  decoded = DecodeFrame(buffer, frame, &consumed);
  CINDERELLA_RETURN_IF_ERROR(decoded.status());
  if (!*decoded) return Status::Internal("frame decode underflow");
  return Status::OK();
}

}  // namespace net
}  // namespace cinderella
