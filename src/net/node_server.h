#ifndef CINDERELLA_NET_NODE_SERVER_H_
#define CINDERELLA_NET_NODE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "mvcc/versioned_table.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace cinderella {
namespace net {

struct NodeServerOptions {
  /// Listening port on 127.0.0.1; 0 asks the kernel for an ephemeral port
  /// (read it back via NodeServer::port()).
  uint16_t port = 0;
  /// Worker threads serving connections; 0 resolves from
  /// CINDERELLA_NET_SERVER_THREADS (default 2).
  int threads = 0;
  /// Granularity of the stop-flag checks in the accept and idle-connection
  /// poll loops.
  int poll_ms = 50;
  /// Rows per kRowBatch frame of a streamed query response.
  size_t batch_rows = 256;
  /// Per-frame send/receive deadline once a request is in flight.
  int io_timeout_ms = 5000;

  /// Defaults with the thread count resolved from the environment.
  static NodeServerOptions FromEnv();
};

/// One shard of the cluster: hosts a VersionedTable and serves the wire
/// protocol (net/frame.h) on a loopback TCP port.
///
/// Every query request pins an MVCC snapshot, runs the same
/// synopsis-pruned scan as a local QueryExecutor (ExecuteGather), and
/// streams the matched rows back as kRowBatch frames terminated by a
/// kQueryDone carrying the node's measured scan counters — so concurrent
/// writers republishing views never block or tear a response.
/// kSynopsisRequest serves the node's pruning digest (the snapshot's
/// union synopsis plus its generation), kStatsRequest the per-node load
/// and service counters behind `cinderella_cli stats`.
///
/// Threading: one acceptor thread feeds a bounded crew of worker threads
/// through a connection queue; each worker serves one connection at a
/// time (multiple requests per connection are fine). Stop() is prompt —
/// every blocking wait polls the stop flag at poll_ms granularity — and
/// idempotent. The table must outlive the server.
class NodeServer {
 public:
  /// Monotonic service counters, readable while serving.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t queries_served = 0;
    uint64_t rows_shipped = 0;
    uint64_t frames_rejected = 0;  // Corrupt or unexpected frames.
  };

  explicit NodeServer(const VersionedTable* table,
                      NodeServerOptions options = NodeServerOptions::FromEnv());
  ~NodeServer();

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Binds, listens, and spawns the acceptor and workers. Fails (without
  /// leaking threads) when the port is taken.
  Status Start();

  /// Stops accepting, drains the workers, closes the listener. Safe to
  /// call twice; the destructor calls it.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  Stats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();

  /// Serves frames on one connection until the peer hangs up, the stream
  /// corrupts, or the server stops.
  void ServeConnection(Socket conn);

  /// Dispatches one validated frame; a non-OK return ends the connection.
  Status HandleFrame(Socket* conn, const Frame& frame);

  Status HandleQuery(Socket* conn, const Frame& frame);
  Status HandleSynopsis(Socket* conn);
  Status HandleStats(Socket* conn);

  /// Ships a kError frame carrying `status` (best effort).
  void SendError(Socket* conn, const Status& status);

  const VersionedTable* table_;
  NodeServerOptions options_;

  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Socket> pending_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> rows_shipped_{0};
  std::atomic<uint64_t> frames_rejected_{0};
};

}  // namespace net
}  // namespace cinderella

#endif  // CINDERELLA_NET_NODE_SERVER_H_
