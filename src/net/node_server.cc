#include "net/node_server.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/env.h"
#include "query/executor.h"
#include "query/query.h"

namespace cinderella {
namespace net {

NodeServerOptions NodeServerOptions::FromEnv() {
  NodeServerOptions options;
  options.threads = static_cast<int>(
      Int64FromEnv("CINDERELLA_NET_SERVER_THREADS", 0));
  return options;
}

NodeServer::NodeServer(const VersionedTable* table, NodeServerOptions options)
    : table_(table), options_(options) {
  if (options_.threads <= 0) {
    const int64_t env =
        Int64FromEnv("CINDERELLA_NET_SERVER_THREADS", 2);
    options_.threads = env > 0 ? static_cast<int>(env) : 2;
  }
  if (options_.poll_ms <= 0) options_.poll_ms = 50;
  if (options_.batch_rows == 0) options_.batch_rows = 256;
}

NodeServer::~NodeServer() { Stop(); }

Status NodeServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  StatusOr<Socket> listener = Socket::Listen(options_.port);
  CINDERELLA_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_.local_port();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&NodeServer::AcceptLoop, this);
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back(&NodeServer::WorkerLoop, this);
  }
  return Status::OK();
}

void NodeServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  listener_.Close();
  std::lock_guard<std::mutex> lock(queue_mu_);
  pending_.clear();
}

NodeServer::Stats NodeServer::stats() const {
  Stats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.rows_shipped = rows_shipped_.load(std::memory_order_relaxed);
  stats.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  return stats;
}

void NodeServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<Socket> conn = listener_.Accept(options_.poll_ms);
    if (!conn.ok()) continue;  // Timeout (the stop check) or a torn accept.
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(std::move(*conn));
    }
    queue_cv_.notify_one();
  }
}

void NodeServer::WorkerLoop() {
  while (true) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(conn));
  }
}

void NodeServer::ServeConnection(Socket conn) {
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<bool> readable = conn.WaitReadable(options_.poll_ms);
    if (!readable.ok()) return;
    if (!*readable) continue;  // Idle; re-check the stop flag.
    Frame frame;
    const Status read = ReadFrame(&conn, &frame, options_.io_timeout_ms);
    if (!read.ok()) {
      if (read.code() == StatusCode::kInvalidArgument) {
        // Corrupt stream: report and drop the connection (framing is
        // unrecoverable once bytes are torn).
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(&conn, read);
      }
      return;  // Peer hung up, timed out mid-frame, or corrupted.
    }
    if (!HandleFrame(&conn, frame).ok()) return;
  }
}

Status NodeServer::HandleFrame(Socket* conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      return WriteFrame(conn, FrameType::kPong, "", options_.io_timeout_ms);
    case FrameType::kQueryRequest:
      return HandleQuery(conn, frame);
    case FrameType::kSynopsisRequest:
      return HandleSynopsis(conn);
    case FrameType::kStatsRequest:
      return HandleStats(conn);
    default: {
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      const Status status = Status::InvalidArgument(
          "unexpected frame type " +
          std::to_string(static_cast<int>(frame.type)));
      SendError(conn, status);
      return status;
    }
  }
}

Status NodeServer::HandleQuery(Socket* conn, const Frame& frame) {
  QueryRequestMsg request;
  const Status decoded = DecodeQueryRequest(frame.payload, &request);
  if (!decoded.ok()) {
    frames_rejected_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, decoded);
    return decoded;
  }

  // Pin one generation for the whole response: the scan and the counters
  // come from a single consistent view no matter how many publications
  // race past while rows stream out.
  const VersionedTable::Snapshot snapshot = table_->snapshot();
  QueryExecutor executor(snapshot.view());
  const Query query(Synopsis::FromIds(request.attributes));
  std::vector<Row> rows;
  const QueryResult result = executor.ExecuteGather(query, &rows);

  uint32_t batches = 0;
  RowBatchMsg batch;
  batch.request_id = request.request_id;
  for (size_t begin = 0; begin < rows.size(); begin += options_.batch_rows) {
    const size_t end = std::min(rows.size(), begin + options_.batch_rows);
    batch.sequence = batches++;
    batch.rows.assign(std::make_move_iterator(rows.begin() + begin),
                      std::make_move_iterator(rows.begin() + end));
    CINDERELLA_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kRowBatch,
                                          EncodeRowBatch(batch),
                                          options_.io_timeout_ms));
  }

  QueryDoneMsg done;
  done.request_id = request.request_id;
  done.batches = batches;
  done.partitions_total = result.metrics.partitions_total;
  done.partitions_scanned = result.metrics.partitions_scanned;
  done.partitions_pruned = result.metrics.partitions_pruned;
  done.rows_scanned = result.metrics.rows_scanned;
  done.rows_matched = result.metrics.rows_matched;
  done.cells_shipped = result.cells_materialized;
  CINDERELLA_RETURN_IF_ERROR(WriteFrame(conn, FrameType::kQueryDone,
                                        EncodeQueryDone(done),
                                        options_.io_timeout_ms));
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  rows_shipped_.fetch_add(result.metrics.rows_matched,
                          std::memory_order_relaxed);
  return Status::OK();
}

Status NodeServer::HandleSynopsis(Socket* conn) {
  const VersionedTable::Snapshot snapshot = table_->snapshot();
  const CatalogView& view = snapshot.view();
  SynopsisDigestMsg digest;
  digest.generation = view.generation();
  digest.partitions = view.partition_count();
  digest.entities = view.entity_count();
  digest.union_words = view.UnionSynopsis().words();
  return WriteFrame(conn, FrameType::kSynopsisResponse,
                    EncodeSynopsisDigest(digest), options_.io_timeout_ms);
}

Status NodeServer::HandleStats(Socket* conn) {
  const VersionedTable::Snapshot snapshot = table_->snapshot();
  const CatalogView& view = snapshot.view();
  NodeStatsMsg stats;
  stats.generation = view.generation();
  stats.partitions = view.partition_count();
  stats.entities = view.entity_count();
  stats.bytes = view.byte_size();
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.rows_shipped = rows_shipped_.load(std::memory_order_relaxed);
  return WriteFrame(conn, FrameType::kStatsResponse, EncodeNodeStats(stats),
                    options_.io_timeout_ms);
}

void NodeServer::SendError(Socket* conn, const Status& status) {
  (void)WriteFrame(conn, FrameType::kError, EncodeError(status),
                   options_.io_timeout_ms);
}

}  // namespace net
}  // namespace cinderella
