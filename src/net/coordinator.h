#ifndef CINDERELLA_NET_COORDINATOR_H_
#define CINDERELLA_NET_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "query/query.h"
#include "synopsis/synopsis.h"

namespace cinderella {
namespace net {

/// Address of one node server.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CoordinatorOptions {
  /// Per-request deadline (connect + send + whole streamed response);
  /// resolved from CINDERELLA_NET_TIMEOUT_MS by FromEnv.
  int timeout_ms = 2000;
  /// Additional attempts after the first, on Unavailable/DeadlineExceeded
  /// only; resolved from CINDERELLA_NET_RETRIES by FromEnv.
  int retries = 2;
  /// Base retry backoff; doubles per attempt.
  int backoff_ms = 20;
  /// Skip nodes whose cached synopsis digest cannot intersect the query
  /// (Definition 1 lifted to nodes). Nodes without a cached digest are
  /// always contacted.
  bool prune = true;

  /// Defaults with timeout and retries resolved from the environment.
  static CoordinatorOptions FromEnv();
};

/// What happened to one node during a scatter.
struct NodeOutcome {
  size_t node = 0;
  bool pruned = false;   // Skipped via the cached digest; never contacted.
  bool ok = false;       // Response complete (vacuously true when pruned).
  int attempts = 0;
  uint64_t rows = 0;     // Rows this node shipped.
  double wall_ms = 0.0;  // Time from first attempt to outcome.
  std::string error;     // Final error when !ok.
};

/// Merged result of one scatter/gather execution.
struct GatherResult {
  /// Matched rows from every responding node, sorted by entity id — the
  /// deterministic merge order. Entity ids are globally unique, so this
  /// ordering (with each row's cells already sorted by attribute id) makes
  /// the result bit-identical to a single-node ExecuteGather sorted the
  /// same way, independent of node count, placement, and arrival order.
  std::vector<Row> rows;
  /// False when any non-pruned node failed all attempts; `rows` then holds
  /// the partial result from the nodes that did respond.
  bool complete = true;

  uint64_t nodes_total = 0;
  uint64_t nodes_contacted = 0;
  uint64_t nodes_pruned = 0;
  uint64_t nodes_failed = 0;

  // Sums of the per-node measured counters (responding nodes only).
  uint64_t partitions_total = 0;
  uint64_t partitions_scanned = 0;
  uint64_t partitions_pruned = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t cells_shipped = 0;

  /// Rows shipped by the busiest node — the straggler share of the
  /// gather.
  uint64_t max_node_rows = 0;
  double wall_ms = 0.0;      // Whole scatter+gather.
  double max_node_ms = 0.0;  // Slowest node's response time.

  std::vector<NodeOutcome> nodes;
};

/// The scatter/gather query coordinator over loopback node servers.
///
/// Execute() prunes nodes via cached synopsis digests, scatters the query
/// concurrently to the survivors, retries transient failures (connection
/// refused, deadline) with bounded exponential backoff, and gathers the
/// streamed row batches into one deterministically merged result. A node
/// that stays down after the retry budget marks the result incomplete
/// rather than failing it — the caller gets every row the live nodes
/// produced plus per-node outcomes saying exactly what is missing.
///
/// Thread-safe for concurrent Execute() calls (each opens its own
/// connections); RefreshDigests must not race Execute.
class Coordinator {
 public:
  explicit Coordinator(std::vector<Endpoint> nodes,
                       CoordinatorOptions options = CoordinatorOptions());

  /// Fetches and caches every node's synopsis digest. A node that cannot
  /// be reached keeps its previous digest (or stays unpruned); the first
  /// error is returned but the refresh still visits every node.
  Status RefreshDigests();

  /// Scatter/gather execution of an attribute-set query.
  GatherResult Execute(const Query& query);

  /// One node's stats frame (the CLI's per-node section).
  StatusOr<NodeStatsMsg> FetchStats(size_t node) const;

  /// Round-trip liveness probe.
  Status Ping(size_t node) const;

  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<Endpoint>& endpoints() const { return nodes_; }

  /// The cached digest generation for `node`; 0 when none is cached.
  uint64_t digest_generation(size_t node) const;

 private:
  struct Digest {
    bool valid = false;
    Synopsis synopsis;
    uint64_t generation = 0;
  };

  struct NodeResponse {
    Status status = Status::OK();
    int attempts = 0;
    double wall_ms = 0.0;
    std::vector<Row> rows;
    QueryDoneMsg done;
  };

  /// One query attempt against one endpoint: connect, send, drain the
  /// streamed response.
  Status QueryOnce(const Endpoint& endpoint, const QueryRequestMsg& request,
                   std::vector<Row>* rows, QueryDoneMsg* done) const;

  /// Full per-node client: attempts with backoff, fills `*response`.
  void QueryNode(const Endpoint& endpoint, const QueryRequestMsg& request,
                 NodeResponse* response) const;

  std::vector<Endpoint> nodes_;
  CoordinatorOptions options_;
  std::vector<Digest> digests_;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace cinderella

#endif  // CINDERELLA_NET_COORDINATOR_H_
