#include "net/protocol.h"

namespace cinderella {
namespace net {
namespace {

// Sanity caps mirroring the journal codec's: a corrupt count field must
// fail fast instead of driving a giant allocation loop.
constexpr uint32_t kMaxAttributes = 1u << 20;
constexpr uint32_t kMaxRowsPerBatch = 1u << 20;
constexpr uint32_t kMaxCellsPerRow = 1u << 24;
constexpr uint32_t kMaxStringBytes = 1u << 28;
constexpr uint32_t kMaxSynopsisWords = 1u << 20;
constexpr uint32_t kMaxErrorBytes = 1u << 16;

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt ") + what + " payload");
}

}  // namespace

void EncodeRowPayload(std::string* out, const Row& row) {
  WirePod<uint64_t>(out, row.id());
  WirePod<uint32_t>(out, static_cast<uint32_t>(row.attribute_count()));
  for (const Row::Cell& cell : row.cells()) {
    WirePod<uint32_t>(out, cell.attribute);
    WirePod<uint8_t>(out, static_cast<uint8_t>(cell.value.type()));
    switch (cell.value.type()) {
      case ValueType::kInt64:
        WirePod<int64_t>(out, cell.value.as_int64());
        break;
      case ValueType::kDouble:
        WirePod<double>(out, cell.value.as_double());
        break;
      case ValueType::kString: {
        const std::string& s = cell.value.as_string();
        WirePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
        out->append(s.data(), s.size());
        break;
      }
    }
  }
}

bool DecodeRowPayload(WireReader* reader, Row* row) {
  uint64_t id = 0;
  uint32_t cells = 0;
  if (!reader->Read(&id) || !reader->Read(&cells)) return false;
  if (cells > kMaxCellsPerRow) return false;
  *row = Row(id);
  for (uint32_t c = 0; c < cells; ++c) {
    uint32_t attribute = 0;
    uint8_t type = 0;
    if (!reader->Read(&attribute) || !reader->Read(&type)) return false;
    switch (static_cast<ValueType>(type)) {
      case ValueType::kInt64: {
        int64_t v = 0;
        if (!reader->Read(&v)) return false;
        row->Set(attribute, Value(v));
        break;
      }
      case ValueType::kDouble: {
        double v = 0;
        if (!reader->Read(&v)) return false;
        row->Set(attribute, Value(v));
        break;
      }
      case ValueType::kString: {
        uint32_t size = 0;
        if (!reader->Read(&size) || size > kMaxStringBytes) return false;
        std::string s;
        if (!reader->ReadBytes(&s, size)) return false;
        row->Set(attribute, Value(std::move(s)));
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

// -- QueryRequest -------------------------------------------------------------

std::string EncodeQueryRequest(const QueryRequestMsg& msg) {
  std::string out;
  WirePod<uint64_t>(&out, msg.request_id);
  WirePod<uint32_t>(&out, static_cast<uint32_t>(msg.attributes.size()));
  for (const AttributeId id : msg.attributes) WirePod<uint32_t>(&out, id);
  return out;
}

Status DecodeQueryRequest(std::string_view payload, QueryRequestMsg* msg) {
  WireReader reader(payload);
  uint32_t count = 0;
  if (!reader.Read(&msg->request_id) || !reader.Read(&count) ||
      count > kMaxAttributes) {
    return Corrupt("query request");
  }
  msg->attributes.clear();
  msg->attributes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AttributeId id = 0;
    if (!reader.Read(&id)) return Corrupt("query request");
    msg->attributes.push_back(id);
  }
  if (!reader.done()) return Corrupt("query request");
  return Status::OK();
}

// -- RowBatch -----------------------------------------------------------------

std::string EncodeRowBatch(const RowBatchMsg& msg) {
  std::string out;
  WirePod<uint64_t>(&out, msg.request_id);
  WirePod<uint32_t>(&out, msg.sequence);
  WirePod<uint32_t>(&out, static_cast<uint32_t>(msg.rows.size()));
  for (const Row& row : msg.rows) EncodeRowPayload(&out, row);
  return out;
}

Status DecodeRowBatch(std::string_view payload, RowBatchMsg* msg) {
  WireReader reader(payload);
  uint32_t count = 0;
  if (!reader.Read(&msg->request_id) || !reader.Read(&msg->sequence) ||
      !reader.Read(&count) || count > kMaxRowsPerBatch) {
    return Corrupt("row batch");
  }
  msg->rows.clear();
  msg->rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Row row;
    if (!DecodeRowPayload(&reader, &row)) return Corrupt("row batch");
    msg->rows.push_back(std::move(row));
  }
  if (!reader.done()) return Corrupt("row batch");
  return Status::OK();
}

// -- QueryDone ----------------------------------------------------------------

std::string EncodeQueryDone(const QueryDoneMsg& msg) {
  std::string out;
  WirePod<uint64_t>(&out, msg.request_id);
  WirePod<uint32_t>(&out, msg.batches);
  WirePod<uint64_t>(&out, msg.partitions_total);
  WirePod<uint64_t>(&out, msg.partitions_scanned);
  WirePod<uint64_t>(&out, msg.partitions_pruned);
  WirePod<uint64_t>(&out, msg.rows_scanned);
  WirePod<uint64_t>(&out, msg.rows_matched);
  WirePod<uint64_t>(&out, msg.cells_shipped);
  return out;
}

Status DecodeQueryDone(std::string_view payload, QueryDoneMsg* msg) {
  WireReader reader(payload);
  if (!reader.Read(&msg->request_id) || !reader.Read(&msg->batches) ||
      !reader.Read(&msg->partitions_total) ||
      !reader.Read(&msg->partitions_scanned) ||
      !reader.Read(&msg->partitions_pruned) ||
      !reader.Read(&msg->rows_scanned) || !reader.Read(&msg->rows_matched) ||
      !reader.Read(&msg->cells_shipped) || !reader.done()) {
    return Corrupt("query done");
  }
  return Status::OK();
}

// -- SynopsisDigest -----------------------------------------------------------

std::string EncodeSynopsisDigest(const SynopsisDigestMsg& msg) {
  std::string out;
  WirePod<uint64_t>(&out, msg.generation);
  WirePod<uint64_t>(&out, msg.partitions);
  WirePod<uint64_t>(&out, msg.entities);
  WirePod<uint32_t>(&out, static_cast<uint32_t>(msg.union_words.size()));
  for (const uint64_t word : msg.union_words) WirePod<uint64_t>(&out, word);
  return out;
}

Status DecodeSynopsisDigest(std::string_view payload, SynopsisDigestMsg* msg) {
  WireReader reader(payload);
  uint32_t words = 0;
  if (!reader.Read(&msg->generation) || !reader.Read(&msg->partitions) ||
      !reader.Read(&msg->entities) || !reader.Read(&words) ||
      words > kMaxSynopsisWords) {
    return Corrupt("synopsis digest");
  }
  msg->union_words.clear();
  msg->union_words.reserve(words);
  for (uint32_t i = 0; i < words; ++i) {
    uint64_t word = 0;
    if (!reader.Read(&word)) return Corrupt("synopsis digest");
    msg->union_words.push_back(word);
  }
  if (!reader.done()) return Corrupt("synopsis digest");
  return Status::OK();
}

// -- NodeStats ----------------------------------------------------------------

std::string EncodeNodeStats(const NodeStatsMsg& msg) {
  std::string out;
  WirePod<uint64_t>(&out, msg.generation);
  WirePod<uint64_t>(&out, msg.partitions);
  WirePod<uint64_t>(&out, msg.entities);
  WirePod<uint64_t>(&out, msg.bytes);
  WirePod<uint64_t>(&out, msg.queries_served);
  WirePod<uint64_t>(&out, msg.rows_shipped);
  return out;
}

Status DecodeNodeStats(std::string_view payload, NodeStatsMsg* msg) {
  WireReader reader(payload);
  if (!reader.Read(&msg->generation) || !reader.Read(&msg->partitions) ||
      !reader.Read(&msg->entities) || !reader.Read(&msg->bytes) ||
      !reader.Read(&msg->queries_served) || !reader.Read(&msg->rows_shipped) ||
      !reader.done()) {
    return Corrupt("node stats");
  }
  return Status::OK();
}

// -- Error --------------------------------------------------------------------

std::string EncodeError(const Status& status) {
  std::string out;
  WirePod<uint8_t>(&out, static_cast<uint8_t>(status.code()));
  const std::string& message = status.message();
  const uint32_t size = message.size() > kMaxErrorBytes
                            ? kMaxErrorBytes
                            : static_cast<uint32_t>(message.size());
  WirePod<uint32_t>(&out, size);
  out.append(message.data(), size);
  return out;
}

Status DecodeError(std::string_view payload, ErrorMsg* msg) {
  WireReader reader(payload);
  uint32_t size = 0;
  if (!reader.Read(&msg->code) || !reader.Read(&size) ||
      size > kMaxErrorBytes || !reader.ReadBytes(&msg->message, size) ||
      !reader.done()) {
    return Corrupt("error");
  }
  return Status::OK();
}

Status ErrorToStatus(const ErrorMsg& msg) {
  const StatusCode code = static_cast<StatusCode>(msg.code);
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return Status(code, msg.message);
  }
  return Status::Internal("remote error with unknown code: " + msg.message);
}

}  // namespace net
}  // namespace cinderella
