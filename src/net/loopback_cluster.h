#ifndef CINDERELLA_NET_LOOPBACK_CLUSTER_H_
#define CINDERELLA_NET_LOOPBACK_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "distributed/cluster.h"
#include "mvcc/versioned_table.h"
#include "net/coordinator.h"
#include "net/node_server.h"

namespace cinderella {
namespace net {

struct LoopbackClusterOptions {
  /// Number of node servers (>= 1).
  size_t nodes = 2;
  /// Placement policy the partitions are sharded with.
  PlacementPolicy policy = PlacementPolicy::kSchemaAware;
  /// Partitioner config for the staging partitioner and every node table.
  CinderellaConfig config;
  NodeServerOptions server = NodeServerOptions::FromEnv();
  CoordinatorOptions coordinator = CoordinatorOptions::FromEnv();
  /// First port: node i listens on port_base + i; 0 lets every node pick
  /// an ephemeral port. Resolved from CINDERELLA_NET_PORT_BASE by
  /// FromEnv.
  uint16_t port_base = 0;

  static LoopbackClusterOptions FromEnv();
};

/// A real (if local) deployment of the paper's distributed scenario: N
/// node servers on loopback TCP, each hosting one shard of the table
/// behind its own VersionedTable, plus a wired Coordinator.
///
/// Load() stages the whole dataset through one Cinderella partitioner,
/// places the resulting partitions onto nodes with the chosen policy
/// (distributed/cluster.h — the same Place the simulation uses), ships
/// each partition's rows to its node's table, starts the servers, and
/// refreshes the coordinator's synopsis digests. Each node re-partitions
/// its shard locally; results stay bit-identical to single-node execution
/// because the gather merge orders by globally unique entity id, not by
/// partition.
class LoopbackCluster {
 public:
  explicit LoopbackCluster(
      LoopbackClusterOptions options = LoopbackClusterOptions());

  /// Stops every server.
  ~LoopbackCluster();

  LoopbackCluster(const LoopbackCluster&) = delete;
  LoopbackCluster& operator=(const LoopbackCluster&) = delete;

  /// Shards `rows` across the nodes, starts the servers, wires the
  /// coordinator, refreshes digests. Call once.
  Status Load(const std::vector<Row>& rows);

  /// Stops one node's server (its port then refuses connections) — the
  /// failure-injection hook for partial-result tests.
  Status StopNode(size_t node);

  Coordinator& coordinator() { return *coordinator_; }
  VersionedTable& node_table(size_t node) { return *tables_[node]; }
  NodeServer& node_server(size_t node) { return *servers_[node]; }
  const Cluster& placement() const { return *placement_; }
  size_t num_nodes() const { return options_.nodes; }

 private:
  LoopbackClusterOptions options_;
  std::unique_ptr<Cluster> placement_;
  std::vector<std::unique_ptr<VersionedTable>> tables_;
  std::vector<std::unique_ptr<NodeServer>> servers_;
  std::unique_ptr<Coordinator> coordinator_;
};

}  // namespace net
}  // namespace cinderella

#endif  // CINDERELLA_NET_LOOPBACK_CLUSTER_H_
