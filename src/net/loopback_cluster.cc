#include "net/loopback_cluster.h"

#include <utility>

#include "common/env.h"
#include "core/cinderella.h"

namespace cinderella {
namespace net {

LoopbackClusterOptions LoopbackClusterOptions::FromEnv() {
  LoopbackClusterOptions options;
  options.port_base = static_cast<uint16_t>(
      Int64FromEnv("CINDERELLA_NET_PORT_BASE", 0));
  return options;
}

LoopbackCluster::LoopbackCluster(LoopbackClusterOptions options)
    : options_(std::move(options)) {
  if (options_.nodes == 0) options_.nodes = 1;
}

LoopbackCluster::~LoopbackCluster() {
  for (auto& server : servers_) {
    if (server != nullptr) server->Stop();
  }
}

Status LoopbackCluster::Load(const std::vector<Row>& rows) {
  if (coordinator_ != nullptr) {
    return Status::FailedPrecondition("cluster already loaded");
  }

  // Stage the dataset through one partitioner so the placement policy
  // sees the same partition synopses the simulation benchmarks do.
  StatusOr<std::unique_ptr<Cinderella>> staging =
      Cinderella::Create(options_.config);
  CINDERELLA_RETURN_IF_ERROR(staging.status());
  CINDERELLA_RETURN_IF_ERROR((*staging)->InsertBatch(rows));

  placement_ = std::make_unique<Cluster>(options_.nodes, options_.policy);
  placement_->Place((*staging)->catalog());

  // Shard: every staged partition's rows go whole to its assigned node.
  std::vector<std::vector<Row>> shards(options_.nodes);
  Status shard_error = Status::OK();
  (*staging)->catalog().ForEachPartition([&](const Partition& partition) {
    if (!shard_error.ok()) return;
    StatusOr<NodeId> node = placement_->NodeOf(partition.id());
    if (!node.ok()) {
      shard_error = node.status();
      return;
    }
    std::vector<Row>& shard = shards[*node];
    for (const Row& row : partition.segment().rows()) {
      shard.push_back(row);
    }
  });
  CINDERELLA_RETURN_IF_ERROR(shard_error);

  // Boot each node: its own partitioner + MVCC facade + server.
  std::vector<Endpoint> endpoints;
  endpoints.reserve(options_.nodes);
  for (size_t n = 0; n < options_.nodes; ++n) {
    StatusOr<std::unique_ptr<Cinderella>> partitioner =
        Cinderella::Create(options_.config);
    CINDERELLA_RETURN_IF_ERROR(partitioner.status());
    auto table = std::make_unique<VersionedTable>(std::move(*partitioner));
    if (!shards[n].empty()) {
      CINDERELLA_RETURN_IF_ERROR(table->InsertBatch(std::move(shards[n])));
    }
    NodeServerOptions server_options = options_.server;
    if (options_.port_base != 0) {
      server_options.port = static_cast<uint16_t>(options_.port_base + n);
    }
    auto server = std::make_unique<NodeServer>(table.get(), server_options);
    CINDERELLA_RETURN_IF_ERROR(server->Start());
    endpoints.push_back(Endpoint{"127.0.0.1", server->port()});
    tables_.push_back(std::move(table));
    servers_.push_back(std::move(server));
  }

  coordinator_ =
      std::make_unique<Coordinator>(std::move(endpoints), options_.coordinator);
  return coordinator_->RefreshDigests();
}

Status LoopbackCluster::StopNode(size_t node) {
  if (node >= servers_.size()) {
    return Status::InvalidArgument("node index out of range");
  }
  servers_[node]->Stop();
  return Status::OK();
}

}  // namespace net
}  // namespace cinderella
