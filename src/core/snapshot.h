#ifndef CINDERELLA_CORE_SNAPSHOT_H_
#define CINDERELLA_CORE_SNAPSHOT_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/cinderella.h"
#include "synopsis/attribute_dictionary.h"

namespace cinderella {

/// A restored table: the partitioner with its partitioning intact plus
/// the attribute dictionary it was saved with.
struct RestoredSnapshot {
  std::unique_ptr<Cinderella> partitioner;
  std::unique_ptr<AttributeDictionary> dictionary;
};

/// Serializes a Cinderella-partitioned table — configuration, workload
/// (if workload-based), attribute dictionary, and every partition's rows —
/// into a binary snapshot.
///
/// The format is versioned and self-describing but not cross-endian
/// (little-endian hosts only, like most embedded-store formats). Split
/// starters are intentionally not persisted: they are a heuristic cache
/// and are re-seeded lazily after a restore.
Status SaveSnapshot(const Cinderella& partitioner,
                    const AttributeDictionary& dictionary, std::ostream& out);

/// File-path convenience overload.
Status SaveSnapshotToFile(const Cinderella& partitioner,
                          const AttributeDictionary& dictionary,
                          const std::string& path);

/// Restores a snapshot written by SaveSnapshot. The partitioning (which
/// entity lives in which partition) is reproduced exactly; partition ids
/// are re-densified in save order.
StatusOr<RestoredSnapshot> LoadSnapshot(std::istream& in);

/// File-path convenience overload.
StatusOr<RestoredSnapshot> LoadSnapshotFromFile(const std::string& path);

}  // namespace cinderella

#endif  // CINDERELLA_CORE_SNAPSHOT_H_
