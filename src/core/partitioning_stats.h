#ifndef CINDERELLA_CORE_PARTITIONING_STATS_H_
#define CINDERELLA_CORE_PARTITIONING_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/catalog.h"

namespace cinderella {

/// Snapshot of the partitioning metrics the paper records in Figure 7:
/// (1) number of partitions, (2) entities per partition, (3) attributes per
/// partition, and (4) sparseness per partition, plus the whole-table
/// sparseness the paper quotes for the raw DBpedia set (0.94).
struct PartitioningReport {
  size_t partition_count = 0;
  size_t entity_count = 0;
  size_t table_attribute_count = 0;  // Distinct attributes in the table.
  SampleSummary entities_per_partition;
  SampleSummary attributes_per_partition;
  SampleSummary sparseness_per_partition;
  double table_sparseness = 0.0;  // 1 − cells / (entities · attributes).

  /// Raw per-partition samples for histogram-style reporting.
  std::vector<double> entities_samples;
  std::vector<double> attributes_samples;
  std::vector<double> sparseness_samples;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Analyzes the live partitions of `catalog`.
PartitioningReport AnalyzePartitioning(const PartitionCatalog& catalog);

}  // namespace cinderella

#endif  // CINDERELLA_CORE_PARTITIONING_STATS_H_
