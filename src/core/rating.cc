#include "core/rating.h"

namespace cinderella {

RatingBreakdown RateDetailed(const Synopsis& entity, double entity_size,
                             const Synopsis& partition, double partition_size,
                             double w) {
  // One fused pass over both bitsets yields all three disjoint
  // cardinalities (|e∧p|, |e∧¬p|, |¬e∧p|); the union is their sum.
  const Synopsis::RatingCounts counts = entity.RateCounts(partition);
  const double overlap = static_cast<double>(counts.intersect);
  // Attributes the partition has but the entity lacks.
  const double missing_on_entity = static_cast<double>(counts.only_other);
  // Attributes the entity has but the partition lacks.
  const double missing_on_partition = static_cast<double>(counts.only_this);

  RatingBreakdown b;
  const double combined_size = partition_size + entity_size;
  b.homogeneity = combined_size * overlap;
  b.entity_heterogeneity = entity_size * missing_on_entity;
  b.partition_heterogeneity = partition_size * missing_on_partition;
  b.local = w * b.homogeneity -
            (1.0 - w) * (b.entity_heterogeneity + b.partition_heterogeneity);

  const double union_count = overlap + missing_on_entity + missing_on_partition;
  const double normalizer = combined_size * union_count;
  b.global = normalizer > 0.0 ? b.local / normalizer : 0.0;
  return b;
}

double Rate(const Synopsis& entity, double entity_size,
            const Synopsis& partition, double partition_size, double w,
            bool normalize) {
  const Synopsis::RatingCounts counts = entity.RateCounts(partition);
  return RateFromCounts(static_cast<double>(counts.intersect),
                        static_cast<double>(counts.only_other),
                        static_cast<double>(counts.only_this), entity_size,
                        partition_size, w, normalize);
}

}  // namespace cinderella
