#include "core/universal_table.h"

#include "common/logging.h"

namespace cinderella {

UniversalTable::UniversalTable(std::unique_ptr<Partitioner> partitioner)
    : partitioner_(std::move(partitioner)) {
  CINDERELLA_CHECK(partitioner_ != nullptr);
}

UniversalTable::UniversalTable(std::unique_ptr<Partitioner> partitioner,
                               AttributeDictionary dictionary)
    : dictionary_(std::move(dictionary)),
      partitioner_(std::move(partitioner)) {
  CINDERELLA_CHECK(partitioner_ != nullptr);
}

Row UniversalTable::BuildRow(EntityId entity,
                             const std::vector<NamedValue>& attributes) {
  Row row(entity);
  for (const auto& [name, value] : attributes) {
    row.Set(dictionary_.GetOrCreate(name), value);
  }
  return row;
}

Status UniversalTable::Insert(EntityId entity,
                              const std::vector<NamedValue>& attributes) {
  return partitioner_->Insert(BuildRow(entity, attributes));
}

Status UniversalTable::InsertRow(Row row) {
  return partitioner_->Insert(std::move(row));
}

Status UniversalTable::InsertBatch(std::vector<Row> rows) {
  return partitioner_->InsertBatch(std::move(rows));
}

Status UniversalTable::Delete(EntityId entity) {
  return partitioner_->Delete(entity);
}

Status UniversalTable::DeleteBatch(const std::vector<EntityId>& entities) {
  return partitioner_->DeleteBatch(entities);
}

Status UniversalTable::Update(EntityId entity,
                              const std::vector<NamedValue>& attributes) {
  return partitioner_->Update(BuildRow(entity, attributes));
}

Status UniversalTable::UpdateRow(Row row) {
  return partitioner_->Update(std::move(row));
}

Status UniversalTable::UpdateBatch(std::vector<Row> rows) {
  return partitioner_->UpdateBatch(std::move(rows));
}

Status UniversalTable::ApplyMutations(std::vector<Mutation> ops,
                                      size_t* applied) {
  return partitioner_->ApplyMutations(std::move(ops), applied);
}

StatusOr<Row> UniversalTable::Get(EntityId entity) const {
  const auto home = partitioner_->catalog().FindEntity(entity);
  if (!home.has_value()) {
    return Status::NotFound("entity " + std::to_string(entity) +
                            " not in table");
  }
  const Partition* partition = partitioner_->catalog().GetPartition(*home);
  CINDERELLA_CHECK(partition != nullptr);
  const Row* row = partition->segment().Find(entity);
  CINDERELLA_CHECK(row != nullptr);
  return *row;
}

}  // namespace cinderella
