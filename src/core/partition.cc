#include "core/partition.h"

#include <utility>

#include "common/logging.h"

namespace cinderella {

Partition::Partition(PartitionId id, bool separate_rating_synopsis)
    : id_(id), separate_rating_(separate_rating_synopsis) {}

Status Partition::AddRow(Row row, const Synopsis& rating_synopsis,
                         std::vector<AttributeId>* rating_ids_added) {
  CINDERELLA_DCHECK(!cold());
  const Synopsis attributes = row.AttributeSynopsis();
  CINDERELLA_RETURN_IF_ERROR(segment_.Insert(std::move(row)));
  if (separate_rating_) {
    attributes_.Add(attributes);
    rating_.Add(rating_synopsis, rating_ids_added);
  } else {
    attributes_.Add(attributes, rating_ids_added);
  }
  return Status::OK();
}

StatusOr<Row> Partition::RemoveRow(EntityId entity,
                                   const Synopsis& rating_synopsis,
                                   std::vector<AttributeId>* rating_ids_removed) {
  CINDERELLA_DCHECK(!cold());
  StatusOr<Row> removed = segment_.Remove(entity);
  if (!removed.ok()) return removed;
  const Synopsis attributes = removed.value().AttributeSynopsis();
  if (separate_rating_) {
    attributes_.Remove(attributes);
    rating_.Remove(rating_synopsis, rating_ids_removed);
  } else {
    attributes_.Remove(attributes, rating_ids_removed);
  }
  if (starter_a_.has_value() && starter_a_->entity == entity) {
    starter_a_.reset();
  }
  if (starter_b_.has_value() && starter_b_->entity == entity) {
    starter_b_.reset();
  }
  return removed;
}

Status Partition::ReplaceRow(Row row, const Synopsis& old_rating_synopsis,
                             const Synopsis& new_rating_synopsis,
                             std::vector<AttributeId>* rating_ids_added,
                             std::vector<AttributeId>* rating_ids_removed) {
  CINDERELLA_DCHECK(!cold());
  const EntityId entity = row.id();
  const Row* old_row = segment_.Find(entity);
  if (old_row == nullptr) {
    return Status::NotFound("entity " + std::to_string(entity) +
                            " not in partition");
  }
  const Synopsis old_attributes = old_row->AttributeSynopsis();
  const Synopsis new_attributes = row.AttributeSynopsis();
  CINDERELLA_RETURN_IF_ERROR(segment_.Replace(std::move(row)));
  if (separate_rating_) {
    attributes_.Add(new_attributes);
    attributes_.Remove(old_attributes);
    rating_.Add(new_rating_synopsis, rating_ids_added);
    rating_.Remove(old_rating_synopsis, rating_ids_removed);
  } else {
    attributes_.Add(new_attributes, rating_ids_added);
    attributes_.Remove(old_attributes, rating_ids_removed);
  }
  // Keep a starter's remembered synopsis in sync with its updated row.
  if (starter_a_.has_value() && starter_a_->entity == entity) {
    starter_a_->synopsis = new_rating_synopsis;
  }
  if (starter_b_.has_value() && starter_b_->entity == entity) {
    starter_b_->synopsis = new_rating_synopsis;
  }
  return Status::OK();
}

uint64_t Partition::Size(SizeMeasure measure) const {
  if (cold_chain_ != nullptr) {
    switch (measure) {
      case SizeMeasure::kEntityCount:
        return cold_chain_->entities;
      case SizeMeasure::kAttributeCount:
        return cold_chain_->cells;
      case SizeMeasure::kByteSize:
        return cold_chain_->bytes;
    }
    return 0;
  }
  switch (measure) {
    case SizeMeasure::kEntityCount:
      return segment_.entity_count();
    case SizeMeasure::kAttributeCount:
      return segment_.cell_count();
    case SizeMeasure::kByteSize:
      return segment_.byte_size();
  }
  return 0;
}

double Partition::Sparseness() const {
  const size_t entities = entity_count();
  const size_t attributes = attribute_synopsis().Count();
  if (entities == 0 || attributes == 0) return 0.0;
  const uint64_t cells = cold_chain_ != nullptr ? cold_chain_->cells
                                                : segment_.cell_count();
  const double capacity =
      static_cast<double>(entities) * static_cast<double>(attributes);
  return 1.0 - static_cast<double>(cells) / capacity;
}

void Partition::SetCold(std::shared_ptr<const ColdChain> chain) {
  CINDERELLA_CHECK(cold_chain_ == nullptr && chain != nullptr);
  CINDERELLA_CHECK(chain->entities == segment_.entity_count() &&
                   chain->cells == segment_.cell_count() &&
                   chain->bytes == segment_.byte_size());
  (void)segment_.TakeAll();  // Rows live in the chain now.
  cold_chain_ = std::move(chain);
}

Status Partition::FaultIn(std::vector<Row> rows) {
  CINDERELLA_CHECK(cold_chain_ != nullptr);
  if (rows.size() != cold_chain_->entities) {
    return Status::Internal(
        "fault-in of partition " + std::to_string(id_) + " read " +
        std::to_string(rows.size()) + " rows, chain has " +
        std::to_string(cold_chain_->entities));
  }
  for (Row& row : rows) {
    CINDERELLA_RETURN_IF_ERROR(segment_.Insert(std::move(row)));
  }
  cold_chain_.reset();
  return Status::OK();
}

void Partition::ClearStarters() {
  starter_a_.reset();
  starter_b_.reset();
}

}  // namespace cinderella
