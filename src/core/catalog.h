#ifndef CINDERELLA_CORE_CATALOG_H_
#define CINDERELLA_CORE_CATALOG_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/partition.h"

namespace cinderella {

/// The system catalog: owns all partitions of one universal table and the
/// entity -> partition binding used by deletes and updates.
///
/// The paper's prototype keeps "a single catalog table for the meta data of
/// all partitions"; scanning this catalog is the inner loop of Algorithm 1
/// (lines 3-7), so live-partition iteration is kept allocation-free.
/// Partition ids are slot indexes; dropped slots become tombstones and ids
/// are never reused.
class PartitionCatalog {
 public:
  /// `separate_rating_synopsis` is forwarded to every created Partition
  /// (true in workload-based mode).
  explicit PartitionCatalog(bool separate_rating_synopsis = false)
      : separate_rating_(separate_rating_synopsis) {}

  PartitionCatalog(const PartitionCatalog&) = delete;
  PartitionCatalog& operator=(const PartitionCatalog&) = delete;
  PartitionCatalog(PartitionCatalog&&) = default;
  PartitionCatalog& operator=(PartitionCatalog&&) = default;

  /// Creates an empty partition and returns it.
  Partition& CreatePartition();

  /// Drops a partition. Fails unless the partition exists and is empty of
  /// bound entities (callers unbind/move rows first).
  Status DropPartition(PartitionId id);

  /// Returns the partition or nullptr for unknown/dropped ids.
  Partition* GetPartition(PartitionId id);
  const Partition* GetPartition(PartitionId id) const;

  /// Number of live partitions.
  size_t partition_count() const { return live_count_; }

  /// Invokes `fn(Partition&)` for every live partition in id order.
  template <typename Fn>
  void ForEachPartition(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot != nullptr) fn(*slot);
    }
  }

  template <typename Fn>
  void ForEachPartition(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot != nullptr) fn(static_cast<const Partition&>(*slot));
    }
  }

  /// Ids of live partitions in ascending order.
  std::vector<PartitionId> LivePartitionIds() const;

  // -- Entity binding ------------------------------------------------------

  /// Records that `entity` lives in `partition` (overwrites a previous
  /// binding; moves rebind).
  void BindEntity(EntityId entity, PartitionId partition);

  /// Removes the binding; no-op if absent.
  void UnbindEntity(EntityId entity);

  /// Partition currently hosting `entity`.
  std::optional<PartitionId> FindEntity(EntityId entity) const;

  /// Number of bound entities (== entities in the table).
  size_t entity_count() const { return bindings_.size(); }

  bool separate_rating_synopsis() const { return separate_rating_; }

 private:
  bool separate_rating_;
  std::vector<std::unique_ptr<Partition>> slots_;
  size_t live_count_ = 0;
  std::unordered_map<EntityId, PartitionId> bindings_;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_CATALOG_H_
