#include "core/config.h"

namespace cinderella {

Status CinderellaConfig::Validate() const {
  if (weight < 0.0 || weight > 1.0) {
    return Status::InvalidArgument("weight must be in [0, 1]");
  }
  if (max_size == 0) {
    return Status::InvalidArgument("max_size must be positive");
  }
  if (dissolve_threshold < 0.0 || dissolve_threshold > 0.5) {
    return Status::InvalidArgument(
        "dissolve_threshold must be in [0, 0.5] (larger values can "
        "oscillate with the split trigger)");
  }
  if (scan_threads < 0) {
    return Status::InvalidArgument(
        "scan_threads must be >= 0 (0 resolves from the environment)");
  }
  if (insert_shards < 0) {
    return Status::InvalidArgument(
        "insert_shards must be >= 0 (0 resolves from the environment)");
  }
  if (scan_chunk < 0) {
    return Status::InvalidArgument(
        "scan_chunk must be >= 0 (0 resolves from the environment)");
  }
  if (tree_fanout < 0) {
    return Status::InvalidArgument(
        "tree_fanout must be >= 0 (0 resolves from the environment)");
  }
  return Status::OK();
}

}  // namespace cinderella
