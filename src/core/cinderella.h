#ifndef CINDERELLA_CORE_CINDERELLA_H_
#define CINDERELLA_CORE_CINDERELLA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/catalog.h"
#include "core/config.h"
#include "core/partitioner.h"
#include "core/synopsis_extractor.h"
#include "core/synopsis_index.h"
#include "storage/cold_tier.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"
#include "synopsis/synopsis_tree.h"

namespace cinderella {

/// Operation counters exposed for the benches (e.g. the split counts the
/// paper reports for Figure 8: 448 splits at B=500, 100 at B=5000, 0 at
/// B=50000 on the DBpedia load).
struct CinderellaStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
  uint64_t updates_moved = 0;          // Updates that changed partition.
  uint64_t partitions_created = 0;
  uint64_t partitions_dropped = 0;
  uint64_t splits = 0;
  uint64_t split_cascades = 0;         // Splits triggered inside a split.
  uint64_t entities_redistributed = 0; // Rows moved during splits.
  uint64_t partitions_rated = 0;       // Rating evaluations performed.
  uint64_t partitions_dissolved = 0;   // Under-filled partitions dissolved.
  uint64_t entities_reinserted = 0;    // Rows re-homed by dissolution.
  uint64_t spills = 0;                 // Partitions evicted to the cold tier.
  uint64_t faults = 0;                 // Cold partitions faulted back hot.
};

/// Partition ids touched by catalog mutations, recorded for mutation
/// listeners: `touched` lists every partition that gained, lost or
/// replaced a row (ids may repeat), `created` the partitions added to the
/// catalog, and `dropped` the partitions removed from it. The batched
/// mutation engine (src/ingest) uses the record to refresh its sharded
/// packed mirror incrementally instead of rebuilding it after every
/// commit; the MVCC publisher (src/mvcc) accumulates it into the pending
/// snapshot delta.
struct CatalogMutations {
  std::vector<PartitionId> touched;
  std::vector<PartitionId> created;
  std::vector<PartitionId> dropped;
};

/// Hook through which Cinderella's batch entry points (InsertBatch,
/// UpdateBatch, DeleteBatch, ApplyMutations, Reorganize) delegate to the
/// batched mutation engine (src/ingest/mutation_pipeline.h). Lives outside
/// src/core so the core library carries no ingest dependency; the engine
/// owns its thread pool and sharded catalog mirror and calls back into
/// Cinderella via the *Resolved hooks for each placement.
class BatchMutationEngine {
 public:
  virtual ~BatchMutationEngine() = default;
  virtual Status InsertBatch(std::vector<Row> rows) = 0;
  virtual Status UpdateBatch(std::vector<Row> rows) = 0;
  virtual Status DeleteBatch(const std::vector<EntityId>& entities) = 0;
  virtual Status ApplyMutations(std::vector<Mutation> ops,
                                size_t* applied) = 0;
  virtual Status Reorganize() = 0;
};

/// Historical name from the insert-only engine of PR 2; the interface now
/// covers the full mutation stream.
using BatchInsertEngine = BatchMutationEngine;

/// The Cinderella online horizontal partitioner (Sections III-IV).
///
/// Implements Algorithm 1 with the deviations documented in DESIGN.md:
/// the entity triggering a split is inserted restricted to the two new
/// partitions after redistribution; restricted inserts never create new
/// partitions; deleted split starters are re-seeded lazily.
///
/// Thread-compatible, not thread-safe: one instance per table, external
/// synchronization required for concurrent use (the paper's setting is a
/// per-statement trigger, i.e. serial).
class Cinderella : public Partitioner {
 public:
  /// Creates an entity-based partitioner. Returns InvalidArgument for a
  /// bad config or a workload-based mode without a workload.
  static StatusOr<std::unique_ptr<Cinderella>> Create(CinderellaConfig config);

  /// Creates a workload-based partitioner: `workload[i]` is the attribute
  /// synopsis of query i, and entity synopses are bitsets over query ids.
  static StatusOr<std::unique_ptr<Cinderella>> Create(
      CinderellaConfig config, std::vector<Synopsis> workload);

  // -- Partitioner interface ------------------------------------------------

  Status Insert(Row row) override;
  Status Delete(EntityId entity) override;
  Status Update(Row row) override;
  /// The batch entry points route through the attached BatchMutationEngine
  /// when one is set, else fall back to the validated serial loops of the
  /// base class. Either way, placements are identical to serial
  /// single-row operations.
  Status InsertBatch(std::vector<Row> rows) override;
  Status UpdateBatch(std::vector<Row> rows) override;
  Status DeleteBatch(const std::vector<EntityId>& entities) override;
  Status ApplyMutations(std::vector<Mutation> ops,
                        size_t* applied = nullptr) override;
  PartitionCatalog& catalog() override { return catalog_; }
  const PartitionCatalog& catalog() const override { return catalog_; }
  std::string name() const override;

  const CinderellaConfig& config() const { return config_; }
  const CinderellaStats& stats() const { return stats_; }

  /// True when the insert-time rating may restrict its scan to the
  /// synopsis tree's candidate set. At w == 1 every partition rates >= 0,
  /// so the overlap-only descent would diverge from the full scan (the
  /// same gate as the inverted index); the tree itself is still
  /// maintained whenever use_synopsis_tree is set.
  bool tree_enabled() const {
    return config_.use_synopsis_tree && config_.weight < 1.0;
  }

  /// The catalog's synopsis tree (leaves keyed by partition id over the
  /// rating synopses). Meaningful only with use_synopsis_tree; exposed
  /// for stats reporting and the benches.
  const SynopsisTree& synopsis_tree() const { return tree_; }

  /// Rating synopsis of a row under the active mode (attribute set, or
  /// relevant-query set in workload-based mode).
  Synopsis ExtractSynopsis(const Row& row) const { return extractor_(row); }

  /// Deep self-check of every structural invariant: entity bindings are
  /// bijective with resident rows, partition synopses equal the union of
  /// their residents' synopses (attribute and rating side), per-measure
  /// sizes match, capacity holds for the entity measure, no partition is
  /// empty, and split starters are resident with accurate synopses.
  /// O(total cells); intended for tests, tools (`stats --verify`) and
  /// after restoring persisted state. Returns Internal with a diagnostic
  /// on the first violation.
  Status VerifyIntegrity() const;

  /// Full reorganization pass (extension): extracts every entity and
  /// re-inserts it through the normal routine, in descending synopsis
  /// cardinality so the most descriptive entities seed the partitions.
  /// Use to repair a partitioning degraded by adversarial arrival order
  /// or heavy churn; cost is one full reload. Counted in stats() as one
  /// dissolution per prior partition plus one reinsertion per entity.
  /// Routes through the attached engine when one is set (same final
  /// catalog, amortized window scans, per-window MVCC publication).
  Status Reorganize();

  /// Snapshot support: materializes one partition with exactly `rows`,
  /// bypassing the rating (the placement was already decided when the
  /// snapshot was taken). Fails on duplicate entity ids. Split starters
  /// are re-seeded lazily on the next structural operation.
  Status RestorePartition(std::vector<Row> rows);

  /// Snapshot-load bracket: between Begin and End, incremental synopsis
  /// tree maintenance is suppressed; End rebuilds the tree in one bulk
  /// bottom-up pass over the restored catalog (the identical tree, at
  /// O(total synopsis words) instead of one leaf upsert per row). The
  /// loader wraps its RestorePartition loop in this.
  void BeginBulkRestore() { bulk_restore_ = true; }
  void EndBulkRestore();

  /// The query set W of workload-based mode (empty in entity-based mode);
  /// snapshots persist it so a restored instance rates identically.
  const std::vector<Synopsis>& workload() const;

  // -- Batched-mutation engine hooks (src/ingest) ---------------------------

  /// Inserts a row whose placement was already resolved externally:
  /// `target` must be the partition the serial rating scan would pick for
  /// `row` (nullptr for "no partition rates >= 0: create a new one"), and
  /// `synopsis` the row's rating synopsis under the active mode. Runs
  /// everything of Insert() downstream of the scan — duplicate check,
  /// starter maintenance, capacity check, split cascade, binding — so a
  /// caller that computes the same argmax the serial scan would (the batch
  /// engine's revalidated top-2) produces the exact serial catalog state.
  Status InsertResolved(Row row, const Synopsis& synopsis, Partition* target);

  /// Result of one externally-resolved rating scan: the argmax the serial
  /// FindBestPartition would return for the same synopsis/size, or
  /// `valid == false` for an empty catalog.
  struct ResolvedScan {
    bool valid = false;
    PartitionId id = 0;
    double rating = 0.0;
  };

  /// Callback supplying rating-scan results to UpdateResolved. Called up
  /// to twice per update — once for the stay decision with the old row
  /// still resident, once after the removal for the re-placement — and
  /// must each time return the exact argmax (rating-desc, id-asc
  /// tie-break) over the live catalog at that instant.
  using ScanResolver =
      std::function<ResolvedScan(const Synopsis& synopsis, double entity_size)>;

  /// Updates a row whose rating scans are supplied by `resolve`: runs
  /// everything of Update() except the scans themselves — home lookup,
  /// stay-or-move decision, removal, starter repair, re-placement, source
  /// dissolution — so a resolver that reproduces the serial argmax yields
  /// the exact serial catalog state. `new_synopsis` must be the rating
  /// synopsis of `row` under the active mode.
  Status UpdateResolved(Row row, const Synopsis& new_synopsis,
                        const ScanResolver& resolve);

  /// Re-inserts a drained row during Reorganize with its placement already
  /// resolved (the reorganize-side mirror of InsertResolved; counted as a
  /// reinsertion, not an insert).
  Status ReinsertResolved(Row row, const Synopsis& synopsis, Partition* target);

  /// First half of Reorganize: drains every partition (dropping them all,
  /// counted as dissolutions) and returns the rows paired with their
  /// rating synopses, sorted by descending synopsis cardinality — the
  /// reinsertion order of the serial pass. Exposed so the engine can drain
  /// under its commit lock and re-place the rows through the windowed
  /// pipeline.
  StatusOr<std::vector<std::pair<Row, Synopsis>>> DrainForReorganize();

  /// Monotonic counter bumped at the start of every mutating operation
  /// (including InsertResolved and failed attempts). The batch engine
  /// compares it against the generation it last mirrored: a mismatch means
  /// the catalog changed outside the engine's own commits (serial inserts,
  /// deletes, updates, reorganize, restore) and the packed mirror must be
  /// rebuilt before the next placement is resolved.
  uint64_t catalog_generation() const { return catalog_generation_; }

  /// Registers `listener` to receive the partition ids every subsequent
  /// mutation touches, creates or drops. One unified slot type serves all
  /// observers: the batch engine registers transiently around each commit
  /// to learn which packed entries the commit (and any split cascade it
  /// triggered) invalidated, while the MVCC publisher stays registered for
  /// the lifetime of the facade to accumulate its pending snapshot delta.
  /// The listener must outlive its registration; duplicate registrations
  /// are ignored.
  void AddMutationListener(CatalogMutations* listener) {
    if (listener == nullptr) return;
    for (CatalogMutations* existing : mutation_listeners_) {
      if (existing == listener) return;
    }
    mutation_listeners_.push_back(listener);
  }
  void RemoveMutationListener(CatalogMutations* listener) {
    for (size_t i = 0; i < mutation_listeners_.size(); ++i) {
      if (mutation_listeners_[i] == listener) {
        mutation_listeners_.erase(mutation_listeners_.begin() + i);
        return;
      }
    }
  }

  /// Attaches the engine consulted by the batch entry points (nullptr
  /// detaches). The engine is owned by the caller and must outlive the
  /// attachment; see AttachMutationPipeline in ingest/mutation_pipeline.h.
  void set_batch_engine(BatchMutationEngine* engine) { batch_engine_ = engine; }
  BatchMutationEngine* batch_engine() const { return batch_engine_; }

  // -- Cold tier (two-tier storage) -----------------------------------------

  /// Attaches the cold tier partitions spill to (nullptr detaches; owned
  /// by the caller, must outlive the attachment). Attaching a tier does
  /// not by itself spill anything — see SpillPartition and the
  /// TierController policy driver (storage/tiered_store.h).
  void set_cold_tier(ColdTier* tier) { cold_tier_ = tier; }
  ColdTier* cold_tier() const { return cold_tier_; }

  /// Evicts partition `id` to the cold tier: its rows are written out as
  /// one page chain and the segment is emptied. Synopses, refcounts, size
  /// totals and split starters stay memory-resident, so ratings, pruning
  /// and placements are bit-identical to the all-hot engine; the spill is
  /// invisible except to row access, which faults the partition back.
  /// No-op on an already-cold partition.
  Status SpillPartition(PartitionId id);

  /// Faults `partition` back to the hot tier if cold: reads the chain's
  /// rows back into the segment in chain order (the spill-time scan
  /// order) and drops the chain reference. Every row-touching path calls
  /// this first; no-op on a hot partition.
  Status EnsureHot(Partition& partition);

  /// Streams the partition's rows regardless of residency (hot: segment
  /// scan order; cold: chain order, read through the tier). Snapshot save
  /// and integrity checking use this.
  Status ForEachRowOf(const Partition& partition,
                      const std::function<void(const Row&)>& fn) const;

 private:
  Cinderella(CinderellaConfig config,
             std::unique_ptr<WorkloadSynopsisBuilder> workload);

  struct BestPartition {
    Partition* partition = nullptr;
    double rating = 0.0;
  };

  /// Scans the catalog (or `restricted` targets, or the synopsis index)
  /// for the best-rated partition. Ties keep the lowest partition id,
  /// matching Algorithm 1's first-best scan order.
  BestPartition FindBestPartition(const Synopsis& synopsis,
                                  double entity_size,
                                  const std::vector<PartitionId>* restricted);

  /// The insert routine (Algorithm 1). With `restricted == nullptr` the
  /// whole catalog is scanned and a negative best rating creates a new
  /// partition; with a restricted target list (split redistribution) the
  /// best target is used even when negative. `depth > 0` inside a split.
  Status InsertIntoCatalog(Row row, const Synopsis& synopsis,
                           std::vector<PartitionId>* restricted, int depth);

  /// Everything of the insert routine downstream of the rating scan:
  /// places `row` into `target` (starter maintenance, capacity check,
  /// split cascade) or, with `target == nullptr`, into a fresh partition.
  /// Shared by InsertIntoCatalog and the externally-resolved
  /// InsertResolved so both paths produce identical catalog state.
  Status PlaceRow(Row row, const Synopsis& synopsis, Partition* target,
                  std::vector<PartitionId>* restricted, int depth);

  /// Splits `source` (which is full w.r.t. the pending row): the split
  /// starters seed two new partitions, remaining entities are re-inserted
  /// restricted to the new partitions, and the pending row follows. When
  /// `outer_targets` is non-null (cascade), `source` is replaced in it by
  /// the surviving new partitions.
  Status SplitPartition(PartitionId source, Row pending_row,
                        const Synopsis& pending_synopsis,
                        std::vector<PartitionId>* outer_targets, int depth);

  /// Lines 14-24 of Algorithm 1: fills empty starter slots with the
  /// incoming entity, else replaces a starter when the incoming entity
  /// forms a more differential pair (DIFF = |e1 ⊕ e2|).
  void UpdateStarters(Partition& partition, EntityId entity,
                      const Synopsis& synopsis);

  /// Re-seeds missing starters (after a starter entity was deleted) by
  /// scanning the partition: a surviving starter is kept, the partner is
  /// the resident with maximal DIFF to it.
  void EnsureStarters(Partition& partition);

  /// For StarterPolicy::kRandom: re-picks both starters uniformly among
  /// residents just before a split.
  void PickRandomStarters(Partition& partition);

  /// Extension: when `dissolve_threshold` is enabled and `partition`
  /// dropped below it, re-homes its remaining entities via the insert
  /// routine and drops it. Called after deletes and update moves.
  Status MaybeDissolve(Partition& partition);

  // Row movement helpers keeping catalog bindings, the synopsis index and
  // the empty-synopsis partition set in sync.
  Status AddRowToPartition(Partition& partition, Row row,
                           const Synopsis& synopsis);
  StatusOr<Row> RemoveRowFromPartition(Partition& partition, EntityId entity,
                                       const Synopsis& synopsis);
  void DropEmptyPartition(Partition& partition);

  // Fan a catalog mutation out to every registered listener (batch
  // engine, MVCC publisher, ...).
  void RecordTouched(PartitionId id) {
    for (CatalogMutations* listener : mutation_listeners_) {
      listener->touched.push_back(id);
    }
  }
  void RecordCreated(PartitionId id) {
    for (CatalogMutations* listener : mutation_listeners_) {
      listener->created.push_back(id);
    }
  }
  void RecordDropped(PartitionId id) {
    for (CatalogMutations* listener : mutation_listeners_) {
      listener->dropped.push_back(id);
    }
  }

  bool index_enabled() const {
    // At w == 1 every partition rates >= 0, so the overlap-only candidate
    // set of the index would diverge from the full scan; fall back to
    // scanning (see synopsis_index.h).
    return config_.use_synopsis_index && config_.weight < 1.0;
  }

  CinderellaConfig config_;
  PartitionCatalog catalog_;
  // Scan pool for the unrestricted rating scan; null when the resolved
  // degree is 1 (serial). Created once in the constructor.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<WorkloadSynopsisBuilder> workload_;
  SynopsisExtractor extractor_;
  SynopsisIndex index_;
  // Synopsis tree over the live partitions' rating synopses (leaf key =
  // partition id); maintained by the row-movement helpers whenever
  // use_synopsis_tree is set.
  SynopsisTree tree_;
  // Live partitions whose rating synopsis is empty (entities without
  // attributes); they have no postings / tree candidates but must stay
  // rateable when the index or tree restricts the scan.
  std::unordered_set<PartitionId> empty_synopsis_partitions_;
  CinderellaStats stats_;
  Rng rng_;
  // Batched-mutation engine state: see the public hooks above.
  uint64_t catalog_generation_ = 0;
  std::vector<CatalogMutations*> mutation_listeners_;
  BatchMutationEngine* batch_engine_ = nullptr;
  ColdTier* cold_tier_ = nullptr;
  bool bulk_restore_ = false;  // Tree maintenance suppressed (snapshot load).
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_CINDERELLA_H_
