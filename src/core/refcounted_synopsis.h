#ifndef CINDERELLA_CORE_REFCOUNTED_SYNOPSIS_H_
#define CINDERELLA_CORE_REFCOUNTED_SYNOPSIS_H_

#include <cstdint>
#include <vector>

#include "synopsis/synopsis.h"

namespace cinderella {

/// A partition synopsis with per-id reference counts.
///
/// A partition "has" an attribute as long as at least one resident entity
/// instantiates it; under deletes the attribute must leave the synopsis
/// only when its last carrier leaves. The counts make synopsis maintenance
/// O(|entity synopsis|) per modification instead of a partition rescan.
class RefcountedSynopsis {
 public:
  RefcountedSynopsis() = default;

  /// Increments counts for every id in `ids`. Appends ids that became
  /// newly present (count 0 -> 1) to `*newly_present` when non-null.
  void Add(const Synopsis& ids, std::vector<AttributeId>* newly_present = nullptr);

  /// Decrements counts for every id in `ids`; each id must currently have
  /// a positive count. Appends ids that vanished (count 1 -> 0) to
  /// `*newly_absent` when non-null.
  void Remove(const Synopsis& ids, std::vector<AttributeId>* newly_absent = nullptr);

  /// The set of ids with positive count.
  const Synopsis& synopsis() const { return synopsis_; }

  /// Reference count of one id (0 if never seen).
  uint32_t RefCount(AttributeId id) const;

  void Clear();

 private:
  Synopsis synopsis_;
  std::vector<uint32_t> counts_;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_REFCOUNTED_SYNOPSIS_H_
