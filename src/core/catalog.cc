#include "core/catalog.h"

namespace cinderella {

Partition& PartitionCatalog::CreatePartition() {
  const PartitionId id = static_cast<PartitionId>(slots_.size());
  slots_.push_back(std::make_unique<Partition>(id, separate_rating_));
  ++live_count_;
  return *slots_.back();
}

Status PartitionCatalog::DropPartition(PartitionId id) {
  if (id >= slots_.size() || slots_[id] == nullptr) {
    return Status::NotFound("partition " + std::to_string(id) +
                            " does not exist");
  }
  if (slots_[id]->entity_count() != 0) {
    return Status::FailedPrecondition("partition " + std::to_string(id) +
                                      " is not empty");
  }
  slots_[id].reset();
  --live_count_;
  return Status::OK();
}

Partition* PartitionCatalog::GetPartition(PartitionId id) {
  if (id >= slots_.size()) return nullptr;
  return slots_[id].get();
}

const Partition* PartitionCatalog::GetPartition(PartitionId id) const {
  if (id >= slots_.size()) return nullptr;
  return slots_[id].get();
}

std::vector<PartitionId> PartitionCatalog::LivePartitionIds() const {
  std::vector<PartitionId> ids;
  ids.reserve(live_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != nullptr) ids.push_back(static_cast<PartitionId>(i));
  }
  return ids;
}

void PartitionCatalog::BindEntity(EntityId entity, PartitionId partition) {
  bindings_[entity] = partition;
}

void PartitionCatalog::UnbindEntity(EntityId entity) {
  bindings_.erase(entity);
}

std::optional<PartitionId> PartitionCatalog::FindEntity(
    EntityId entity) const {
  auto it = bindings_.find(entity);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cinderella
