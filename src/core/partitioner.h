#ifndef CINDERELLA_CORE_PARTITIONER_H_
#define CINDERELLA_CORE_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "storage/row.h"

namespace cinderella {

/// One entry of a typed mutation batch: the three modification operations
/// of the paper's online partitioning problem, expressed as data so a
/// mixed stream can flow through one engine (src/ingest) and one journal
/// record (JournalWriter::LogMutationBatch). Kinds match the journal's
/// per-op wire tags.
struct Mutation {
  enum class Kind : uint8_t { kInsert = 1, kUpdate = 2, kDelete = 3 };

  Kind kind = Kind::kInsert;
  Row row;               // payload for kInsert/kUpdate; empty for kDelete
  EntityId entity = 0;   // target id; equals row.id() for insert/update

  static Mutation Insert(Row r) {
    Mutation m;
    m.kind = Kind::kInsert;
    m.entity = r.id();
    m.row = std::move(r);
    return m;
  }
  static Mutation Update(Row r) {
    Mutation m;
    m.kind = Kind::kUpdate;
    m.entity = r.id();
    m.row = std::move(r);
    return m;
  }
  static Mutation Delete(EntityId entity) {
    Mutation m;
    m.kind = Kind::kDelete;
    m.entity = entity;
    return m;
  }
};

/// Strategy interface for maintaining a horizontal partitioning of a
/// universal table under modifications (the paper's "modification
/// operations": inserts, updates, deletes).
///
/// Implementations: Cinderella (src/core), and the baselines in
/// src/baseline (single/unpartitioned, hash, range/arrival-order, offline
/// clustering). All share the PartitionCatalog representation, so the query
/// executor and the efficiency metric apply uniformly.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Inserts a new entity; fails with AlreadyExists for duplicate ids.
  virtual Status Insert(Row row) = 0;

  /// Inserts a batch of new entities in row order with placements
  /// identical to inserting them one by one. Fails with AlreadyExists —
  /// before touching the table — when a row duplicates an existing entity
  /// or another row of the same batch, so a failed batch leaves the table
  /// unchanged. The default validates and loops over Insert(); Cinderella
  /// routes this through the batched rating engine of src/ingest when one
  /// is attached.
  virtual Status InsertBatch(std::vector<Row> rows) {
    std::unordered_set<EntityId> batch_ids;
    batch_ids.reserve(rows.size());
    for (const Row& row : rows) {
      if (!batch_ids.insert(row.id()).second ||
          catalog().FindEntity(row.id()).has_value()) {
        return Status::AlreadyExists("entity " + std::to_string(row.id()) +
                                     " duplicated in batch or already in "
                                     "table");
      }
    }
    for (Row& row : rows) {
      CINDERELLA_RETURN_IF_ERROR(Insert(std::move(row)));
    }
    return Status::OK();
  }

  /// Deletes an entity; fails with NotFound for unknown ids.
  virtual Status Delete(EntityId entity) = 0;

  /// Deletes a batch of entities in order with effects identical to
  /// deleting them one by one. Fails with NotFound — before touching the
  /// table — when an id is unknown or duplicated within the batch, so a
  /// failed batch leaves the table unchanged (the delete-side mirror of
  /// InsertBatch's validate-first contract).
  virtual Status DeleteBatch(const std::vector<EntityId>& entities) {
    std::unordered_set<EntityId> batch_ids;
    batch_ids.reserve(entities.size());
    for (EntityId entity : entities) {
      if (!batch_ids.insert(entity).second ||
          !catalog().FindEntity(entity).has_value()) {
        return Status::NotFound("entity " + std::to_string(entity) +
                                " duplicated in batch or not in table");
      }
    }
    for (EntityId entity : entities) {
      CINDERELLA_RETURN_IF_ERROR(Delete(entity));
    }
    return Status::OK();
  }

  /// Replaces the row of an existing entity (attribute set may change);
  /// fails with NotFound for unknown ids.
  virtual Status Update(Row row) = 0;

  /// Updates a batch of entities in row order with placements identical to
  /// updating them one by one. Fails with NotFound — before touching the
  /// table — when a row names an unknown entity. Duplicate ids within the
  /// batch are legal (each update is applied in turn, as in a serial
  /// loop). The default validates and loops over Update(); Cinderella
  /// routes this through the batched mutation engine when one is attached.
  virtual Status UpdateBatch(std::vector<Row> rows) {
    for (const Row& row : rows) {
      if (!catalog().FindEntity(row.id()).has_value()) {
        return Status::NotFound("entity " + std::to_string(row.id()) +
                                " not in table");
      }
    }
    for (Row& row : rows) {
      CINDERELLA_RETURN_IF_ERROR(Update(std::move(row)));
    }
    return Status::OK();
  }

  /// Applies a mixed, ordered mutation batch with effects identical to
  /// dispatching each op serially. Validate-first: liveness is simulated
  /// across the batch before anything is applied (an insert may follow a
  /// delete of the same id, an update must name an id live at its point in
  /// the stream), so a rejected batch leaves the table unchanged. On
  /// success or failure, *applied (when non-null) receives the number of
  /// leading ops actually applied — durable layers journal exactly that
  /// prefix.
  virtual Status ApplyMutations(std::vector<Mutation> ops,
                                size_t* applied = nullptr) {
    if (applied != nullptr) *applied = 0;
    CINDERELLA_RETURN_IF_ERROR(ValidateMutations(ops));
    for (Mutation& op : ops) {
      Status status;
      switch (op.kind) {
        case Mutation::Kind::kInsert:
          status = Insert(std::move(op.row));
          break;
        case Mutation::Kind::kUpdate:
          status = Update(std::move(op.row));
          break;
        case Mutation::Kind::kDelete:
          status = Delete(op.entity);
          break;
      }
      CINDERELLA_RETURN_IF_ERROR(status);
      if (applied != nullptr) ++*applied;
    }
    return Status::OK();
  }

  virtual PartitionCatalog& catalog() = 0;
  virtual const PartitionCatalog& catalog() const = 0;

  /// Display name for bench output (e.g. "cinderella(w=0.5,B=5000)").
  virtual std::string name() const = 0;

  /// Simulates entity liveness across an ordered mutation batch against
  /// the current catalog: inserts fail on ids live at their point in the
  /// stream, updates and deletes fail on ids dead at theirs. Shared by the
  /// default ApplyMutations and the batched engine so both reject exactly
  /// the batches a serial loop would reject — before any op is applied.
  Status ValidateMutations(const std::vector<Mutation>& ops) const {
    std::unordered_map<EntityId, bool> liveness;  // overrides the catalog
    liveness.reserve(ops.size());
    auto live = [&](EntityId entity) {
      auto it = liveness.find(entity);
      if (it != liveness.end()) return it->second;
      return catalog().FindEntity(entity).has_value();
    };
    for (const Mutation& op : ops) {
      switch (op.kind) {
        case Mutation::Kind::kInsert:
          if (live(op.entity)) {
            return Status::AlreadyExists(
                "entity " + std::to_string(op.entity) +
                " duplicated in batch or already in table");
          }
          liveness[op.entity] = true;
          break;
        case Mutation::Kind::kUpdate:
          if (!live(op.entity)) {
            return Status::NotFound("entity " + std::to_string(op.entity) +
                                    " not in table");
          }
          break;
        case Mutation::Kind::kDelete:
          if (!live(op.entity)) {
            return Status::NotFound("entity " + std::to_string(op.entity) +
                                    " duplicated in batch or not in table");
          }
          liveness[op.entity] = false;
          break;
      }
    }
    return Status::OK();
  }
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_PARTITIONER_H_
