#ifndef CINDERELLA_CORE_PARTITIONER_H_
#define CINDERELLA_CORE_PARTITIONER_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/catalog.h"
#include "storage/row.h"

namespace cinderella {

/// Strategy interface for maintaining a horizontal partitioning of a
/// universal table under modifications (the paper's "modification
/// operations": inserts, updates, deletes).
///
/// Implementations: Cinderella (src/core), and the baselines in
/// src/baseline (single/unpartitioned, hash, range/arrival-order, offline
/// clustering). All share the PartitionCatalog representation, so the query
/// executor and the efficiency metric apply uniformly.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Inserts a new entity; fails with AlreadyExists for duplicate ids.
  virtual Status Insert(Row row) = 0;

  /// Inserts a batch of new entities in row order with placements
  /// identical to inserting them one by one. Fails with AlreadyExists —
  /// before touching the table — when a row duplicates an existing entity
  /// or another row of the same batch, so a failed batch leaves the table
  /// unchanged. The default validates and loops over Insert(); Cinderella
  /// routes this through the batched rating engine of src/ingest when one
  /// is attached.
  virtual Status InsertBatch(std::vector<Row> rows) {
    std::unordered_set<EntityId> batch_ids;
    batch_ids.reserve(rows.size());
    for (const Row& row : rows) {
      if (!batch_ids.insert(row.id()).second ||
          catalog().FindEntity(row.id()).has_value()) {
        return Status::AlreadyExists("entity " + std::to_string(row.id()) +
                                     " duplicated in batch or already in "
                                     "table");
      }
    }
    for (Row& row : rows) {
      CINDERELLA_RETURN_IF_ERROR(Insert(std::move(row)));
    }
    return Status::OK();
  }

  /// Deletes an entity; fails with NotFound for unknown ids.
  virtual Status Delete(EntityId entity) = 0;

  /// Deletes a batch of entities in order with effects identical to
  /// deleting them one by one. Fails with NotFound — before touching the
  /// table — when an id is unknown or duplicated within the batch, so a
  /// failed batch leaves the table unchanged (the delete-side mirror of
  /// InsertBatch's validate-first contract).
  virtual Status DeleteBatch(const std::vector<EntityId>& entities) {
    std::unordered_set<EntityId> batch_ids;
    batch_ids.reserve(entities.size());
    for (EntityId entity : entities) {
      if (!batch_ids.insert(entity).second ||
          !catalog().FindEntity(entity).has_value()) {
        return Status::NotFound("entity " + std::to_string(entity) +
                                " duplicated in batch or not in table");
      }
    }
    for (EntityId entity : entities) {
      CINDERELLA_RETURN_IF_ERROR(Delete(entity));
    }
    return Status::OK();
  }

  /// Replaces the row of an existing entity (attribute set may change);
  /// fails with NotFound for unknown ids.
  virtual Status Update(Row row) = 0;

  virtual PartitionCatalog& catalog() = 0;
  virtual const PartitionCatalog& catalog() const = 0;

  /// Display name for bench output (e.g. "cinderella(w=0.5,B=5000)").
  virtual std::string name() const = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_PARTITIONER_H_
