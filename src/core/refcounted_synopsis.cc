#include "core/refcounted_synopsis.h"

#include "common/logging.h"

namespace cinderella {

void RefcountedSynopsis::Add(const Synopsis& ids,
                             std::vector<AttributeId>* newly_present) {
  for (AttributeId id : ids.ToIds()) {
    if (id >= counts_.size()) counts_.resize(id + 1, 0);
    if (counts_[id]++ == 0) {
      synopsis_.Add(id);
      if (newly_present != nullptr) newly_present->push_back(id);
    }
  }
}

void RefcountedSynopsis::Remove(const Synopsis& ids,
                                std::vector<AttributeId>* newly_absent) {
  for (AttributeId id : ids.ToIds()) {
    CINDERELLA_CHECK(id < counts_.size() && counts_[id] > 0);
    if (--counts_[id] == 0) {
      synopsis_.Remove(id);
      if (newly_absent != nullptr) newly_absent->push_back(id);
    }
  }
}

uint32_t RefcountedSynopsis::RefCount(AttributeId id) const {
  if (id >= counts_.size()) return 0;
  return counts_[id];
}

void RefcountedSynopsis::Clear() {
  synopsis_.Clear();
  counts_.clear();
}

}  // namespace cinderella
