#include "core/efficiency.h"

// Inline-only use of the snapshot types (ForEachPartition / ForEachRow /
// attribute_synopsis are all header-defined), so this adds no link
// dependency from cinderella_core to the mvcc library.
#include "mvcc/partition_version.h"

namespace cinderella {
namespace {

/// True iff the row instantiates any attribute of `query` — the
/// sgn(|e ∧ q|) test of Definition 1 evaluated on a borrowed view
/// (packed snapshot rows carry no materialized synopsis; their cells are
/// sorted by attribute id, so this walks at most |e| cells).
bool RowIntersects(const RowView& row, const Synopsis& query) {
  for (const Row::Cell& cell : row) {
    if (query.Contains(cell.attribute)) return true;
  }
  return false;
}

uint64_t VersionSize(const PartitionVersion& version, SizeMeasure measure) {
  switch (measure) {
    case SizeMeasure::kEntityCount:
      return version.entity_count();
    case SizeMeasure::kAttributeCount:
      return version.cell_count();
    case SizeMeasure::kByteSize:
      return version.byte_size();
  }
  return version.entity_count();
}

}  // namespace

EfficiencyBreakdown ComputeEfficiency(const PartitionCatalog& catalog,
                                      const std::vector<Synopsis>& workload,
                                      const std::vector<double>& weights,
                                      SizeMeasure measure) {
  EfficiencyBreakdown result;
  for (size_t i = 0; i < workload.size(); ++i) {
    const Synopsis& query = workload[i];
    const double weight = i < weights.size() ? weights[i] : 1.0;
    catalog.ForEachPartition([&](const Partition& partition) {
      if (!partition.attribute_synopsis().Intersects(query)) return;
      result.read += weight * static_cast<double>(partition.Size(measure));
      for (const Row& row : partition.segment().rows()) {
        if (row.AttributeSynopsis().Intersects(query)) {
          result.relevant +=
              weight * static_cast<double>(RowSize(row, measure));
        }
      }
    });
  }
  result.efficiency = result.read > 0.0 ? result.relevant / result.read : 1.0;
  return result;
}

EfficiencyBreakdown ComputeEfficiency(const PartitionCatalog& catalog,
                                      const std::vector<Synopsis>& workload,
                                      SizeMeasure measure) {
  return ComputeEfficiency(catalog, workload, std::vector<double>(), measure);
}

EfficiencyBreakdown ComputeEfficiency(const CatalogView& view,
                                      const std::vector<Synopsis>& workload,
                                      const std::vector<double>& weights,
                                      SizeMeasure measure) {
  EfficiencyBreakdown result;
  for (size_t i = 0; i < workload.size(); ++i) {
    const Synopsis& query = workload[i];
    const double weight = i < weights.size() ? weights[i] : 1.0;
    view.ForEachPartition([&](const PartitionVersion& version) {
      // Cold versions carry no packed rows; a diagnostic must not pay
      // chain I/O, so efficiency is computed over the hot residents only.
      if (version.cold()) return;
      if (!version.attribute_synopsis().Intersects(query)) return;
      result.read +=
          weight * static_cast<double>(VersionSize(version, measure));
      version.ForEachRow([&](const RowView& row) {
        if (RowIntersects(row, query)) {
          result.relevant +=
              weight * static_cast<double>(RowViewSize(row, measure));
        }
      });
    });
  }
  result.efficiency = result.read > 0.0 ? result.relevant / result.read : 1.0;
  return result;
}

EfficiencyBreakdown ComputeEfficiency(const CatalogView& view,
                                      const std::vector<Synopsis>& workload,
                                      SizeMeasure measure) {
  return ComputeEfficiency(view, workload, std::vector<double>(), measure);
}

}  // namespace cinderella
