#include "core/efficiency.h"

namespace cinderella {

EfficiencyBreakdown ComputeEfficiency(const PartitionCatalog& catalog,
                                      const std::vector<Synopsis>& workload,
                                      SizeMeasure measure) {
  EfficiencyBreakdown result;
  for (const Synopsis& query : workload) {
    catalog.ForEachPartition([&](const Partition& partition) {
      if (!partition.attribute_synopsis().Intersects(query)) return;
      result.read += static_cast<double>(partition.Size(measure));
      for (const Row& row : partition.segment().rows()) {
        if (row.AttributeSynopsis().Intersects(query)) {
          result.relevant += static_cast<double>(RowSize(row, measure));
        }
      }
    });
  }
  result.efficiency = result.read > 0.0 ? result.relevant / result.read : 1.0;
  return result;
}

}  // namespace cinderella
