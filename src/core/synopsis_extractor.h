#ifndef CINDERELLA_CORE_SYNOPSIS_EXTRACTOR_H_
#define CINDERELLA_CORE_SYNOPSIS_EXTRACTOR_H_

#include <functional>
#include <vector>

#include "storage/row.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Maps a row to the entity synopsis used by the rating.
///
/// Entity-based mode: the set of attributes the entity instantiates.
/// Workload-based mode: the set of workload queries the entity is relevant
/// to (Section III).
using SynopsisExtractor = std::function<Synopsis(const Row&)>;

/// Extractor for the entity-based setup.
SynopsisExtractor MakeEntityBasedExtractor();

/// Builds workload-based entity synopses from a fixed query set W.
///
/// Query i's attribute synopsis is `workload[i]`; an entity is relevant to
/// query i iff its attribute set intersects it (the paper's
/// sgn(|e ∧ q|) = 1). The resulting entity synopsis is a bitset over query
/// indices.
class WorkloadSynopsisBuilder {
 public:
  explicit WorkloadSynopsisBuilder(std::vector<Synopsis> workload)
      : workload_(std::move(workload)) {}

  /// Synopsis over query ids for one row.
  Synopsis Extract(const Row& row) const;

  /// Adapter usable as a SynopsisExtractor. The builder must outlive the
  /// returned function.
  SynopsisExtractor AsExtractor() const;

  size_t query_count() const { return workload_.size(); }

  /// The query set W (attribute synopses, indexed by query id).
  const std::vector<Synopsis>& workload() const { return workload_; }

 private:
  std::vector<Synopsis> workload_;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_SYNOPSIS_EXTRACTOR_H_
