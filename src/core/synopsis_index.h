#ifndef CINDERELLA_CORE_SYNOPSIS_INDEX_H_
#define CINDERELLA_CORE_SYNOPSIS_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Inverted index from rating id (attribute or query) to the partitions
/// whose rating synopsis contains it.
///
/// This implements the paper's future-work item on "specialized data
/// structures" for "the management of a large number of partition
/// synopses": the insert path only needs to rate partitions that share at
/// least one id with the entity, because a zero-overlap partition rates
/// h⁺ = 0 and therefore never positive — it can never beat a positive-rated
/// candidate, and when no candidate is positive a new partition is created
/// anyway. Candidate generation via this index is thus exact, not a
/// heuristic (verified by property tests against the full catalog scan).
///
/// Postings are append-only with lazy deletion: lookups filter through a
/// membership probe, and a posting list is compacted when its dead fraction
/// exceeds one half.
class SynopsisIndex {
 public:
  SynopsisIndex() = default;

  /// Registers that `partition`'s rating synopsis now contains `id`.
  void AddPosting(AttributeId id, PartitionId partition);

  /// Registers that `id` vanished from `partition`'s rating synopsis.
  void RemovePosting(AttributeId id, PartitionId partition);

  /// Appends the distinct partitions whose synopsis intersects `ids` to
  /// `*candidates` (unordered, no duplicates).
  void CollectCandidates(const Synopsis& ids,
                         std::vector<PartitionId>* candidates);

  /// Total live postings (for tests).
  size_t live_posting_count() const;

 private:
  struct PostingList {
    std::vector<PartitionId> partitions;
    size_t dead = 0;
  };

  void Compact(AttributeId id);
  bool IsLive(AttributeId id, PartitionId partition) const;

  std::vector<PostingList> lists_;
  // Membership bitmap: alive_[partition] marks ids present, used to filter
  // dead postings and dedupe candidates.
  std::vector<Synopsis> partition_ids_;  // partition -> its indexed ids
  std::vector<uint8_t> candidate_seen_;  // scratch, sized to partitions
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_SYNOPSIS_INDEX_H_
