#include "core/synopsis_index.h"

#include "common/logging.h"

namespace cinderella {

void SynopsisIndex::AddPosting(AttributeId id, PartitionId partition) {
  if (id >= lists_.size()) lists_.resize(id + 1);
  if (partition >= partition_ids_.size()) {
    partition_ids_.resize(partition + 1);
    candidate_seen_.resize(partition + 1, 0);
  }
  CINDERELLA_DCHECK(!partition_ids_[partition].Contains(id));
  lists_[id].partitions.push_back(partition);
  partition_ids_[partition].Add(id);
}

void SynopsisIndex::RemovePosting(AttributeId id, PartitionId partition) {
  CINDERELLA_DCHECK(id < lists_.size());
  CINDERELLA_DCHECK(partition < partition_ids_.size());
  CINDERELLA_DCHECK(partition_ids_[partition].Contains(id));
  partition_ids_[partition].Remove(id);
  PostingList& list = lists_[id];
  ++list.dead;
  if (list.dead * 2 > list.partitions.size()) Compact(id);
}

bool SynopsisIndex::IsLive(AttributeId id, PartitionId partition) const {
  return partition < partition_ids_.size() &&
         partition_ids_[partition].Contains(id);
}

void SynopsisIndex::Compact(AttributeId id) {
  PostingList& list = lists_[id];
  std::vector<PartitionId> live;
  live.reserve(list.partitions.size() - list.dead);
  for (PartitionId partition : list.partitions) {
    if (IsLive(id, partition)) live.push_back(partition);
  }
  list.partitions = std::move(live);
  list.dead = 0;
}

void SynopsisIndex::CollectCandidates(const Synopsis& ids,
                                      std::vector<PartitionId>* candidates) {
  const size_t first = candidates->size();
  for (AttributeId id : ids.ToIds()) {
    if (id >= lists_.size()) continue;
    for (PartitionId partition : lists_[id].partitions) {
      if (!IsLive(id, partition)) continue;
      if (candidate_seen_[partition]) continue;
      candidate_seen_[partition] = 1;
      candidates->push_back(partition);
    }
  }
  for (size_t i = first; i < candidates->size(); ++i) {
    candidate_seen_[(*candidates)[i]] = 0;
  }
}

size_t SynopsisIndex::live_posting_count() const {
  size_t total = 0;
  for (const Synopsis& ids : partition_ids_) total += ids.Count();
  return total;
}

}  // namespace cinderella
