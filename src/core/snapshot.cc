#include "core/snapshot.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <istream>
#include <ostream>
#include <vector>

namespace cinderella {
namespace {

constexpr uint32_t kMagic = 0x434e4443;  // "CDNC"
constexpr uint32_t kVersion = 1;

// -- primitive writers/readers ------------------------------------------------

template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
Status ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in.good()) return Status::OutOfRange("truncated snapshot");
  return Status::OK();
}

Status ReadString(std::istream& in, std::string* s) {
  uint32_t size = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &size));
  if (size > (1u << 28)) return Status::OutOfRange("corrupt string length");
  s->resize(size);
  in.read(s->data(), size);
  if (!in.good() && size > 0) return Status::OutOfRange("truncated snapshot");
  return Status::OK();
}

void WriteSynopsis(std::ostream& out, const Synopsis& synopsis) {
  const auto ids = synopsis.ToIds();
  WritePod<uint32_t>(out, static_cast<uint32_t>(ids.size()));
  for (AttributeId id : ids) WritePod<uint32_t>(out, id);
}

Status ReadSynopsis(std::istream& in, Synopsis* synopsis) {
  uint32_t count = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &count));
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &id));
    synopsis->Add(id);
  }
  return Status::OK();
}

void WriteValue(std::ostream& out, const Value& value) {
  WritePod<uint8_t>(out, static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kInt64:
      WritePod<int64_t>(out, value.as_int64());
      break;
    case ValueType::kDouble:
      WritePod<double>(out, value.as_double());
      break;
    case ValueType::kString:
      WriteString(out, value.as_string());
      break;
  }
}

Status ReadValue(std::istream& in, Value* value) {
  uint8_t type = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &type));
  switch (static_cast<ValueType>(type)) {
    case ValueType::kInt64: {
      int64_t v = 0;
      CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &v));
      *value = Value(v);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double v = 0;
      CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &v));
      *value = Value(v);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string v;
      CINDERELLA_RETURN_IF_ERROR(ReadString(in, &v));
      *value = Value(std::move(v));
      return Status::OK();
    }
  }
  return Status::OutOfRange("corrupt value type");
}

}  // namespace

Status SaveSnapshot(const Cinderella& partitioner,
                    const AttributeDictionary& dictionary,
                    std::ostream& out) {
  WritePod(out, kMagic);
  WritePod(out, kVersion);

  // Configuration.
  const CinderellaConfig& config = partitioner.config();
  WritePod<double>(out, config.weight);
  WritePod<uint64_t>(out, config.max_size);
  WritePod<uint8_t>(out, static_cast<uint8_t>(config.measure));
  WritePod<uint8_t>(out, static_cast<uint8_t>(config.mode));
  WritePod<uint8_t>(out, config.normalize_rating ? 1 : 0);
  WritePod<uint8_t>(out, static_cast<uint8_t>(config.starter_policy));
  WritePod<uint8_t>(out, config.use_synopsis_index ? 1 : 0);
  WritePod<uint64_t>(out, config.starter_seed);
  WritePod<double>(out, config.dissolve_threshold);

  // Workload (workload-based mode).
  const auto& workload = partitioner.workload();
  WritePod<uint32_t>(out, static_cast<uint32_t>(workload.size()));
  for (const Synopsis& query : workload) WriteSynopsis(out, query);

  // Dictionary, in id order.
  WritePod<uint32_t>(out, static_cast<uint32_t>(dictionary.size()));
  for (AttributeId id = 0; id < dictionary.size(); ++id) {
    auto name = dictionary.Name(id);
    CINDERELLA_RETURN_IF_ERROR(name.status());
    WriteString(out, name.value());
  }

  // Partitions. Rows are streamed residency-agnostically: a cold
  // partition's rows come back from its page chain (in chain order), so a
  // snapshot of a tiered table is identical in meaning to one of an
  // all-hot table — restore always starts hot.
  WritePod<uint32_t>(
      out, static_cast<uint32_t>(partitioner.catalog().partition_count()));
  Status row_error;
  partitioner.catalog().ForEachPartition([&](const Partition& partition) {
    if (!row_error.ok()) return;
    WritePod<uint64_t>(out, partition.entity_count());
    const Status streamed =
        partitioner.ForEachRowOf(partition, [&](const Row& row) {
          WritePod<uint64_t>(out, row.id());
          WritePod<uint32_t>(out, static_cast<uint32_t>(row.attribute_count()));
          for (const Row::Cell& cell : row.cells()) {
            WritePod<uint32_t>(out, cell.attribute);
            WriteValue(out, cell.value);
          }
        });
    if (!streamed.ok()) row_error = streamed;
  });
  CINDERELLA_RETURN_IF_ERROR(row_error);

  if (!out.good()) return Status::Internal("write failure");
  return Status::OK();
}

StatusOr<RestoredSnapshot> LoadSnapshot(std::istream& in) {
  uint32_t magic = 0;
  uint32_t version = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &magic));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a Cinderella snapshot");
  }
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }

  CinderellaConfig config;
  uint8_t measure = 0;
  uint8_t mode = 0;
  uint8_t normalize = 0;
  uint8_t policy = 0;
  uint8_t use_index = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &config.weight));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &config.max_size));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &measure));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &mode));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &normalize));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &policy));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &use_index));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &config.starter_seed));
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &config.dissolve_threshold));
  if (measure > 2 || mode > 1 || policy > 2) {
    return Status::OutOfRange("corrupt snapshot config");
  }
  config.measure = static_cast<SizeMeasure>(measure);
  config.mode = static_cast<SynopsisMode>(mode);
  config.normalize_rating = normalize != 0;
  config.starter_policy = static_cast<StarterPolicy>(policy);
  config.use_synopsis_index = use_index != 0;

  uint32_t workload_size = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &workload_size));
  std::vector<Synopsis> workload(workload_size);
  for (Synopsis& query : workload) {
    CINDERELLA_RETURN_IF_ERROR(ReadSynopsis(in, &query));
  }

  RestoredSnapshot restored;
  restored.dictionary = std::make_unique<AttributeDictionary>();
  uint32_t dictionary_size = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &dictionary_size));
  for (uint32_t i = 0; i < dictionary_size; ++i) {
    std::string name;
    CINDERELLA_RETURN_IF_ERROR(ReadString(in, &name));
    if (restored.dictionary->GetOrCreate(name) != i) {
      return Status::OutOfRange("duplicate dictionary entry in snapshot");
    }
  }

  StatusOr<std::unique_ptr<Cinderella>> created =
      config.mode == SynopsisMode::kWorkloadBased
          ? Cinderella::Create(config, std::move(workload))
          : Cinderella::Create(config);
  CINDERELLA_RETURN_IF_ERROR(created.status());
  restored.partitioner = std::move(created).value();

  uint32_t partition_count = 0;
  CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &partition_count));
  // Bulk-restore bracket: per-row synopsis tree upserts are suppressed
  // during the load and the tree is rebuilt bottom-up once at the end.
  restored.partitioner->BeginBulkRestore();
  for (uint32_t p = 0; p < partition_count; ++p) {
    uint64_t row_count = 0;
    CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &row_count));
    if (row_count == 0) return Status::OutOfRange("empty partition in snapshot");
    std::vector<Row> rows;
    rows.reserve(row_count);
    for (uint64_t r = 0; r < row_count; ++r) {
      uint64_t entity = 0;
      uint32_t cells = 0;
      CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &entity));
      CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &cells));
      Row row(entity);
      for (uint32_t c = 0; c < cells; ++c) {
        uint32_t attribute = 0;
        Value value;
        CINDERELLA_RETURN_IF_ERROR(ReadPod(in, &attribute));
        CINDERELLA_RETURN_IF_ERROR(ReadValue(in, &value));
        row.Set(attribute, std::move(value));
      }
      rows.push_back(std::move(row));
    }
    CINDERELLA_RETURN_IF_ERROR(
        restored.partitioner->RestorePartition(std::move(rows)));
  }
  restored.partitioner->EndBulkRestore();
  return restored;
}

Status SaveSnapshotToFile(const Cinderella& partitioner,
                          const AttributeDictionary& dictionary,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  return SaveSnapshot(partitioner, dictionary, out);
}

StatusOr<RestoredSnapshot> LoadSnapshotFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return LoadSnapshot(in);
}

}  // namespace cinderella
