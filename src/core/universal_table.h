#ifndef CINDERELLA_CORE_UNIVERSAL_TABLE_H_
#define CINDERELLA_CORE_UNIVERSAL_TABLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/partitioner.h"
#include "storage/row.h"
#include "storage/value.h"
#include "synopsis/attribute_dictionary.h"

namespace cinderella {

/// The user-facing universal table: a single logical table over a quickly
/// evolving variety of entities, physically maintained as a horizontal
/// partitioning by a pluggable Partitioner.
///
/// Mirrors the paper's prototype, where "the user inserts data to the
/// universal table using regular SQL statements" and a trigger routes every
/// modification through Cinderella. Attribute names are interned in the
/// table's dictionary; rows address attributes by id.
class UniversalTable {
 public:
  /// One attribute of an entity, by name.
  using NamedValue = std::pair<std::string, Value>;

  /// Takes ownership of the partitioner (Cinderella or a baseline).
  explicit UniversalTable(std::unique_ptr<Partitioner> partitioner);

  /// Adopts an existing dictionary (e.g. from a restored snapshot) whose
  /// ids the partitioner's rows already use.
  UniversalTable(std::unique_ptr<Partitioner> partitioner,
                 AttributeDictionary dictionary);

  UniversalTable(const UniversalTable&) = delete;
  UniversalTable& operator=(const UniversalTable&) = delete;

  /// Inserts an entity given by attribute names.
  Status Insert(EntityId entity, const std::vector<NamedValue>& attributes);

  /// Inserts a pre-built row (attribute ids must come from dictionary()).
  Status InsertRow(Row row);

  /// Inserts many pre-built rows through the partitioner's batch path
  /// (the ingest pipeline when one is attached, else a validated serial
  /// loop). Placements match inserting the rows one by one in order.
  Status InsertBatch(std::vector<Row> rows);

  /// Deletes an entity.
  Status Delete(EntityId entity);

  /// Deletes many entities through the partitioner's batch path. Fails
  /// with NotFound before touching the table when an id is unknown or
  /// duplicated in the batch.
  Status DeleteBatch(const std::vector<EntityId>& entities);

  /// Replaces an entity's attributes.
  Status Update(EntityId entity, const std::vector<NamedValue>& attributes);

  /// Replaces an entity's row.
  Status UpdateRow(Row row);

  /// Updates many pre-built rows through the partitioner's batch path.
  /// Fails with NotFound before touching the table when a row names an
  /// unknown entity.
  Status UpdateBatch(std::vector<Row> rows);

  /// Applies a mixed, ordered mutation list (inserts, updates, deletes)
  /// through the partitioner's batch path, validate-first across the whole
  /// list. *applied (when non-null) receives the committed op prefix.
  Status ApplyMutations(std::vector<Mutation> ops, size_t* applied = nullptr);

  /// Returns a copy of the entity's row, or NotFound.
  StatusOr<Row> Get(EntityId entity) const;

  /// Number of stored entities.
  size_t entity_count() const { return partitioner_->catalog().entity_count(); }

  AttributeDictionary& dictionary() { return dictionary_; }
  const AttributeDictionary& dictionary() const { return dictionary_; }

  Partitioner& partitioner() { return *partitioner_; }
  const Partitioner& partitioner() const { return *partitioner_; }

  PartitionCatalog& catalog() { return partitioner_->catalog(); }
  const PartitionCatalog& catalog() const { return partitioner_->catalog(); }

 private:
  Row BuildRow(EntityId entity, const std::vector<NamedValue>& attributes);

  AttributeDictionary dictionary_;
  std::unique_ptr<Partitioner> partitioner_;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_UNIVERSAL_TABLE_H_
