#include "core/cinderella.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "core/rating.h"

namespace cinderella {

StatusOr<std::unique_ptr<Cinderella>> Cinderella::Create(
    CinderellaConfig config) {
  CINDERELLA_RETURN_IF_ERROR(config.Validate());
  if (config.mode == SynopsisMode::kWorkloadBased) {
    return Status::InvalidArgument(
        "workload-based mode requires a workload; use the two-argument "
        "Create overload");
  }
  return std::unique_ptr<Cinderella>(
      new Cinderella(std::move(config), nullptr));
}

StatusOr<std::unique_ptr<Cinderella>> Cinderella::Create(
    CinderellaConfig config, std::vector<Synopsis> workload) {
  CINDERELLA_RETURN_IF_ERROR(config.Validate());
  if (config.mode != SynopsisMode::kWorkloadBased) {
    return Status::InvalidArgument(
        "a workload is only meaningful in workload-based mode");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("workload must not be empty");
  }
  return std::unique_ptr<Cinderella>(new Cinderella(
      std::move(config),
      std::make_unique<WorkloadSynopsisBuilder>(std::move(workload))));
}

Cinderella::Cinderella(CinderellaConfig config,
                       std::unique_ptr<WorkloadSynopsisBuilder> workload)
    : config_(config),
      catalog_(/*separate_rating_synopsis=*/workload != nullptr),
      workload_(std::move(workload)),
      tree_(static_cast<size_t>(config.tree_fanout)),
      rng_(config.starter_seed) {
  extractor_ = workload_ != nullptr ? workload_->AsExtractor()
                                    : MakeEntityBasedExtractor();
  const int degree = ThreadPool::ResolveDegree(config_.scan_threads);
  if (degree > 1) pool_ = std::make_unique<ThreadPool>(degree);
}

std::string Cinderella::name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "cinderella(w=%.2f,B=%llu,%s%s)",
                config_.weight,
                static_cast<unsigned long long>(config_.max_size),
                SizeMeasureToString(config_.measure),
                config_.mode == SynopsisMode::kWorkloadBased ? ",workload"
                                                             : "");
  return buf;
}

Status Cinderella::VerifyIntegrity() const {
  auto fail = [](std::string message) {
    return Status::Internal("integrity: " + std::move(message));
  };
  size_t resident_rows = 0;
  Status violation;  // First violation found (ForEach cannot early-out).
  catalog_.ForEachPartition([&](const Partition& partition) {
    if (!violation.ok()) return;
    const std::string where = "partition " + std::to_string(partition.id());
    if (partition.entity_count() == 0) {
      violation = fail(where + " is empty");
      return;
    }
    if (config_.measure == SizeMeasure::kEntityCount &&
        partition.entity_count() > config_.max_size) {
      violation = fail(where + " exceeds MAXSIZE");
      return;
    }
    // Cold partitions are verified against the rows read back from their
    // page chain (exercising the tier's read path as a side effect).
    std::vector<Row> cold_rows;
    const std::vector<Row>* rows = &partition.segment().rows();
    if (partition.cold()) {
      if (cold_tier_ == nullptr) {
        violation = fail(where + " is cold but no tier is attached");
        return;
      }
      cold_rows.reserve(partition.cold_chain()->entities);
      const Status read = cold_tier_->ReadChain(
          *partition.cold_chain(),
          [&](Row&& row) { cold_rows.push_back(std::move(row)); });
      if (!read.ok()) {
        violation = read;
        return;
      }
      if (cold_rows.size() != partition.cold_chain()->entities) {
        violation = fail(where + " chain row count drift");
        return;
      }
      rows = &cold_rows;
    }
    Synopsis attribute_union;
    Synopsis rating_union;
    uint64_t cells = 0;
    uint64_t bytes = 0;
    for (const Row& row : *rows) {
      ++resident_rows;
      attribute_union.UnionWith(row.AttributeSynopsis());
      rating_union.UnionWith(extractor_(row));
      cells += row.attribute_count();
      bytes += row.byte_size();
      const auto home = catalog_.FindEntity(row.id());
      if (!home.has_value() || *home != partition.id()) {
        violation = fail("entity " + std::to_string(row.id()) +
                         " misbound (resident in " + where + ")");
        return;
      }
    }
    if (partition.attribute_synopsis() != attribute_union) {
      violation = fail(where + " attribute synopsis drift");
      return;
    }
    if (partition.rating_synopsis() != rating_union) {
      violation = fail(where + " rating synopsis drift");
      return;
    }
    if (partition.Size(SizeMeasure::kAttributeCount) != cells ||
        partition.Size(SizeMeasure::kByteSize) != bytes) {
      violation = fail(where + " size accounting drift");
      return;
    }
    for (const auto& starter :
         {partition.starter_a(), partition.starter_b()}) {
      if (!starter.has_value()) continue;
      const Row* row = nullptr;
      if (partition.cold()) {
        for (const Row& candidate : cold_rows) {
          if (candidate.id() == starter->entity) {
            row = &candidate;
            break;
          }
        }
      } else {
        row = partition.segment().Find(starter->entity);
      }
      if (row == nullptr) {
        violation = fail(where + " starter not resident");
        return;
      }
      if (starter->synopsis != extractor_(*row)) {
        violation = fail(where + " starter synopsis stale");
        return;
      }
    }
    if (partition.starter_a().has_value() &&
        partition.starter_b().has_value() &&
        partition.starter_a()->entity == partition.starter_b()->entity) {
      violation = fail(where + " duplicate split starters");
      return;
    }
  });
  CINDERELLA_RETURN_IF_ERROR(violation);
  if (resident_rows != catalog_.entity_count()) {
    return fail("binding count " + std::to_string(catalog_.entity_count()) +
                " != resident rows " + std::to_string(resident_rows));
  }
  if (config_.use_synopsis_tree) {
    if (tree_.live_count() != catalog_.partition_count()) {
      return fail("synopsis tree live count " +
                  std::to_string(tree_.live_count()) + " != partition count " +
                  std::to_string(catalog_.partition_count()));
    }
    std::string tree_error;
    if (!tree_.CheckInvariants(&tree_error)) {
      return fail("synopsis tree: " + tree_error);
    }
    Status tree_violation;
    tree_.ForEachLeaf([&](uint64_t key, const Synopsis& leaf) {
      if (!tree_violation.ok()) return;
      const Partition* partition =
          catalog_.GetPartition(static_cast<PartitionId>(key));
      if (partition == nullptr) {
        tree_violation =
            fail("synopsis tree leaf for dead partition " + std::to_string(key));
        return;
      }
      if (partition->rating_synopsis() != leaf) {
        tree_violation = fail("synopsis tree leaf drift at partition " +
                              std::to_string(key));
      }
    });
    CINDERELLA_RETURN_IF_ERROR(tree_violation);
  }
  return Status::OK();
}

StatusOr<std::vector<std::pair<Row, Synopsis>>>
Cinderella::DrainForReorganize() {
  ++catalog_generation_;
  // Extract everything.
  std::vector<std::pair<Row, Synopsis>> all;
  all.reserve(catalog_.entity_count());
  const std::vector<PartitionId> partitions = catalog_.LivePartitionIds();
  for (PartitionId id : partitions) {
    Partition* partition = catalog_.GetPartition(id);
    CINDERELLA_CHECK(partition != nullptr);
    CINDERELLA_RETURN_IF_ERROR(EnsureHot(*partition));
    ++stats_.partitions_dissolved;
    while (partition->entity_count() > 0) {
      const Row& next = partition->segment().rows().front();
      Synopsis synopsis = extractor_(next);
      StatusOr<Row> removed =
          RemoveRowFromPartition(*partition, next.id(), synopsis);
      CINDERELLA_RETURN_IF_ERROR(removed.status());
      all.emplace_back(std::move(removed).value(), std::move(synopsis));
    }
    DropEmptyPartition(*partition);
  }
  // Most descriptive entities first: they become partition seeds and
  // split starters, so later sparse entities join well-formed groups.
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.Count() > b.second.Count();
                   });
  return all;
}

Status Cinderella::Reorganize() {
  if (batch_engine_ != nullptr) return batch_engine_->Reorganize();
  StatusOr<std::vector<std::pair<Row, Synopsis>>> drained =
      DrainForReorganize();
  CINDERELLA_RETURN_IF_ERROR(drained.status());
  for (auto& [row, synopsis] : drained.value()) {
    ++stats_.entities_reinserted;
    CINDERELLA_RETURN_IF_ERROR(
        InsertIntoCatalog(std::move(row), synopsis, nullptr, 0));
  }
  return Status::OK();
}

Status Cinderella::ReinsertResolved(Row row, const Synopsis& synopsis,
                                    Partition* target) {
  ++catalog_generation_;
  ++stats_.entities_reinserted;
  return PlaceRow(std::move(row), synopsis, target, nullptr, 0);
}

void Cinderella::EndBulkRestore() {
  bulk_restore_ = false;
  if (!config_.use_synopsis_tree) return;
  std::vector<std::pair<uint64_t, const Synopsis*>> leaves;
  leaves.reserve(catalog_.partition_count());
  catalog_.ForEachPartition([&](const Partition& partition) {
    leaves.emplace_back(partition.id(), &partition.rating_synopsis());
  });
  tree_.BulkBuild(std::move(leaves));
}

Status Cinderella::RestorePartition(std::vector<Row> rows) {
  ++catalog_generation_;
  if (rows.empty()) {
    return Status::InvalidArgument("cannot restore an empty partition");
  }
  // Validate against the catalog AND within the batch before creating the
  // partition: a duplicate detected after the first AddRow would leave a
  // partially-built partition behind (audit: empty-partition leak fix).
  std::unordered_set<EntityId> batch_ids;
  batch_ids.reserve(rows.size());
  for (const Row& row : rows) {
    if (!batch_ids.insert(row.id()).second ||
        catalog_.FindEntity(row.id()).has_value()) {
      return Status::AlreadyExists("entity " + std::to_string(row.id()) +
                                   " duplicated in restore batch or already "
                                   "in table");
    }
  }
  Partition& partition = catalog_.CreatePartition();
  ++stats_.partitions_created;
  RecordCreated(partition.id());
  for (Row& row : rows) {
    const Synopsis synopsis = extractor_(row);
    CINDERELLA_RETURN_IF_ERROR(
        AddRowToPartition(partition, std::move(row), synopsis));
    ++stats_.inserts;
  }
  return Status::OK();
}

const std::vector<Synopsis>& Cinderella::workload() const {
  static const std::vector<Synopsis>* empty = new std::vector<Synopsis>();
  return workload_ != nullptr ? workload_->workload() : *empty;
}

// ---------------------------------------------------------------------------
// Cold tier.
// ---------------------------------------------------------------------------

Status Cinderella::SpillPartition(PartitionId id) {
  if (cold_tier_ == nullptr) {
    return Status::FailedPrecondition("no cold tier attached");
  }
  Partition* partition = catalog_.GetPartition(id);
  if (partition == nullptr) {
    return Status::NotFound("no partition " + std::to_string(id));
  }
  if (partition->cold()) return Status::OK();
  if (partition->entity_count() == 0) {
    return Status::FailedPrecondition("partition " + std::to_string(id) +
                                      " is empty");
  }
  // Write first, switch after: a failed write leaves the partition hot
  // and untouched.
  StatusOr<std::shared_ptr<const ColdChain>> chain =
      cold_tier_->WriteChain(partition->segment().rows());
  CINDERELLA_RETURN_IF_ERROR(chain.status());
  partition->SetCold(std::move(chain).value());
  ++stats_.spills;
  RecordTouched(id);
  return Status::OK();
}

Status Cinderella::EnsureHot(Partition& partition) {
  if (!partition.cold()) return Status::OK();
  CINDERELLA_CHECK(cold_tier_ != nullptr);
  std::vector<Row> rows;
  rows.reserve(partition.cold_chain()->entities);
  CINDERELLA_RETURN_IF_ERROR(cold_tier_->ReadChain(
      *partition.cold_chain(),
      [&](Row&& row) { rows.push_back(std::move(row)); }));
  CINDERELLA_RETURN_IF_ERROR(partition.FaultIn(std::move(rows)));
  ++stats_.faults;
  RecordTouched(partition.id());
  return Status::OK();
}

Status Cinderella::ForEachRowOf(
    const Partition& partition,
    const std::function<void(const Row&)>& fn) const {
  if (!partition.cold()) {
    for (const Row& row : partition.segment().rows()) fn(row);
    return Status::OK();
  }
  if (cold_tier_ == nullptr) {
    return Status::FailedPrecondition("cold partition without a tier");
  }
  return cold_tier_->ReadChain(*partition.cold_chain(),
                               [&](Row&& row) { fn(row); });
}

// ---------------------------------------------------------------------------
// Row movement helpers.
// ---------------------------------------------------------------------------

Status Cinderella::AddRowToPartition(Partition& partition, Row row,
                                     const Synopsis& synopsis) {
  const EntityId entity = row.id();
  std::vector<AttributeId> added;
  CINDERELLA_RETURN_IF_ERROR(partition.AddRow(
      std::move(row), synopsis, config_.use_synopsis_index ? &added : nullptr));
  catalog_.BindEntity(entity, partition.id());
  if (config_.use_synopsis_index) {
    for (AttributeId id : added) index_.AddPosting(id, partition.id());
  }
  if (config_.use_synopsis_tree && !bulk_restore_) {
    tree_.Upsert(partition.id(), partition.rating_synopsis());
  }
  if (config_.use_synopsis_index || config_.use_synopsis_tree) {
    if (partition.rating_synopsis().Empty()) {
      empty_synopsis_partitions_.insert(partition.id());
    } else {
      empty_synopsis_partitions_.erase(partition.id());
    }
  }
  RecordTouched(partition.id());
  return Status::OK();
}

StatusOr<Row> Cinderella::RemoveRowFromPartition(Partition& partition,
                                                 EntityId entity,
                                                 const Synopsis& synopsis) {
  std::vector<AttributeId> removed;
  StatusOr<Row> row = partition.RemoveRow(
      entity, synopsis, config_.use_synopsis_index ? &removed : nullptr);
  if (!row.ok()) return row;
  catalog_.UnbindEntity(entity);
  if (config_.use_synopsis_index) {
    for (AttributeId id : removed) index_.RemovePosting(id, partition.id());
  }
  if (config_.use_synopsis_tree) {
    // An emptied partition is about to be dropped by the caller (which
    // removes the leaf); upserting the now-empty synopsis keeps the leaf
    // exact in the interim.
    tree_.Upsert(partition.id(), partition.rating_synopsis());
  }
  if (config_.use_synopsis_index || config_.use_synopsis_tree) {
    if (partition.entity_count() > 0 && partition.rating_synopsis().Empty()) {
      empty_synopsis_partitions_.insert(partition.id());
    } else {
      empty_synopsis_partitions_.erase(partition.id());
    }
  }
  RecordTouched(partition.id());
  return row;
}

void Cinderella::DropEmptyPartition(Partition& partition) {
  CINDERELLA_DCHECK(partition.entity_count() == 0);
  // Every drop path funnels here (deletes, dissolves, drains, and the
  // split sweep), so the tree's zero-live subtree collapse rides every
  // one of them.
  if (config_.use_synopsis_tree) tree_.Remove(partition.id());
  empty_synopsis_partitions_.erase(partition.id());
  RecordDropped(partition.id());
  const Status status = catalog_.DropPartition(partition.id());
  CINDERELLA_CHECK(status.ok());
  ++stats_.partitions_dropped;
}

// ---------------------------------------------------------------------------
// Rating scan.
// ---------------------------------------------------------------------------

Cinderella::BestPartition Cinderella::FindBestPartition(
    const Synopsis& synopsis, double entity_size,
    const std::vector<PartitionId>* restricted) {
  BestPartition best;
  best.rating = -std::numeric_limits<double>::infinity();

  auto consider = [&](Partition& partition) {
    ++stats_.partitions_rated;
    const double r = Rate(synopsis, entity_size, partition.rating_synopsis(),
                          static_cast<double>(partition.Size(config_.measure)),
                          config_.weight, config_.normalize_rating);
    if (r > best.rating) {
      best.rating = r;
      best.partition = &partition;
    }
  };

  if (restricted != nullptr) {
    for (PartitionId id : *restricted) {
      Partition* partition = catalog_.GetPartition(id);
      CINDERELLA_DCHECK(partition != nullptr);
      consider(*partition);
    }
    return best;
  }

  // Tree descent (takes precedence over the inverted index): only
  // subtrees whose union synopsis intersects the entity can contain a
  // partition rating >= 0 (a non-overlapping, non-empty partition rates
  // strictly negative while w < 1), so the restricted argmax equals the
  // full scan's. Empty-synopsis partitions intersect nothing but rate
  // exactly 0; they ride along from the side set, as with the index.
  if (tree_enabled()) {
    std::vector<PartitionId> candidates;
    const std::vector<uint64_t>& qwords = synopsis.words();
    tree_.ForEachCandidate(qwords.data(), qwords.size(), [&](uint64_t key) {
      candidates.push_back(static_cast<PartitionId>(key));
    });
    for (PartitionId id : empty_synopsis_partitions_) candidates.push_back(id);
    // Sort so ties keep the lowest id, matching the full scan order.
    std::sort(candidates.begin(), candidates.end());
    for (PartitionId id : candidates) {
      Partition* partition = catalog_.GetPartition(id);
      CINDERELLA_DCHECK(partition != nullptr);
      consider(*partition);
    }
    return best;
  }

  if (index_enabled()) {
    std::vector<PartitionId> candidates;
    index_.CollectCandidates(synopsis, &candidates);
    for (PartitionId id : empty_synopsis_partitions_) candidates.push_back(id);
    // Sort so ties keep the lowest id, matching the full scan order.
    std::sort(candidates.begin(), candidates.end());
    for (PartitionId id : candidates) {
      Partition* partition = catalog_.GetPartition(id);
      CINDERELLA_DCHECK(partition != nullptr);
      consider(*partition);
    }
    return best;
  }

  // Unrestricted full scan. With a pool and enough live partitions the
  // scan is chunked across the workers: each chunk computes a local
  // argmax over an ascending id range, and the chunk results are merged
  // in ascending order with the same strict `>` comparison the serial
  // loop uses — so ties keep the lowest partition id and the outcome is
  // bit-identical to the serial scan at any thread count.
  constexpr size_t kScanChunk = 64;
  if (pool_ != nullptr && catalog_.partition_count() >= 2 * kScanChunk) {
    const std::vector<PartitionId> ids = catalog_.LivePartitionIds();
    struct ChunkBest {
      Partition* partition = nullptr;
      double rating = -std::numeric_limits<double>::infinity();
      uint64_t rated = 0;
    };
    std::vector<ChunkBest> chunk_best(
        ThreadPool::NumChunks(ids.size(), kScanChunk));
    pool_->ParallelFor(
        ids.size(), kScanChunk,
        [&](size_t chunk_begin, size_t chunk_end, size_t chunk_index) {
          ChunkBest& local = chunk_best[chunk_index];
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            Partition* partition = catalog_.GetPartition(ids[i]);
            CINDERELLA_DCHECK(partition != nullptr);
            ++local.rated;
            const double r =
                Rate(synopsis, entity_size, partition->rating_synopsis(),
                     static_cast<double>(partition->Size(config_.measure)),
                     config_.weight, config_.normalize_rating);
            if (r > local.rating) {
              local.rating = r;
              local.partition = partition;
            }
          }
        });
    for (const ChunkBest& local : chunk_best) {
      stats_.partitions_rated += local.rated;
      if (local.partition != nullptr && local.rating > best.rating) {
        best.rating = local.rating;
        best.partition = local.partition;
      }
    }
    return best;
  }

  catalog_.ForEachPartition(consider);
  return best;
}

// ---------------------------------------------------------------------------
// Split starters.
// ---------------------------------------------------------------------------

void Cinderella::UpdateStarters(Partition& partition, EntityId entity,
                                const Synopsis& synopsis) {
  // Fill empty slots first (covers both the paper's "second starter
  // missing" case, line 15, and slots vacated by deletes).
  if (!partition.starter_a().has_value()) {
    partition.set_starter_a(Partition::Starter{entity, synopsis});
    return;
  }
  if (!partition.starter_b().has_value()) {
    if (partition.starter_a()->entity != entity) {
      partition.set_starter_b(Partition::Starter{entity, synopsis});
    }
    return;
  }
  if (config_.starter_policy != StarterPolicy::kMaxDiffHeuristic) return;

  // Lines 17-24: replace a starter when the new entity forms a more (or
  // equally) differential pair. The paper's MAX comparison admits ties.
  const Partition::Starter& a = *partition.starter_a();
  const Partition::Starter& b = *partition.starter_b();
  const size_t diff_ea = synopsis.XorCount(a.synopsis);
  const size_t diff_eb = synopsis.XorCount(b.synopsis);
  const size_t diff_ab = a.synopsis.XorCount(b.synopsis);
  if (diff_ea >= diff_eb && diff_ea >= diff_ab) {
    if (a.entity != entity) {
      partition.set_starter_b(Partition::Starter{entity, synopsis});
    }
  } else if (diff_eb >= diff_ab) {
    if (b.entity != entity) {
      partition.set_starter_a(Partition::Starter{entity, synopsis});
    }
  }
}

void Cinderella::EnsureStarters(Partition& partition) {
  const bool need_a = !partition.starter_a().has_value() &&
                      partition.entity_count() >= 1;
  const bool need_b = !partition.starter_b().has_value() &&
                      partition.entity_count() >= 2;
  if (!need_a && !need_b) return;

  // Promote a surviving starter into slot A.
  if (!partition.starter_a().has_value() &&
      partition.starter_b().has_value()) {
    partition.set_starter_a(*partition.starter_b());
    partition.set_starter_b(std::nullopt);
  }
  if (!partition.starter_a().has_value()) {
    const Row& first = partition.segment().rows().front();
    partition.set_starter_a(
        Partition::Starter{first.id(), extractor_(first)});
  }
  if (!partition.starter_b().has_value() && partition.entity_count() >= 2) {
    const Partition::Starter& a = *partition.starter_a();
    size_t best_diff = 0;
    const Row* best_row = nullptr;
    Synopsis best_synopsis;
    for (const Row& row : partition.segment().rows()) {
      if (row.id() == a.entity) continue;
      Synopsis s = extractor_(row);
      const size_t diff = s.XorCount(a.synopsis);
      if (best_row == nullptr || diff > best_diff) {
        best_diff = diff;
        best_row = &row;
        best_synopsis = std::move(s);
      }
    }
    CINDERELLA_DCHECK(best_row != nullptr);
    partition.set_starter_b(
        Partition::Starter{best_row->id(), std::move(best_synopsis)});
  }
}

void Cinderella::PickRandomStarters(Partition& partition) {
  const auto& rows = partition.segment().rows();
  if (rows.size() < 2) return;
  const size_t i = static_cast<size_t>(rng_.Uniform(rows.size()));
  size_t j = static_cast<size_t>(rng_.Uniform(rows.size() - 1));
  if (j >= i) ++j;
  partition.set_starter_a(
      Partition::Starter{rows[i].id(), extractor_(rows[i])});
  partition.set_starter_b(
      Partition::Starter{rows[j].id(), extractor_(rows[j])});
}

// ---------------------------------------------------------------------------
// Insert (Algorithm 1).
// ---------------------------------------------------------------------------

Status Cinderella::Insert(Row row) {
  ++catalog_generation_;
  if (catalog_.FindEntity(row.id()).has_value()) {
    return Status::AlreadyExists("entity " + std::to_string(row.id()) +
                                 " already in table");
  }
  const Synopsis synopsis = extractor_(row);
  CINDERELLA_RETURN_IF_ERROR(
      InsertIntoCatalog(std::move(row), synopsis, nullptr, 0));
  ++stats_.inserts;
  return Status::OK();
}

Status Cinderella::InsertBatch(std::vector<Row> rows) {
  if (batch_engine_ != nullptr) {
    return batch_engine_->InsertBatch(std::move(rows));
  }
  return Partitioner::InsertBatch(std::move(rows));
}

Status Cinderella::UpdateBatch(std::vector<Row> rows) {
  if (batch_engine_ != nullptr) {
    return batch_engine_->UpdateBatch(std::move(rows));
  }
  return Partitioner::UpdateBatch(std::move(rows));
}

Status Cinderella::DeleteBatch(const std::vector<EntityId>& entities) {
  if (batch_engine_ != nullptr) {
    return batch_engine_->DeleteBatch(entities);
  }
  return Partitioner::DeleteBatch(entities);
}

Status Cinderella::ApplyMutations(std::vector<Mutation> ops, size_t* applied) {
  if (batch_engine_ != nullptr) {
    return batch_engine_->ApplyMutations(std::move(ops), applied);
  }
  return Partitioner::ApplyMutations(std::move(ops), applied);
}

Status Cinderella::InsertResolved(Row row, const Synopsis& synopsis,
                                  Partition* target) {
  ++catalog_generation_;
  if (catalog_.FindEntity(row.id()).has_value()) {
    return Status::AlreadyExists("entity " + std::to_string(row.id()) +
                                 " already in table");
  }
  CINDERELLA_RETURN_IF_ERROR(
      PlaceRow(std::move(row), synopsis, target, nullptr, 0));
  ++stats_.inserts;
  return Status::OK();
}

Status Cinderella::InsertIntoCatalog(Row row, const Synopsis& synopsis,
                                     std::vector<PartitionId>* restricted,
                                     int depth) {
  const double entity_size =
      static_cast<double>(RowSize(row, config_.measure));
  BestPartition best = FindBestPartition(synopsis, entity_size, restricted);

  // Lines 9-13: no fitting partition -> create one. Only in unrestricted
  // mode; split redistribution picks the less-bad target instead
  // (DESIGN.md deviation 2).
  if (restricted == nullptr &&
      (best.partition == nullptr || best.rating < 0.0)) {
    return PlaceRow(std::move(row), synopsis, nullptr, restricted, depth);
  }
  CINDERELLA_CHECK(best.partition != nullptr);
  return PlaceRow(std::move(row), synopsis, best.partition, restricted, depth);
}

Status Cinderella::PlaceRow(Row row, const Synopsis& synopsis,
                            Partition* target,
                            std::vector<PartitionId>* restricted, int depth) {
  if (target == nullptr) {
    Partition& fresh = catalog_.CreatePartition();
    ++stats_.partitions_created;
    RecordCreated(fresh.id());
    fresh.set_starter_a(Partition::Starter{row.id(), synopsis});
    return AddRowToPartition(fresh, std::move(row), synopsis);
  }

  // A cold target faults back before any row-touching work (starter
  // re-seeding scans rows; splits drain them).
  CINDERELLA_RETURN_IF_ERROR(EnsureHot(*target));

  // Lines 14-24: starter maintenance happens before the capacity check so
  // the incoming entity can seed one of the split halves.
  EnsureStarters(*target);
  UpdateStarters(*target, row.id(), synopsis);

  // Lines 26-33: split when the entity does not fit.
  if (target->Size(config_.measure) + RowSize(row, config_.measure) >
      config_.max_size) {
    // A partition that cannot yield two starters (a single resident whose
    // size already exhausts MAXSIZE under cell/byte measures) cannot be
    // split; the oversized row is admitted instead.
    if (target->entity_count() >= 1) {
      return SplitPartition(target->id(), std::move(row), synopsis, restricted,
                            depth);
    }
  }

  // Line 36: normal insert.
  return AddRowToPartition(*target, std::move(row), synopsis);
}

Status Cinderella::SplitPartition(PartitionId source, Row pending_row,
                                  const Synopsis& pending_synopsis,
                                  std::vector<PartitionId>* outer_targets,
                                  int depth) {
  ++stats_.splits;
  if (depth > 0) ++stats_.split_cascades;

  Partition* src = catalog_.GetPartition(source);
  CINDERELLA_CHECK(src != nullptr);
  if (config_.starter_policy == StarterPolicy::kRandom) {
    PickRandomStarters(*src);
    // The pending row competes for slot B as in the heuristic policies.
    UpdateStarters(*src, pending_row.id(), pending_synopsis);
  }
  CINDERELLA_CHECK(src->starter_a().has_value());
  Partition::Starter starter_a = *src->starter_a();
  Partition::Starter starter_b =
      src->starter_b().has_value()
          ? *src->starter_b()
          : Partition::Starter{pending_row.id(), pending_synopsis};

  Partition& child_a = catalog_.CreatePartition();
  Partition& child_b = catalog_.CreatePartition();
  stats_.partitions_created += 2;
  RecordCreated(child_a.id());
  RecordCreated(child_b.id());

  CINDERELLA_CHECK(starter_a.entity != starter_b.entity);

  bool pending_consumed = false;
  auto seed_child = [&](Partition& child,
                        const Partition::Starter& starter) -> Status {
    if (!pending_consumed && starter.entity == pending_row.id()) {
      pending_consumed = true;
      CINDERELLA_RETURN_IF_ERROR(AddRowToPartition(
          child, std::move(pending_row), pending_synopsis));
    } else {
      StatusOr<Row> moved =
          RemoveRowFromPartition(*src, starter.entity, starter.synopsis);
      CINDERELLA_RETURN_IF_ERROR(moved.status());
      CINDERELLA_RETURN_IF_ERROR(AddRowToPartition(
          child, std::move(moved).value(), starter.synopsis));
    }
    child.set_starter_a(starter);
    return Status::OK();
  };
  CINDERELLA_RETURN_IF_ERROR(seed_child(child_a, starter_a));
  CINDERELLA_RETURN_IF_ERROR(seed_child(child_b, starter_b));

  // Lines 31-33: redistribute the remaining entities with the insert
  // routine restricted to the new partitions. Cascade splits replace a
  // filled child inside `targets`.
  std::vector<PartitionId> targets = {child_a.id(), child_b.id()};
  while (src->entity_count() > 0) {
    const Row& next = src->segment().rows().front();
    const Synopsis next_synopsis = extractor_(next);
    StatusOr<Row> moved =
        RemoveRowFromPartition(*src, next.id(), next_synopsis);
    CINDERELLA_RETURN_IF_ERROR(moved.status());
    CINDERELLA_RETURN_IF_ERROR(InsertIntoCatalog(
        std::move(moved).value(), next_synopsis, &targets, depth + 1));
    ++stats_.entities_redistributed;
  }

  // DESIGN.md deviation 1: Algorithm 1 never adds the triggering entity;
  // we insert it restricted to the split results.
  if (!pending_consumed) {
    CINDERELLA_RETURN_IF_ERROR(InsertIntoCatalog(
        std::move(pending_row), pending_synopsis, &targets, depth + 1));
  }

  DropEmptyPartition(*src);

  // Audit (empty-partition leak): every child is seeded with a starter row
  // and restricted redistribution never moves rows out of `targets` except
  // through a cascade split (which replaces the drained child in `targets`
  // itself), so no child can be empty here — but an empty child escaping
  // into the catalog would be unrateable and violate the "empty partitions
  // are deleted" invariant of Section III forever after. Drop eagerly
  // instead of relying on downstream deletes.
  for (auto it = targets.begin(); it != targets.end();) {
    Partition* child = catalog_.GetPartition(*it);
    CINDERELLA_CHECK(child != nullptr);
    if (child->entity_count() == 0) {
      DropEmptyPartition(*child);
      it = targets.erase(it);
    } else {
      ++it;
    }
  }

  if (outer_targets != nullptr) {
    outer_targets->erase(
        std::remove(outer_targets->begin(), outer_targets->end(), source),
        outer_targets->end());
    outer_targets->insert(outer_targets->end(), targets.begin(),
                          targets.end());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Delete and update.
// ---------------------------------------------------------------------------

Status Cinderella::Delete(EntityId entity) {
  ++catalog_generation_;
  const std::optional<PartitionId> home = catalog_.FindEntity(entity);
  if (!home.has_value()) {
    return Status::NotFound("entity " + std::to_string(entity) +
                            " not in table");
  }
  Partition* partition = catalog_.GetPartition(*home);
  CINDERELLA_CHECK(partition != nullptr);
  CINDERELLA_RETURN_IF_ERROR(EnsureHot(*partition));
  const Row* row = partition->segment().Find(entity);
  CINDERELLA_CHECK(row != nullptr);
  const Synopsis synopsis = extractor_(*row);
  CINDERELLA_RETURN_IF_ERROR(
      RemoveRowFromPartition(*partition, entity, synopsis).status());
  ++stats_.deletes;
  // "Empty partitions will be deleted." (Section III)
  if (partition->entity_count() == 0) {
    DropEmptyPartition(*partition);
    return Status::OK();
  }
  return MaybeDissolve(*partition);
}

Status Cinderella::MaybeDissolve(Partition& partition) {
  if (config_.dissolve_threshold <= 0.0) return Status::OK();
  const double limit =
      config_.dissolve_threshold * static_cast<double>(config_.max_size);
  if (static_cast<double>(partition.Size(config_.measure)) >= limit) {
    return Status::OK();
  }
  ++stats_.partitions_dissolved;
  std::vector<std::pair<Row, Synopsis>> displaced;
  displaced.reserve(partition.entity_count());
  while (partition.entity_count() > 0) {
    const Row& next = partition.segment().rows().front();
    Synopsis synopsis = extractor_(next);
    StatusOr<Row> removed =
        RemoveRowFromPartition(partition, next.id(), synopsis);
    CINDERELLA_RETURN_IF_ERROR(removed.status());
    displaced.emplace_back(std::move(removed).value(), std::move(synopsis));
  }
  DropEmptyPartition(partition);
  for (auto& [row, synopsis] : displaced) {
    ++stats_.entities_reinserted;
    CINDERELLA_RETURN_IF_ERROR(
        InsertIntoCatalog(std::move(row), synopsis, nullptr, 0));
  }
  return Status::OK();
}

Status Cinderella::Update(Row row) {
  const Synopsis new_synopsis = extractor_(row);
  return UpdateResolved(
      std::move(row), new_synopsis,
      [this](const Synopsis& synopsis, double entity_size) {
        const BestPartition best =
            FindBestPartition(synopsis, entity_size, nullptr);
        ResolvedScan scan;
        if (best.partition != nullptr) {
          scan.valid = true;
          scan.id = best.partition->id();
          scan.rating = best.rating;
        }
        return scan;
      });
}

Status Cinderella::UpdateResolved(Row row, const Synopsis& new_synopsis,
                                  const ScanResolver& resolve) {
  ++catalog_generation_;
  const std::optional<PartitionId> home = catalog_.FindEntity(row.id());
  if (!home.has_value()) {
    return Status::NotFound("entity " + std::to_string(row.id()) +
                            " not in table");
  }
  const EntityId entity = row.id();
  Partition* current = catalog_.GetPartition(*home);
  CINDERELLA_CHECK(current != nullptr);
  CINDERELLA_RETURN_IF_ERROR(EnsureHot(*current));
  const Row* old_row = current->segment().Find(row.id());
  CINDERELLA_CHECK(old_row != nullptr);
  const Synopsis old_synopsis = extractor_(*old_row);
  const uint64_t old_size = RowSize(*old_row, config_.measure);
  const uint64_t new_size = RowSize(row, config_.measure);

  ++stats_.updates;

  // "Upon updates, Cinderella also runs the insert routine but without
  // actually inserting." (Section III). The entity is still resident, so
  // its current partition rates with the old row included.
  const ResolvedScan best =
      resolve(new_synopsis, static_cast<double>(new_size));
  const bool stay = best.valid && best.id == *home && best.rating >= 0.0;
  const bool fits =
      current->Size(config_.measure) - old_size + new_size <= config_.max_size;

  if (stay && fits) {
    std::vector<AttributeId> added;
    std::vector<AttributeId> removed;
    CINDERELLA_RETURN_IF_ERROR(current->ReplaceRow(
        std::move(row), old_synopsis, new_synopsis,
        config_.use_synopsis_index ? &added : nullptr,
        config_.use_synopsis_index ? &removed : nullptr));
    if (config_.use_synopsis_index) {
      for (AttributeId id : added) index_.AddPosting(id, current->id());
      for (AttributeId id : removed) index_.RemovePosting(id, current->id());
    }
    if (config_.use_synopsis_tree) {
      tree_.Upsert(current->id(), current->rating_synopsis());
    }
    if (config_.use_synopsis_index || config_.use_synopsis_tree) {
      if (current->rating_synopsis().Empty()) {
        empty_synopsis_partitions_.insert(current->id());
      } else {
        empty_synopsis_partitions_.erase(current->id());
      }
    }
    RecordTouched(current->id());
    // Offer the updated entity as a split-starter candidate under its new
    // synopsis (ReplaceRow already refreshed it if it *is* a starter).
    UpdateStarters(*current, entity, new_synopsis);
    return Status::OK();
  }

  // Moved: take the row out and re-place it under a fresh scan (which may
  // create a new partition or split).
  ++stats_.updates_moved;
  CINDERELLA_RETURN_IF_ERROR(
      RemoveRowFromPartition(*current, entity, old_synopsis).status());
  if (current->entity_count() == 0) {
    // Drop before re-inserting so the empty husk is never a rating
    // candidate (it would tie at rating 0).
    DropEmptyPartition(*current);
    current = nullptr;
  } else {
    // The moved entity may have been one of the source's split starters;
    // RemoveRow vacated that slot, and an un-repaired pair would let the
    // next split of the source seed a child from a stale singleton. Re-seed
    // eagerly from the survivors (placement-neutral: starters only matter
    // at the next split).
    EnsureStarters(*current);
  }

  const ResolvedScan placement =
      resolve(new_synopsis, static_cast<double>(new_size));
  Partition* target = nullptr;
  if (placement.valid && placement.rating >= 0.0) {
    target = catalog_.GetPartition(placement.id);
    CINDERELLA_CHECK(target != nullptr);
  }
  CINDERELLA_RETURN_IF_ERROR(
      PlaceRow(std::move(row), new_synopsis, target, nullptr, 0));
  // Dissolution runs only after the entity has its new home; the insert
  // may itself have split (and dropped) the source partition.
  Partition* source = catalog_.GetPartition(*home);
  if (source != nullptr && source->entity_count() > 0) {
    return MaybeDissolve(*source);
  }
  return Status::OK();
}

}  // namespace cinderella
