#include "core/partitioning_stats.h"

#include <cstdio>

#include "synopsis/synopsis.h"

namespace cinderella {

PartitioningReport AnalyzePartitioning(const PartitionCatalog& catalog) {
  PartitioningReport report;
  Synopsis all_attributes;
  uint64_t total_cells = 0;
  catalog.ForEachPartition([&](const Partition& partition) {
    ++report.partition_count;
    report.entity_count += partition.entity_count();
    total_cells += partition.segment().cell_count();
    all_attributes.UnionWith(partition.attribute_synopsis());
    report.entities_samples.push_back(
        static_cast<double>(partition.entity_count()));
    report.attributes_samples.push_back(
        static_cast<double>(partition.attribute_synopsis().Count()));
    report.sparseness_samples.push_back(partition.Sparseness());
  });
  report.table_attribute_count = all_attributes.Count();
  if (report.entity_count > 0 && report.table_attribute_count > 0) {
    report.table_sparseness =
        1.0 - static_cast<double>(total_cells) /
                  (static_cast<double>(report.entity_count) *
                   static_cast<double>(report.table_attribute_count));
  }
  report.entities_per_partition = Summarize(report.entities_samples);
  report.attributes_per_partition = Summarize(report.attributes_samples);
  report.sparseness_per_partition = Summarize(report.sparseness_samples);
  return report;
}

std::string PartitioningReport::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "partitions: %zu, entities: %zu, attributes: %zu, "
                "table sparseness: %.4f\n",
                partition_count, entity_count, table_attribute_count,
                table_sparseness);
  out += buf;
  auto line = [&](const char* label, const SampleSummary& s) {
    std::snprintf(buf, sizeof(buf),
                  "%-26s min %.2f  p25 %.2f  med %.2f  p75 %.2f  max %.2f  "
                  "mean %.2f\n",
                  label, s.min, s.p25, s.median, s.p75, s.max, s.mean);
    out += buf;
  };
  line("entities/partition:", entities_per_partition);
  line("attributes/partition:", attributes_per_partition);
  line("sparseness/partition:", sparseness_per_partition);
  return out;
}

}  // namespace cinderella
