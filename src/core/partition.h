#ifndef CINDERELLA_CORE_PARTITION_H_
#define CINDERELLA_CORE_PARTITION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/refcounted_synopsis.h"
#include "core/size_measure.h"
#include "storage/cold_tier.h"
#include "storage/segment.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Stable identifier of a partition within a catalog. Ids of dropped
/// partitions are never reused.
using PartitionId = uint32_t;

/// One horizontal partition: its physical segment, its catalog metadata
/// (attribute synopsis and, in workload-based mode, a separate rating
/// synopsis), and its pair of split starters (Section III).
class Partition {
 public:
  /// A split starter: a resident entity remembered with its rating
  /// synopsis so starter comparisons need no row lookup.
  struct Starter {
    EntityId entity;
    Synopsis synopsis;
  };

  /// `separate_rating_synopsis` is true in workload-based mode, where the
  /// rating ids (query ids) differ from the attribute ids; in entity-based
  /// mode the rating synopsis aliases the attribute synopsis and only one
  /// refcount structure is maintained.
  Partition(PartitionId id, bool separate_rating_synopsis);

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  PartitionId id() const { return id_; }

  /// Adds `row`. `rating_synopsis` is the entity's rating synopsis (equal
  /// to the row's attribute synopsis in entity-based mode). Ids newly
  /// appearing in the partition's rating synopsis are appended to
  /// `*rating_ids_added` when non-null (feeds the synopsis index).
  Status AddRow(Row row, const Synopsis& rating_synopsis,
                std::vector<AttributeId>* rating_ids_added = nullptr);

  /// Removes and returns the row for `entity`. `rating_synopsis` must be
  /// the same synopsis passed at AddRow time. Ids vanishing from the
  /// rating synopsis are appended to `*rating_ids_removed` when non-null.
  StatusOr<Row> RemoveRow(EntityId entity, const Synopsis& rating_synopsis,
                          std::vector<AttributeId>* rating_ids_removed = nullptr);

  /// Replaces the entity's row in place (update that stays in its
  /// partition). Both the old and the new rating synopses are needed to
  /// maintain refcounts.
  Status ReplaceRow(Row row, const Synopsis& old_rating_synopsis,
                    const Synopsis& new_rating_synopsis,
                    std::vector<AttributeId>* rating_ids_added = nullptr,
                    std::vector<AttributeId>* rating_ids_removed = nullptr);

  const Segment& segment() const { return segment_; }

  /// Set of attributes instantiated by at least one resident entity; the
  /// catalog synopsis used for query pruning.
  const Synopsis& attribute_synopsis() const { return attributes_.synopsis(); }

  /// Synopsis used by the partition rating; equals attribute_synopsis()
  /// in entity-based mode.
  const Synopsis& rating_synopsis() const {
    return separate_rating_ ? rating_.synopsis() : attributes_.synopsis();
  }

  /// Number of resident entities instantiating `attribute` — the
  /// per-partition carrier count behind the synopsis, used by the
  /// selectivity estimator (query/estimator.h).
  uint32_t AttributeCarrierCount(AttributeId attribute) const {
    return attributes_.RefCount(attribute);
  }

  /// The full refcounted attribute synopsis; copied into immutable
  /// partition versions by the MVCC publisher (mvcc/partition_version.h).
  const RefcountedSynopsis& attribute_refcounts() const { return attributes_; }

  /// SIZE(p) under the given measure. Answered from the cold chain's
  /// stored totals while the partition is cold (identical values — the
  /// chain carries the segment's counts at spill time), so the rating
  /// never touches a page.
  uint64_t Size(SizeMeasure measure) const;

  size_t entity_count() const {
    return cold_chain_ != nullptr ? static_cast<size_t>(cold_chain_->entities)
                                  : segment_.entity_count();
  }

  // -- Cold residency (two-tier storage) ------------------------------------

  /// True while the partition's rows live in a cold-tier page chain
  /// instead of the segment. Synopses, refcounts, starters and size
  /// totals stay memory-resident, so rating and pruning are unaffected;
  /// only row access (mutations, drains, scans) requires a fault-in.
  bool cold() const { return cold_chain_ != nullptr; }

  /// The chain descriptor while cold, nullptr otherwise. Shared with the
  /// MVCC versions published during the cold span; the chain's pages are
  /// freed when the last holder releases it.
  const std::shared_ptr<const ColdChain>& cold_chain() const {
    return cold_chain_;
  }

  /// Marks the partition cold: discards the segment's rows (they were
  /// just written to `chain`, whose totals must match) and remembers the
  /// chain. Synopsis refcounts and starters are untouched.
  void SetCold(std::shared_ptr<const ColdChain> chain);

  /// Faults the partition back hot: re-inserts `rows` (the chain's rows,
  /// in chain order — the segment's scan order at spill time, so
  /// subsequent behaviour is bit-identical to never having spilled) and
  /// releases the chain reference.
  Status FaultIn(std::vector<Row> rows);

  /// Sparseness of the partition: 1 − cells / (entities · |synopsis|);
  /// 0 for an empty partition or an empty synopsis.
  double Sparseness() const;

  // -- Split starters ------------------------------------------------------

  const std::optional<Starter>& starter_a() const { return starter_a_; }
  const std::optional<Starter>& starter_b() const { return starter_b_; }
  void set_starter_a(std::optional<Starter> s) { starter_a_ = std::move(s); }
  void set_starter_b(std::optional<Starter> s) { starter_b_ = std::move(s); }
  void ClearStarters();

 private:
  PartitionId id_;
  bool separate_rating_;
  Segment segment_;
  RefcountedSynopsis attributes_;
  RefcountedSynopsis rating_;  // Used only when separate_rating_.
  std::shared_ptr<const ColdChain> cold_chain_;  // Non-null while cold.
  std::optional<Starter> starter_a_;
  std::optional<Starter> starter_b_;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_PARTITION_H_
