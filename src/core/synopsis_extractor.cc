#include "core/synopsis_extractor.h"

namespace cinderella {

SynopsisExtractor MakeEntityBasedExtractor() {
  return [](const Row& row) { return row.AttributeSynopsis(); };
}

Synopsis WorkloadSynopsisBuilder::Extract(const Row& row) const {
  const Synopsis attributes = row.AttributeSynopsis();
  Synopsis relevant;
  for (size_t i = 0; i < workload_.size(); ++i) {
    if (attributes.Intersects(workload_[i])) {
      relevant.Add(static_cast<AttributeId>(i));
    }
  }
  return relevant;
}

SynopsisExtractor WorkloadSynopsisBuilder::AsExtractor() const {
  return [this](const Row& row) { return Extract(row); };
}

}  // namespace cinderella
