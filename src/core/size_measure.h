#ifndef CINDERELLA_CORE_SIZE_MEASURE_H_
#define CINDERELLA_CORE_SIZE_MEASURE_H_

#include <cstdint>

#include "storage/row.h"

namespace cinderella {

/// Unit of the paper's SIZE() function (Definition 1: "how much has to be
/// read to scan the entity or all entities in a partition").
///
/// Algorithm 1 uses SIZE() uniformly for the rating and the capacity check
/// (`SIZE(p) + SIZE(e) > MAXSIZE`). The paper's experiments measure the
/// partition size limit B in *entities*, which corresponds to
/// kEntityCount; the other two measures are supported for byte- or
/// cell-bounded partitions (e.g. disk pages).
enum class SizeMeasure {
  kEntityCount,     // SIZE(e) = 1
  kAttributeCount,  // SIZE(e) = number of instantiated attributes
  kByteSize,        // SIZE(e) = byte footprint of the row
};

/// Returns a stable display name ("entities", "cells", "bytes").
const char* SizeMeasureToString(SizeMeasure measure);

/// SIZE(e) for a row under the given measure.
inline uint64_t RowSize(const Row& row, SizeMeasure measure) {
  switch (measure) {
    case SizeMeasure::kEntityCount:
      return 1;
    case SizeMeasure::kAttributeCount:
      return row.attribute_count();
    case SizeMeasure::kByteSize:
      return row.byte_size();
  }
  return 1;
}

/// SIZE(e) for a borrowed row view (arena-packed snapshot rows take this
/// path — same definition as RowSize).
inline uint64_t RowViewSize(const RowView& row, SizeMeasure measure) {
  switch (measure) {
    case SizeMeasure::kEntityCount:
      return 1;
    case SizeMeasure::kAttributeCount:
      return row.attribute_count();
    case SizeMeasure::kByteSize:
      return row.byte_size();
  }
  return 1;
}

}  // namespace cinderella

#endif  // CINDERELLA_CORE_SIZE_MEASURE_H_
