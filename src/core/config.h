#ifndef CINDERELLA_CORE_CONFIG_H_
#define CINDERELLA_CORE_CONFIG_H_

#include <cstdint>

#include "common/status.h"
#include "core/size_measure.h"

namespace cinderella {

/// How a partition's pair of split starters is chosen and maintained.
///
/// kMaxDiffHeuristic is the paper's scheme (Section III): the first two
/// entities seed the pair; every further insert replaces a starter when the
/// new entity forms a more differential pair. The other policies exist for
/// the ablation bench only.
enum class StarterPolicy {
  kMaxDiffHeuristic,  // Paper's incremental max-difference maintenance.
  kFirstTwo,          // Keep the first two entities, never update.
  kRandom,            // Pick two random resident entities at split time.
};

/// Whether the entity synopsis lists attributes or relevant workload
/// queries (Section III: "For a workload-based partitioning, an entity
/// synopsis lists the queries an entity is relevant to, while for an
/// entity-based partitioning, an entity synopsis lists the attributes an
/// entity instantiates.").
enum class SynopsisMode { kEntityBased, kWorkloadBased };

/// Tuning parameters of the Cinderella partitioner.
struct CinderellaConfig {
  /// Rating weight w in [0, 1] balancing positive vs negative evidence
  /// (Section IV). Higher: fewer, more heterogeneous partitions. The paper
  /// suggests 0.2-0.5.
  double weight = 0.5;

  /// MAXSIZE: partition capacity in units of `measure`. The paper's B.
  uint64_t max_size = 5000;

  /// Unit of SIZE() for both the rating and the capacity check.
  SizeMeasure measure = SizeMeasure::kEntityCount;

  /// Entity-based (default) or workload-based synopses.
  SynopsisMode mode = SynopsisMode::kEntityBased;

  /// Applies the global-rating normalization of Section IV
  /// (r = r' / ((SIZE(p)+SIZE(e))·|e∨p|)). Disable only for the ablation
  /// bench; unnormalized local ratings are not comparable across
  /// partitions.
  bool normalize_rating = true;

  /// Split-starter maintenance policy (ablation knob; the paper's scheme
  /// is the default).
  StarterPolicy starter_policy = StarterPolicy::kMaxDiffHeuristic;

  /// Maintains an inverted attribute->partitions index so the insert only
  /// rates partitions overlapping the entity (exact: non-overlapping
  /// partitions never rate positive). Addresses the paper's future-work
  /// item "improve the management of a large number of partition synopses
  /// with specialized data structures".
  bool use_synopsis_index = false;

  /// Maintains a fixed-fanout synopsis tree over the partition catalog
  /// (internal nodes hold the word-wise OR of their leaves) so the
  /// insert-time rating and query-time pruning descend only subtrees
  /// whose union can still match — O(log n) instead of the flat
  /// O(#partitions) scan. Exact like the inverted index (a
  /// non-overlapping partition never rates >= 0 while weight < 1), so
  /// placements and query results are bit-identical to the flat path.
  /// On by default; the tree takes precedence over use_synopsis_index
  /// when both are enabled.
  bool use_synopsis_tree = true;

  /// Fanout of the synopsis tree's internal nodes. 0 = resolve from the
  /// CINDERELLA_TREE_FANOUT environment variable (default 16, clamped to
  /// [2, 256]).
  int tree_fanout = 0;

  /// Seed for StarterPolicy::kRandom.
  uint64_t starter_seed = 42;

  /// Degree of parallelism for the unrestricted rating scan of
  /// FindBestPartition (Algorithm 1 lines 3-7): the live partitions are
  /// chunked across a fixed thread pool with a deterministic lowest-id
  /// tie-break, so placements are bit-identical to the serial scan at any
  /// degree. 1 = serial (no threads spawned); 0 = resolve from the
  /// CINDERELLA_SCAN_THREADS environment variable, falling back to the
  /// hardware concurrency. Negative values are invalid.
  int scan_threads = 0;

  /// Number of catalog shards (and scan threads) used by the batched
  /// insert engine (src/ingest): the live partitions are mirrored into
  /// `insert_shards` packed synopsis arrays keyed by partition id, each
  /// with its own lock, and batch rating scans them shard-parallel.
  /// Placements stay bit-identical to serial single-row inserts at any
  /// shard count. 0 = resolve from the CINDERELLA_INSERT_SHARDS
  /// environment variable, falling back to the hardware concurrency
  /// (mirrors the scan_threads convention). Negative values are invalid.
  int insert_shards = 0;

  /// Morsel size, in partitions, for every chunked parallel scan (query
  /// executor and the GROUP BY aggregator): workers claim `scan_chunk`
  /// partitions (and larger chunks up front, guided schedule) from an
  /// atomic ticket counter. Chunk boundaries depend only on the partition
  /// count and degree — never on timing — so results stay bit-identical
  /// to serial. 0 = resolve from the CINDERELLA_SCAN_CHUNK environment
  /// variable, falling back to ThreadPool::kDefaultScanChunk. Negative
  /// values are invalid.
  int scan_chunk = 0;

  /// Extension (not in the paper): dissolve a partition whose size drops
  /// below this fraction of max_size after a delete, re-inserting its
  /// remaining entities through the normal insert routine. The paper only
  /// drops *empty* partitions; under delete-heavy churn that leaves many
  /// under-filled partitions whose per-partition union overhead hurts
  /// unselective queries. 0 disables (paper behaviour, the default).
  double dissolve_threshold = 0.0;

  /// Returns InvalidArgument for out-of-range parameters.
  Status Validate() const;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_CONFIG_H_
