#ifndef CINDERELLA_CORE_EFFICIENCY_H_
#define CINDERELLA_CORE_EFFICIENCY_H_

#include <vector>

#include "core/catalog.h"
#include "core/size_measure.h"
#include "synopsis/synopsis.h"

namespace cinderella {

class CatalogView;  // mvcc/partition_version.h

/// Numerator/denominator of Definition 1, exposed for inspection.
struct EfficiencyBreakdown {
  /// Σ_{q∈W, e∈T} sgn(|e∧q|)·SIZE(e): data relevant to the workload.
  double relevant = 0.0;
  /// Σ_{q∈W, p∈P} sgn(|p∧q|)·SIZE(p): data read after synopsis pruning.
  double read = 0.0;
  /// relevant / read; 1.0 when nothing is read (empty workload/table).
  double efficiency = 1.0;
};

/// Computes EFFICIENCY(P) (Definition 1) of the partitioning in `catalog`
/// for the query set `workload` (attribute synopses) under `measure`.
///
/// A partition is read by query q iff its attribute synopsis intersects q;
/// an entity is relevant to q iff its attribute set intersects q. The
/// result is in [0, 1]: the fraction of the data read that is actually
/// relevant.
EfficiencyBreakdown ComputeEfficiency(const PartitionCatalog& catalog,
                                      const std::vector<Synopsis>& workload,
                                      SizeMeasure measure);

/// Weighted variant: query i contributes with multiplicity `weights[i]`
/// (its decayed observation count in the tuner's tracked workload).
/// `weights` must be the same length as `workload`; all-1.0 weights
/// reproduce the unweighted overload exactly.
EfficiencyBreakdown ComputeEfficiency(const PartitionCatalog& catalog,
                                      const std::vector<Synopsis>& workload,
                                      const std::vector<double>& weights,
                                      SizeMeasure measure);

/// EFFICIENCY of a pinned MVCC snapshot (mvcc/partition_version.h): same
/// Definition 1 arithmetic over arena-packed partition versions. This is
/// the accessor the background reorganizer plans with — it never touches
/// the live catalog, so scoring holds no catalog locks. The view must
/// stay pinned for the call's duration.
EfficiencyBreakdown ComputeEfficiency(const CatalogView& view,
                                      const std::vector<Synopsis>& workload,
                                      SizeMeasure measure);
EfficiencyBreakdown ComputeEfficiency(const CatalogView& view,
                                      const std::vector<Synopsis>& workload,
                                      const std::vector<double>& weights,
                                      SizeMeasure measure);

}  // namespace cinderella

#endif  // CINDERELLA_CORE_EFFICIENCY_H_
