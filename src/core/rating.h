#ifndef CINDERELLA_CORE_RATING_H_
#define CINDERELLA_CORE_RATING_H_

#include "synopsis/synopsis.h"

namespace cinderella {

/// The Section IV rating, decomposed for inspection by tests and benches.
struct RatingBreakdown {
  double homogeneity = 0.0;              // h⁺ = (SIZE(p)+SIZE(e))·|e∧p|
  double entity_heterogeneity = 0.0;     // h⁻ₑ = SIZE(e)·|¬e∧p|
  double partition_heterogeneity = 0.0;  // h⁻ₚ = SIZE(p)·|e∧¬p|
  double local = 0.0;                    // r' = w·h⁺ − (1−w)(h⁻ₑ+h⁻ₚ)
  double global = 0.0;                   // r = r' / ((SIZE(p)+SIZE(e))·|e∨p|)
};

/// Computes the full rating breakdown of entity (synopsis, size) against
/// partition (synopsis, size) for weight `w`.
///
/// When the normalizer (SIZE(p)+SIZE(e))·|e∨p| is zero — both synopses
/// empty or both sizes zero — the global rating is defined as 0.
RatingBreakdown RateDetailed(const Synopsis& entity, double entity_size,
                             const Synopsis& partition, double partition_size,
                             double w);

/// Returns the rating used to pick the best partition: the global rating
/// when `normalize` is set (the paper's r), else the local rating r'
/// (ablation mode; not comparable across partitions).
double Rate(const Synopsis& entity, double entity_size,
            const Synopsis& partition, double partition_size, double w,
            bool normalize = true);

}  // namespace cinderella

#endif  // CINDERELLA_CORE_RATING_H_
