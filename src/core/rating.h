#ifndef CINDERELLA_CORE_RATING_H_
#define CINDERELLA_CORE_RATING_H_

#include "synopsis/synopsis.h"

namespace cinderella {

/// The Section IV rating, decomposed for inspection by tests and benches.
struct RatingBreakdown {
  double homogeneity = 0.0;              // h⁺ = (SIZE(p)+SIZE(e))·|e∧p|
  double entity_heterogeneity = 0.0;     // h⁻ₑ = SIZE(e)·|¬e∧p|
  double partition_heterogeneity = 0.0;  // h⁻ₚ = SIZE(p)·|e∧¬p|
  double local = 0.0;                    // r' = w·h⁺ − (1−w)(h⁻ₑ+h⁻ₚ)
  double global = 0.0;                   // r = r' / ((SIZE(p)+SIZE(e))·|e∨p|)
};

/// Computes the full rating breakdown of entity (synopsis, size) against
/// partition (synopsis, size) for weight `w`.
///
/// When the normalizer (SIZE(p)+SIZE(e))·|e∨p| is zero — both synopses
/// empty or both sizes zero — the global rating is defined as 0.
RatingBreakdown RateDetailed(const Synopsis& entity, double entity_size,
                             const Synopsis& partition, double partition_size,
                             double w);

/// The two Section IV aggregates from the three disjoint cardinalities:
/// `local` is r' = w·h⁺ − (1−w)(h⁻ₑ+h⁻ₚ) and `normalizer` is
/// (SIZE(p)+SIZE(e))·|e∨p|; the global rating is local/normalizer when the
/// normalizer is positive, else 0.
///
/// This inline is the single definition of the rating arithmetic: the
/// serial scan (Rate) and the packed batch-rating kernel in src/ingest
/// both call it, so the two paths evaluate the identical floating-point
/// expression (same operations in the same order, no fast-math in the
/// build) and placement comparisons between them are bit-exact.
///
/// `missing_on_entity` is |¬e∧p| (ids the partition has, the entity
/// lacks); `missing_on_partition` is |e∧¬p|.
struct RatingTerms {
  double local = 0.0;
  double normalizer = 0.0;
};
inline RatingTerms RatingTermsFromCounts(double overlap,
                                         double missing_on_entity,
                                         double missing_on_partition,
                                         double entity_size,
                                         double partition_size, double w) {
  RatingTerms t;
  const double combined_size = partition_size + entity_size;
  const double homogeneity = combined_size * overlap;
  const double entity_heterogeneity = entity_size * missing_on_entity;
  const double partition_heterogeneity = partition_size * missing_on_partition;
  t.local = w * homogeneity -
            (1.0 - w) * (entity_heterogeneity + partition_heterogeneity);
  const double union_count = overlap + missing_on_entity + missing_on_partition;
  t.normalizer = combined_size * union_count;
  return t;
}

/// The scalar rating from pre-computed cardinalities: the global rating
/// when `normalize` is set, else the local rating r'.
inline double RateFromCounts(double overlap, double missing_on_entity,
                             double missing_on_partition, double entity_size,
                             double partition_size, double w, bool normalize) {
  const RatingTerms t =
      RatingTermsFromCounts(overlap, missing_on_entity, missing_on_partition,
                            entity_size, partition_size, w);
  if (!normalize) return t.local;
  return t.normalizer > 0.0 ? t.local / t.normalizer : 0.0;
}

/// Returns the rating used to pick the best partition: the global rating
/// when `normalize` is set (the paper's r), else the local rating r'
/// (ablation mode; not comparable across partitions).
double Rate(const Synopsis& entity, double entity_size,
            const Synopsis& partition, double partition_size, double w,
            bool normalize = true);

}  // namespace cinderella

#endif  // CINDERELLA_CORE_RATING_H_
