#ifndef CINDERELLA_CORE_CONCURRENT_TABLE_H_
#define CINDERELLA_CORE_CONCURRENT_TABLE_H_

#include <memory>
#include <shared_mutex>
#include <utility>

#include "common/status.h"
#include "core/partitioner.h"
#include "storage/row.h"

namespace cinderella {

/// Thread-safe facade over a partitioner: single writer, multiple
/// readers (std::shared_mutex).
///
/// The core library is deliberately thread-compatible-but-not-thread-safe
/// (the paper's setting is a serial per-statement trigger); this wrapper
/// serves services that query from many threads while one ingestion
/// thread applies modifications. Writer throughput is bounded by the
/// exclusive lock — shard into multiple tables for parallel ingestion.
class ConcurrentTable {
 public:
  explicit ConcurrentTable(std::unique_ptr<Partitioner> partitioner)
      : partitioner_(std::move(partitioner)) {}

  ConcurrentTable(const ConcurrentTable&) = delete;
  ConcurrentTable& operator=(const ConcurrentTable&) = delete;

  Status Insert(Row row) {
    std::unique_lock lock(mutex_);
    return partitioner_->Insert(std::move(row));
  }

  Status Update(Row row) {
    std::unique_lock lock(mutex_);
    return partitioner_->Update(std::move(row));
  }

  Status Delete(EntityId entity) {
    std::unique_lock lock(mutex_);
    return partitioner_->Delete(entity);
  }

  /// Copy of the entity's row (never a pointer into shared state).
  StatusOr<Row> Get(EntityId entity) const {
    std::shared_lock lock(mutex_);
    const auto home = partitioner_->catalog().FindEntity(entity);
    if (!home.has_value()) {
      return Status::NotFound("entity " + std::to_string(entity) +
                              " not in table");
    }
    const Partition* partition = partitioner_->catalog().GetPartition(*home);
    const Row* row = partition->segment().Find(entity);
    return *row;
  }

  size_t entity_count() const {
    std::shared_lock lock(mutex_);
    return partitioner_->catalog().entity_count();
  }

  size_t partition_count() const {
    std::shared_lock lock(mutex_);
    return partitioner_->catalog().partition_count();
  }

  /// Runs `fn(const PartitionCatalog&)` under the shared lock — the hook
  /// for query execution:
  ///
  ///   table.WithReadLock([&](const PartitionCatalog& catalog) {
  ///     QueryExecutor executor(catalog);
  ///     return executor.Execute(query);
  ///   });
  ///
  /// LIFETIME: everything `fn` borrows from the catalog — `const Row*`
  /// collected via QueryExecutor::ScanMatches, `Partition*`, synopsis
  /// references — dies with the shared lock. A writer admitted after fn
  /// returns may reallocate segments, move rows between partitions, or
  /// drop partitions, so returning such pointers out of `fn` (or stashing
  /// them in captures) is a use-after-free. Copy what must outlive the
  /// call (see query/executor.h QueryOwnedRows for the row-returning
  /// idiom), or use mvcc/versioned_table.h, whose snapshots stay valid
  /// for the snapshot's lifetime without holding any lock.
  template <typename Fn>
  auto WithReadLock(Fn&& fn) const {
    std::shared_lock lock(mutex_);
    return fn(static_cast<const PartitionCatalog&>(partitioner_->catalog()));
  }

  /// Runs `fn(Partitioner&)` under the exclusive lock (bulk maintenance).
  template <typename Fn>
  auto WithWriteLock(Fn&& fn) {
    std::unique_lock lock(mutex_);
    return fn(*partitioner_);
  }

 private:
  mutable std::shared_mutex mutex_;
  std::unique_ptr<Partitioner> partitioner_;
};

}  // namespace cinderella

#endif  // CINDERELLA_CORE_CONCURRENT_TABLE_H_
