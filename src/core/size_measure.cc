#include "core/size_measure.h"

namespace cinderella {

const char* SizeMeasureToString(SizeMeasure measure) {
  switch (measure) {
    case SizeMeasure::kEntityCount:
      return "entities";
    case SizeMeasure::kAttributeCount:
      return "cells";
    case SizeMeasure::kByteSize:
      return "bytes";
  }
  return "unknown";
}

}  // namespace cinderella
