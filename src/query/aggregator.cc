#include "query/aggregator.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "mvcc/partition_version.h"
#include "query/estimator.h"
#include "query/scan_source.h"
#include "synopsis/synopsis.h"

namespace cinderella {
namespace {

struct ValueHasher {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(ValueHash(v));
  }
};

/// The integer accumulator every strategy shares. All operations are
/// commutative and associative (exact integer arithmetic), so any merge
/// order yields the same group row — the heart of the determinism
/// contract.
struct Accum {
  uint64_t count = 0;
  uint64_t value_count = 0;
  int64_t sum = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void AddValue(int64_t v) {
    ++value_count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  void Merge(const Accum& o) {
    count += o.count;
    value_count += o.value_count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
};

using GroupMap = std::unordered_map<Value, Accum, ValueHasher>;

/// Numeric reading of a cell for the value aggregates: int64 as-is,
/// double truncated (exact integer accumulation at any merge order beats
/// float-add order sensitivity), strings excluded.
bool NumericCell(const Value& v, int64_t* out) {
  switch (v.type()) {
    case ValueType::kInt64:
      *out = v.as_int64();
      return true;
    case ValueType::kDouble:
      *out = static_cast<int64_t>(v.as_double());
      return true;
    case ValueType::kString:
      return false;
  }
  return false;
}

/// Group key of a participating row, or nullptr (no group attribute, or
/// WHERE mismatch).
const Value* ParticipatingKey(const RowView& row, const AggregateSpec& spec) {
  const Value* key = row.Get(spec.group_by);
  if (key == nullptr) return nullptr;
  if (spec.where != nullptr && !spec.where->Matches(row)) return nullptr;
  return key;
}

void AddRowValue(const RowView& row, const AggregateSpec& spec, Accum* accum) {
  ++accum->count;
  if (spec.value == AggregateSpec::kNoValue) return;
  const Value* cell = row.Get(spec.value);
  int64_t v;
  if (cell != nullptr && NumericCell(*cell, &v)) accum->AddValue(v);
}

/// Definition-1 pruning for an aggregation: a partition is scanned iff
/// its synopsis carries the group attribute and (when the WHERE clause
/// has a conservative pruning synopsis) intersects that too.
struct PruneSpec {
  Synopsis group;
  Synopsis where;
  bool where_prunable = false;

  bool Scans(const ScanSource& source) const {
    if (!source.synopsis.Intersects(group)) return false;
    if (where_prunable && !source.synopsis.Intersects(where)) return false;
    return true;
  }
};

/// Shared per-source metrics prologue; returns false when pruned.
/// `touches` (nullable — set only when a ScanObserver is attached)
/// receives the pruned touch entry; the scanned entry is recorded by
/// CloseSource after the row loop, when the matched delta is known.
bool OpenSource(const ScanSource& source, const PruneSpec& prune,
                ScanMetrics* metrics, std::vector<PartitionTouch>* touches) {
  ++metrics->partitions_total;
  if (!prune.Scans(source)) {
    ++metrics->partitions_pruned;
    if (touches != nullptr) {
      touches->push_back({source.partition, false, 0, 0});
    }
    return false;
  }
  ++metrics->partitions_scanned;
  metrics->rows_scanned += source.entities;
  metrics->cells_read += source.cells;
  metrics->bytes_read += source.bytes;
  return true;
}

void CloseSource(const ScanSource& source, uint64_t matched_before,
                 const ScanMetrics& metrics,
                 std::vector<PartitionTouch>* touches) {
  if (touches == nullptr) return;
  touches->push_back({source.partition, true, source.entities,
                      metrics.rows_matched - matched_before});
}

void EmitSorted(GroupMap map, std::vector<GroupResult>* groups) {
  groups->reserve(groups->size() + map.size());
  for (auto& [key, a] : map) {
    groups->push_back(
        GroupResult{key, a.count, a.value_count, a.sum, a.min, a.max});
  }
  std::sort(groups->begin(), groups->end(),
            [](const GroupResult& a, const GroupResult& b) {
              return ValueLess(a.key, b.key);
            });
}

/// Strategy 1 — two-phase: each chunk builds a thread-local hash table;
/// the calling thread merges them (merge order is irrelevant: exact
/// integer accumulators) and sorts once. Memory scales with
/// chunks x groups, so it loses to radix at huge group counts and to the
/// shared table at tiny ones, but it is the robust middle ground.
void RunTwoPhase(ThreadPool* pool, size_t morsel, bool fixed_chunks,
                 const std::vector<ScanSource>& sources,
                 const AggregateSpec& spec, const PruneSpec& prune,
                 AggregationResult* result,
                 std::vector<PartitionTouch>* touches) {
  struct Out {
    ScanMetrics metrics;
    GroupMap map;
    std::vector<PartitionTouch> touches;
  };
  const bool observe = touches != nullptr;
  GroupMap merged;
  ChunkedScan<Out>(pool, morsel, fixed_chunks, sources,
                   [&](const ScanSource& source, Out* out) {
                     std::vector<PartitionTouch>* out_touches =
                         observe ? &out->touches : nullptr;
                     if (!OpenSource(source, prune, &out->metrics,
                                     out_touches)) {
                       return;
                     }
                     const uint64_t before = out->metrics.rows_matched;
                     source.ForEachRow([&](const RowView& row) {
                       const Value* key = ParticipatingKey(row, spec);
                       if (key == nullptr) return;
                       ++out->metrics.rows_matched;
                       AddRowValue(row, spec, &out->map[*key]);
                     });
                     CloseSource(source, before, out->metrics, out_touches);
                   },
                   [&](Out out) {
                     MergeMetrics(out.metrics, &result->metrics);
                     if (observe) {
                       MergeTouches(std::move(out.touches), touches);
                     }
                     if (merged.empty()) {
                       merged = std::move(out.map);
                       return;
                     }
                     for (auto& [key, a] : out.map) merged[key].Merge(a);
                   });
  EmitSorted(std::move(merged), &result->groups);
}

// 64 radix buckets from the top hash bits (ValueHash avalanches, so the
// top bits are as uniform as the low ones and independent of the
// hash-table masks below, which use the low bits).
constexpr size_t kRadixBits = 6;
constexpr size_t kRadixBuckets = size_t{1} << kRadixBits;

size_t RadixBucket(uint64_t hash) { return hash >> (64 - kRadixBits); }

/// Strategy 2 — radix: pass 1 partitions (key, value) entries by group
/// hash into per-chunk per-bucket buffers (no hash table touched, pure
/// sequential writes); pass 2 aggregates each bucket in parallel —
/// buckets are disjoint key ranges, so no two threads ever share a table.
/// Scales to huge group counts where per-thread tables blow the cache.
void RunRadix(ThreadPool* pool, size_t morsel, bool fixed_chunks,
              const std::vector<ScanSource>& sources,
              const AggregateSpec& spec, const PruneSpec& prune,
              AggregationResult* result,
              std::vector<PartitionTouch>* touches) {
  struct Entry {
    Value key;
    uint64_t hash;
    int64_t value;
    bool has_value;
  };
  struct Out {
    ScanMetrics metrics;
    std::vector<std::vector<Entry>> buckets;
    std::vector<PartitionTouch> touches;
  };
  const bool observe = touches != nullptr;
  // buckets[b] = concatenation of every chunk's bucket b, in chunk order.
  std::vector<std::vector<Entry>> buckets(kRadixBuckets);
  ChunkedScan<Out>(pool, morsel, fixed_chunks, sources,
                   [&](const ScanSource& source, Out* out) {
                     std::vector<PartitionTouch>* out_touches =
                         observe ? &out->touches : nullptr;
                     if (!OpenSource(source, prune, &out->metrics,
                                     out_touches)) {
                       return;
                     }
                     const uint64_t before = out->metrics.rows_matched;
                     if (out->buckets.empty()) {
                       out->buckets.resize(kRadixBuckets);
                     }
                     source.ForEachRow([&](const RowView& row) {
                       const Value* key = ParticipatingKey(row, spec);
                       if (key == nullptr) return;
                       ++out->metrics.rows_matched;
                       Entry entry;
                       entry.key = *key;
                       entry.hash = ValueHash(*key);
                       entry.has_value = false;
                       if (spec.value != AggregateSpec::kNoValue) {
                         const Value* cell = row.Get(spec.value);
                         if (cell != nullptr &&
                             NumericCell(*cell, &entry.value)) {
                           entry.has_value = true;
                         }
                       }
                       out->buckets[RadixBucket(entry.hash)].push_back(
                           std::move(entry));
                     });
                     CloseSource(source, before, out->metrics, out_touches);
                   },
                   [&](Out out) {
                     MergeMetrics(out.metrics, &result->metrics);
                     if (observe) {
                       MergeTouches(std::move(out.touches), touches);
                     }
                     for (size_t b = 0; b < out.buckets.size(); ++b) {
                       std::vector<Entry>& chunk_bucket = out.buckets[b];
                       if (chunk_bucket.empty()) continue;
                       if (buckets[b].empty()) {
                         buckets[b] = std::move(chunk_bucket);
                         continue;
                       }
                       buckets[b].insert(
                           buckets[b].end(),
                           std::make_move_iterator(chunk_bucket.begin()),
                           std::make_move_iterator(chunk_bucket.end()));
                     }
                   });

  // Pass 2: per-bucket aggregation, one output slot per bucket.
  std::vector<std::vector<GroupResult>> bucket_groups(kRadixBuckets);
  const auto reduce_bucket = [&](size_t b) {
    if (buckets[b].empty()) return;
    GroupMap map;
    map.reserve(buckets[b].size() / 2 + 1);
    for (Entry& entry : buckets[b]) {
      Accum& a = map[std::move(entry.key)];
      ++a.count;
      if (entry.has_value) a.AddValue(entry.value);
    }
    EmitSorted(std::move(map), &bucket_groups[b]);
  };
  if (pool == nullptr) {
    for (size_t b = 0; b < kRadixBuckets; ++b) reduce_bucket(b);
  } else {
    pool->ParallelForDynamic(kRadixBuckets, 1,
                             [&](size_t begin, size_t end, size_t) {
                               for (size_t b = begin; b < end; ++b) {
                                 reduce_bucket(b);
                               }
                             });
  }
  size_t total = 0;
  for (const std::vector<GroupResult>& g : bucket_groups) total += g.size();
  result->groups.reserve(total);
  for (std::vector<GroupResult>& g : bucket_groups) {
    result->groups.insert(result->groups.end(),
                          std::make_move_iterator(g.begin()),
                          std::make_move_iterator(g.end()));
  }
  // Buckets are hash-ordered; one final sort restores the canonical
  // ValueLess order shared with the other strategies.
  std::sort(result->groups.begin(), result->groups.end(),
            [](const GroupResult& a, const GroupResult& b) {
              return ValueLess(a.key, b.key);
            });
}

/// One slot of the shared open-addressing table. `state` transitions
/// 0 (empty) -> 1 (claimed: key being written) -> 2 (ready); readers spin
/// through the brief claimed window. Accumulators are plain atomics:
/// fetch_add for the sums, CAS loops for min/max — all exact integer ops,
/// so the table's contents are independent of interleaving.
struct SharedSlot {
  std::atomic<uint32_t> state{0};
  Value key;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> value_count{0};
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> min{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max{std::numeric_limits<int64_t>::min()};
};

void AtomicMin(std::atomic<int64_t>* target, int64_t v) {
  int64_t cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>* target, int64_t v) {
  int64_t cur = target->load(std::memory_order_relaxed);
  while (v > cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Linear-probe insert/accumulate. Returns false when the table is full
/// (caller falls back to two-phase).
bool SharedAccumulate(SharedSlot* slots, size_t mask, const RowView& row,
                      const Value& key, const AggregateSpec& spec) {
  const uint64_t hash = ValueHash(key);
  for (size_t probe = 0; probe <= mask; ++probe) {
    SharedSlot& slot = slots[(hash + probe) & mask];
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == 0) {
      uint32_t expected = 0;
      if (slot.state.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
        slot.key = key;
        slot.state.store(2, std::memory_order_release);
        state = 2;
      } else {
        state = expected;
      }
    }
    while (state == 1) state = slot.state.load(std::memory_order_acquire);
    if (!(slot.key == key)) continue;  // Probe on.
    slot.count.fetch_add(1, std::memory_order_relaxed);
    if (spec.value != AggregateSpec::kNoValue) {
      const Value* cell = row.Get(spec.value);
      int64_t v;
      if (cell != nullptr && NumericCell(*cell, &v)) {
        slot.value_count.fetch_add(1, std::memory_order_relaxed);
        slot.sum.fetch_add(v, std::memory_order_relaxed);
        AtomicMin(&slot.min, v);
        AtomicMax(&slot.max, v);
      }
    }
    return true;
  }
  return false;
}

size_t NextPowerOfTwo(uint64_t n) {
  size_t cap = 64;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Strategy 3 — shared table: all threads accumulate into one
/// fixed-capacity open-addressing table. With few groups the hot slots
/// stay cache-resident and no per-thread tables or merge pass exist at
/// all; with many groups (or one dominant key serializing on its slot)
/// it loses, which is why the chooser guards on both cardinality and
/// top-group share. Returns false on overflow — the caller reruns the
/// query with two-phase, whose result is identical by the determinism
/// contract.
bool RunShared(ThreadPool* pool, size_t morsel, bool fixed_chunks,
               const std::vector<ScanSource>& sources,
               const AggregateSpec& spec, const PruneSpec& prune,
               uint64_t estimated_groups, size_t capacity_override,
               AggregationResult* result,
               std::vector<PartitionTouch>* touches) {
  size_t capacity = capacity_override;
  if (capacity == 0) {
    // <= 50% load factor at the estimate; the chooser only sends small
    // cardinalities here, so this stays a few pages.
    capacity = NextPowerOfTwo(2 * std::max<uint64_t>(estimated_groups, 1));
  } else {
    capacity = NextPowerOfTwo(capacity);
  }
  const size_t mask = capacity - 1;
  std::unique_ptr<SharedSlot[]> slots(new SharedSlot[capacity]);
  std::atomic<bool> overflow{false};

  struct Out {
    ScanMetrics metrics;
    std::vector<PartitionTouch> touches;
  };
  const bool observe = touches != nullptr;
  ScanMetrics metrics;
  ChunkedScan<Out>(pool, morsel, fixed_chunks, sources,
                   [&](const ScanSource& source, Out* out) {
                     std::vector<PartitionTouch>* out_touches =
                         observe ? &out->touches : nullptr;
                     if (!OpenSource(source, prune, &out->metrics,
                                     out_touches)) {
                       return;
                     }
                     const uint64_t before = out->metrics.rows_matched;
                     if (overflow.load(std::memory_order_relaxed)) {
                       CloseSource(source, before, out->metrics, out_touches);
                       return;
                     }
                     source.ForEachRow([&](const RowView& row) {
                       const Value* key = ParticipatingKey(row, spec);
                       if (key == nullptr) return;
                       ++out->metrics.rows_matched;
                       if (overflow.load(std::memory_order_relaxed)) return;
                       if (!SharedAccumulate(slots.get(), mask, row, *key,
                                             spec)) {
                         overflow.store(true, std::memory_order_relaxed);
                       }
                     });
                     CloseSource(source, before, out->metrics, out_touches);
                   },
                   [&](Out out) {
                     MergeMetrics(out.metrics, &metrics);
                     if (observe) {
                       MergeTouches(std::move(out.touches), touches);
                     }
                   });
  if (overflow.load(std::memory_order_relaxed)) return false;

  result->metrics = metrics;
  GroupMap map;
  for (size_t i = 0; i < capacity; ++i) {
    SharedSlot& slot = slots[i];
    if (slot.state.load(std::memory_order_acquire) != 2) continue;
    Accum a;
    a.count = slot.count.load(std::memory_order_relaxed);
    a.value_count = slot.value_count.load(std::memory_order_relaxed);
    a.sum = slot.sum.load(std::memory_order_relaxed);
    a.min = slot.min.load(std::memory_order_relaxed);
    a.max = slot.max.load(std::memory_order_relaxed);
    map.emplace(std::move(slot.key), a);
  }
  EmitSorted(std::move(map), &result->groups);
  return true;
}

}  // namespace

const char* AggregateStrategyName(AggregateStrategy strategy) {
  switch (strategy) {
    case AggregateStrategy::kAdaptive:
      return "adaptive";
    case AggregateStrategy::kTwoPhase:
      return "two_phase";
    case AggregateStrategy::kRadix:
      return "radix";
    case AggregateStrategy::kSharedTable:
      return "shared_table";
  }
  return "unknown";
}

Aggregator::Aggregator(const PartitionCatalog& catalog,
                       AggregatorOptions options)
    : catalog_(&catalog),
      options_(options),
      degree_(ThreadPool::ResolveDegree(options.scan_threads)),
      morsel_(ThreadPool::ResolveScanChunk(options.morsel)) {}

Aggregator::Aggregator(const CatalogView& view, AggregatorOptions options)
    : view_(&view),
      options_(options),
      degree_(ThreadPool::ResolveDegree(options.scan_threads)),
      morsel_(ThreadPool::ResolveScanChunk(options.morsel)) {}

ThreadPool* Aggregator::pool() {
  if (degree_ <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(degree_);
  return pool_.get();
}

namespace {

/// Deterministic sample for the chooser: the first `sample_rows`
/// participating rows in partition order (every run, thread count, and
/// strategy sees the same sample, so the decision itself is
/// reproducible). Refines the synopsis upper bound with the Chao1
/// estimator: D-hat = d + f1^2 / (2 * f2), where d = distinct keys in
/// the sample and f1/f2 = keys seen exactly once/twice — singletons are
/// evidence of unseen keys, doubletons calibrate how much. (f2 = 0 uses
/// the bias-corrected d + f1*(f1-1)/2.) Clamped to the carrier-count
/// upper bound; exact when the sample covers every row.
struct SampleStats {
  uint64_t estimated_groups = 0;
  double top_share = 0.0;  // Heaviest sampled group / sample size.
  bool exact = false;
};

SampleStats SampleGroups(const std::vector<ScanSource>& sources,
                         const AggregateSpec& spec, const PruneSpec& prune,
                         size_t sample_rows, uint64_t upper_bound) {
  std::unordered_map<Value, uint64_t, ValueHasher> freq;
  size_t sampled = 0;
  bool truncated = false;
  for (const ScanSource& source : sources) {
    if (sampled >= sample_rows) {
      truncated = true;
      break;
    }
    if (!prune.Scans(source)) continue;
    source.ForEachRow([&](const RowView& row) {
      if (sampled >= sample_rows) {
        truncated = true;
        return;
      }
      const Value* key = ParticipatingKey(row, spec);
      if (key == nullptr) return;
      ++sampled;
      ++freq[*key];
    });
  }

  SampleStats stats;
  if (sampled == 0) {
    stats.exact = !truncated;
    return stats;
  }
  uint64_t singletons = 0;
  uint64_t doubletons = 0;
  uint64_t top = 0;
  for (const auto& [key, n] : freq) {
    if (n == 1) ++singletons;
    if (n == 2) ++doubletons;
    top = std::max(top, n);
  }
  stats.top_share =
      static_cast<double>(top) / static_cast<double>(sampled);
  if (!truncated) {
    stats.estimated_groups = freq.size();
    stats.exact = true;
    return stats;
  }
  const double f1 = static_cast<double>(singletons);
  const double unseen =
      doubletons > 0 ? f1 * f1 / (2.0 * static_cast<double>(doubletons))
                     : f1 * (f1 - 1.0) / 2.0;
  const double extrapolated = static_cast<double>(freq.size()) + unseen;
  stats.estimated_groups =
      std::min<uint64_t>(upper_bound, static_cast<uint64_t>(extrapolated));
  return stats;
}

}  // namespace

AggregateStrategy Aggregator::Choose(const AggregateSpec& spec,
                                     uint64_t* estimated_groups) const {
  const GroupCardinalityEstimate bound =
      catalog_ != nullptr
          ? EstimateGroupCardinality(*catalog_, spec.group_by)
          : EstimateGroupCardinality(*view_, spec.group_by);
  const uint64_t upper = bound.groups_upper_bound();
  PruneSpec prune;
  prune.group = Synopsis({spec.group_by});
  prune.where_prunable =
      spec.where != nullptr && spec.where->PruningSynopsis(&prune.where);
  const std::vector<ScanSource> sources = SnapshotSources(catalog_, view_);
  const SampleStats stats =
      SampleGroups(sources, spec, prune, options_.sample_rows, upper);
  *estimated_groups = stats.estimated_groups;

  if (degree_ <= 1) {
    // Serial: the shared table buys nothing (no contention to avoid),
    // but radix still wins at huge cardinality — 64 disjoint buckets
    // keep each aggregation table cache-resident where one monolithic
    // table of every group thrashes.
    return stats.estimated_groups >= options_.radix_min_groups
               ? AggregateStrategy::kRadix
               : AggregateStrategy::kTwoPhase;
  }

  // Few groups with no dominant key: the shared table's hot slots stay
  // cache-resident. A dominant key (>50% of the sample) would serialize
  // every thread on one slot's atomics, so it falls through.
  if (stats.estimated_groups <= options_.shared_max_groups &&
      stats.top_share <= 0.5) {
    return AggregateStrategy::kSharedTable;
  }
  // Huge group counts: per-thread tables each grow to the full group
  // count and fall out of cache; radix buckets keep the working set
  // 1/64th of that.
  if (stats.estimated_groups >= options_.radix_min_groups) {
    return AggregateStrategy::kRadix;
  }
  return AggregateStrategy::kTwoPhase;
}

AggregationResult Aggregator::Aggregate(const AggregateSpec& spec) {
  AggregationResult result;
  PruneSpec prune;
  prune.group = Synopsis({spec.group_by});
  prune.where_prunable =
      spec.where != nullptr && spec.where->PruningSynopsis(&prune.where);
  const std::vector<ScanSource> sources = SnapshotSources(catalog_, view_);

  AggregateStrategy strategy = options_.strategy;
  if (strategy == AggregateStrategy::kAdaptive) {
    strategy = Choose(spec, &result.estimated_groups);
  }
  result.strategy_used = strategy;
  const bool observe = observer_ != nullptr;
  std::vector<PartitionTouch> touches;
  std::vector<PartitionTouch>* touches_out = observe ? &touches : nullptr;
  switch (strategy) {
    case AggregateStrategy::kTwoPhase:
      RunTwoPhase(pool(), morsel_, options_.fixed_chunks, sources, spec,
                  prune, &result, touches_out);
      break;
    case AggregateStrategy::kRadix:
      RunRadix(pool(), morsel_, options_.fixed_chunks, sources, spec, prune,
               &result, touches_out);
      break;
    case AggregateStrategy::kSharedTable: {
      const uint64_t estimate = result.estimated_groups > 0
                                    ? result.estimated_groups
                                    : options_.shared_max_groups;
      if (!RunShared(pool(), morsel_, options_.fixed_chunks, sources, spec,
                     prune, estimate, options_.shared_table_capacity,
                     &result, touches_out)) {
        // Overflow: the estimate undershot. Rerun with the strategy that
        // cannot overflow; the determinism contract makes the results
        // interchangeable. The overflow run's partial touches are dropped
        // so the observer sees exactly one touch list per query.
        touches.clear();
        const uint64_t estimated_groups = result.estimated_groups;
        result = AggregationResult();
        result.estimated_groups = estimated_groups;
        result.shared_table_overflow = true;
        result.strategy_used = AggregateStrategy::kTwoPhase;
        RunTwoPhase(pool(), morsel_, options_.fixed_chunks, sources, spec,
                    prune, &result, touches_out);
      }
      break;
    }
    case AggregateStrategy::kAdaptive:
      break;  // Unreachable: resolved above.
  }
  if (observe) {
    Synopsis query = prune.group;
    if (prune.where_prunable) query.UnionWith(prune.where);
    observer_->OnScan(query, touches);
  }
  return result;
}

}  // namespace cinderella
