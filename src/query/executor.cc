#include "query/executor.h"

#include <iterator>
#include <utility>

#include "core/concurrent_table.h"
#include "mvcc/partition_version.h"
#include "query/scan_source.h"

namespace cinderella {

ThreadPool* QueryExecutor::pool() {
  if (degree_ <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(degree_);
  return pool_.get();
}

QueryResult QueryExecutor::ScanMatchingRows(const Predicate& predicate) {
  QueryResult result;
  match_buffer_.clear();
  Synopsis pruning;
  const bool prunable = predicate.PruningSynopsis(&pruning);
  const std::vector<ScanSource> sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;
  const bool observe = observer_ != nullptr;
  std::vector<PartitionTouch> touches;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<RowView> matches;
    std::vector<PartitionTouch> touches;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    if (prunable && !source.synopsis.Intersects(pruning)) {
      ++out->metrics.partitions_pruned;
      if (observe) out->touches.push_back({source.partition, false, 0, 0});
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    const uint64_t matched_before = out->metrics.rows_matched;
    source.ForEachRow([&](const RowView& row) {
      if (predicate.Matches(row)) {
        ++out->metrics.rows_matched;
        out->matches.push_back(row);
      }
    });
    if (observe) {
      out->touches.push_back({source.partition, true, source.entities,
                              out->metrics.rows_matched - matched_before});
    }
  };
  ChunkedScan<Out>(pool(), morsel_, /*fixed_chunks=*/false, sources, scan,
                   [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (match_buffer_.empty()) {
      match_buffer_ = std::move(out.matches);
    } else {
      match_buffer_.insert(match_buffer_.end(), out.matches.begin(),
                           out.matches.end());
    }
    if (observe) MergeTouches(std::move(out.touches), &touches);
  });
  if (observe) observer_->OnScan(pruning, touches);
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

QueryResult QueryExecutor::ExecutePredicate(const Predicate& predicate) {
  return ScanMatches(predicate, [](const RowView&) {});
}

QueryResult QueryExecutor::ExecuteSelect(const SelectStatement& statement) {
  result_buffer_.clear();
  auto materialize = [&](const RowView& row) {
    if (statement.select_all) {
      for (const Row::Cell& cell : row) {
        result_buffer_.push_back(cell.value);
      }
      return;
    }
    for (AttributeId attribute : statement.projection) {
      const Value* value = row.Get(attribute);
      if (value != nullptr) result_buffer_.push_back(*value);
    }
  };
  QueryResult result;
  if (statement.where != nullptr) {
    result = ScanMatches(*statement.where, materialize);
  } else {
    // No WHERE: every entity matches; scan everything.
    const PredicatePtr match_all = And(std::vector<PredicatePtr>{});
    result = ScanMatches(*match_all, materialize);
  }
  result.cells_materialized = result_buffer_.size();
  return result;
}

QueryResult QueryExecutor::Execute(const Query& query) {
  QueryResult result;
  result_buffer_.clear();
  const std::vector<ScanSource> sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;
  const bool observe = observer_ != nullptr;
  std::vector<PartitionTouch> touches;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<Value> values;
    std::vector<PartitionTouch> touches;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    // Definition 1 pruning: skip partitions with sgn(|p ∧ q|) = 0.
    if (!source.synopsis.Intersects(query.attributes())) {
      ++out->metrics.partitions_pruned;
      if (observe) out->touches.push_back({source.partition, false, 0, 0});
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    const uint64_t matched_before = out->metrics.rows_matched;
    source.ForEachRow([&](const RowView& row) {
      // OR-of-IS-NOT-NULL match; projection materializes the queried
      // attributes that are present.
      bool matched = false;
      for (AttributeId attribute : query.projection()) {
        const Value* value = row.Get(attribute);
        if (value != nullptr) {
          matched = true;
          out->values.push_back(*value);
        }
      }
      if (matched) ++out->metrics.rows_matched;
    });
    if (observe) {
      out->touches.push_back({source.partition, true, source.entities,
                              out->metrics.rows_matched - matched_before});
    }
  };
  ChunkedScan<Out>(pool(), morsel_, /*fixed_chunks=*/false, sources, scan,
                   [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (result_buffer_.empty()) {
      result_buffer_ = std::move(out.values);
    } else {
      result_buffer_.insert(result_buffer_.end(),
                            std::make_move_iterator(out.values.begin()),
                            std::make_move_iterator(out.values.end()));
    }
    if (observe) MergeTouches(std::move(out.touches), &touches);
  });
  if (observe) observer_->OnScan(query.attributes(), touches);

  result.cells_materialized = result_buffer_.size();
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

QueryResult QueryExecutor::ExecuteGather(const Query& query,
                                         std::vector<Row>* rows) {
  QueryResult result;
  rows->clear();
  const std::vector<ScanSource> sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<Row> rows;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    if (!source.synopsis.Intersects(query.attributes())) {
      ++out->metrics.partitions_pruned;
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    source.ForEachRow([&](const RowView& row) {
      Row projected(row.id());
      for (AttributeId attribute : query.projection()) {
        const Value* value = row.Get(attribute);
        if (value != nullptr) projected.Set(attribute, *value);
      }
      if (projected.attribute_count() > 0) {
        ++out->metrics.rows_matched;
        out->rows.push_back(std::move(projected));
      }
    });
  };
  ChunkedScan<Out>(pool(), morsel_, /*fixed_chunks=*/false, sources, scan,
                   [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (rows->empty()) {
      *rows = std::move(out.rows);
    } else {
      rows->insert(rows->end(), std::make_move_iterator(out.rows.begin()),
                   std::make_move_iterator(out.rows.end()));
    }
  });
  for (const Row& row : *rows) result.cells_materialized += row.attribute_count();
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

OwnedQueryResult QueryOwnedRows(const ConcurrentTable& table,
                                const Predicate& predicate, int scan_threads) {
  OwnedQueryResult owned;
  table.WithReadLock([&](const PartitionCatalog& catalog) {
    QueryExecutor executor(catalog, scan_threads);
    // Copy the matched rows while the shared lock is still held; the
    // views ScanMatches yields die with the lock.
    owned.result = executor.ScanMatches(
        predicate,
        [&](const RowView& row) { owned.rows.push_back(row.ToRow()); });
    return 0;
  });
  return owned;
}

}  // namespace cinderella
