#include "query/executor.h"

namespace cinderella {

QueryResult QueryExecutor::ExecutePredicate(const Predicate& predicate) {
  return ScanMatches(predicate, [](const Row&) {});
}

QueryResult QueryExecutor::ExecuteSelect(const SelectStatement& statement) {
  result_buffer_.clear();
  auto materialize = [&](const Row& row) {
    if (statement.select_all) {
      for (const Row::Cell& cell : row.cells()) {
        result_buffer_.push_back(cell.value);
      }
      return;
    }
    for (AttributeId attribute : statement.projection) {
      const Value* value = row.Get(attribute);
      if (value != nullptr) result_buffer_.push_back(*value);
    }
  };
  QueryResult result;
  if (statement.where != nullptr) {
    result = ScanMatches(*statement.where, materialize);
  } else {
    // No WHERE: every entity matches; scan everything.
    const PredicatePtr match_all = And(std::vector<PredicatePtr>{});
    result = ScanMatches(*match_all, materialize);
  }
  result.cells_materialized = result_buffer_.size();
  return result;
}

QueryResult QueryExecutor::Execute(const Query& query) {
  QueryResult result;
  result_buffer_.clear();
  size_t table_entities = 0;

  catalog_->ForEachPartition([&](const Partition& partition) {
    ++result.metrics.partitions_total;
    table_entities += partition.entity_count();
    // Definition 1 pruning: skip partitions with sgn(|p ∧ q|) = 0.
    if (!partition.attribute_synopsis().Intersects(query.attributes())) {
      ++result.metrics.partitions_pruned;
      return;
    }
    ++result.metrics.partitions_scanned;
    result.metrics.rows_scanned += partition.entity_count();
    result.metrics.cells_read += partition.segment().cell_count();
    result.metrics.bytes_read += partition.segment().byte_size();
    for (const Row& row : partition.segment().rows()) {
      // OR-of-IS-NOT-NULL match; projection materializes the queried
      // attributes that are present.
      bool matched = false;
      for (AttributeId attribute : query.projection()) {
        const Value* value = row.Get(attribute);
        if (value != nullptr) {
          matched = true;
          result_buffer_.push_back(*value);
        }
      }
      if (matched) ++result.metrics.rows_matched;
    }
  });

  result.cells_materialized = result_buffer_.size();
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

}  // namespace cinderella
