#include "query/executor.h"

#include <iterator>
#include <utility>

#include "core/concurrent_table.h"
#include "mvcc/partition_version.h"
#include "query/scan_source.h"

namespace cinderella {
namespace {

/// Tree-pruned scan plan over a pinned view: builds sources for exactly
/// the partitions whose subtree union intersects the probe (ascending
/// id), recording the skipped ids when the caller collects touches.
/// Union soundness makes the skip exact — a partition under a
/// non-intersecting subtree cannot itself intersect the probe, so the
/// flat path would have pruned it one-by-one. The caller bulk-counts the
/// skipped partitions as pruned, keeping every counter bit-identical to
/// the flat scan while the descent inspects only matching subtrees.
/// Returns false (sources untouched) when no tree is attached.
bool TryTreePrune(const CatalogView* view, const Synopsis& probe,
                  std::vector<ScanSource>* sources,
                  std::vector<PartitionId>* skipped) {
  if (view == nullptr || !view->tree().valid()) return false;
  const std::vector<const PartitionVersion*>& parts = view->partitions();
  const std::vector<uint64_t>& words = probe.words();
  size_t i = 0;
  auto skip_until = [&](uint64_t key) {
    while (i < parts.size() && parts[i]->id() < key) {
      if (skipped != nullptr) skipped->push_back(parts[i]->id());
      ++i;
    }
  };
  view->tree().ForEachCandidate(
      words.data(), words.size(), [&](uint64_t key) {
        // Candidate keys ascend, so one forward pass aligns the
        // (ascending) version array.
        skip_until(key);
        if (i < parts.size() && parts[i]->id() == key) {
          sources->push_back(MakeVersionSource(*parts[i++]));
        }
      });
  skip_until(UINT64_MAX);
  return true;
}

/// Reinstates a pruned touch for every tree-skipped partition so the
/// observer sees the same ascending, complete touch stream as a flat
/// scan. Both inputs are id-ascending; classic two-list merge.
void MergeSkippedTouches(const std::vector<PartitionId>& skipped,
                         std::vector<PartitionTouch>* touches) {
  if (skipped.empty()) return;
  std::vector<PartitionTouch> merged;
  merged.reserve(touches->size() + skipped.size());
  size_t a = 0;
  size_t b = 0;
  while (a < touches->size() || b < skipped.size()) {
    if (b == skipped.size() ||
        (a < touches->size() && (*touches)[a].partition < skipped[b])) {
      merged.push_back((*touches)[a++]);
    } else {
      merged.push_back({skipped[b++], false, 0, 0});
    }
  }
  *touches = std::move(merged);
}

}  // namespace

ThreadPool* QueryExecutor::pool() {
  if (degree_ <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(degree_);
  return pool_.get();
}

QueryResult QueryExecutor::ScanMatchingRows(const Predicate& predicate) {
  QueryResult result;
  match_buffer_.clear();
  cold_keepalive_.clear();
  Synopsis pruning;
  const bool prunable = predicate.PruningSynopsis(&pruning);
  const bool observe = observer_ != nullptr;
  std::vector<ScanSource> sources;
  std::vector<PartitionId> tree_skipped;
  const bool tree_pruned =
      prunable && TryTreePrune(view_, pruning, &sources,
                               observe ? &tree_skipped : nullptr);
  if (!tree_pruned) sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;
  std::vector<PartitionTouch> touches;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<RowView> matches;
    std::vector<PartitionTouch> touches;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    if (prunable && !source.synopsis.Intersects(pruning)) {
      ++out->metrics.partitions_pruned;
      if (observe) out->touches.push_back({source.partition, false, 0, 0});
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    const uint64_t matched_before = out->metrics.rows_matched;
    source.ForEachRow([&](const RowView& row) {
      if (predicate.Matches(row)) {
        ++out->metrics.rows_matched;
        out->matches.push_back(row);
      }
    });
    if (observe) {
      out->touches.push_back({source.partition, true, source.entities,
                              out->metrics.rows_matched - matched_before});
    }
  };
  ChunkedScan<Out>(pool(), morsel_, /*fixed_chunks=*/false, sources, scan,
                   [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (match_buffer_.empty()) {
      match_buffer_ = std::move(out.matches);
    } else {
      match_buffer_.insert(match_buffer_.end(), out.matches.begin(),
                           out.matches.end());
    }
    if (observe) MergeTouches(std::move(out.touches), &touches);
  });
  // match_buffer_ views into chain-fetched cold rows must outlive the
  // sources (ScanMatches consumes the buffer after this returns); keep
  // the fetched deques until the next scan.
  for (ScanSource& source : sources) {
    if (source.cold_rows != nullptr) {
      cold_keepalive_.push_back(std::move(source.cold_rows));
    }
  }
  if (observe) {
    MergeSkippedTouches(tree_skipped, &touches);
    observer_->OnScan(pruning, touches);
  }
  if (tree_pruned) {
    // Every tree-skipped partition would have been pruned one-by-one by
    // the flat scan; counters and selectivity denominator stay identical.
    const uint64_t skipped_count =
        static_cast<uint64_t>(view_->partition_count() - sources.size());
    result.metrics.partitions_total += skipped_count;
    result.metrics.partitions_pruned += skipped_count;
    table_entities = view_->entity_count();
  }
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

QueryResult QueryExecutor::ExecutePredicate(const Predicate& predicate) {
  return ScanMatches(predicate, [](const RowView&) {});
}

QueryResult QueryExecutor::ExecuteSelect(const SelectStatement& statement) {
  result_buffer_.clear();
  auto materialize = [&](const RowView& row) {
    if (statement.select_all) {
      for (const Row::Cell& cell : row) {
        result_buffer_.push_back(cell.value);
      }
      return;
    }
    for (AttributeId attribute : statement.projection) {
      const Value* value = row.Get(attribute);
      if (value != nullptr) result_buffer_.push_back(*value);
    }
  };
  QueryResult result;
  if (statement.where != nullptr) {
    result = ScanMatches(*statement.where, materialize);
  } else {
    // No WHERE: every entity matches; scan everything.
    const PredicatePtr match_all = And(std::vector<PredicatePtr>{});
    result = ScanMatches(*match_all, materialize);
  }
  result.cells_materialized = result_buffer_.size();
  return result;
}

QueryResult QueryExecutor::Execute(const Query& query) {
  QueryResult result;
  result_buffer_.clear();
  const bool observe = observer_ != nullptr;
  std::vector<ScanSource> sources;
  std::vector<PartitionId> tree_skipped;
  const bool tree_pruned = TryTreePrune(
      view_, query.attributes(), &sources, observe ? &tree_skipped : nullptr);
  if (!tree_pruned) sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;
  std::vector<PartitionTouch> touches;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<Value> values;
    std::vector<PartitionTouch> touches;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    // Definition 1 pruning: skip partitions with sgn(|p ∧ q|) = 0.
    if (!source.synopsis.Intersects(query.attributes())) {
      ++out->metrics.partitions_pruned;
      if (observe) out->touches.push_back({source.partition, false, 0, 0});
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    const uint64_t matched_before = out->metrics.rows_matched;
    source.ForEachRow([&](const RowView& row) {
      // OR-of-IS-NOT-NULL match; projection materializes the queried
      // attributes that are present.
      bool matched = false;
      for (AttributeId attribute : query.projection()) {
        const Value* value = row.Get(attribute);
        if (value != nullptr) {
          matched = true;
          out->values.push_back(*value);
        }
      }
      if (matched) ++out->metrics.rows_matched;
    });
    if (observe) {
      out->touches.push_back({source.partition, true, source.entities,
                              out->metrics.rows_matched - matched_before});
    }
  };
  ChunkedScan<Out>(pool(), morsel_, /*fixed_chunks=*/false, sources, scan,
                   [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (result_buffer_.empty()) {
      result_buffer_ = std::move(out.values);
    } else {
      result_buffer_.insert(result_buffer_.end(),
                            std::make_move_iterator(out.values.begin()),
                            std::make_move_iterator(out.values.end()));
    }
    if (observe) MergeTouches(std::move(out.touches), &touches);
  });
  if (observe) {
    MergeSkippedTouches(tree_skipped, &touches);
    observer_->OnScan(query.attributes(), touches);
  }
  if (tree_pruned) {
    const uint64_t skipped_count =
        static_cast<uint64_t>(view_->partition_count() - sources.size());
    result.metrics.partitions_total += skipped_count;
    result.metrics.partitions_pruned += skipped_count;
    table_entities = view_->entity_count();
  }

  result.cells_materialized = result_buffer_.size();
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

QueryResult QueryExecutor::ExecuteGather(const Query& query,
                                         std::vector<Row>* rows) {
  QueryResult result;
  rows->clear();
  std::vector<ScanSource> sources;
  const bool tree_pruned =
      TryTreePrune(view_, query.attributes(), &sources, nullptr);
  if (!tree_pruned) sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<Row> rows;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    if (!source.synopsis.Intersects(query.attributes())) {
      ++out->metrics.partitions_pruned;
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    source.ForEachRow([&](const RowView& row) {
      Row projected(row.id());
      for (AttributeId attribute : query.projection()) {
        const Value* value = row.Get(attribute);
        if (value != nullptr) projected.Set(attribute, *value);
      }
      if (projected.attribute_count() > 0) {
        ++out->metrics.rows_matched;
        out->rows.push_back(std::move(projected));
      }
    });
  };
  ChunkedScan<Out>(pool(), morsel_, /*fixed_chunks=*/false, sources, scan,
                   [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (rows->empty()) {
      *rows = std::move(out.rows);
    } else {
      rows->insert(rows->end(), std::make_move_iterator(out.rows.begin()),
                   std::make_move_iterator(out.rows.end()));
    }
  });
  if (tree_pruned) {
    const uint64_t skipped_count =
        static_cast<uint64_t>(view_->partition_count() - sources.size());
    result.metrics.partitions_total += skipped_count;
    result.metrics.partitions_pruned += skipped_count;
    table_entities = view_->entity_count();
  }
  for (const Row& row : *rows) result.cells_materialized += row.attribute_count();
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

OwnedQueryResult QueryOwnedRows(const ConcurrentTable& table,
                                const Predicate& predicate, int scan_threads) {
  OwnedQueryResult owned;
  table.WithReadLock([&](const PartitionCatalog& catalog) {
    QueryExecutor executor(catalog, scan_threads);
    // Copy the matched rows while the shared lock is still held; the
    // views ScanMatches yields die with the lock.
    owned.result = executor.ScanMatches(
        predicate,
        [&](const RowView& row) { owned.rows.push_back(row.ToRow()); });
    return 0;
  });
  return owned;
}

}  // namespace cinderella
