#include "query/executor.h"

#include <iterator>
#include <utility>

#include "core/concurrent_table.h"
#include "mvcc/partition_version.h"

namespace cinderella {
namespace {

// Partitions per scan chunk: coarse enough to amortize chunk dispatch,
// fine enough to rebalance irregular partition sizes across workers.
constexpr size_t kScanChunk = 4;

/// Uniform scan input: what one partition contributes to a scan, whether
/// it comes from the live catalog (heap-backed Row objects) or from an
/// arena-packed MVCC version (row headers plus one shared cell array).
/// Either way the scan body sees RowViews, so predicate evaluation and
/// projection are layout-agnostic.
struct ScanSource {
  SynopsisSpan synopsis;  // Pruning synopsis.
  // Exactly one layout is set per source.
  const std::vector<Row>* live_rows = nullptr;
  const PartitionVersion::PackedRow* packed_rows = nullptr;
  const Row::Cell* packed_cells = nullptr;
  size_t entities = 0;
  uint64_t cells = 0;
  uint64_t bytes = 0;

  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    if (live_rows != nullptr) {
      for (const Row& row : *live_rows) fn(RowView(row));
      return;
    }
    for (size_t i = 0; i < entities; ++i) {
      const PartitionVersion::PackedRow& row = packed_rows[i];
      fn(RowView(row.id, packed_cells + row.cell_begin, row.cell_count));
    }
  }
};

void AppendSources(const PartitionCatalog& catalog,
                   std::vector<ScanSource>* sources) {
  sources->reserve(catalog.partition_count());
  catalog.ForEachPartition([&](const Partition& partition) {
    ScanSource source;
    source.synopsis = partition.attribute_synopsis().span();
    source.live_rows = &partition.segment().rows();
    source.entities = partition.entity_count();
    source.cells = partition.segment().cell_count();
    source.bytes = partition.segment().byte_size();
    sources->push_back(source);
  });
}

void AppendSources(const CatalogView& view, std::vector<ScanSource>* sources) {
  sources->reserve(view.partition_count());
  view.ForEachPartition([&](const PartitionVersion& version) {
    ScanSource source;
    source.synopsis = version.attribute_synopsis();
    source.packed_rows = version.packed_rows();
    source.packed_cells = version.cell_data();
    source.entities = version.entity_count();
    source.cells = version.cell_count();
    source.bytes = version.byte_size();
    sources->push_back(source);
  });
}

std::vector<ScanSource> SnapshotSources(const PartitionCatalog* catalog,
                                        const CatalogView* view) {
  std::vector<ScanSource> sources;
  if (catalog != nullptr) {
    AppendSources(*catalog, &sources);
  } else {
    AppendSources(*view, &sources);
  }
  return sources;
}

void MergeMetrics(const ScanMetrics& from, ScanMetrics* into) {
  into->partitions_total += from.partitions_total;
  into->partitions_scanned += from.partitions_scanned;
  into->partitions_pruned += from.partitions_pruned;
  into->rows_scanned += from.rows_scanned;
  into->rows_matched += from.rows_matched;
  into->cells_read += from.cells_read;
  into->bytes_read += from.bytes_read;
}

/// Runs `scan(source, &out)` over every partition source and feeds the
/// per-chunk outputs to `merge` in ascending partition-id order — the
/// merge sequence (and therefore every counter and buffer built from it)
/// is identical to a serial left-to-right scan at any pool degree. The
/// serial path produces one output for the whole range, so `merge` sees a
/// single already-ordered aggregate and buffers move instead of copy.
template <typename Out, typename Scan, typename Merge>
void ChunkedScan(ThreadPool* pool, const std::vector<ScanSource>& sources,
                 Scan&& scan, Merge&& merge) {
  const size_t num_chunks = ThreadPool::NumChunks(sources.size(), kScanChunk);
  if (pool == nullptr || num_chunks <= 1) {
    Out out;
    for (const ScanSource& source : sources) scan(source, &out);
    merge(std::move(out));
    return;
  }
  std::vector<Out> outs(num_chunks);
  pool->ParallelFor(sources.size(), kScanChunk,
                    [&](size_t begin, size_t end, size_t chunk_index) {
                      Out& out = outs[chunk_index];
                      for (size_t i = begin; i < end; ++i) {
                        scan(sources[i], &out);
                      }
                    });
  for (Out& out : outs) merge(std::move(out));
}

}  // namespace

ThreadPool* QueryExecutor::pool() {
  if (degree_ <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(degree_);
  return pool_.get();
}

QueryResult QueryExecutor::ScanMatchingRows(const Predicate& predicate) {
  QueryResult result;
  match_buffer_.clear();
  Synopsis pruning;
  const bool prunable = predicate.PruningSynopsis(&pruning);
  const std::vector<ScanSource> sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<RowView> matches;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    if (prunable && !source.synopsis.Intersects(pruning)) {
      ++out->metrics.partitions_pruned;
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    source.ForEachRow([&](const RowView& row) {
      if (predicate.Matches(row)) {
        ++out->metrics.rows_matched;
        out->matches.push_back(row);
      }
    });
  };
  ChunkedScan<Out>(pool(), sources, scan, [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (match_buffer_.empty()) {
      match_buffer_ = std::move(out.matches);
    } else {
      match_buffer_.insert(match_buffer_.end(), out.matches.begin(),
                           out.matches.end());
    }
  });
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

QueryResult QueryExecutor::ExecutePredicate(const Predicate& predicate) {
  return ScanMatches(predicate, [](const RowView&) {});
}

QueryResult QueryExecutor::ExecuteSelect(const SelectStatement& statement) {
  result_buffer_.clear();
  auto materialize = [&](const RowView& row) {
    if (statement.select_all) {
      for (const Row::Cell& cell : row) {
        result_buffer_.push_back(cell.value);
      }
      return;
    }
    for (AttributeId attribute : statement.projection) {
      const Value* value = row.Get(attribute);
      if (value != nullptr) result_buffer_.push_back(*value);
    }
  };
  QueryResult result;
  if (statement.where != nullptr) {
    result = ScanMatches(*statement.where, materialize);
  } else {
    // No WHERE: every entity matches; scan everything.
    const PredicatePtr match_all = And(std::vector<PredicatePtr>{});
    result = ScanMatches(*match_all, materialize);
  }
  result.cells_materialized = result_buffer_.size();
  return result;
}

QueryResult QueryExecutor::Execute(const Query& query) {
  QueryResult result;
  result_buffer_.clear();
  const std::vector<ScanSource> sources = SnapshotSources(catalog_, view_);
  size_t table_entities = 0;

  struct Out {
    ScanMetrics metrics;
    size_t entities = 0;
    std::vector<Value> values;
  };
  auto scan = [&](const ScanSource& source, Out* out) {
    ++out->metrics.partitions_total;
    out->entities += source.entities;
    // Definition 1 pruning: skip partitions with sgn(|p ∧ q|) = 0.
    if (!source.synopsis.Intersects(query.attributes())) {
      ++out->metrics.partitions_pruned;
      return;
    }
    ++out->metrics.partitions_scanned;
    out->metrics.rows_scanned += source.entities;
    out->metrics.cells_read += source.cells;
    out->metrics.bytes_read += source.bytes;
    source.ForEachRow([&](const RowView& row) {
      // OR-of-IS-NOT-NULL match; projection materializes the queried
      // attributes that are present.
      bool matched = false;
      for (AttributeId attribute : query.projection()) {
        const Value* value = row.Get(attribute);
        if (value != nullptr) {
          matched = true;
          out->values.push_back(*value);
        }
      }
      if (matched) ++out->metrics.rows_matched;
    });
  };
  ChunkedScan<Out>(pool(), sources, scan, [&](Out out) {
    MergeMetrics(out.metrics, &result.metrics);
    table_entities += out.entities;
    if (result_buffer_.empty()) {
      result_buffer_ = std::move(out.values);
    } else {
      result_buffer_.insert(result_buffer_.end(),
                            std::make_move_iterator(out.values.begin()),
                            std::make_move_iterator(out.values.end()));
    }
  });

  result.cells_materialized = result_buffer_.size();
  result.selectivity =
      table_entities > 0
          ? static_cast<double>(result.metrics.rows_matched) /
                static_cast<double>(table_entities)
          : 0.0;
  return result;
}

OwnedQueryResult QueryOwnedRows(const ConcurrentTable& table,
                                const Predicate& predicate, int scan_threads) {
  OwnedQueryResult owned;
  table.WithReadLock([&](const PartitionCatalog& catalog) {
    QueryExecutor executor(catalog, scan_threads);
    // Copy the matched rows while the shared lock is still held; the
    // views ScanMatches yields die with the lock.
    owned.result = executor.ScanMatches(
        predicate,
        [&](const RowView& row) { owned.rows.push_back(row.ToRow()); });
    return 0;
  });
  return owned;
}

}  // namespace cinderella
