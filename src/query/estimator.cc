#include "query/estimator.h"

#include <algorithm>
#include <cstdio>

#include "mvcc/partition_version.h"

namespace cinderella {
namespace {

// Shared over both metadata sources: PartitionCatalog yields Partition,
// CatalogView yields PartitionVersion; both expose id(), entity_count(),
// attribute_synopsis() and AttributeCarrierCount() with identical
// semantics, so the arithmetic is written once.
template <typename Catalog>
SelectivityEstimate EstimateImpl(const Catalog& catalog, const Query& query) {
  SelectivityEstimate estimate;
  catalog.ForEachPartition([&](const auto& partition) {
    const uint64_t n = partition.entity_count();
    estimate.table_entities += n;
    if (!partition.attribute_synopsis().Intersects(query.attributes())) {
      ++estimate.partitions_pruned;
      return;
    }
    ++estimate.partitions_scanned;
    uint64_t sum = 0;
    uint64_t peak = 0;
    double miss_probability = 1.0;
    for (AttributeId attribute : query.projection()) {
      const uint64_t carriers = partition.AttributeCarrierCount(attribute);
      sum += carriers;
      peak = std::max(peak, carriers);
      miss_probability *=
          1.0 - static_cast<double>(carriers) / static_cast<double>(n);
    }
    estimate.rows_lower_bound += peak;
    estimate.rows_upper_bound += std::min(n, sum);
    estimate.rows_estimate +=
        static_cast<double>(n) * (1.0 - miss_probability);
  });
  return estimate;
}

template <typename Catalog>
GroupCardinalityEstimate GroupCardinalityImpl(const Catalog& catalog,
                                              AttributeId attribute) {
  GroupCardinalityEstimate estimate;
  catalog.ForEachPartition([&](const auto& partition) {
    estimate.table_entities += partition.entity_count();
    const uint64_t carriers = partition.AttributeCarrierCount(attribute);
    if (carriers == 0) return;
    ++estimate.partitions_carrying;
    estimate.carrier_rows += carriers;
    estimate.max_partition_carriers =
        std::max(estimate.max_partition_carriers, carriers);
  });
  return estimate;
}

/// Catalog adapter that walks only the partitions the view's synopsis
/// tree keeps as candidates for `probe` — non-candidates cannot
/// intersect the probe (union soundness), so every estimator loop that
/// prunes on Intersects produces identical per-partition contributions;
/// only the table-wide totals need patching by the caller.
struct TreePrunedView {
  const CatalogView& view;
  const Synopsis& probe;

  template <typename Fn>
  void ForEachPartition(Fn&& fn) const {
    const std::vector<const PartitionVersion*>& parts = view.partitions();
    const std::vector<uint64_t>& words = probe.words();
    size_t i = 0;
    view.tree().ForEachCandidate(
        words.data(), words.size(), [&](uint64_t key) {
          while (i < parts.size() && parts[i]->id() < key) ++i;
          if (i < parts.size() && parts[i]->id() == key) fn(*parts[i++]);
        });
  }
};

template <typename Catalog>
std::string ExplainImpl(const Catalog& catalog, const Query& query,
                        size_t max_partitions,
                        const SelectivityEstimate& estimate) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "query %s over %llu entities in %llu partitions\n",
                query.ToString().c_str(),
                static_cast<unsigned long long>(estimate.table_entities),
                static_cast<unsigned long long>(estimate.partitions_scanned +
                                                estimate.partitions_pruned));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "scan %llu partitions, prune %llu; expected rows %.0f (bounds "
      "[%llu, %llu]), selectivity ~%.4f\n",
      static_cast<unsigned long long>(estimate.partitions_scanned),
      static_cast<unsigned long long>(estimate.partitions_pruned),
      estimate.rows_estimate,
      static_cast<unsigned long long>(estimate.rows_lower_bound),
      static_cast<unsigned long long>(estimate.rows_upper_bound),
      estimate.selectivity_estimate());
  out += line;

  size_t listed = 0;
  catalog.ForEachPartition([&](const auto& partition) {
    if (!partition.attribute_synopsis().Intersects(query.attributes())) {
      return;
    }
    if (listed >= max_partitions) return;
    ++listed;
    uint64_t sum = 0;
    for (AttributeId attribute : query.projection()) {
      sum += partition.AttributeCarrierCount(attribute);
    }
    std::snprintf(line, sizeof(line),
                  "  scan partition %u: %zu entities, %zu attributes, <= "
                  "%llu matches\n",
                  partition.id(), partition.entity_count(),
                  partition.attribute_synopsis().Count(),
                  static_cast<unsigned long long>(
                      std::min<uint64_t>(partition.entity_count(), sum)));
    out += line;
  });
  if (listed < estimate.partitions_scanned) {
    std::snprintf(line, sizeof(line), "  ... %llu more partitions\n",
                  static_cast<unsigned long long>(estimate.partitions_scanned -
                                                  listed));
    out += line;
  }
  return out;
}

}  // namespace

SelectivityEstimate EstimateSelectivity(const PartitionCatalog& catalog,
                                        const Query& query) {
  return EstimateImpl(catalog, query);
}

SelectivityEstimate EstimateSelectivity(const CatalogView& view,
                                        const Query& query) {
  if (!view.tree().valid()) return EstimateImpl(view, query);
  SelectivityEstimate estimate =
      EstimateImpl(TreePrunedView{view, query.attributes()}, query);
  // Tree-skipped partitions would all have counted as pruned; their
  // entities still belong in the table total.
  estimate.partitions_pruned += view.partition_count() -
                                (estimate.partitions_scanned +
                                 estimate.partitions_pruned);
  estimate.table_entities = view.entity_count();
  return estimate;
}

GroupCardinalityEstimate EstimateGroupCardinality(
    const PartitionCatalog& catalog, AttributeId attribute) {
  return GroupCardinalityImpl(catalog, attribute);
}

GroupCardinalityEstimate EstimateGroupCardinality(const CatalogView& view,
                                                  AttributeId attribute) {
  return GroupCardinalityImpl(view, attribute);
}

std::string ExplainQuery(const PartitionCatalog& catalog, const Query& query,
                         size_t max_partitions) {
  return ExplainImpl(catalog, query, max_partitions,
                     EstimateImpl(catalog, query));
}

std::string ExplainQuery(const CatalogView& view, const Query& query,
                         size_t max_partitions) {
  // The partition listing only prints intersecting partitions, so the
  // tree-pruned walk renders the same text; the header totals come from
  // the (already patched) estimate.
  const SelectivityEstimate estimate = EstimateSelectivity(view, query);
  if (!view.tree().valid()) {
    return ExplainImpl(view, query, max_partitions, estimate);
  }
  return ExplainImpl(TreePrunedView{view, query.attributes()}, query,
                     max_partitions, estimate);
}

}  // namespace cinderella
