#ifndef CINDERELLA_QUERY_AGGREGATOR_H_
#define CINDERELLA_QUERY_AGGREGATOR_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/catalog.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "storage/value.h"

namespace cinderella {

class CatalogView;  // mvcc/partition_version.h

/// How the parallel GROUP BY engine combines per-row updates into one
/// result table. All strategies produce bit-identical results (see
/// AggregationResult); they differ only in memory traffic and contention,
/// so the right one depends on the group cardinality the query produces —
/// which is unknown until run time. kAdaptive picks per query from a
/// synopsis-derived cardinality estimate refined by a deterministic row
/// sample.
enum class AggregateStrategy {
  kAdaptive,     // Choose per query (the default).
  kTwoPhase,     // Thread-local hash tables, centralized ordered merge.
  kRadix,        // Hash-partition rows, then merge disjoint buckets.
  kSharedTable,  // One open-addressing table with atomic accumulators.
};

/// Short stable name for logs/benches ("adaptive", "two_phase", ...).
const char* AggregateStrategyName(AggregateStrategy strategy);

/// One GROUP BY query: group rows by `group_by`, optionally aggregating
/// the numeric attribute `value` within each group, over the rows matching
/// `where` (all rows when null). Rows lacking `group_by` never
/// participate.
struct AggregateSpec {
  /// Sentinel for `value`: COUNT-only aggregation.
  static constexpr AttributeId kNoValue =
      std::numeric_limits<AttributeId>::max();

  AttributeId group_by = 0;
  AttributeId value = kNoValue;
  const Predicate* where = nullptr;
};

/// One output group. The value aggregates are exact integer arithmetic:
/// int64 cells contribute as-is, double cells truncate via
/// static_cast<int64_t>, string cells are counted (`count`) but excluded
/// from the value aggregates — so every accumulator is commutative and
/// associative, which is what makes all strategies bit-identical at any
/// thread count. sum/min/max are meaningful only when value_count > 0.
struct GroupResult {
  Value key;
  uint64_t count = 0;        // Participating rows in this group.
  uint64_t value_count = 0;  // Rows contributing to sum/min/max.
  int64_t sum = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  /// Mean of the contributing values, derived from the exact integer
  /// sum/value_count pair. Because both operands are bit-identical across
  /// strategies and thread counts, so is the quotient. 0.0 when no row
  /// contributed a value (callers should render SQL NULL in that case).
  double avg() const {
    return value_count > 0
               ? static_cast<double>(sum) / static_cast<double>(value_count)
               : 0.0;
  }

  friend bool operator==(const GroupResult& a, const GroupResult& b) {
    return a.key == b.key && a.count == b.count &&
           a.value_count == b.value_count && a.sum == b.sum &&
           a.min == b.min && a.max == b.max;
  }
};

/// Aggregation output. `groups` is sorted ascending by ValueLess on the
/// key — the canonical order every strategy, thread count, and source
/// (live catalog or pinned snapshot of the same data) reproduces exactly.
struct AggregationResult {
  std::vector<GroupResult> groups;
  ScanMetrics metrics;  // rows_matched counts participating rows.
  /// The strategy that produced `groups` (never kAdaptive: the chooser's
  /// decision is reported; a shared-table overflow rerun reports
  /// kTwoPhase).
  AggregateStrategy strategy_used = AggregateStrategy::kTwoPhase;
  /// The chooser's distinct-group estimate (0 when a fixed strategy was
  /// forced).
  uint64_t estimated_groups = 0;
  /// True if kSharedTable overflowed its fixed-capacity table and the
  /// query was deterministically rerun with kTwoPhase.
  bool shared_table_overflow = false;
};

/// Tuning knobs. The defaults make the chooser's decisions reproducible:
/// everything it looks at (synopsis counts, a row sample in partition
/// order) is deterministic.
struct AggregatorOptions {
  /// Scan parallelism; QueryExecutor conventions (1 = serial, 0 = resolve
  /// from CINDERELLA_SCAN_THREADS / hardware concurrency).
  int scan_threads = 1;
  /// Morsel size in partitions (0 = CINDERELLA_SCAN_CHUNK /
  /// ThreadPool::kDefaultScanChunk).
  size_t morsel = 0;
  /// kAdaptive, or force a fixed strategy (benches, tests).
  AggregateStrategy strategy = AggregateStrategy::kAdaptive;
  /// Legacy uniform pre-split instead of the guided morsel schedule
  /// (scheduling bench baseline).
  bool fixed_chunks = false;
  /// Rows the chooser samples (first participating rows in partition
  /// order; the estimate is exact when the sample covers every row).
  size_t sample_rows = 4096;
  /// Estimated groups at or below this use the shared atomic table
  /// (contention is low when many rows share few hot slots -- unless one
  /// group dominates; see the top-share guard in the chooser).
  size_t shared_max_groups = 4096;
  /// Estimated groups at or above this use radix partitioning: one table
  /// of every group falls out of L2 around this size, while radix keeps
  /// each bucket's table 1/64th of it (and per-thread tables would each
  /// grow to the full group count).
  size_t radix_min_groups = 16384;
  /// Shared-table slot count override (0 = derived from the estimate;
  /// rounded up to a power of two). Overflow falls back to kTwoPhase.
  size_t shared_table_capacity = 0;
};

/// Parallel GROUP BY operator over a partition catalog or a pinned MVCC
/// snapshot, morsel-scheduled like QueryExecutor (same ScanSource
/// plumbing, same pruning, same determinism contract: results are
/// bit-identical across strategies, thread counts, and schedules).
///
/// Not thread-safe; use one instance per querying thread. When
/// constructed over a CatalogView, the view must stay pinned for the
/// Aggregate calls' duration.
class Aggregator {
 public:
  explicit Aggregator(const PartitionCatalog& catalog,
                      AggregatorOptions options = {});
  explicit Aggregator(const CatalogView& view, AggregatorOptions options = {});

  /// Runs one GROUP BY query; picks the strategy per `options.strategy`.
  AggregationResult Aggregate(const AggregateSpec& spec);

  /// Effective scan parallelism (1 = serial).
  int scan_degree() const { return degree_; }

  /// Attaches a per-partition scan observer (tuner workload tracking);
  /// nullptr detaches. Same contract as QueryExecutor::set_observer: the
  /// observer sees one OnScan per Aggregate call with the effective
  /// pruning synopsis (group attribute ∪ WHERE pruning synopsis) and the
  /// id-ordered partition touches; touch collection is skipped entirely
  /// while no observer is attached.
  void set_observer(ScanObserver* observer) { observer_ = observer; }

 private:
  ThreadPool* pool();

  AggregateStrategy Choose(const AggregateSpec& spec,
                           uint64_t* estimated_groups) const;

  // Exactly one of the two sources is set.
  const PartitionCatalog* catalog_ = nullptr;
  const CatalogView* view_ = nullptr;
  AggregatorOptions options_;
  int degree_;
  size_t morsel_;
  ScanObserver* observer_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_AGGREGATOR_H_
