#ifndef CINDERELLA_QUERY_QUERY_H_
#define CINDERELLA_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "synopsis/attribute_dictionary.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// An attribute-set query over the universal table, the paper's workload
/// shape (Section V.B):
///
///   SELECT a1, a2, ... FROM universalTable
///   WHERE a1 IS NOT NULL OR a2 IS NOT NULL ...
///
/// An entity matches iff it instantiates at least one of the queried
/// attributes; the projection returns exactly the queried attributes. The
/// query synopsis used for partition pruning is the queried attribute set
/// (Definition 1: prune p when sgn(|p ∧ q|) = 0).
class Query {
 public:
  Query() = default;

  /// Builds a query over attribute ids.
  explicit Query(Synopsis attributes);

  /// Builds a query over attribute names; names unknown to the dictionary
  /// are dropped (they can match nothing).
  static Query FromNames(const AttributeDictionary& dictionary,
                         const std::vector<std::string>& names);

  const Synopsis& attributes() const { return attributes_; }

  /// Queried attribute ids in ascending order (projection list).
  const std::vector<AttributeId>& projection() const { return projection_; }

  /// True if the entity with this attribute synopsis matches.
  bool Matches(const Synopsis& entity_attributes) const {
    return attributes_.Intersects(entity_attributes);
  }

  std::string ToString() const { return attributes_.ToString(); }

 private:
  Synopsis attributes_;
  std::vector<AttributeId> projection_;
};

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_QUERY_H_
