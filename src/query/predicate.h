#ifndef CINDERELLA_QUERY_PREDICATE_H_
#define CINDERELLA_QUERY_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/row.h"
#include "storage/value.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Comparison operators on attribute values.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A row predicate evaluated *after* synopsis pruning.
///
/// The paper's workload uses pure attribute-set queries
/// (`a IS NOT NULL OR b IS NOT NULL`); real applications additionally
/// filter on values (`weight > 100`). Predicates report the attribute set
/// they *require* so the executor can keep pruning partitions: a partition
/// can be skipped when it cannot contain any matching row, i.e. when the
/// predicate's prunable attribute set does not intersect the partition
/// synopsis.
///
/// Evaluation semantics on sparse rows: a comparison on a missing
/// attribute is false (SQL's NULL comparison semantics collapsed to
/// two-valued logic), and NOT(missing comparison) is true.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// True if `row` satisfies the predicate. Takes a RowView so the same
  /// evaluation runs over heap Rows (which convert implicitly) and over
  /// the packed cell arrays of arena-backed MVCC versions.
  virtual bool Matches(const RowView& row) const = 0;

  /// Conservative pruning set: a partition whose synopsis does not
  /// intersect this set cannot contain a matching row. Returns false when
  /// no such set exists (e.g. a negation can match rows lacking every
  /// attribute), in which case the partition must be scanned.
  virtual bool PruningSynopsis(Synopsis* out) const = 0;

  /// Human-readable rendering for diagnostics.
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::unique_ptr<Predicate>;

/// attribute IS NOT NULL.
PredicatePtr IsNotNull(AttributeId attribute);

/// attribute <op> literal. A row lacking the attribute never matches.
/// Comparisons between numeric types (int64/double) coerce; comparing a
/// number with a string is always false.
PredicatePtr Compare(AttributeId attribute, CompareOp op, Value literal);

/// Conjunction; matches when every child matches. With no children it
/// matches everything.
PredicatePtr And(std::vector<PredicatePtr> children);

/// Disjunction; matches when any child matches. With no children it
/// matches nothing.
PredicatePtr Or(std::vector<PredicatePtr> children);

/// Negation.
PredicatePtr Not(PredicatePtr child);

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_PREDICATE_H_
