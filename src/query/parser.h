#ifndef CINDERELLA_QUERY_PARSER_H_
#define CINDERELLA_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "synopsis/attribute_dictionary.h"

namespace cinderella {

/// Aggregate function of one SELECT item (GROUP BY queries only).
/// AVG is derived exactly from the engine's SUM/COUNT pair at render
/// time (GroupResult::avg()), so it inherits the bit-identical
/// determinism of the integer accumulators across all strategies.
enum class AggregateFn { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate in the SELECT list: COUNT(*), COUNT(a), SUM(a), MIN(a)
/// or MAX(a).
struct AggregateItem {
  AggregateFn fn = AggregateFn::kCount;
  /// Aggregated attribute (unused when count_all).
  AttributeId attribute = 0;
  /// COUNT(*): counts every participating row, no attribute involved.
  bool count_all = false;
};

/// A parsed and bound SELECT statement.
struct SelectStatement {
  /// Projected attribute ids (empty when select_all). For a GROUP BY
  /// query this holds the plain (non-aggregate) SELECT items, which the
  /// parser has validated to be the grouping attribute.
  std::vector<AttributeId> projection;
  bool select_all = false;
  /// Bound WHERE predicate; null = no WHERE clause (match every entity).
  PredicatePtr where;
  /// Aggregate SELECT items, in SELECT-list order (empty for a plain
  /// projection query). Non-empty implies has_group_by: the parser
  /// rejects aggregates without a GROUP BY clause, and requires every
  /// attribute-taking aggregate to reference one common value attribute
  /// (the engine aggregates a single value column per query).
  std::vector<AggregateItem> aggregates;
  /// GROUP BY clause (single attribute).
  bool has_group_by = false;
  AttributeId group_by = 0;
};

/// Parses the mini query language used by the CLI and examples against
/// the universal table:
///
///   SELECT a, b WHERE a IS NOT NULL OR b IS NOT NULL     (the paper's shape)
///   SELECT * WHERE weight > 100 AND (tuner IS NULL OR screen >= 40)
///   SELECT name
///   SELECT type, COUNT(*), SUM(price) WHERE price > 0 GROUP BY type
///
/// Grammar (case-insensitive keywords):
///   statement  := SELECT projection [WHERE or_expr] [GROUP BY name]
///   projection := '*' | item (',' item)*
///   item       := name | COUNT '(' '*' ')'
///               | (COUNT|SUM|MIN|MAX|AVG) '(' name ')'
///   or_expr    := and_expr (OR and_expr)*
///   and_expr   := unary (AND unary)*
///   unary      := NOT unary | '(' or_expr ')' | comparison
///   comparison := name IS [NOT] NULL
///               | name ('='|'!='|'<>'|'<'|'<='|'>'|'>=') literal
///   literal    := integer | decimal | 'single-quoted string'
///   name       := [A-Za-z_][A-Za-z0-9_]* | "double-quoted name"
///
/// Aggregates are only legal with GROUP BY; a plain name in an aggregate
/// query must be the grouping attribute, and every attribute-taking
/// aggregate must reference the same value attribute. COUNT, SUM, MIN,
/// MAX, AVG parse as aggregate functions only when followed by '(' — as
/// bare names they stay ordinary attributes.
///
/// Attribute names are bound against `dictionary`; unknown names are an
/// InvalidArgument error (the table has never seen such an attribute).
StatusOr<SelectStatement> ParseSelect(const std::string& text,
                                      const AttributeDictionary& dictionary);

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_PARSER_H_
