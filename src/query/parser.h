#ifndef CINDERELLA_QUERY_PARSER_H_
#define CINDERELLA_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "synopsis/attribute_dictionary.h"

namespace cinderella {

/// A parsed and bound SELECT statement.
struct SelectStatement {
  /// Projected attribute ids (empty when select_all).
  std::vector<AttributeId> projection;
  bool select_all = false;
  /// Bound WHERE predicate; null = no WHERE clause (match every entity).
  PredicatePtr where;
};

/// Parses the mini query language used by the CLI and examples against
/// the universal table:
///
///   SELECT a, b WHERE a IS NOT NULL OR b IS NOT NULL     (the paper's shape)
///   SELECT * WHERE weight > 100 AND (tuner IS NULL OR screen >= 40)
///   SELECT name
///
/// Grammar (case-insensitive keywords):
///   statement  := SELECT projection [WHERE or_expr]
///   projection := '*' | name (',' name)*
///   or_expr    := and_expr (OR and_expr)*
///   and_expr   := unary (AND unary)*
///   unary      := NOT unary | '(' or_expr ')' | comparison
///   comparison := name IS [NOT] NULL
///               | name ('='|'!='|'<>'|'<'|'<='|'>'|'>=') literal
///   literal    := integer | decimal | 'single-quoted string'
///   name       := [A-Za-z_][A-Za-z0-9_]* | "double-quoted name"
///
/// Attribute names are bound against `dictionary`; unknown names are an
/// InvalidArgument error (the table has never seen such an attribute).
StatusOr<SelectStatement> ParseSelect(const std::string& text,
                                      const AttributeDictionary& dictionary);

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_PARSER_H_
