#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace cinderella {
namespace {

enum class TokenKind {
  kIdentifier,  // Bare or double-quoted name; keywords resolved later.
  kString,      // Single-quoted literal.
  kInteger,
  kDecimal,
  kSymbol,  // ( ) , = != <> < <= > >= *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Identifier/symbol spelling or string payload.
  int64_t integer = 0;
  double decimal = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' &&
                  pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        CINDERELLA_RETURN_IF_ERROR(LexNumber(&tokens));
      } else if (c == '\'') {
        CINDERELLA_RETURN_IF_ERROR(LexQuoted('\'', TokenKind::kString,
                                             &tokens));
      } else if (c == '"') {
        CINDERELLA_RETURN_IF_ERROR(LexQuoted('"', TokenKind::kIdentifier,
                                             &tokens));
      } else {
        CINDERELLA_RETURN_IF_ERROR(LexSymbol(&tokens));
      }
    }
    tokens.push_back(Token{});  // kEnd.
    return tokens;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdentifier() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    Token token;
    token.kind = TokenKind::kIdentifier;
    token.text = text_.substr(start, pos_ - start);
    return token;
  }

  Status LexNumber(std::vector<Token>* tokens) {
    const size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool decimal = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      decimal |= text_[pos_] == '.';
      ++pos_;
    }
    const std::string spelling = text_.substr(start, pos_ - start);
    Token token;
    char* end = nullptr;
    if (decimal) {
      token.kind = TokenKind::kDecimal;
      token.decimal = std::strtod(spelling.c_str(), &end);
    } else {
      token.kind = TokenKind::kInteger;
      token.integer = std::strtoll(spelling.c_str(), &end, 10);
    }
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad number '" + spelling + "'");
    }
    tokens->push_back(std::move(token));
    return Status::OK();
  }

  Status LexQuoted(char quote, TokenKind kind, std::vector<Token>* tokens) {
    ++pos_;  // Opening quote.
    std::string payload;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      payload.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated quote");
    }
    ++pos_;  // Closing quote.
    Token token;
    token.kind = kind;
    token.text = std::move(payload);
    tokens->push_back(std::move(token));
    return Status::OK();
  }

  Status LexSymbol(std::vector<Token>* tokens) {
    // The token text is built with a string *constructor* rather than
    // assigned into a default-constructed Token: GCC 12's Release-mode
    // string inlining misreports assignment into the fresh SSO buffer as
    // -Werror=restrict / -Werror=maybe-uninitialized.
    static constexpr const char* kTwoChar[] = {"!=", "<>", "<=", ">="};
    for (const char* two : kTwoChar) {
      if (text_.compare(pos_, 2, two) == 0) {
        Token token{TokenKind::kSymbol, std::string(two, 2), 0, 0.0};
        pos_ += 2;
        tokens->push_back(std::move(token));
        return Status::OK();
      }
    }
    const char c = text_[pos_];
    if (c == '(' || c == ')' || c == ',' || c == '=' || c == '<' ||
        c == '>' || c == '*') {
      Token token{TokenKind::kSymbol, std::string(1, c), 0, 0.0};
      ++pos_;
      tokens->push_back(std::move(token));
      return Status::OK();
    }
    return Status::InvalidArgument(std::string("unexpected character '") +
                                   c + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const AttributeDictionary& dictionary)
      : tokens_(std::move(tokens)), dictionary_(dictionary) {}

  StatusOr<SelectStatement> Parse() {
    CINDERELLA_RETURN_IF_ERROR(ExpectKeyword("select"));
    SelectStatement statement;
    CINDERELLA_RETURN_IF_ERROR(ParseProjection(&statement));
    if (IsKeyword("where")) {
      ++pos_;
      StatusOr<PredicatePtr> where = ParseOr();
      CINDERELLA_RETURN_IF_ERROR(where.status());
      statement.where = std::move(where).value();
    }
    if (IsKeyword("group")) {
      ++pos_;
      CINDERELLA_RETURN_IF_ERROR(ExpectKeyword("by"));
      if (Current().kind != TokenKind::kIdentifier) {
        return Status::InvalidArgument("expected attribute name in GROUP BY");
      }
      StatusOr<AttributeId> id = BindName(Current().text);
      CINDERELLA_RETURN_IF_ERROR(id.status());
      statement.has_group_by = true;
      statement.group_by = *id;
      ++pos_;
    }
    if (Current().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input after statement: '" +
                                     Current().text + "'");
    }
    CINDERELLA_RETURN_IF_ERROR(ValidateAggregation(statement));
    return statement;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }

  bool IsSymbol(const char* symbol) const {
    return Current().kind == TokenKind::kSymbol && Current().text == symbol;
  }

  bool IsKeyword(const char* keyword) const {
    return Current().kind == TokenKind::kIdentifier &&
           Lower(Current().text) == keyword;
  }

  Status ExpectKeyword(const char* keyword) {
    if (!IsKeyword(keyword)) {
      return Status::InvalidArgument(std::string("expected ") + keyword);
    }
    ++pos_;
    return Status::OK();
  }

  StatusOr<AttributeId> BindName(const std::string& name) {
    const auto id = dictionary_.Find(name);
    if (!id.has_value()) {
      return Status::InvalidArgument("unknown attribute '" + name + "'");
    }
    return *id;
  }

  /// Returns the aggregate function named by the current token, if the
  /// next token opens an argument list — COUNT/SUM/MIN/MAX/AVG stay
  /// ordinary attribute names unless followed by '('.
  bool PeekAggregate(AggregateFn* fn) const {
    if (Current().kind != TokenKind::kIdentifier) return false;
    const Token& next = tokens_[pos_ + 1];
    if (next.kind != TokenKind::kSymbol || next.text != "(") return false;
    const std::string name = Lower(Current().text);
    if (name == "count") {
      *fn = AggregateFn::kCount;
    } else if (name == "sum") {
      *fn = AggregateFn::kSum;
    } else if (name == "min") {
      *fn = AggregateFn::kMin;
    } else if (name == "max") {
      *fn = AggregateFn::kMax;
    } else if (name == "avg") {
      *fn = AggregateFn::kAvg;
    } else {
      return false;
    }
    return true;
  }

  Status ParseAggregate(AggregateFn fn, SelectStatement* statement) {
    pos_ += 2;  // Function name and '('.
    AggregateItem item;
    item.fn = fn;
    if (IsSymbol("*")) {
      if (fn != AggregateFn::kCount) {
        return Status::InvalidArgument("'*' is only valid in COUNT(*)");
      }
      item.count_all = true;
      ++pos_;
    } else {
      if (Current().kind != TokenKind::kIdentifier) {
        return Status::InvalidArgument("expected attribute name in aggregate");
      }
      StatusOr<AttributeId> id = BindName(Current().text);
      CINDERELLA_RETURN_IF_ERROR(id.status());
      item.attribute = *id;
      ++pos_;
    }
    if (!IsSymbol(")")) {
      return Status::InvalidArgument("expected ')' after aggregate argument");
    }
    ++pos_;
    statement->aggregates.push_back(item);
    return Status::OK();
  }

  Status ParseProjection(SelectStatement* statement) {
    if (IsSymbol("*")) {
      ++pos_;
      statement->select_all = true;
      return Status::OK();
    }
    while (true) {
      AggregateFn fn;
      if (PeekAggregate(&fn)) {
        CINDERELLA_RETURN_IF_ERROR(ParseAggregate(fn, statement));
      } else if (Current().kind == TokenKind::kIdentifier) {
        StatusOr<AttributeId> id = BindName(Current().text);
        CINDERELLA_RETURN_IF_ERROR(id.status());
        statement->projection.push_back(*id);
        ++pos_;
      } else {
        return Status::InvalidArgument("expected attribute name in SELECT");
      }
      if (!IsSymbol(",")) break;
      ++pos_;
    }
    return Status::OK();
  }

  /// GROUP BY shape checks: aggregates require GROUP BY; plain items in
  /// an aggregate query must be the grouping attribute; attribute-taking
  /// aggregates must share one value attribute (the engine aggregates a
  /// single value column per query).
  static Status ValidateAggregation(const SelectStatement& statement) {
    if (!statement.has_group_by) {
      if (!statement.aggregates.empty()) {
        return Status::InvalidArgument(
            "aggregate functions require a GROUP BY clause");
      }
      return Status::OK();
    }
    if (statement.select_all) {
      return Status::InvalidArgument("SELECT * cannot be grouped");
    }
    if (statement.aggregates.empty()) {
      return Status::InvalidArgument(
          "GROUP BY requires at least one aggregate in SELECT");
    }
    for (AttributeId attribute : statement.projection) {
      if (attribute != statement.group_by) {
        return Status::InvalidArgument(
            "non-aggregate SELECT item must be the GROUP BY attribute");
      }
    }
    bool have_value = false;
    AttributeId value = 0;
    for (const AggregateItem& item : statement.aggregates) {
      if (item.count_all) continue;
      if (have_value && item.attribute != value) {
        return Status::InvalidArgument(
            "all aggregates must reference one common value attribute");
      }
      have_value = true;
      value = item.attribute;
    }
    return Status::OK();
  }

  StatusOr<PredicatePtr> ParseOr() {
    StatusOr<PredicatePtr> first = ParseAnd();
    CINDERELLA_RETURN_IF_ERROR(first.status());
    std::vector<PredicatePtr> children;
    children.push_back(std::move(first).value());
    while (IsKeyword("or")) {
      ++pos_;
      StatusOr<PredicatePtr> next = ParseAnd();
      CINDERELLA_RETURN_IF_ERROR(next.status());
      children.push_back(std::move(next).value());
    }
    if (children.size() == 1) return std::move(children.front());
    return Or(std::move(children));
  }

  StatusOr<PredicatePtr> ParseAnd() {
    StatusOr<PredicatePtr> first = ParseUnary();
    CINDERELLA_RETURN_IF_ERROR(first.status());
    std::vector<PredicatePtr> children;
    children.push_back(std::move(first).value());
    while (IsKeyword("and")) {
      ++pos_;
      StatusOr<PredicatePtr> next = ParseUnary();
      CINDERELLA_RETURN_IF_ERROR(next.status());
      children.push_back(std::move(next).value());
    }
    if (children.size() == 1) return std::move(children.front());
    return And(std::move(children));
  }

  StatusOr<PredicatePtr> ParseUnary() {
    if (IsKeyword("not")) {
      ++pos_;
      StatusOr<PredicatePtr> child = ParseUnary();
      CINDERELLA_RETURN_IF_ERROR(child.status());
      return Not(std::move(child).value());
    }
    if (IsSymbol("(")) {
      ++pos_;
      StatusOr<PredicatePtr> inner = ParseOr();
      CINDERELLA_RETURN_IF_ERROR(inner.status());
      if (!IsSymbol(")")) {
        return Status::InvalidArgument("expected ')'");
      }
      ++pos_;
      return inner;
    }
    return ParseComparison();
  }

  StatusOr<PredicatePtr> ParseComparison() {
    if (Current().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected attribute name, got '" +
                                     Current().text + "'");
    }
    StatusOr<AttributeId> id = BindName(Current().text);
    CINDERELLA_RETURN_IF_ERROR(id.status());
    ++pos_;

    if (IsKeyword("is")) {
      ++pos_;
      bool negated = false;
      if (IsKeyword("not")) {
        negated = true;
        ++pos_;
      }
      CINDERELLA_RETURN_IF_ERROR(ExpectKeyword("null"));
      // `a IS NOT NULL` is the positive form.
      return negated ? IsNotNull(*id) : Not(IsNotNull(*id));
    }

    if (Current().kind != TokenKind::kSymbol) {
      return Status::InvalidArgument("expected comparison operator");
    }
    CompareOp op;
    const std::string& symbol = Current().text;
    if (symbol == "=") {
      op = CompareOp::kEq;
    } else if (symbol == "!=" || symbol == "<>") {
      op = CompareOp::kNe;
    } else if (symbol == "<") {
      op = CompareOp::kLt;
    } else if (symbol == "<=") {
      op = CompareOp::kLe;
    } else if (symbol == ">") {
      op = CompareOp::kGt;
    } else if (symbol == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator '" + symbol + "'");
    }
    ++pos_;

    switch (Current().kind) {
      case TokenKind::kInteger: {
        const int64_t v = Current().integer;
        ++pos_;
        return Compare(*id, op, Value(v));
      }
      case TokenKind::kDecimal: {
        const double v = Current().decimal;
        ++pos_;
        return Compare(*id, op, Value(v));
      }
      case TokenKind::kString: {
        std::string v = Current().text;
        ++pos_;
        return Compare(*id, op, Value(std::move(v)));
      }
      default:
        return Status::InvalidArgument("expected literal after operator");
    }
  }

  std::vector<Token> tokens_;
  const AttributeDictionary& dictionary_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectStatement> ParseSelect(const std::string& text,
                                      const AttributeDictionary& dictionary) {
  Lexer lexer(text);
  StatusOr<std::vector<Token>> tokens = lexer.Tokenize();
  CINDERELLA_RETURN_IF_ERROR(tokens.status());
  Parser parser(std::move(tokens).value(), dictionary);
  return parser.Parse();
}

}  // namespace cinderella
