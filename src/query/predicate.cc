#include "query/predicate.h"

#include <utility>

namespace cinderella {
namespace {

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

// Three-way comparison of values; returns false in *comparable when the
// types cannot be compared (number vs string).
int CompareValues(const Value& a, const Value& b, bool* comparable) {
  *comparable = true;
  if (a.is_string() != b.is_string()) {
    *comparable = false;
    return 0;
  }
  if (a.is_string()) {
    return a.as_string().compare(b.as_string());
  }
  const double lhs = a.is_int64() ? static_cast<double>(a.as_int64())
                                  : a.as_double();
  const double rhs = b.is_int64() ? static_cast<double>(b.as_int64())
                                  : b.as_double();
  if (lhs < rhs) return -1;
  if (lhs > rhs) return 1;
  return 0;
}

class IsNotNullPredicate : public Predicate {
 public:
  explicit IsNotNullPredicate(AttributeId attribute)
      : attribute_(attribute) {}

  bool Matches(const RowView& row) const override {
    return row.Has(attribute_);
  }

  bool PruningSynopsis(Synopsis* out) const override {
    out->Add(attribute_);
    return true;
  }

  std::string ToString() const override {
    return "attr" + std::to_string(attribute_) + " IS NOT NULL";
  }

 private:
  AttributeId attribute_;
};

class ComparePredicate : public Predicate {
 public:
  ComparePredicate(AttributeId attribute, CompareOp op, Value literal)
      : attribute_(attribute), op_(op), literal_(std::move(literal)) {}

  bool Matches(const RowView& row) const override {
    const Value* value = row.Get(attribute_);
    if (value == nullptr) return false;
    bool comparable = false;
    const int cmp = CompareValues(*value, literal_, &comparable);
    if (!comparable) return false;
    switch (op_) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return false;
  }

  bool PruningSynopsis(Synopsis* out) const override {
    out->Add(attribute_);
    return true;
  }

  std::string ToString() const override {
    return "attr" + std::to_string(attribute_) + " " + OpName(op_) + " " +
           literal_.ToString();
  }

 private:
  AttributeId attribute_;
  CompareOp op_;
  Value literal_;
};

class AndPredicate : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  bool Matches(const RowView& row) const override {
    for (const PredicatePtr& child : children_) {
      if (!child->Matches(row)) return false;
    }
    return true;
  }

  bool PruningSynopsis(Synopsis* out) const override {
    // A match requires every child to match, so any single child's
    // prunable set works; intersecting would be even tighter, but the
    // synopsis test is per-attribute membership, so we use the first
    // prunable child (rows matching the AND carry at least one of its
    // attributes).
    for (const PredicatePtr& child : children_) {
      Synopsis child_set;
      if (child->PruningSynopsis(&child_set)) {
        out->UnionWith(child_set);
        return true;
      }
    }
    return false;
  }

  std::string ToString() const override {
    if (children_.empty()) return "TRUE";
    std::string s = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) s += " AND ";
      s += children_[i]->ToString();
    }
    return s + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  bool Matches(const RowView& row) const override {
    for (const PredicatePtr& child : children_) {
      if (child->Matches(row)) return true;
    }
    return false;
  }

  bool PruningSynopsis(Synopsis* out) const override {
    // Every child must be prunable; the union covers all ways to match.
    Synopsis united;
    for (const PredicatePtr& child : children_) {
      if (!child->PruningSynopsis(&united)) return false;
    }
    out->UnionWith(united);
    return true;
  }

  std::string ToString() const override {
    if (children_.empty()) return "FALSE";
    std::string s = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) s += " OR ";
      s += children_[i]->ToString();
    }
    return s + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  bool Matches(const RowView& row) const override {
    return !child_->Matches(row);
  }

  bool PruningSynopsis(Synopsis* out) const override {
    // NOT(p) can match rows with none of p's attributes; no safe set.
    (void)out;
    return false;
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

}  // namespace

PredicatePtr IsNotNull(AttributeId attribute) {
  return std::make_unique<IsNotNullPredicate>(attribute);
}

PredicatePtr Compare(AttributeId attribute, CompareOp op, Value literal) {
  return std::make_unique<ComparePredicate>(attribute, op,
                                            std::move(literal));
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_unique<AndPredicate>(std::move(children));
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_unique<OrPredicate>(std::move(children));
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_unique<NotPredicate>(std::move(child));
}

}  // namespace cinderella
