#ifndef CINDERELLA_QUERY_SCAN_SOURCE_H_
#define CINDERELLA_QUERY_SCAN_SOURCE_H_

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/catalog.h"
#include "mvcc/partition_version.h"
#include "query/executor.h"
#include "storage/cold_tier.h"
#include "storage/row.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Internal plumbing shared by the scan operators (query/executor.cc and
/// query/aggregator.cc). Not part of the public query API: the types here
/// borrow from a live catalog or a pinned MVCC view and die with it.

/// Uniform scan input: what one partition contributes to a scan, whether
/// it comes from the live catalog (heap-backed Row objects) or from an
/// arena-packed MVCC version (row headers plus one shared cell array).
/// Either way the scan body sees RowViews, so predicate evaluation,
/// projection, and aggregation are layout-agnostic.
struct ScanSource {
  PartitionId partition = 0;  // Catalog partition id (tuner attribution).
  SynopsisSpan synopsis;      // Pruning synopsis.
  // Exactly one layout is set per source: live catalog rows, packed MVCC
  // rows, or a cold page chain.
  const std::vector<Row>* live_rows = nullptr;
  const PartitionVersion::PackedRow* packed_rows = nullptr;
  const Row::Cell* packed_cells = nullptr;
  // Cold source: rows live in a page chain and are only fetched when the
  // scan actually reads them — a pruned cold partition costs zero I/O.
  // Fetched rows park in *cold_rows (deque: stable addresses), so the
  // RowViews the scan yields stay valid for as long as the deque is kept
  // alive; consumers that hold views past the scan retain the shared_ptr
  // (see QueryExecutor::cold_keepalive_).
  const ColdChain* cold_chain = nullptr;
  const ColdTier* cold_tier = nullptr;
  std::shared_ptr<std::deque<Row>> cold_rows;
  size_t entities = 0;
  uint64_t cells = 0;
  uint64_t bytes = 0;

  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    if (live_rows != nullptr) {
      for (const Row& row : *live_rows) fn(RowView(row));
      return;
    }
    if (cold_chain != nullptr) {
      if (cold_rows->empty()) {
        // A chain read can only fail on store corruption; scans have no
        // status channel, so treat that as fatal rather than silently
        // returning a truncated result.
        const Status read = cold_tier->ReadChain(
            *cold_chain,
            [&](Row&& row) { cold_rows->push_back(std::move(row)); });
        CINDERELLA_CHECK(read.ok());
      }
      for (const Row& row : *cold_rows) fn(RowView(row));
      return;
    }
    for (size_t i = 0; i < entities; ++i) {
      const PartitionVersion::PackedRow& row = packed_rows[i];
      fn(RowView(row.id, packed_cells + row.cell_begin, row.cell_count));
    }
  }
};

/// Builds the scan source for one MVCC version. A cold version's source
/// carries its page chain instead of packed rows.
inline ScanSource MakeVersionSource(const PartitionVersion& version) {
  ScanSource source;
  source.partition = version.id();
  source.synopsis = version.attribute_synopsis();
  source.entities = version.entity_count();
  source.cells = version.cell_count();
  source.bytes = version.byte_size();
  if (version.cold()) {
    source.cold_chain = version.cold_chain();
    source.cold_tier = version.cold_tier();
    source.cold_rows = std::make_shared<std::deque<Row>>();
  } else {
    source.packed_rows = version.packed_rows();
    source.packed_cells = version.cell_data();
  }
  return source;
}

inline void AppendSources(const PartitionCatalog& catalog,
                          std::vector<ScanSource>* sources) {
  sources->reserve(catalog.partition_count());
  catalog.ForEachPartition([&](const Partition& partition) {
    ScanSource source;
    source.partition = partition.id();
    source.synopsis = partition.attribute_synopsis().span();
    source.entities = partition.entity_count();
    if (partition.cold()) {
      // Cold live partition: segment is empty; scan through the chain.
      // Live-catalog scans run under the table's external serialization,
      // so the partition cannot fault in mid-scan.
      const ColdChain& chain = *partition.cold_chain();
      source.cold_chain = &chain;
      source.cold_tier = chain.tier;
      source.cold_rows = std::make_shared<std::deque<Row>>();
      source.cells = chain.cells;
      source.bytes = chain.bytes;
    } else {
      source.live_rows = &partition.segment().rows();
      source.cells = partition.segment().cell_count();
      source.bytes = partition.segment().byte_size();
    }
    sources->push_back(source);
  });
}

inline void AppendSources(const CatalogView& view,
                          std::vector<ScanSource>* sources) {
  sources->reserve(view.partition_count());
  view.ForEachPartition([&](const PartitionVersion& version) {
    sources->push_back(MakeVersionSource(version));
  });
}

/// Snapshot of whichever source the operator was constructed over
/// (exactly one of the two is non-null).
inline std::vector<ScanSource> SnapshotSources(const PartitionCatalog* catalog,
                                               const CatalogView* view) {
  std::vector<ScanSource> sources;
  if (catalog != nullptr) {
    AppendSources(*catalog, &sources);
  } else {
    AppendSources(*view, &sources);
  }
  return sources;
}

/// Appends one chunk's partition touches to the query-wide list. Chunks
/// merge in ascending partition-id order (ChunkedScan's contract), so the
/// concatenation is globally id-ordered — exactly what ScanObserver
/// promises.
inline void MergeTouches(std::vector<PartitionTouch>&& from,
                         std::vector<PartitionTouch>* into) {
  if (into->empty()) {
    *into = std::move(from);
    return;
  }
  into->insert(into->end(), from.begin(), from.end());
}

inline void MergeMetrics(const ScanMetrics& from, ScanMetrics* into) {
  into->partitions_total += from.partitions_total;
  into->partitions_scanned += from.partitions_scanned;
  into->partitions_pruned += from.partitions_pruned;
  into->rows_scanned += from.rows_scanned;
  into->rows_matched += from.rows_matched;
  into->cells_read += from.cells_read;
  into->bytes_read += from.bytes_read;
}

/// Runs `scan(source, &out)` over every partition source and feeds the
/// per-chunk outputs to `merge` in ascending partition-id order — the
/// merge sequence (and therefore every counter and buffer built from it)
/// is identical to a serial left-to-right scan at any pool degree. The
/// serial path produces one output for the whole range, so `merge` sees a
/// single already-ordered aggregate and buffers move instead of copy.
///
/// `morsel` is the scheduling granularity in partitions (see
/// ThreadPool::ResolveScanChunk). By default chunks follow the
/// morsel-driven guided schedule (ParallelForDynamic), so one oversized
/// partition no longer gates the batch; `fixed_chunks` selects the legacy
/// uniform pre-split (kept for the scheduling bench's baseline).
template <typename Out, typename Scan, typename Merge>
void ChunkedScan(ThreadPool* pool, size_t morsel, bool fixed_chunks,
                 const std::vector<ScanSource>& sources, Scan&& scan,
                 Merge&& merge) {
  const size_t num_chunks =
      pool == nullptr
          ? 1
          : (fixed_chunks
                 ? ThreadPool::NumChunks(sources.size(), morsel)
                 : ThreadPool::NumDynamicChunks(sources.size(), morsel,
                                                pool->degree()));
  if (pool == nullptr || num_chunks <= 1) {
    Out out;
    for (const ScanSource& source : sources) scan(source, &out);
    merge(std::move(out));
    return;
  }
  std::vector<Out> outs(num_chunks);
  const auto body = [&](size_t begin, size_t end, size_t chunk_index) {
    Out& out = outs[chunk_index];
    for (size_t i = begin; i < end; ++i) {
      scan(sources[i], &out);
    }
  };
  if (fixed_chunks) {
    pool->ParallelFor(sources.size(), morsel, body);
  } else {
    pool->ParallelForDynamic(sources.size(), morsel, body);
  }
  for (Out& out : outs) merge(std::move(out));
}

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_SCAN_SOURCE_H_
