#ifndef CINDERELLA_QUERY_EXECUTOR_H_
#define CINDERELLA_QUERY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/catalog.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "query/query.h"
#include "storage/value.h"

namespace cinderella {

/// Per-query execution counters. The deterministic counters make the
/// figure benches' shape assertions reproducible; wall time is measured by
/// the bench drivers around Execute().
struct ScanMetrics {
  uint64_t partitions_total = 0;
  uint64_t partitions_scanned = 0;  // Synopsis intersected the query.
  uint64_t partitions_pruned = 0;
  uint64_t rows_scanned = 0;  // Rows of scanned partitions.
  uint64_t rows_matched = 0;  // Rows satisfying the OR-of-IS-NOT-NULL.
  uint64_t cells_read = 0;    // Attribute cells of scanned rows.
  uint64_t bytes_read = 0;    // Byte footprint of scanned rows.
};

/// Cost model for a scan, mirroring the paper's prototype where the query
/// is rewritten to a UNION ALL over the matching partitions and "the
/// database system has to project all tuples of every involved partition
/// to the common schema" (Section V.B). The modeled cost charges the bytes
/// actually scanned plus a per-scanned-partition subplan overhead.
struct CostModel {
  /// Fixed cost per scanned partition (subplan startup, catalog lookup,
  /// projection setup), in byte-equivalents.
  double per_partition_overhead_bytes = 4096.0;
  /// Per-matched-row projection cost to the common schema, in
  /// byte-equivalents per attribute of the result schema.
  double per_row_projection_bytes = 4.0;
};

/// Result of executing one query.
struct QueryResult {
  ScanMetrics metrics;
  /// rows_matched / table entity count; the paper's selectivity axis.
  double selectivity = 0.0;
  /// Number of projected non-null cells materialized.
  uint64_t cells_materialized = 0;

  /// Modeled execution cost in byte-equivalents (see CostModel).
  double ModeledCost(const CostModel& model) const {
    return static_cast<double>(metrics.bytes_read) +
           model.per_partition_overhead_bytes *
               static_cast<double>(metrics.partitions_scanned) +
           model.per_row_projection_bytes *
               static_cast<double>(metrics.rows_matched);
  }
};

/// Executes attribute-set queries against a partition catalog with
/// synopsis-based pruning (the paper's rewrite to a UNION ALL over all
/// partitions containing the requested attributes).
class QueryExecutor {
 public:
  explicit QueryExecutor(const PartitionCatalog& catalog)
      : catalog_(&catalog) {}

  /// Scans all non-prunable partitions, materializing the projection of
  /// matching rows into an internal buffer (real work, so wall-clock
  /// measurements around this call are meaningful).
  QueryResult Execute(const Query& query);

  /// Predicate scan: prunes partitions via the predicate's conservative
  /// pruning synopsis (when one exists), then evaluates the predicate on
  /// every resident row of the remaining partitions.
  QueryResult ExecutePredicate(const Predicate& predicate);

  /// Executes a parsed SELECT statement (see query/parser.h): predicate
  /// scan with the statement's WHERE clause (or match-all) and
  /// materialization of the projected attributes.
  QueryResult ExecuteSelect(const SelectStatement& statement);

  /// Like ExecutePredicate, invoking `fn(const Row&)` for every match.
  template <typename Fn>
  QueryResult ScanMatches(const Predicate& predicate, Fn&& fn) {
    QueryResult result;
    Synopsis pruning;
    const bool prunable = predicate.PruningSynopsis(&pruning);
    size_t table_entities = 0;
    catalog_->ForEachPartition([&](const Partition& partition) {
      ++result.metrics.partitions_total;
      table_entities += partition.entity_count();
      if (prunable && !partition.attribute_synopsis().Intersects(pruning)) {
        ++result.metrics.partitions_pruned;
        return;
      }
      ++result.metrics.partitions_scanned;
      result.metrics.rows_scanned += partition.entity_count();
      result.metrics.cells_read += partition.segment().cell_count();
      result.metrics.bytes_read += partition.segment().byte_size();
      for (const Row& row : partition.segment().rows()) {
        if (predicate.Matches(row)) {
          ++result.metrics.rows_matched;
          fn(row);
        }
      }
    });
    result.selectivity =
        table_entities > 0
            ? static_cast<double>(result.metrics.rows_matched) /
                  static_cast<double>(table_entities)
            : 0.0;
    return result;
  }

 private:
  const PartitionCatalog* catalog_;
  // Reused materialization buffer (cleared per query).
  std::vector<Value> result_buffer_;
};

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_EXECUTOR_H_
