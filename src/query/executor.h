#ifndef CINDERELLA_QUERY_EXECUTOR_H_
#define CINDERELLA_QUERY_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/catalog.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "query/query.h"
#include "storage/row.h"
#include "storage/value.h"

namespace cinderella {

class CatalogView;       // mvcc/partition_version.h
class ConcurrentTable;   // core/concurrent_table.h

/// Per-query execution counters. The deterministic counters make the
/// figure benches' shape assertions reproducible; wall time is measured by
/// the bench drivers around Execute(). All counters are deterministic at
/// any scan degree: parallel chunks accumulate locally and are merged in
/// partition-id order.
struct ScanMetrics {
  uint64_t partitions_total = 0;
  uint64_t partitions_scanned = 0;  // Synopsis intersected the query.
  uint64_t partitions_pruned = 0;
  uint64_t rows_scanned = 0;  // Rows of scanned partitions.
  uint64_t rows_matched = 0;  // Rows satisfying the OR-of-IS-NOT-NULL.
  uint64_t cells_read = 0;    // Attribute cells of scanned rows.
  uint64_t bytes_read = 0;    // Byte footprint of scanned rows.
};

/// What one query did to one partition: pruned by the synopsis
/// (scanned == false, the partition was considered but never read) or
/// scanned, with the rows read and the rows that actually matched. A
/// scanned partition with rows_matched == 0 is a synopsis false positive.
/// Touches are reported in ascending partition-id order — the same
/// deterministic merge order as every other scan counter.
struct PartitionTouch {
  PartitionId partition = 0;
  bool scanned = false;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
};

/// Observer of per-partition scan outcomes, fed by QueryExecutor and
/// Aggregator after each query. `query` is the pruning synopsis the scan
/// used (empty when the predicate had no conservative synopsis); both
/// arguments borrow from the call frame and die with it. Implementations
/// must be thread-safe if the same observer is attached to executors on
/// several querying threads (the tuner's WorkloadTracker is); OnScan runs
/// once per query on the calling thread, never per row, so a mutex there
/// is cheap.
class ScanObserver {
 public:
  virtual ~ScanObserver() = default;
  virtual void OnScan(const Synopsis& query,
                      const std::vector<PartitionTouch>& touches) = 0;
};

/// Cost model for a scan, mirroring the paper's prototype where the query
/// is rewritten to a UNION ALL over the matching partitions and "the
/// database system has to project all tuples of every involved partition
/// to the common schema" (Section V.B). The modeled cost charges the bytes
/// actually scanned plus a per-scanned-partition subplan overhead.
struct CostModel {
  /// Fixed cost per scanned partition (subplan startup, catalog lookup,
  /// projection setup), in byte-equivalents.
  double per_partition_overhead_bytes = 4096.0;
  /// Per-matched-row projection cost to the common schema, in
  /// byte-equivalents per attribute of the result schema.
  double per_row_projection_bytes = 4.0;
};

/// Result of executing one query.
struct QueryResult {
  ScanMetrics metrics;
  /// rows_matched / table entity count; the paper's selectivity axis.
  double selectivity = 0.0;
  /// Number of projected non-null cells materialized.
  uint64_t cells_materialized = 0;

  /// Modeled execution cost in byte-equivalents (see CostModel).
  double ModeledCost(const CostModel& model) const {
    return static_cast<double>(metrics.bytes_read) +
           model.per_partition_overhead_bytes *
               static_cast<double>(metrics.partitions_scanned) +
           model.per_row_projection_bytes *
               static_cast<double>(metrics.rows_matched);
  }
};

/// Executes attribute-set queries against a partition catalog with
/// synopsis-based pruning (the paper's rewrite to a UNION ALL over all
/// partitions containing the requested attributes).
///
/// Threading: with `scan_threads` != 1 the partition scan is spread
/// across a fixed thread pool with morsel-driven scheduling — workers
/// claim chunks of `scan_chunk` partitions (and larger, up front) from an
/// atomic ticket counter, so one oversized partition no longer gates the
/// batch. Per-chunk metrics, matched rows and materialized cells are
/// merged in deterministic chunk order, so every result — counters,
/// selectivity, and the materialization buffer — is bit-identical to the
/// serial scan. The default is 1 (serial, the exact pre-threading
/// behavior); 0 resolves from CINDERELLA_SCAN_THREADS / hardware
/// concurrency. `scan_chunk` is the morsel granularity in partitions;
/// 0 resolves from CINDERELLA_SCAN_CHUNK, default
/// ThreadPool::kDefaultScanChunk. The executor itself is not
/// thread-safe; use one instance per querying thread.
class QueryExecutor {
 public:
  explicit QueryExecutor(const PartitionCatalog& catalog, int scan_threads = 1,
                         size_t scan_chunk = 0)
      : catalog_(&catalog),
        degree_(ThreadPool::ResolveDegree(scan_threads)),
        morsel_(ThreadPool::ResolveScanChunk(scan_chunk)) {}

  /// Executes against a pinned MVCC snapshot (mvcc/partition_version.h)
  /// instead of the live catalog: same pruning, same deterministic merge
  /// order, same counters — the view must stay pinned for the executor
  /// calls' duration. This is the lock-free read path of VersionedTable.
  explicit QueryExecutor(const CatalogView& view, int scan_threads = 1,
                         size_t scan_chunk = 0)
      : view_(&view),
        degree_(ThreadPool::ResolveDegree(scan_threads)),
        morsel_(ThreadPool::ResolveScanChunk(scan_chunk)) {}

  /// Scans all non-prunable partitions, materializing the projection of
  /// matching rows into an internal buffer (real work, so wall-clock
  /// measurements around this call are meaningful).
  QueryResult Execute(const Query& query);

  /// Predicate scan: prunes partitions via the predicate's conservative
  /// pruning synopsis (when one exists), then evaluates the predicate on
  /// every resident row of the remaining partitions.
  QueryResult ExecutePredicate(const Predicate& predicate);

  /// Executes a parsed SELECT statement (see query/parser.h): predicate
  /// scan with the statement's WHERE clause (or match-all) and
  /// materialization of the projected attributes.
  QueryResult ExecuteSelect(const SelectStatement& statement);

  /// Gather form of Execute: same pruning, same deterministic scan order,
  /// but every matched row is materialized as an owned Row holding
  /// exactly the projected cells that are present, filling `*rows`
  /// (cleared first) in partition-id-then-row order. This is the shippable result a
  /// networked node serves to the scatter/gather coordinator (net/): the
  /// rows survive the scan (and the snapshot pin) because they own their
  /// cells.
  QueryResult ExecuteGather(const Query& query, std::vector<Row>* rows);

  /// Like ExecutePredicate, invoking `fn(const RowView&)` for every match
  /// in partition-id-then-row order. Predicate evaluation may run on the
  /// scan pool; `fn` always runs on the calling thread, after the scan.
  /// The views borrow from the scanned source (live catalog or pinned
  /// snapshot); copy via RowView::ToRow() to keep a row past the scan.
  template <typename Fn>
  QueryResult ScanMatches(const Predicate& predicate, Fn&& fn) {
    QueryResult result = ScanMatchingRows(predicate);
    for (const RowView& row : match_buffer_) fn(row);
    return result;
  }

  /// Effective scan parallelism (1 = serial).
  int scan_degree() const { return degree_; }

  /// Attaches a per-partition scan observer (tuner workload tracking);
  /// nullptr detaches. Touch collection is skipped entirely while no
  /// observer is attached, so the hook costs nothing on the default path.
  void set_observer(ScanObserver* observer) { observer_ = observer; }

 private:
  /// Prunes + scans, filling match_buffer_ with the matching rows in
  /// partition-id-then-row order and returning the filled-in metrics.
  QueryResult ScanMatchingRows(const Predicate& predicate);

  /// Lazily created pool; nullptr while degree_ == 1.
  ThreadPool* pool();

  // Exactly one of the two sources is set.
  const PartitionCatalog* catalog_ = nullptr;
  const CatalogView* view_ = nullptr;
  int degree_;
  size_t morsel_;  // Morsel granularity, in partitions.
  ScanObserver* observer_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  // Reused scratch buffers (cleared per query).
  std::vector<RowView> match_buffer_;
  std::vector<Value> result_buffer_;
  // Rows fetched from cold page chains during the last predicate scan;
  // match_buffer_ views borrow from them, so they live until the next
  // scan clears both.
  std::vector<std::shared_ptr<std::deque<Row>>> cold_keepalive_;
};

/// A predicate query result whose matched rows are owned copies, safe to
/// use after every lock is released.
struct OwnedQueryResult {
  QueryResult result;
  std::vector<Row> rows;
};

/// Runs a predicate scan over `table` and returns owned copies of the
/// matching rows.
///
/// This is the safe idiom for row-returning queries against a
/// ConcurrentTable: row pointers collected inside WithReadLock (e.g. via
/// ScanMatches) dangle as soon as the shared lock is released, because a
/// writer may then move, reallocate, or delete the underlying segments.
/// The copies here are made while the lock is still held.
OwnedQueryResult QueryOwnedRows(const ConcurrentTable& table,
                                const Predicate& predicate,
                                int scan_threads = 1);

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_EXECUTOR_H_
