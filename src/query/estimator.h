#ifndef CINDERELLA_QUERY_ESTIMATOR_H_
#define CINDERELLA_QUERY_ESTIMATOR_H_

#include <string>

#include "core/catalog.h"
#include "query/query.h"

namespace cinderella {

/// Selectivity estimate for an attribute-set query, derived purely from
/// catalog metadata (partition synopses and per-partition attribute
/// carrier counts) — no data access.
///
/// For an OR-of-IS-NOT-NULL query over attributes Q and a partition with
/// n entities and carrier counts c_a:
///   lower bound: max_a c_a           (every carrier of one attr matches)
///   upper bound: min(n, Σ_a c_a)     (union bound)
///   estimate:    n · (1 − Π_a (1 − c_a/n))   (attribute independence)
/// Summed over non-pruned partitions. Bounds are exact bounds; the
/// estimate is exact when the query has one attribute.
struct SelectivityEstimate {
  uint64_t table_entities = 0;
  uint64_t partitions_scanned = 0;  // Non-pruned partitions.
  uint64_t partitions_pruned = 0;
  uint64_t rows_lower_bound = 0;
  uint64_t rows_upper_bound = 0;
  double rows_estimate = 0.0;

  double selectivity_estimate() const {
    return table_entities > 0 ? rows_estimate / table_entities : 0.0;
  }
};

/// Metadata-only bounds on the number of distinct groups a GROUP BY over
/// one attribute can produce, derived from per-partition carrier counts.
/// A partition with c carriers of the group attribute contributes at most
/// c distinct keys, so Σ_p c_p upper-bounds the table-wide distinct
/// count; it is also exactly the number of rows an aggregation will
/// consume. The aggregation engine's strategy chooser refines the upper
/// bound with a small row sample (see query/aggregator.h).
struct GroupCardinalityEstimate {
  uint64_t table_entities = 0;
  /// Σ_p c_p: total carriers of the attribute == aggregation input rows
  /// and an upper bound on the distinct group count.
  uint64_t carrier_rows = 0;
  /// max_p c_p: the heaviest partition's carrier count. A large value
  /// relative to carrier_rows signals partition-level skew (one partition
  /// dominates the scan).
  uint64_t max_partition_carriers = 0;
  /// Partitions with c_p > 0 (== partitions an aggregation scans after
  /// synopsis pruning).
  uint64_t partitions_carrying = 0;

  /// Upper bound on the distinct group count (no lower bound is available
  /// from synopses alone: all carriers could share one key).
  uint64_t groups_upper_bound() const { return carrier_rows; }
};

class CatalogView;  // mvcc/partition_version.h

/// Bounds the group cardinality of GROUP BY `attribute` from catalog
/// metadata only — no data access.
GroupCardinalityEstimate EstimateGroupCardinality(
    const PartitionCatalog& catalog, AttributeId attribute);

/// Same bounds over a pinned MVCC snapshot.
GroupCardinalityEstimate EstimateGroupCardinality(const CatalogView& view,
                                                  AttributeId attribute);

/// Estimates how many entities match `query` without reading any row.
SelectivityEstimate EstimateSelectivity(const PartitionCatalog& catalog,
                                        const Query& query);

/// Same estimate over a pinned MVCC snapshot (partition versions carry
/// the same synopses and carrier counts the live catalog does, frozen at
/// publication time).
SelectivityEstimate EstimateSelectivity(const CatalogView& view,
                                        const Query& query);

/// Renders a human-readable access plan for `query`: which partitions
/// would be scanned/pruned with their sizes and estimated yields — the
/// CLI's EXPLAIN. `max_partitions` caps the listing.
std::string ExplainQuery(const PartitionCatalog& catalog, const Query& query,
                         size_t max_partitions = 20);

/// EXPLAIN against a pinned MVCC snapshot.
std::string ExplainQuery(const CatalogView& view, const Query& query,
                         size_t max_partitions = 20);

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_ESTIMATOR_H_
