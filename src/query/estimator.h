#ifndef CINDERELLA_QUERY_ESTIMATOR_H_
#define CINDERELLA_QUERY_ESTIMATOR_H_

#include <string>

#include "core/catalog.h"
#include "query/query.h"

namespace cinderella {

/// Selectivity estimate for an attribute-set query, derived purely from
/// catalog metadata (partition synopses and per-partition attribute
/// carrier counts) — no data access.
///
/// For an OR-of-IS-NOT-NULL query over attributes Q and a partition with
/// n entities and carrier counts c_a:
///   lower bound: max_a c_a           (every carrier of one attr matches)
///   upper bound: min(n, Σ_a c_a)     (union bound)
///   estimate:    n · (1 − Π_a (1 − c_a/n))   (attribute independence)
/// Summed over non-pruned partitions. Bounds are exact bounds; the
/// estimate is exact when the query has one attribute.
struct SelectivityEstimate {
  uint64_t table_entities = 0;
  uint64_t partitions_scanned = 0;  // Non-pruned partitions.
  uint64_t partitions_pruned = 0;
  uint64_t rows_lower_bound = 0;
  uint64_t rows_upper_bound = 0;
  double rows_estimate = 0.0;

  double selectivity_estimate() const {
    return table_entities > 0 ? rows_estimate / table_entities : 0.0;
  }
};

class CatalogView;  // mvcc/partition_version.h

/// Estimates how many entities match `query` without reading any row.
SelectivityEstimate EstimateSelectivity(const PartitionCatalog& catalog,
                                        const Query& query);

/// Same estimate over a pinned MVCC snapshot (partition versions carry
/// the same synopses and carrier counts the live catalog does, frozen at
/// publication time).
SelectivityEstimate EstimateSelectivity(const CatalogView& view,
                                        const Query& query);

/// Renders a human-readable access plan for `query`: which partitions
/// would be scanned/pruned with their sizes and estimated yields — the
/// CLI's EXPLAIN. `max_partitions` caps the listing.
std::string ExplainQuery(const PartitionCatalog& catalog, const Query& query,
                         size_t max_partitions = 20);

/// EXPLAIN against a pinned MVCC snapshot.
std::string ExplainQuery(const CatalogView& view, const Query& query,
                         size_t max_partitions = 20);

}  // namespace cinderella

#endif  // CINDERELLA_QUERY_ESTIMATOR_H_
