#include "query/query.h"

namespace cinderella {

Query::Query(Synopsis attributes) : attributes_(std::move(attributes)) {
  projection_ = attributes_.ToIds();
}

Query Query::FromNames(const AttributeDictionary& dictionary,
                       const std::vector<std::string>& names) {
  Synopsis attributes;
  for (const std::string& name : names) {
    const auto id = dictionary.Find(name);
    if (id.has_value()) attributes.Add(*id);
  }
  return Query(std::move(attributes));
}

}  // namespace cinderella
