#ifndef CINDERELLA_WORKLOAD_DATASET_STATS_H_
#define CINDERELLA_WORKLOAD_DATASET_STATS_H_

#include <cstddef>
#include <vector>

#include "storage/row.h"

namespace cinderella {

/// Empirical distributions of a data set, matching the two panels of the
/// paper's Figure 4.
struct DatasetDistribution {
  /// frequency[a]: fraction of entities instantiating attribute a
  /// (Figure 4a, before sorting).
  std::vector<double> frequency;
  /// Same values sorted descending (the shape plotted in Figure 4a).
  std::vector<double> frequency_sorted;
  /// attrs_per_entity_histogram[k]: number of entities with exactly k
  /// attributes (Figure 4b).
  std::vector<size_t> attrs_per_entity_histogram;
  size_t entity_count = 0;
  size_t max_attributes_per_entity = 0;
  double mean_attributes_per_entity = 0.0;
  /// Sparseness of the whole universal table (the paper quotes 0.94 for
  /// its DBpedia extract).
  double sparseness = 0.0;

  /// Number of attributes with frequency strictly above `threshold`.
  size_t CountAttributesAbove(double threshold) const;
  /// Number of attributes with frequency strictly below `threshold`.
  size_t CountAttributesBelow(double threshold) const;
};

/// Scans `rows` (attribute ids < num_attributes) and computes both
/// Figure 4 distributions plus the table sparseness.
DatasetDistribution ComputeDatasetDistribution(const std::vector<Row>& rows,
                                               size_t num_attributes);

}  // namespace cinderella

#endif  // CINDERELLA_WORKLOAD_DATASET_STATS_H_
