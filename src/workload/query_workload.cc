#include "workload/query_workload.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "workload/dataset_stats.h"

namespace cinderella {
namespace {

/// Fraction of (row, query attribute) pairs that match: the number of
/// query attributes each row carries, summed over all rows, normalized
/// by rows × |query|. For a single-attribute query this is exactly the
/// fraction of rows carrying that attribute; for multi-attribute queries
/// it measures how much of the requested payload actually exists, unlike
/// the earlier first-match-wins count, which saturated at 1.0 as soon as
/// every row carried ANY one of the attributes and so collapsed wide
/// disjunctive queries into one selectivity bin.
double Selectivity(const std::vector<Row>& rows, const Synopsis& attributes) {
  if (rows.empty() || attributes.Count() == 0) return 0.0;
  size_t matched = 0;
  for (const Row& row : rows) {
    for (const Row::Cell& cell : row.cells()) {
      if (attributes.Contains(cell.attribute)) ++matched;
    }
  }
  return static_cast<double>(matched) /
         (static_cast<double>(rows.size()) *
          static_cast<double>(attributes.Count()));
}

}  // namespace

std::vector<GeneratedQuery> GenerateQueryWorkload(
    const std::vector<Row>& rows, size_t num_attributes,
    const QueryWorkloadConfig& config) {
  // Rank attributes by frequency for the pair/triple combinations.
  const DatasetDistribution d = ComputeDatasetDistribution(rows, num_attributes);
  std::vector<size_t> by_frequency(num_attributes);
  std::iota(by_frequency.begin(), by_frequency.end(), 0);
  std::sort(by_frequency.begin(), by_frequency.end(), [&](size_t a, size_t b) {
    return d.frequency[a] > d.frequency[b];
  });
  const size_t top = std::min(config.top_attributes, num_attributes);

  // Candidates: singles, top-k pairs, sampled top-k triples.
  std::vector<Synopsis> candidates;
  for (size_t a = 0; a < num_attributes; ++a) {
    candidates.push_back(Synopsis{static_cast<AttributeId>(a)});
  }
  for (size_t i = 0; i < top; ++i) {
    for (size_t j = i + 1; j < top; ++j) {
      candidates.push_back(Synopsis{
          static_cast<AttributeId>(by_frequency[i]),
          static_cast<AttributeId>(by_frequency[j])});
    }
  }
  Rng rng(config.seed);
  for (size_t count = 0; count < config.max_triples && top >= 3; ++count) {
    const size_t i = static_cast<size_t>(rng.Uniform(top));
    size_t j = static_cast<size_t>(rng.Uniform(top));
    size_t k = static_cast<size_t>(rng.Uniform(top));
    if (i == j || j == k || i == k) continue;
    candidates.push_back(Synopsis{
        static_cast<AttributeId>(by_frequency[i]),
        static_cast<AttributeId>(by_frequency[j]),
        static_cast<AttributeId>(by_frequency[k])});
  }

  // Evaluate selectivities and bin.
  std::vector<GeneratedQuery> all;
  all.reserve(candidates.size());
  for (Synopsis& synopsis : candidates) {
    GeneratedQuery q;
    q.selectivity = Selectivity(rows, synopsis);
    q.query = Query(std::move(synopsis));
    all.push_back(std::move(q));
  }

  std::vector<size_t> bin_counts(config.selectivity_bins, 0);
  std::vector<GeneratedQuery> picked;
  for (GeneratedQuery& q : all) {
    size_t bin = static_cast<size_t>(q.selectivity *
                                     static_cast<double>(config.selectivity_bins));
    bin = std::min(bin, config.selectivity_bins - 1);
    if (bin_counts[bin] < config.queries_per_bin) {
      ++bin_counts[bin];
      picked.push_back(std::move(q));
    }
  }
  std::sort(picked.begin(), picked.end(),
            [](const GeneratedQuery& a, const GeneratedQuery& b) {
              return a.selectivity < b.selectivity;
            });
  return picked;
}

}  // namespace cinderella
