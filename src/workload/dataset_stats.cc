#include "workload/dataset_stats.h"

#include <algorithm>

namespace cinderella {

size_t DatasetDistribution::CountAttributesAbove(double threshold) const {
  size_t count = 0;
  for (double f : frequency) count += (f > threshold);
  return count;
}

size_t DatasetDistribution::CountAttributesBelow(double threshold) const {
  size_t count = 0;
  for (double f : frequency) count += (f < threshold);
  return count;
}

DatasetDistribution ComputeDatasetDistribution(const std::vector<Row>& rows,
                                               size_t num_attributes) {
  DatasetDistribution d;
  d.entity_count = rows.size();
  std::vector<size_t> carriers(num_attributes, 0);
  uint64_t total_cells = 0;
  for (const Row& row : rows) {
    const size_t k = row.attribute_count();
    total_cells += k;
    d.max_attributes_per_entity = std::max(d.max_attributes_per_entity, k);
    if (k >= d.attrs_per_entity_histogram.size()) {
      d.attrs_per_entity_histogram.resize(k + 1, 0);
    }
    ++d.attrs_per_entity_histogram[k];
    for (const Row::Cell& cell : row.cells()) {
      if (cell.attribute < num_attributes) ++carriers[cell.attribute];
    }
  }
  d.frequency.resize(num_attributes);
  if (!rows.empty()) {
    for (size_t a = 0; a < num_attributes; ++a) {
      d.frequency[a] =
          static_cast<double>(carriers[a]) / static_cast<double>(rows.size());
    }
    d.mean_attributes_per_entity =
        static_cast<double>(total_cells) / static_cast<double>(rows.size());
    if (num_attributes > 0) {
      d.sparseness = 1.0 - static_cast<double>(total_cells) /
                               (static_cast<double>(rows.size()) *
                                static_cast<double>(num_attributes));
    }
  }
  d.frequency_sorted = d.frequency;
  std::sort(d.frequency_sorted.rbegin(), d.frequency_sorted.rend());
  return d;
}

}  // namespace cinderella
