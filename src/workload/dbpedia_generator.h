#ifndef CINDERELLA_WORKLOAD_DBPEDIA_GENERATOR_H_
#define CINDERELLA_WORKLOAD_DBPEDIA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "storage/row.h"
#include "synopsis/attribute_dictionary.h"

namespace cinderella {

/// Parameters of the synthetic DBpedia-persons data set.
struct DbpediaConfig {
  /// The paper extracts "100 000 person entities with a total of 100
  /// attributes" (Section V.B).
  size_t num_entities = 100000;
  size_t num_attributes = 100;

  /// Latent person types (athlete, politician, artist, ...) providing the
  /// co-occurrence regularity Cinderella exploits; the paper's entities
  /// "show some regularity but not enough to allow modeling a sound
  /// database schema".
  size_t num_types = 15;

  /// Skew of the type popularity (flat enough that no single type pushes
  /// its private attributes above the 10% frequency band of Figure 4a).
  double type_zipf_theta = 0.6;

  uint64_t seed = 42;
};

/// Generates irregularly structured person entities whose marginal
/// statistics reproduce Figure 4 of the paper:
///  (a) attribute frequency: 2 near-universal attributes, 11 attributes on
///      more than 30% of entities, and 85% of attributes on fewer than 10%
///      (long tail / Zipf, per the studies the paper cites);
///  (b) attributes per entity: bulk between 2 and 15, maximum around 27.
///
/// Construction: every attribute gets a target marginal frequency f_a from
/// the Figure 4a shape. Correlation comes from latent types: each
/// non-universal attribute is "owned" by a few types, and its conditional
/// probability is boosted for owners and damped otherwise such that the
/// marginal stays exactly f_a. Entities of one type therefore share their
/// owned attributes — clusterable structure with faithful marginals.
///
/// DESIGN.md documents this as the substitution for the (non-shippable)
/// DBpedia extract; the fig4 bench regenerates both panels as validation.
class DbpediaGenerator {
 public:
  /// Interns the attribute names into `dictionary` (ids 0..num_attributes-1
  /// on a fresh dictionary).
  DbpediaGenerator(const DbpediaConfig& config,
                   AttributeDictionary* dictionary);

  /// Generates the data set. Entity ids are 0..num_entities-1; arrival
  /// order is already random (types are drawn i.i.d. per entity), matching
  /// the paper's "inserted in random order".
  std::vector<Row> Generate();

  /// Target marginal frequency per attribute id.
  const std::vector<double>& target_frequencies() const {
    return target_frequency_;
  }

 private:
  void BuildTargets();
  void BuildTypeModel();

  DbpediaConfig config_;
  AttributeDictionary* dictionary_;
  std::vector<double> target_frequency_;      // f_a per attribute.
  std::vector<double> type_weight_;           // P(type).
  // conditional_[t][a] = P(attribute a | type t).
  std::vector<std::vector<double>> conditional_;
  // Tail attributes owned by each type (extras pool for richly described
  // entities).
  std::vector<std::vector<AttributeId>> owned_tail_;
};

}  // namespace cinderella

#endif  // CINDERELLA_WORKLOAD_DBPEDIA_GENERATOR_H_
