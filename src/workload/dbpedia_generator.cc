#include "workload/dbpedia_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "common/zipf.h"

namespace cinderella {
namespace {

// Curated person-attribute names for readability of the examples; the
// remainder are synthetic property names.
constexpr const char* kPersonAttributes[] = {
    "name",          "birthDate",     "birthPlace",   "description",
    "occupation",    "nationality",   "deathDate",    "deathPlace",
    "almaMater",     "activeYears",   "knownFor",     "spouse",
    "children",      "team",          "position",     "club",
    "league",        "debutYear",     "careerGoals",  "height",
    "weight",        "party",         "office",       "termStart",
    "termEnd",       "predecessor",   "successor",    "genre",
    "instrument",    "recordLabel",   "yearsActive",  "associatedActs",
    "field",         "doctoralAdvisor", "thesisTitle", "award",
    "militaryRank",  "battles",       "serviceYears", "religion",
};

}  // namespace

DbpediaGenerator::DbpediaGenerator(const DbpediaConfig& config,
                                   AttributeDictionary* dictionary)
    : config_(config), dictionary_(dictionary) {
  CINDERELLA_CHECK(dictionary != nullptr);
  CINDERELLA_CHECK(config.num_attributes >= 15);
  CINDERELLA_CHECK(config.num_types >= 2);
  const size_t curated =
      sizeof(kPersonAttributes) / sizeof(kPersonAttributes[0]);
  for (size_t a = 0; a < config_.num_attributes; ++a) {
    if (a < curated) {
      dictionary_->GetOrCreate(kPersonAttributes[a]);
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "property_%03zu", a);
      dictionary_->GetOrCreate(buf);
    }
  }
  BuildTargets();
  BuildTypeModel();
}

void DbpediaGenerator::BuildTargets() {
  const size_t n = config_.num_attributes;
  target_frequency_.assign(n, 0.0);
  // Figure 4a shape: 2 near-universal, 11 in (0.3, 0.6], 2 in the 10-30%
  // band, and a Zipf tail below 10%.
  target_frequency_[0] = 0.97;
  target_frequency_[1] = 0.90;
  for (size_t a = 2; a < 13 && a < n; ++a) {
    // 0.58 down to 0.35, linearly (the "eleven fairly common" attributes
    // on over 30% of entities).
    target_frequency_[a] =
        0.58 - 0.23 * static_cast<double>(a - 2) / 10.0;
  }
  if (n > 13) target_frequency_[13] = 0.22;
  if (n > 14) target_frequency_[14] = 0.13;
  for (size_t a = 15; a < n; ++a) {
    const double rank = static_cast<double>(a - 14);
    target_frequency_[a] =
        std::max(0.0008, 0.095 * std::pow(rank, -0.9));
  }
}

void DbpediaGenerator::BuildTypeModel() {
  const size_t n = config_.num_attributes;
  const size_t t = config_.num_types;
  Rng rng(config_.seed * 7919 + 1);

  // Type popularity: moderately skewed Zipf.
  ZipfSampler type_zipf(t, config_.type_zipf_theta);
  type_weight_.resize(t);
  for (size_t i = 0; i < t; ++i) type_weight_[i] = type_zipf.Pmf(i);

  conditional_.assign(t, std::vector<double>(n, 0.0));
  owned_tail_.assign(t, {});
  for (size_t a = 0; a < n; ++a) {
    const double f = target_frequency_[a];
    if (a < 2) {
      // Universal attributes: no type affinity.
      for (size_t i = 0; i < t; ++i) conditional_[i][a] = f;
      continue;
    }
    std::vector<size_t> types(t);
    for (size_t i = 0; i < t; ++i) types[i] = i;
    rng.Shuffle(types);

    if (a < 13) {
      // Common attributes (birthDate, occupation, ...): genuinely
      // cross-type, with a soft per-type affinity. Owners are boosted,
      // non-owners damped, marginal preserved:
      //   alpha*W + beta*(1-W) = 1.
      const size_t num_owners = 3 + rng.Uniform(t / 2);
      double owner_weight = 0.0;
      std::vector<bool> is_owner(t, false);
      for (size_t k = 0; k < num_owners; ++k) {
        is_owner[types[k]] = true;
        owner_weight += type_weight_[types[k]];
      }
      const double alpha = std::min({4.0, 1.0 / owner_weight, 0.95 / f});
      const double beta = owner_weight < 1.0
                              ? (1.0 - alpha * owner_weight) /
                                    (1.0 - owner_weight)
                              : 1.0;
      for (size_t i = 0; i < t; ++i) {
        conditional_[i][a] = f * (is_owner[i] ? alpha : beta);
      }
      continue;
    }

    // Tail attributes (careerGoals, aperture, ...): strictly type-owned —
    // a non-owner type never instantiates them, which is what makes real
    // irregular data prunable (the paper's Figure 7c: partitions carry
    // far fewer attributes than the table). Owners are added until their
    // combined weight W satisfies f/W <= 0.85, and the owner conditional
    // f/W preserves the marginal exactly.
    double owner_weight = 0.0;
    size_t owners = 0;
    while (owners < t && (owner_weight < f / 0.85 || owners == 0)) {
      owner_weight += type_weight_[types[owners]];
      ++owners;
    }
    const double conditional = std::min(0.95, f / owner_weight);
    for (size_t k = 0; k < owners; ++k) {
      conditional_[types[k]][a] = conditional;
      owned_tail_[types[k]].push_back(static_cast<AttributeId>(a));
    }
  }
}

std::vector<Row> DbpediaGenerator::Generate() {
  Rng rng(config_.seed);
  ZipfSampler type_zipf(config_.num_types, config_.type_zipf_theta);
  std::vector<Row> rows;
  rows.reserve(config_.num_entities);
  for (size_t e = 0; e < config_.num_entities; ++e) {
    const size_t type = type_zipf.Sample(rng);
    // Per-entity activity: a small fraction of entities are richly
    // described (DBpedia's celebrity effect), producing the right tail of
    // Figure 4b (entities with up to ~27 attributes). The mixture has
    // mean 1, so attribute marginals are preserved in expectation.
    const double u = rng.UniformDouble();
    double activity = 1.0;
    bool richly_described = false;
    if (u < 0.50) {
      activity = 0.8;
    } else if (u < 0.8675) {
      activity = 1.0;
    } else if (u < 0.988) {
      activity = 1.6;
    } else {
      // ~1.2% of entities are richly described (DBpedia's celebrity
      // effect): boosted probabilities plus a bundle of extra tail
      // attributes, yielding the Figure 4b right tail up to ~27.
      activity = 1.6;
      richly_described = true;
    }
    Row row(static_cast<EntityId>(e));
    const std::vector<double>& p = conditional_[type];
    for (size_t a = 0; a < config_.num_attributes; ++a) {
      // Universal attributes (a < 2) are unaffected by activity.
      const double prob =
          a < 2 ? p[a] : std::min(0.95, p[a] * activity);
      if (rng.Bernoulli(prob)) {
        row.Set(static_cast<AttributeId>(a),
                Value(static_cast<int64_t>(rng.Uniform(100000))));
      }
    }
    if (richly_described) {
      // Extra attributes come from the entity's own type (and a fixed
      // neighbour type), not uniformly: a richly described athlete gains
      // more athlete attributes, so partition synopses stay small and
      // prunable.
      std::vector<AttributeId> pool = owned_tail_[type];
      const auto& neighbour = owned_tail_[(type + 1) % config_.num_types];
      pool.insert(pool.end(), neighbour.begin(), neighbour.end());
      if (!pool.empty()) {
        const uint64_t extras = 6 + rng.Uniform(10);
        for (uint64_t k = 0; k < extras; ++k) {
          const AttributeId a =
              pool[static_cast<size_t>(rng.Uniform(pool.size()))];
          row.Set(a, Value(static_cast<int64_t>(rng.Uniform(100000))));
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace cinderella
