#ifndef CINDERELLA_WORKLOAD_QUERY_WORKLOAD_H_
#define CINDERELLA_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "storage/row.h"

namespace cinderella {

/// Parameters of the synthetic selective-query workload of Section V.B.
struct QueryWorkloadConfig {
  /// "we combined the 20 most frequent attributes to pairs and triples".
  size_t top_attributes = 20;
  /// Cap on sampled triples (all C(20,3)=1140 would dominate candidate
  /// evaluation time; a deterministic sample covers the same selectivity
  /// range).
  size_t max_triples = 300;
  /// Selectivity bins used to pick representatives covering the range;
  /// bin i covers [i/bins, (i+1)/bins).
  size_t selectivity_bins = 20;
  /// "three representative queries for each selectivity".
  size_t queries_per_bin = 3;
  uint64_t seed = 7;
};

/// A query with the selectivity it achieves on the generating data set.
struct GeneratedQuery {
  Query query;
  double selectivity = 0.0;
};

/// Builds the Section V.B workload: one candidate query per single
/// attribute, plus pairs and (sampled) triples of the top-k most frequent
/// attributes; computes each candidate's selectivity on `rows`; returns up
/// to `queries_per_bin` representatives per selectivity bin, sorted by
/// selectivity.
std::vector<GeneratedQuery> GenerateQueryWorkload(
    const std::vector<Row>& rows, size_t num_attributes,
    const QueryWorkloadConfig& config);

}  // namespace cinderella

#endif  // CINDERELLA_WORKLOAD_QUERY_WORKLOAD_H_
