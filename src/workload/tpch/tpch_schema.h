#ifndef CINDERELLA_WORKLOAD_TPCH_TPCH_SCHEMA_H_
#define CINDERELLA_WORKLOAD_TPCH_TPCH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/row.h"

namespace cinderella {

/// The eight TPC-H base tables (TPC Benchmark H, revision 2.16.0 — the
/// version the paper uses for its regularly-structured experiment,
/// Section V.C).
enum class TpchTable {
  kRegion = 0,
  kNation,
  kSupplier,
  kCustomer,
  kPart,
  kPartsupp,
  kOrders,
  kLineitem,
};

inline constexpr size_t kTpchTableCount = 8;

/// All eight tables, in enum order.
const std::vector<TpchTable>& AllTpchTables();

/// Display name ("lineitem", ...).
const char* TpchTableName(TpchTable table);

/// Column names of one table (with the standard r_/n_/s_/c_/p_/ps_/o_/l_
/// prefixes, so the universal table's attribute sets are disjoint per
/// table — TPC-H data is perfectly regular).
const std::vector<std::string>& TpchColumns(TpchTable table);

/// Cardinality of one table at the given scale factor (lineitem uses the
/// nominal 6,000,000 x SF approximation).
uint64_t TpchRowCount(TpchTable table, double scale_factor);

/// Entity ids encode the owning table so baselines and checks can recover
/// it without consulting the schema: id = (table << 40) | ordinal.
EntityId TpchEntityId(TpchTable table, uint64_t ordinal);
TpchTable TpchTableOfEntity(EntityId entity);

}  // namespace cinderella

#endif  // CINDERELLA_WORKLOAD_TPCH_TPCH_SCHEMA_H_
