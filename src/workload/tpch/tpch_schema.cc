#include "workload/tpch/tpch_schema.h"

#include <cmath>

#include "common/logging.h"

namespace cinderella {

const std::vector<TpchTable>& AllTpchTables() {
  static const std::vector<TpchTable>* tables = new std::vector<TpchTable>{
      TpchTable::kRegion,   TpchTable::kNation, TpchTable::kSupplier,
      TpchTable::kCustomer, TpchTable::kPart,   TpchTable::kPartsupp,
      TpchTable::kOrders,   TpchTable::kLineitem};
  return *tables;
}

const char* TpchTableName(TpchTable table) {
  switch (table) {
    case TpchTable::kRegion:
      return "region";
    case TpchTable::kNation:
      return "nation";
    case TpchTable::kSupplier:
      return "supplier";
    case TpchTable::kCustomer:
      return "customer";
    case TpchTable::kPart:
      return "part";
    case TpchTable::kPartsupp:
      return "partsupp";
    case TpchTable::kOrders:
      return "orders";
    case TpchTable::kLineitem:
      return "lineitem";
  }
  return "unknown";
}

const std::vector<std::string>& TpchColumns(TpchTable table) {
  static const std::vector<std::string>* region = new std::vector<std::string>{
      "r_regionkey", "r_name", "r_comment"};
  static const std::vector<std::string>* nation = new std::vector<std::string>{
      "n_nationkey", "n_name", "n_regionkey", "n_comment"};
  static const std::vector<std::string>* supplier =
      new std::vector<std::string>{"s_suppkey", "s_name",    "s_address",
                                   "s_nationkey", "s_phone", "s_acctbal",
                                   "s_comment"};
  static const std::vector<std::string>* customer =
      new std::vector<std::string>{"c_custkey", "c_name",       "c_address",
                                   "c_nationkey", "c_phone",    "c_acctbal",
                                   "c_mktsegment", "c_comment"};
  static const std::vector<std::string>* part = new std::vector<std::string>{
      "p_partkey", "p_name",      "p_mfgr",        "p_brand",  "p_type",
      "p_size",    "p_container", "p_retailprice", "p_comment"};
  static const std::vector<std::string>* partsupp =
      new std::vector<std::string>{"ps_partkey", "ps_suppkey", "ps_availqty",
                                   "ps_supplycost", "ps_comment"};
  static const std::vector<std::string>* orders = new std::vector<std::string>{
      "o_orderkey",      "o_custkey", "o_orderstatus",  "o_totalprice",
      "o_orderdate",     "o_orderpriority", "o_clerk", "o_shippriority",
      "o_comment"};
  static const std::vector<std::string>* lineitem =
      new std::vector<std::string>{
          "l_orderkey",    "l_partkey",      "l_suppkey",     "l_linenumber",
          "l_quantity",    "l_extendedprice", "l_discount",   "l_tax",
          "l_returnflag",  "l_linestatus",   "l_shipdate",    "l_commitdate",
          "l_receiptdate", "l_shipinstruct", "l_shipmode",    "l_comment"};
  switch (table) {
    case TpchTable::kRegion:
      return *region;
    case TpchTable::kNation:
      return *nation;
    case TpchTable::kSupplier:
      return *supplier;
    case TpchTable::kCustomer:
      return *customer;
    case TpchTable::kPart:
      return *part;
    case TpchTable::kPartsupp:
      return *partsupp;
    case TpchTable::kOrders:
      return *orders;
    case TpchTable::kLineitem:
      return *lineitem;
  }
  return *region;
}

uint64_t TpchRowCount(TpchTable table, double scale_factor) {
  CINDERELLA_CHECK(scale_factor > 0.0);
  auto scaled = [scale_factor](double base) {
    return static_cast<uint64_t>(
        std::max(1.0, std::llround(base * scale_factor) * 1.0));
  };
  switch (table) {
    case TpchTable::kRegion:
      return 5;
    case TpchTable::kNation:
      return 25;
    case TpchTable::kSupplier:
      return scaled(10000);
    case TpchTable::kCustomer:
      return scaled(150000);
    case TpchTable::kPart:
      return scaled(200000);
    case TpchTable::kPartsupp:
      return scaled(800000);
    case TpchTable::kOrders:
      return scaled(1500000);
    case TpchTable::kLineitem:
      return scaled(6000000);
  }
  return 0;
}

EntityId TpchEntityId(TpchTable table, uint64_t ordinal) {
  return (static_cast<EntityId>(table) << 40) | ordinal;
}

TpchTable TpchTableOfEntity(EntityId entity) {
  return static_cast<TpchTable>(entity >> 40);
}

}  // namespace cinderella
