#include "workload/tpch/tpch_queries.h"

namespace cinderella {
namespace {

using Refs = std::vector<std::pair<TpchTable, std::vector<std::string>>>;

std::vector<TpchQueryFootprint> BuildFootprints() {
  constexpr TpchTable R = TpchTable::kRegion;
  constexpr TpchTable N = TpchTable::kNation;
  constexpr TpchTable S = TpchTable::kSupplier;
  constexpr TpchTable C = TpchTable::kCustomer;
  constexpr TpchTable P = TpchTable::kPart;
  constexpr TpchTable PS = TpchTable::kPartsupp;
  constexpr TpchTable O = TpchTable::kOrders;
  constexpr TpchTable L = TpchTable::kLineitem;

  std::vector<TpchQueryFootprint> q;
  // Q1: pricing summary report.
  q.push_back({1, Refs{{L,
                        {"l_returnflag", "l_linestatus", "l_quantity",
                         "l_extendedprice", "l_discount", "l_tax",
                         "l_shipdate"}}}});
  // Q2: minimum cost supplier.
  q.push_back({2, Refs{{P, {"p_partkey", "p_mfgr", "p_size", "p_type"}},
                       {S,
                        {"s_suppkey", "s_nationkey", "s_acctbal", "s_name",
                         "s_address", "s_phone", "s_comment"}},
                       {PS, {"ps_partkey", "ps_suppkey", "ps_supplycost"}},
                       {N, {"n_nationkey", "n_name", "n_regionkey"}},
                       {R, {"r_regionkey", "r_name"}}}});
  // Q3: shipping priority.
  q.push_back({3, Refs{{C, {"c_custkey", "c_mktsegment"}},
                       {O,
                        {"o_orderkey", "o_custkey", "o_orderdate",
                         "o_shippriority"}},
                       {L,
                        {"l_orderkey", "l_extendedprice", "l_discount",
                         "l_shipdate"}}}});
  // Q4: order priority checking.
  q.push_back({4, Refs{{O, {"o_orderkey", "o_orderdate", "o_orderpriority"}},
                       {L, {"l_orderkey", "l_commitdate", "l_receiptdate"}}}});
  // Q5: local supplier volume.
  q.push_back({5, Refs{{C, {"c_custkey", "c_nationkey"}},
                       {O, {"o_orderkey", "o_custkey", "o_orderdate"}},
                       {L,
                        {"l_orderkey", "l_suppkey", "l_extendedprice",
                         "l_discount"}},
                       {S, {"s_suppkey", "s_nationkey"}},
                       {N, {"n_nationkey", "n_regionkey", "n_name"}},
                       {R, {"r_regionkey", "r_name"}}}});
  // Q6: forecasting revenue change.
  q.push_back({6, Refs{{L,
                        {"l_shipdate", "l_discount", "l_quantity",
                         "l_extendedprice"}}}});
  // Q7: volume shipping.
  q.push_back({7, Refs{{S, {"s_suppkey", "s_nationkey"}},
                       {L,
                        {"l_suppkey", "l_orderkey", "l_shipdate",
                         "l_extendedprice", "l_discount"}},
                       {O, {"o_orderkey", "o_custkey"}},
                       {C, {"c_custkey", "c_nationkey"}},
                       {N, {"n_nationkey", "n_name"}}}});
  // Q8: national market share.
  q.push_back({8, Refs{{P, {"p_partkey", "p_type"}},
                       {S, {"s_suppkey", "s_nationkey"}},
                       {L,
                        {"l_partkey", "l_suppkey", "l_orderkey",
                         "l_extendedprice", "l_discount"}},
                       {O, {"o_orderkey", "o_custkey", "o_orderdate"}},
                       {C, {"c_custkey", "c_nationkey"}},
                       {N, {"n_nationkey", "n_regionkey", "n_name"}},
                       {R, {"r_regionkey", "r_name"}}}});
  // Q9: product type profit measure.
  q.push_back({9, Refs{{P, {"p_partkey", "p_name"}},
                       {S, {"s_suppkey", "s_nationkey"}},
                       {L,
                        {"l_partkey", "l_suppkey", "l_orderkey",
                         "l_quantity", "l_extendedprice", "l_discount"}},
                       {PS, {"ps_partkey", "ps_suppkey", "ps_supplycost"}},
                       {O, {"o_orderkey", "o_orderdate"}},
                       {N, {"n_nationkey", "n_name"}}}});
  // Q10: returned item reporting.
  q.push_back({10, Refs{{C,
                         {"c_custkey", "c_name", "c_acctbal", "c_address",
                          "c_phone", "c_comment", "c_nationkey"}},
                        {O, {"o_orderkey", "o_custkey", "o_orderdate"}},
                        {L,
                         {"l_orderkey", "l_returnflag", "l_extendedprice",
                          "l_discount"}},
                        {N, {"n_nationkey", "n_name"}}}});
  // Q11: important stock identification.
  q.push_back({11, Refs{{PS,
                         {"ps_partkey", "ps_suppkey", "ps_availqty",
                          "ps_supplycost"}},
                        {S, {"s_suppkey", "s_nationkey"}},
                        {N, {"n_nationkey", "n_name"}}}});
  // Q12: shipping modes and order priority.
  q.push_back({12, Refs{{O, {"o_orderkey", "o_orderpriority"}},
                        {L,
                         {"l_orderkey", "l_shipmode", "l_commitdate",
                          "l_shipdate", "l_receiptdate"}}}});
  // Q13: customer distribution.
  q.push_back({13, Refs{{C, {"c_custkey"}},
                        {O, {"o_orderkey", "o_custkey", "o_comment"}}}});
  // Q14: promotion effect.
  q.push_back({14, Refs{{L,
                         {"l_partkey", "l_shipdate", "l_extendedprice",
                          "l_discount"}},
                        {P, {"p_partkey", "p_type"}}}});
  // Q15: top supplier.
  q.push_back({15, Refs{{L,
                         {"l_suppkey", "l_shipdate", "l_extendedprice",
                          "l_discount"}},
                        {S, {"s_suppkey", "s_name", "s_address", "s_phone"}}}});
  // Q16: parts/supplier relationship.
  q.push_back({16, Refs{{PS, {"ps_partkey", "ps_suppkey"}},
                        {P, {"p_partkey", "p_brand", "p_type", "p_size"}},
                        {S, {"s_suppkey", "s_comment"}}}});
  // Q17: small-quantity-order revenue.
  q.push_back({17, Refs{{L, {"l_partkey", "l_quantity", "l_extendedprice"}},
                        {P, {"p_partkey", "p_brand", "p_container"}}}});
  // Q18: large volume customer.
  q.push_back({18, Refs{{C, {"c_custkey", "c_name"}},
                        {O,
                         {"o_orderkey", "o_custkey", "o_orderdate",
                          "o_totalprice"}},
                        {L, {"l_orderkey", "l_quantity"}}}});
  // Q19: discounted revenue.
  q.push_back({19, Refs{{L,
                         {"l_partkey", "l_quantity", "l_extendedprice",
                          "l_discount", "l_shipinstruct", "l_shipmode"}},
                        {P,
                         {"p_partkey", "p_brand", "p_container", "p_size"}}}});
  // Q20: potential part promotion.
  q.push_back({20, Refs{{S, {"s_suppkey", "s_name", "s_address", "s_nationkey"}},
                        {N, {"n_nationkey", "n_name"}},
                        {PS, {"ps_partkey", "ps_suppkey", "ps_availqty"}},
                        {P, {"p_partkey", "p_name"}},
                        {L,
                         {"l_partkey", "l_suppkey", "l_quantity",
                          "l_shipdate"}}}});
  // Q21: suppliers who kept orders waiting.
  q.push_back({21, Refs{{S, {"s_suppkey", "s_name", "s_nationkey"}},
                        {L,
                         {"l_orderkey", "l_suppkey", "l_receiptdate",
                          "l_commitdate"}},
                        {O, {"o_orderkey", "o_orderstatus"}},
                        {N, {"n_nationkey", "n_name"}}}});
  // Q22: global sales opportunity.
  q.push_back({22, Refs{{C, {"c_custkey", "c_phone", "c_acctbal"}},
                        {O, {"o_custkey"}}}});
  return q;
}

}  // namespace

const std::vector<TpchQueryFootprint>& TpchQueryFootprints() {
  static const std::vector<TpchQueryFootprint>* footprints =
      new std::vector<TpchQueryFootprint>(BuildFootprints());
  return *footprints;
}

Query MakeTpchQuery(const TpchQueryFootprint& footprint,
                    const AttributeDictionary& dictionary) {
  Synopsis attributes;
  for (const auto& [table, columns] : footprint.references) {
    (void)table;
    for (const std::string& column : columns) {
      const auto id = dictionary.Find(column);
      if (id.has_value()) attributes.Add(*id);
    }
  }
  return Query(std::move(attributes));
}

}  // namespace cinderella
