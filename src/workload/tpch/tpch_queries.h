#ifndef CINDERELLA_WORKLOAD_TPCH_TPCH_QUERIES_H_
#define CINDERELLA_WORKLOAD_TPCH_TPCH_QUERIES_H_

#include <string>
#include <utility>
#include <vector>

#include "query/query.h"
#include "synopsis/attribute_dictionary.h"
#include "workload/tpch/tpch_schema.h"

namespace cinderella {

/// The column footprint of one TPC-H query: every (table, column) the
/// query text references in its SELECT / WHERE / GROUP BY / ORDER BY
/// clauses (including subqueries).
///
/// The paper measures "the total execution time of the 22 TPC-H queries"
/// through views emulating the TPC-H tables on top of the Cinderella
/// partitioning; what the partitioning affects is *which partitions each
/// query's scans touch*, which is fully determined by the footprint. Join
/// and aggregate semantics are deliberately out of scope (DESIGN.md,
/// substitution table).
struct TpchQueryFootprint {
  int number;  // 1-22.
  std::vector<std::pair<TpchTable, std::vector<std::string>>> references;
};

/// Footprints of all 22 queries, ordered by query number.
const std::vector<TpchQueryFootprint>& TpchQueryFootprints();

/// Builds the executor query for one footprint: the union of the
/// referenced columns' attribute ids. Columns unknown to `dictionary` are
/// skipped (they match nothing).
Query MakeTpchQuery(const TpchQueryFootprint& footprint,
                    const AttributeDictionary& dictionary);

}  // namespace cinderella

#endif  // CINDERELLA_WORKLOAD_TPCH_TPCH_QUERIES_H_
