#ifndef CINDERELLA_WORKLOAD_TPCH_TPCH_GENERATOR_H_
#define CINDERELLA_WORKLOAD_TPCH_TPCH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "storage/row.h"
#include "synopsis/attribute_dictionary.h"
#include "workload/tpch/tpch_schema.h"

namespace cinderella {

/// Parameters of the synthetic TPC-H population.
struct TpchGeneratorConfig {
  /// The paper loads scale factor 0.5; the bench default is smaller for
  /// CI speed (env-overridable), which scales all tables proportionally.
  double scale_factor = 0.05;
  uint64_t seed = 42;
  /// Shuffle rows across tables before loading. Table-by-table load order
  /// (false) matches dbgen; shuffled order stresses Cinderella harder.
  bool shuffle = false;
};

/// Generates universal-table rows with the exact TPC-H column sets.
///
/// Values are synthetic int64s: the Table I phenomenon (Cinderella
/// recovering the per-table partitioning on perfectly regular data and
/// adding only union overhead) depends on each row instantiating exactly
/// its table's columns, not on TPC-H value semantics; the query side
/// reduces each of the 22 queries to its column footprint (see
/// tpch_queries.h and DESIGN.md).
class TpchGenerator {
 public:
  TpchGenerator(const TpchGeneratorConfig& config,
                AttributeDictionary* dictionary);

  /// Generates all eight tables' rows (entity ids encode the table).
  std::vector<Row> Generate();

  /// Total rows across all tables at the configured scale factor.
  uint64_t TotalRows() const;

 private:
  TpchGeneratorConfig config_;
  AttributeDictionary* dictionary_;
};

}  // namespace cinderella

#endif  // CINDERELLA_WORKLOAD_TPCH_TPCH_GENERATOR_H_
