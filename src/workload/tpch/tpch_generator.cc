#include "workload/tpch/tpch_generator.h"

#include "common/logging.h"
#include "common/random.h"

namespace cinderella {

TpchGenerator::TpchGenerator(const TpchGeneratorConfig& config,
                             AttributeDictionary* dictionary)
    : config_(config), dictionary_(dictionary) {
  CINDERELLA_CHECK(dictionary != nullptr);
  CINDERELLA_CHECK(config.scale_factor > 0.0);
}

uint64_t TpchGenerator::TotalRows() const {
  uint64_t total = 0;
  for (TpchTable table : AllTpchTables()) {
    total += TpchRowCount(table, config_.scale_factor);
  }
  return total;
}

std::vector<Row> TpchGenerator::Generate() {
  Rng rng(config_.seed);
  std::vector<Row> rows;
  rows.reserve(TotalRows());
  for (TpchTable table : AllTpchTables()) {
    // Intern the column ids once per table.
    std::vector<AttributeId> columns;
    for (const std::string& column : TpchColumns(table)) {
      columns.push_back(dictionary_->GetOrCreate(column));
    }
    const uint64_t count = TpchRowCount(table, config_.scale_factor);
    for (uint64_t ordinal = 0; ordinal < count; ++ordinal) {
      Row row(TpchEntityId(table, ordinal));
      for (AttributeId column : columns) {
        row.Set(column, Value(static_cast<int64_t>(rng.Next() % 1000000)));
      }
      rows.push_back(std::move(row));
    }
  }
  if (config_.shuffle) rng.Shuffle(rows);
  return rows;
}

}  // namespace cinderella
