#include "common/env.h"

#include <cstdlib>

namespace cinderella {

int64_t Int64FromEnv(const char* name, int64_t default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return default_value;
  return parsed;
}

double DoubleFromEnv(const char* name, double default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return default_value;
  return parsed;
}

std::string StringFromEnv(const char* name, const std::string& default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return default_value;
  return raw;
}

}  // namespace cinderella
