#ifndef CINDERELLA_COMMON_ARENA_H_
#define CINDERELLA_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace cinderella {

class ArenaPool;

/// A bump allocator over chunked 64 KiB blocks.
///
/// Built for the MVCC snapshot layer (mvcc/partition_version.h): every
/// publication packs its fresh PartitionVersions — row headers, cell
/// payloads, point index, synopsis words, carrier counts — into one arena
/// so a ForEachPartition scan walks sequential memory instead of chasing
/// per-version heap allocations. Allocations are never freed
/// individually; Reset() rewinds the whole arena while *keeping* its
/// blocks, which is what makes pooled reuse (ArenaPool) malloc-free.
///
/// Requests larger than a block get a dedicated block of exactly the
/// requested size. Large blocks are retained across Resets too (each
/// serves one allocation per fill cycle, first-fit by size), so a steady
/// workload whose biggest partitions keep similar footprints reaches zero
/// mallocs even when individual cell arrays exceed kBlockSize. The
/// retained capacity is bounded by the worst generation seen and is
/// observable through bytes_retained() / ArenaPool::Stats.
///
/// Retention is bounded in time as well as size: a block that goes unused
/// for trim_idle_recycles() consecutive fill cycles is freed at the next
/// Reset (blocks_trimmed() counts them), so one anomalously large
/// generation does not pin its worst-case footprint forever. The
/// worst-case demand itself stays observable through bytes_high_water().
///
/// Thread-safety: allocation and Reset are single-threaded (the
/// publisher's lock); only the reference count is atomic, because the
/// last release can happen on the reclamation path. Readers only ever
/// *read* arena memory, which is immutable between publication and Reset.
class Arena {
 public:
  static constexpr size_t kBlockSize = 64 * 1024;

  Arena() = default;
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two,
  /// at most alignof(std::max_align_t)). Never returns nullptr.
  void* Allocate(size_t bytes, size_t align);

  /// Uninitialized storage for `count` objects of T, aligned for T. The
  /// caller placement-constructs (and, for non-trivial T, destroys before
  /// the arena is Reset — the arena never runs destructors).
  template <typename T>
  T* AllocateArrayOf(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping blocks for reuse: refilling up to the
  /// retained capacity performs no allocator calls. Blocks idle for
  /// trim_idle_recycles() consecutive cycles are freed instead of kept.
  void Reset();

  /// Bytes handed out since the last Reset (alignment padding included).
  size_t bytes_used() const { return bytes_used_; }

  /// Byte capacity retained across Resets.
  size_t bytes_retained() const {
    return bytes_retained_.load(std::memory_order_relaxed);
  }

  /// Largest bytes_used() ever reached — the worst-case fill this arena
  /// has served, stable across Resets and trims.
  size_t bytes_high_water() const {
    return bytes_high_water_.load(std::memory_order_relaxed);
  }

  /// Blocks freed by the idle-trim policy over this arena's lifetime.
  uint64_t blocks_trimmed() const {
    return blocks_trimmed_.load(std::memory_order_relaxed);
  }

  /// Consecutive fill cycles a block may sit unused before Reset frees
  /// it. 0 disables trimming (retain forever, the pre-trim behavior).
  void set_trim_idle_recycles(uint32_t recycles) {
    trim_idle_recycles_.store(recycles, std::memory_order_relaxed);
  }
  uint32_t trim_idle_recycles() const {
    return trim_idle_recycles_.load(std::memory_order_relaxed);
  }

  static constexpr uint32_t kDefaultTrimIdleRecycles = 16;

  /// Blocks ever obtained from the allocator over this arena's lifetime —
  /// monotonic across Resets. The steady-state "zero mallocs" claim in
  /// BENCH_scan.json is this counter staying flat while publications keep
  /// recycling the arena.
  uint64_t lifetime_blocks_allocated() const {
    return lifetime_blocks_allocated_.load(std::memory_order_relaxed);
  }

  // -- Pooled lifetime -------------------------------------------------------
  //
  // Snapshot arenas are shared: every PartitionVersion built in an arena
  // holds one reference, and versions retire at different times (views
  // share versions copy-on-write). The last Unref returns the arena to
  // its pool (Reset, then free-listed) or deletes it when unpooled.

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }

  /// Drops one reference; recycles into the owning pool (or deletes) when
  /// it was the last. The caller must not touch the arena afterwards.
  void Unref();

 private:
  friend class ArenaPool;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Tracks the peak live fill as it happens (bytes_used_ is monotonic
  /// within a cycle), so the high-water mark is truthful even for an
  /// arena that has never been Reset.
  void UpdateHighWater() {
    if (bytes_used_ > bytes_high_water_.load(std::memory_order_relaxed)) {
      bytes_high_water_.store(bytes_used_, std::memory_order_relaxed);
    }
  }

  /// Bump state over the uniform kBlockSize blocks.
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t next_block_ = 0;  // blocks_ index of the next block to bump into.
  std::vector<Block> blocks_;
  std::vector<uint32_t> block_idle_;  // Unused-cycle streak per block.

  /// Dedicated blocks for requests > kBlockSize - alignment slack. Each
  /// serves at most one allocation per fill cycle (first fit by size);
  /// large_used_ flags are cleared by Reset.
  std::vector<Block> large_;
  std::vector<char> large_used_;
  std::vector<uint32_t> large_idle_;

  size_t bytes_used_ = 0;
  // Atomics (relaxed): mutated only by the single-threaded filler, but
  // read by concurrent ArenaPool::stats() probes.
  std::atomic<size_t> bytes_retained_{0};
  std::atomic<size_t> bytes_high_water_{0};
  std::atomic<uint64_t> lifetime_blocks_allocated_{0};
  std::atomic<uint64_t> blocks_trimmed_{0};
  std::atomic<uint32_t> trim_idle_recycles_{kDefaultTrimIdleRecycles};

  std::atomic<uint64_t> refs_{0};
  ArenaPool* pool_ = nullptr;  // Set once by the owning pool; never changes.
};

/// A free list of recycled arenas. Acquire() prefers a pooled arena (its
/// blocks already sized by earlier generations) and only allocates a new
/// one when the list is empty, so steady-state snapshot publication does
/// zero mallocs. Thread-safe; the pool must outlive every arena it ever
/// handed out (in VersionedTable it is declared before the EpochManager
/// whose reclamation runs the final Unrefs).
class ArenaPool {
 public:
  struct Stats {
    uint64_t arenas_created = 0;    // Acquire() misses (new Arena).
    uint64_t arenas_reused = 0;     // Acquire() hits (from the free list).
    uint64_t arenas_recycled = 0;   // Last Unref returned an arena here.
    uint64_t blocks_allocated = 0;  // Lifetime blocks across all arenas.
    uint64_t blocks_trimmed = 0;    // Blocks freed by the idle-trim policy.
    size_t pooled_arenas = 0;       // Currently idle in the free list.
    size_t live_arenas = 0;         // Handed out and not yet recycled.
    size_t bytes_retained = 0;      // Capacity held by idle pooled arenas.
    size_t bytes_high_water = 0;    // Largest single-arena fill ever seen.
  };

  ArenaPool() = default;
  ~ArenaPool();

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// An empty arena with one reference held by the caller.
  Arena* Acquire();

  /// Applies the trim policy to every arena the pool has created and to
  /// future ones. 0 disables trimming.
  void set_trim_idle_recycles(uint32_t recycles);

  Stats stats() const;

 private:
  friend class Arena;

  /// Called by the last Arena::Unref.
  void Recycle(Arena* arena);

  mutable std::mutex mu_;
  std::vector<Arena*> free_;
  std::vector<std::unique_ptr<Arena>> all_;  // Every arena ever created.
  uint64_t arenas_created_ = 0;
  uint64_t arenas_reused_ = 0;
  uint64_t arenas_recycled_ = 0;
  uint32_t trim_idle_recycles_ = Arena::kDefaultTrimIdleRecycles;
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_ARENA_H_
