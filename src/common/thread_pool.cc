#include "common/thread_pool.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/env.h"

namespace cinderella {
namespace {

// Process-wide cache of environment/hardware resolutions, keyed by
// variable name. Leaked on purpose (no destruction-order hazards for
// pools that outlive main). Guarded by its own mutex; the lookup is a
// handful of nanoseconds against the syscalls it replaces.
std::mutex& ResolutionCacheMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, int64_t>& ResolutionCache() {
  static auto* cache = new std::unordered_map<std::string, int64_t>();
  return *cache;
}

template <typename FallbackFn>
int64_t CachedEnvResolution(const char* env_var, FallbackFn fallback) {
  std::lock_guard<std::mutex> lock(ResolutionCacheMutex());
  auto& cache = ResolutionCache();
  const auto it = cache.find(env_var);
  if (it != cache.end()) return it->second;
  int64_t resolved = Int64FromEnv(env_var, 0);
  if (resolved <= 0) resolved = fallback();
  cache.emplace(env_var, resolved);
  return resolved;
}

}  // namespace

ThreadPool::ThreadPool(int degree) : degree_(std::max(degree, 1)) {
  workers_.reserve(static_cast<size_t>(degree_ - 1));
  for (int i = 1; i < degree_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks(
    const std::function<void(size_t, size_t, size_t)>& fn, size_t items,
    size_t chunk, const std::vector<size_t>* bounds) {
  const size_t num_chunks =
      bounds != nullptr ? bounds->size() : NumChunks(items, chunk);
  size_t c;
  while ((c = next_chunk_.fetch_add(1, std::memory_order_relaxed)) <
         num_chunks) {
    size_t begin;
    size_t end;
    if (bounds != nullptr) {
      begin = c == 0 ? 0 : (*bounds)[c - 1];
      end = (*bounds)[c];
    } else {
      begin = c * chunk;
      end = std::min(items, begin + chunk);
    }
    fn(begin, end, c);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    size_t items = 0;
    size_t chunk = 0;
    const std::vector<size_t>* bounds = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this, seen] { return shutdown_ || batch_seq_ != seen; });
      if (shutdown_) return;
      seen = batch_seq_;
      fn = fn_;
      items = items_;
      chunk = chunk_;
      bounds = bounds_;
    }
    RunChunks(*fn, items, chunk, bounds);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunBatch(const std::function<void(size_t, size_t, size_t)>& fn,
                          size_t items, size_t chunk,
                          const std::vector<size_t>* bounds) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    items_ = items;
    chunk_ = chunk;
    bounds_ = bounds;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_workers_ = workers_.size();
    ++batch_seq_;
  }
  work_cv_.notify_all();
  // The caller participates: even if every worker is slow to wake, the
  // batch completes.
  RunChunks(fn, items, chunk, bounds);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
  fn_ = nullptr;
  bounds_ = nullptr;
}

void ThreadPool::ParallelFor(
    size_t items, size_t chunk,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (chunk == 0) chunk = 1;
  const size_t num_chunks = NumChunks(items, chunk);
  if (num_chunks == 0) return;
  // Serial fast path: no workers, or nothing to spread. Runs the chunks
  // inline in ascending order — identical invocation sequence to the
  // parallel path's chunk indices, so callers need no special casing.
  if (workers_.empty() || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      fn(c * chunk, std::min(items, (c + 1) * chunk), c);
    }
    return;
  }
  RunBatch(fn, items, chunk, nullptr);
}

void ThreadPool::ParallelForDynamic(
    size_t items, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (items == 0) return;
  if (workers_.empty()) {
    // Degree 1: one chunk, inline — matches DynamicChunkBounds.
    fn(0, items, 0);
    return;
  }
  const std::vector<size_t> bounds =
      DynamicChunkBounds(items, min_chunk, degree_);
  if (bounds.size() == 1) {
    fn(0, items, 0);
    return;
  }
  RunBatch(fn, items, 0, &bounds);
}

std::vector<size_t> ThreadPool::DynamicChunkBounds(size_t items,
                                                   size_t min_chunk,
                                                   int degree) {
  std::vector<size_t> bounds;
  if (items == 0) return bounds;
  if (min_chunk == 0) min_chunk = 1;
  if (degree <= 1) {
    bounds.push_back(items);
    return bounds;
  }
  // Guided self-scheduling: each chunk takes half an even share of what
  // remains, floored at the morsel size. Early chunks are coarse (cheap
  // dispatch), tail chunks shrink to min_chunk so a late straggler holds
  // little work while the rest of the pool drains the queue.
  const size_t streams = static_cast<size_t>(degree);
  size_t offset = 0;
  while (offset < items) {
    const size_t remaining = items - offset;
    const size_t guided = remaining / (2 * streams);
    const size_t chunk = std::min(remaining, std::max(min_chunk, guided));
    offset += chunk;
    bounds.push_back(offset);
  }
  return bounds;
}

size_t ThreadPool::NumDynamicChunks(size_t items, size_t min_chunk,
                                    int degree) {
  return DynamicChunkBounds(items, min_chunk, degree).size();
}

int ThreadPool::ResolveDegree(int configured) {
  return ResolveDegree(configured, "CINDERELLA_SCAN_THREADS");
}

int ThreadPool::ResolveDegree(int configured, const char* env_var) {
  if (configured > 0) return configured;
  return static_cast<int>(CachedEnvResolution(env_var, [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int64_t>(hw) : int64_t{1};
  }));
}

size_t ThreadPool::ResolveScanChunk(size_t configured) {
  if (configured > 0) return configured;
  return static_cast<size_t>(CachedEnvResolution(
      "CINDERELLA_SCAN_CHUNK",
      [] { return static_cast<int64_t>(kDefaultScanChunk); }));
}

void ThreadPool::ResetResolutionCacheForTesting() {
  std::lock_guard<std::mutex> lock(ResolutionCacheMutex());
  ResolutionCache().clear();
}

}  // namespace cinderella
