#include "common/thread_pool.h"

#include <algorithm>

#include "common/env.h"

namespace cinderella {

ThreadPool::ThreadPool(int degree) : degree_(std::max(degree, 1)) {
  workers_.reserve(static_cast<size_t>(degree_ - 1));
  for (int i = 1; i < degree_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks(
    const std::function<void(size_t, size_t, size_t)>& fn, size_t items,
    size_t chunk) {
  const size_t num_chunks = NumChunks(items, chunk);
  size_t c;
  while ((c = next_chunk_.fetch_add(1, std::memory_order_relaxed)) <
         num_chunks) {
    const size_t begin = c * chunk;
    const size_t end = std::min(items, begin + chunk);
    fn(begin, end, c);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
    size_t items = 0;
    size_t chunk = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this, seen] { return shutdown_ || batch_seq_ != seen; });
      if (shutdown_) return;
      seen = batch_seq_;
      fn = fn_;
      items = items_;
      chunk = chunk_;
    }
    RunChunks(*fn, items, chunk);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t items, size_t chunk,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (chunk == 0) chunk = 1;
  const size_t num_chunks = NumChunks(items, chunk);
  if (num_chunks == 0) return;
  // Serial fast path: no workers, or nothing to spread. Runs the chunks
  // inline in ascending order — identical invocation sequence to the
  // parallel path's chunk indices, so callers need no special casing.
  if (workers_.empty() || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      fn(c * chunk, std::min(items, (c + 1) * chunk), c);
    }
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    items_ = items;
    chunk_ = chunk;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_workers_ = workers_.size();
    ++batch_seq_;
  }
  work_cv_.notify_all();
  // The caller participates: even if every worker is slow to wake, the
  // batch completes.
  RunChunks(fn, items, chunk);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
  fn_ = nullptr;
}

int ThreadPool::ResolveDegree(int configured) {
  return ResolveDegree(configured, "CINDERELLA_SCAN_THREADS");
}

int ThreadPool::ResolveDegree(int configured, const char* env_var) {
  if (configured > 0) return configured;
  const int64_t from_env = Int64FromEnv(env_var, 0);
  if (from_env > 0) return static_cast<int>(from_env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace cinderella
