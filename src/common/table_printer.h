#ifndef CINDERELLA_COMMON_TABLE_PRINTER_H_
#define CINDERELLA_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace cinderella {

/// Accumulates rows and renders an aligned ASCII table.
///
/// The bench drivers use this to print the series/rows of each paper figure
/// and table in a form that diffs cleanly between runs.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell with fixed precision.
  void AddRow(const std::vector<double>& cells, int precision = 4);

  /// Renders the table with a header separator line.
  std::string ToString() const;

  /// Formats a double with the given precision, trimming trailing zeros.
  static std::string FormatDouble(double value, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_TABLE_PRINTER_H_
