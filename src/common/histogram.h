#ifndef CINDERELLA_COMMON_HISTOGRAM_H_
#define CINDERELLA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cinderella {

/// Histogram with logarithmically spaced buckets.
///
/// Used to report insert-latency distributions (paper Figure 8, whose x-axis
/// spans 0.1 ms to >100 ms on a log scale). Bucket i covers
/// [min_value * base^i, min_value * base^(i+1)).
class LogHistogram {
 public:
  /// `min_value` is the lower edge of the first bucket; values below it are
  /// counted in an underflow bucket. `base` > 1 controls bucket growth;
  /// `num_buckets` >= 1.
  LogHistogram(double min_value, double base, size_t num_buckets);

  void Add(double value);

  /// Number of recorded values (including under/overflow).
  uint64_t count() const { return count_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t bucket_count(size_t i) const { return buckets_[i]; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Lower edge of bucket i.
  double bucket_lower(size_t i) const;

  /// Approximate p-quantile (q in [0,1]) using bucket lower edges.
  double Quantile(double q) const;

  double min_seen() const { return min_seen_; }
  double max_seen() const { return max_seen_; }

  /// Renders an ASCII bar chart, one line per non-empty bucket.
  std::string ToString(size_t max_bar_width = 50) const;

 private:
  double min_value_;
  double log_base_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_HISTOGRAM_H_
