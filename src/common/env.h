#ifndef CINDERELLA_COMMON_ENV_H_
#define CINDERELLA_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace cinderella {

/// Reads an integer from the environment variable `name`, falling back to
/// `default_value` when unset or unparsable. Bench drivers use this for
/// scale knobs (e.g. CINDERELLA_ENTITIES).
int64_t Int64FromEnv(const char* name, int64_t default_value);

/// Reads a double from the environment variable `name`.
double DoubleFromEnv(const char* name, double default_value);

/// Reads a string from the environment variable `name`.
std::string StringFromEnv(const char* name, const std::string& default_value);

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_ENV_H_
