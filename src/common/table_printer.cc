#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace cinderella {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CINDERELLA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double value : cells) formatted.push_back(FormatDouble(value, precision));
  AddRow(std::move(formatted));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += "|";
    sep.append(widths[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace cinderella
