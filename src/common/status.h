#ifndef CINDERELLA_COMMON_STATUS_H_
#define CINDERELLA_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace cinderella {

/// Canonical error codes for operations that can fail.
///
/// The library does not use exceptions (see DESIGN.md); fallible operations
/// return a Status or a StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  /// A network/IO operation missed its deadline (net/socket.h timeouts).
  kDeadlineExceeded,
  /// A remote peer is unreachable or hung up (connection refused, EOF).
  kUnavailable,
};

/// Returns a stable, human-readable name for a status code (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail.
///
/// A Status is either OK (carries no message) or an error code plus a
/// human-readable message. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Accessing value() on an error StatusOr aborts in debug builds and is
/// undefined in release builds; check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs from an error status (implicit so `return status;` works).
  /// The status must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define CINDERELLA_RETURN_IF_ERROR(expr)             \
  do {                                               \
    ::cinderella::Status _status = (expr);           \
    if (!_status.ok()) return _status;               \
  } while (false)

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_STATUS_H_
