#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace cinderella {

LogHistogram::LogHistogram(double min_value, double base, size_t num_buckets)
    : min_value_(min_value), log_base_(std::log(base)) {
  CINDERELLA_CHECK(min_value > 0.0);
  CINDERELLA_CHECK(base > 1.0);
  CINDERELLA_CHECK(num_buckets >= 1);
  buckets_.assign(num_buckets, 0);
}

void LogHistogram::Add(double value) {
  if (count_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  if (value < min_value_) {
    ++underflow_;
    return;
  }
  const double idx = std::log(value / min_value_) / log_base_;
  if (idx >= static_cast<double>(buckets_.size())) {
    ++overflow_;
    return;
  }
  ++buckets_[static_cast<size_t>(idx)];
}

double LogHistogram::bucket_lower(size_t i) const {
  return min_value_ * std::exp(log_base_ * static_cast<double>(i));
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return min_value_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= target) return bucket_lower(i);
  }
  return max_seen_;
}

std::string LogHistogram::ToString(size_t max_bar_width) const {
  uint64_t peak = 1;
  for (uint64_t c : buckets_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "%12s < %-10.4g %8llu\n", "", min_value_,
                  static_cast<unsigned long long>(underflow_));
    out += line;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const size_t bar =
        static_cast<size_t>(static_cast<double>(buckets_[i]) /
                            static_cast<double>(peak) *
                            static_cast<double>(max_bar_width));
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8llu ",
                  bucket_lower(i), bucket_lower(i + 1),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "%12s >= %-10.4g %8llu\n", "",
                  bucket_lower(buckets_.size()),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace cinderella
