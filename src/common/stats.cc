#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace cinderella {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SampleSummary Summarize(std::vector<double> values) {
  SampleSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  s.p25 = QuantileSorted(values, 0.25);
  s.median = QuantileSorted(values, 0.50);
  s.p75 = QuantileSorted(values, 0.75);
  s.p95 = QuantileSorted(values, 0.95);
  return s;
}

}  // namespace cinderella
