#ifndef CINDERELLA_COMMON_TIMER_H_
#define CINDERELLA_COMMON_TIMER_H_

#include <chrono>

namespace cinderella {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_TIMER_H_
