#ifndef CINDERELLA_COMMON_LOGGING_H_
#define CINDERELLA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace cinderella {
namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, condition);
  std::abort();
}

}  // namespace internal_logging
}  // namespace cinderella

/// Aborts the process if `condition` is false. Enabled in all build modes;
/// use for invariants whose violation would corrupt the partitioning state.
#define CINDERELLA_CHECK(condition)                                       \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::cinderella::internal_logging::CheckFailed(__FILE__, __LINE__,     \
                                                  #condition);            \
    }                                                                     \
  } while (false)

/// Debug-only invariant check; compiled out when NDEBUG is defined.
#ifdef NDEBUG
#define CINDERELLA_DCHECK(condition) \
  do {                               \
  } while (false)
#else
#define CINDERELLA_DCHECK(condition) CINDERELLA_CHECK(condition)
#endif

#endif  // CINDERELLA_COMMON_LOGGING_H_
