#ifndef CINDERELLA_COMMON_ZIPF_H_
#define CINDERELLA_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace cinderella {

/// Samples ranks from a Zipf distribution over {0, ..., n-1}.
///
/// P(rank = k) is proportional to 1 / (k+1)^theta. The paper cites studies
/// ([4], [5]) observing that attribute frequency in irregularly structured
/// data obeys Zipf's law; the DBpedia workload generator uses this sampler
/// for its long-tail attribute component.
///
/// Implementation: precomputed CDF + binary search, O(log n) per sample.
class ZipfSampler {
 public:
  /// Builds the CDF for `n` ranks with exponent `theta` (> 0 for skew,
  /// theta == 0 degenerates to uniform). `n` must be >= 1.
  ZipfSampler(size_t n, double theta);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability mass of a single rank.
  double Pmf(size_t rank) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_ZIPF_H_
