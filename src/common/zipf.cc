#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cinderella {

ZipfSampler::ZipfSampler(size_t n, double theta) {
  CINDERELLA_CHECK(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = total;
  }
  for (auto& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // Guard against accumulated rounding.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  CINDERELLA_DCHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace cinderella
