#ifndef CINDERELLA_COMMON_RANDOM_H_
#define CINDERELLA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cinderella {

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// All workload generators and benches take an explicit seed so that every
/// experiment in EXPERIMENTS.md is reproducible run-to-run. The generator is
/// self-contained to keep results identical across standard libraries
/// (std::mt19937 distributions are not portable across implementations).
class Rng {
 public:
  /// Seeds the state from `seed` via splitmix64, so that nearby seeds yield
  /// uncorrelated streams.
  explicit Rng(uint64_t seed);

  /// Returns the next 64 random bits.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling; unbiased.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_RANDOM_H_
