#include "common/arena.h"

#include <algorithm>

#include "common/logging.h"

namespace cinderella {
namespace {

inline char* AlignUp(char* p, size_t align) {
  const uintptr_t u = reinterpret_cast<uintptr_t>(p);
  return reinterpret_cast<char*>((u + align - 1) & ~uintptr_t(align - 1));
}

}  // namespace

void* Arena::Allocate(size_t bytes, size_t align) {
  CINDERELLA_CHECK(align != 0 && (align & (align - 1)) == 0);
  // Requests that cannot be served by a fresh uniform block (leaving room
  // for worst-case alignment) go to the dedicated large-block path.
  if (bytes + align > kBlockSize) {
    for (size_t i = 0; i < large_.size(); ++i) {
      if (!large_used_[i] && large_[i].size >= bytes + align) {
        large_used_[i] = 1;
        bytes_used_ += bytes;
        UpdateHighWater();
        return AlignUp(large_[i].data.get(), align);
      }
    }
    Block block;
    block.size = bytes + align;
    block.data.reset(new char[block.size]);
    lifetime_blocks_allocated_.fetch_add(1, std::memory_order_relaxed);
    bytes_retained_.fetch_add(block.size, std::memory_order_relaxed);
    bytes_used_ += bytes;
    UpdateHighWater();
    char* result = AlignUp(block.data.get(), align);
    large_.push_back(std::move(block));
    large_used_.push_back(1);
    large_idle_.push_back(0);
    return result;
  }

  char* aligned = cursor_ != nullptr ? AlignUp(cursor_, align) : nullptr;
  if (aligned == nullptr || aligned + bytes > limit_) {
    // Advance to the next retained block, or grow by one.
    if (next_block_ == blocks_.size()) {
      Block block;
      block.size = kBlockSize;
      block.data.reset(new char[block.size]);
      lifetime_blocks_allocated_.fetch_add(1, std::memory_order_relaxed);
      bytes_retained_.fetch_add(block.size, std::memory_order_relaxed);
      blocks_.push_back(std::move(block));
      block_idle_.push_back(0);
    }
    Block& block = blocks_[next_block_++];
    cursor_ = block.data.get();
    limit_ = cursor_ + block.size;
    aligned = AlignUp(cursor_, align);
  }
  bytes_used_ += static_cast<size_t>(aligned - cursor_) + bytes;
  cursor_ = aligned + bytes;
  UpdateHighWater();
  return aligned;
}

void Arena::Reset() {
  // Idle-trim: a block that served this cycle resets its streak; one that
  // sat unused for the configured number of consecutive cycles is freed
  // (swap-remove — uniform blocks are interchangeable and large blocks
  // are matched first-fit, so order carries no meaning).
  const uint32_t trim = trim_idle_recycles_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < blocks_.size();) {
    if (i < next_block_) {  // Bumped into this cycle.
      block_idle_[i] = 0;
      ++i;
    } else if (trim != 0 && ++block_idle_[i] >= trim) {
      bytes_retained_.fetch_sub(blocks_[i].size, std::memory_order_relaxed);
      blocks_trimmed_.fetch_add(1, std::memory_order_relaxed);
      blocks_[i] = std::move(blocks_.back());
      blocks_.pop_back();
      block_idle_[i] = block_idle_.back();
      block_idle_.pop_back();
      // The swapped-in tail block was not visited yet; re-examine slot i.
      // (It cannot be < next_block_: those slots were all passed already.)
    } else {
      ++i;
    }
  }
  for (size_t i = 0; i < large_.size();) {
    if (large_used_[i] != 0) {
      large_used_[i] = 0;
      large_idle_[i] = 0;
      ++i;
    } else if (trim != 0 && ++large_idle_[i] >= trim) {
      bytes_retained_.fetch_sub(large_[i].size, std::memory_order_relaxed);
      blocks_trimmed_.fetch_add(1, std::memory_order_relaxed);
      large_[i] = std::move(large_.back());
      large_.pop_back();
      large_used_[i] = large_used_.back();
      large_used_.pop_back();
      large_idle_[i] = large_idle_.back();
      large_idle_.pop_back();
    } else {
      ++i;
    }
  }

  cursor_ = nullptr;
  limit_ = nullptr;
  next_block_ = 0;
  bytes_used_ = 0;
}

void Arena::Unref() {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (pool_ != nullptr) {
    pool_->Recycle(this);
  } else {
    delete this;
  }
}

ArenaPool::~ArenaPool() = default;

Arena* ArenaPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  Arena* arena;
  if (!free_.empty()) {
    arena = free_.back();
    free_.pop_back();
    ++arenas_reused_;
  } else {
    all_.push_back(std::make_unique<Arena>());
    arena = all_.back().get();
    arena->pool_ = this;
    arena->set_trim_idle_recycles(trim_idle_recycles_);
    ++arenas_created_;
  }
  arena->Ref();
  return arena;
}

void ArenaPool::set_trim_idle_recycles(uint32_t recycles) {
  std::lock_guard<std::mutex> lock(mu_);
  trim_idle_recycles_ = recycles;
  for (const auto& arena : all_) arena->set_trim_idle_recycles(recycles);
}

void ArenaPool::Recycle(Arena* arena) {
  arena->Reset();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(arena);
  ++arenas_recycled_;
}

ArenaPool::Stats ArenaPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.arenas_created = arenas_created_;
  stats.arenas_reused = arenas_reused_;
  stats.arenas_recycled = arenas_recycled_;
  stats.pooled_arenas = free_.size();
  stats.live_arenas = all_.size() - free_.size();
  for (const auto& arena : all_) {
    stats.blocks_allocated += arena->lifetime_blocks_allocated();
    stats.blocks_trimmed += arena->blocks_trimmed();
    stats.bytes_high_water =
        std::max(stats.bytes_high_water, arena->bytes_high_water());
  }
  for (const Arena* arena : free_) {
    stats.bytes_retained += arena->bytes_retained();
  }
  return stats;
}

}  // namespace cinderella
