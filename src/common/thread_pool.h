#ifndef CINDERELLA_COMMON_THREAD_POOL_H_
#define CINDERELLA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cinderella {

/// A fixed pool of worker threads driving the ParallelFor primitives used
/// by the scan engine (rating scan of Algorithm 1, query-side partition
/// scan, GROUP BY aggregation).
///
/// Design notes:
///  - `degree` counts execution streams *including* the calling thread,
///    so a pool of degree d spawns d-1 workers. Degree <= 1 spawns no
///    threads at all and ParallelFor degrades to an inline serial loop —
///    the serial build has zero threading overhead and needs no special
///    casing at call sites.
///  - Both scheduling primitives split the range into contiguous chunks
///    identified by a stable ascending chunk index. Callers write
///    per-chunk outputs into pre-sized slots and merge them in chunk
///    order after the call, which makes every result deterministic
///    (bit-identical to the serial loop) regardless of thread scheduling.
///  - ParallelFor uses uniform chunks of a caller-chosen size;
///    ParallelForDynamic uses a guided morsel schedule (large chunks up
///    front, shrinking toward the tail) whose boundaries are a pure
///    function of (items, min_chunk, degree) — dynamic *claiming* with
///    deterministic *boundaries*, so stragglers no longer gate the batch
///    while outputs still merge in a fixed order.
///  - One batch runs at a time; concurrent calls on the same pool
///    serialize behind an internal lock. The caller participates in
///    chunk execution, so even a heavily contended pool makes progress.
class ThreadPool {
 public:
  /// Default morsel granularity of the query scan paths (partitions per
  /// claimed chunk); see ResolveScanChunk.
  static constexpr size_t kDefaultScanChunk = 4;

  /// Spawns degree-1 workers (none for degree <= 1).
  explicit ThreadPool(int degree);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution streams (calling thread + workers).
  int degree() const { return degree_; }

  /// Splits [0, items) into NumChunks(items, chunk) contiguous chunks and
  /// invokes fn(begin, end, chunk_index) exactly once per chunk, spread
  /// over the workers and the calling thread. Blocks until every chunk
  /// completed. `fn` must be safe to call concurrently for distinct
  /// chunks; chunk_index is 0-based in ascending range order.
  void ParallelFor(size_t items, size_t chunk,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// Morsel-driven variant: chunks follow the guided schedule of
  /// DynamicChunkBounds (early chunks of ~remaining/(2*degree) items,
  /// never below `min_chunk`, so the tail is fine-grained and a straggler
  /// holds at most `min_chunk` items while the rest of the pool drains
  /// the queue). Chunks are claimed from an atomic ticket counter; the
  /// chunk index passed to `fn` is the deterministic schedule position,
  /// so per-chunk output slots merge in the same order at any degree.
  void ParallelForDynamic(
      size_t items, size_t min_chunk,
      const std::function<void(size_t, size_t, size_t)>& fn);

  /// Number of chunks ParallelFor(items, chunk, ...) produces.
  static size_t NumChunks(size_t items, size_t chunk) {
    if (chunk == 0) chunk = 1;
    return items == 0 ? 0 : (items + chunk - 1) / chunk;
  }

  /// The guided morsel schedule: exclusive end offsets of each chunk, a
  /// pure function of the arguments (no scheduling state), ascending and
  /// ending at `items`. Callers size per-chunk output slots from
  /// .size(). Degree <= 1 yields a single chunk covering everything.
  static std::vector<size_t> DynamicChunkBounds(size_t items,
                                                size_t min_chunk, int degree);

  /// DynamicChunkBounds(...).size() without materializing the vector.
  static size_t NumDynamicChunks(size_t items, size_t min_chunk, int degree);

  /// Resolves a configured thread-count knob to an effective pool degree:
  /// a positive value wins, 0 falls back to the CINDERELLA_SCAN_THREADS
  /// environment variable, and an unset/invalid variable falls back to
  /// std::thread::hardware_concurrency(). Never returns less than 1.
  /// The environment/hardware fallback is resolved once per process and
  /// cached (thread-safe): hot-path constructors (e.g. QueryExecutor)
  /// would otherwise pay getenv + hardware_concurrency per query.
  static int ResolveDegree(int configured);

  /// Same resolution rule with a caller-chosen environment variable
  /// (e.g. CINDERELLA_INSERT_SHARDS for the batched insert engine).
  /// Cached per variable name.
  static int ResolveDegree(int configured, const char* env_var);

  /// Resolves the scan morsel size shared by the query scan and
  /// aggregation paths: a positive value wins, 0 falls back to the
  /// CINDERELLA_SCAN_CHUNK environment variable, and an unset/invalid
  /// variable falls back to kDefaultScanChunk. Cached like ResolveDegree.
  static size_t ResolveScanChunk(size_t configured);

  /// Drops every cached environment resolution so tests can change
  /// CINDERELLA_* variables mid-process. Not for production use: the
  /// cache exists precisely so the hot path never re-reads the
  /// environment.
  static void ResetResolutionCacheForTesting();

 private:
  void RunChunks(const std::function<void(size_t, size_t, size_t)>& fn,
                 size_t items, size_t chunk,
                 const std::vector<size_t>* bounds);
  void WorkerLoop();
  void RunBatch(const std::function<void(size_t, size_t, size_t)>& fn,
                size_t items, size_t chunk,
                const std::vector<size_t>* bounds);

  const int degree_;
  std::vector<std::thread> workers_;

  // Serializes whole ParallelFor batches.
  std::mutex run_mu_;

  // Protects the batch publication state below.
  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait for a new batch.
  std::condition_variable done_cv_;  // Caller waits for batch completion.
  bool shutdown_ = false;
  uint64_t batch_seq_ = 0;
  size_t pending_workers_ = 0;
  const std::function<void(size_t, size_t, size_t)>* fn_ = nullptr;
  size_t items_ = 0;
  size_t chunk_ = 0;
  // Guided schedule of the current batch; nullptr for uniform chunks.
  const std::vector<size_t>* bounds_ = nullptr;
  std::atomic<size_t> next_chunk_{0};
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_THREAD_POOL_H_
