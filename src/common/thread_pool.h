#ifndef CINDERELLA_COMMON_THREAD_POOL_H_
#define CINDERELLA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cinderella {

/// A fixed pool of worker threads driving the ParallelFor primitive used
/// by the scan engine (rating scan of Algorithm 1, query-side partition
/// scan).
///
/// Design notes:
///  - `degree` counts execution streams *including* the calling thread,
///    so a pool of degree d spawns d-1 workers. Degree <= 1 spawns no
///    threads at all and ParallelFor degrades to an inline serial loop —
///    the serial build has zero threading overhead and needs no special
///    casing at call sites.
///  - ParallelFor splits the range into contiguous chunks identified by a
///    stable ascending chunk index. Callers write per-chunk outputs into
///    pre-sized slots and merge them in chunk order after the call, which
///    makes every result deterministic (bit-identical to the serial loop)
///    regardless of thread scheduling.
///  - One batch runs at a time; concurrent ParallelFor calls on the same
///    pool serialize behind an internal lock. The caller participates in
///    chunk execution, so even a heavily contended pool makes progress.
class ThreadPool {
 public:
  /// Spawns degree-1 workers (none for degree <= 1).
  explicit ThreadPool(int degree);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution streams (calling thread + workers).
  int degree() const { return degree_; }

  /// Splits [0, items) into NumChunks(items, chunk) contiguous chunks and
  /// invokes fn(begin, end, chunk_index) exactly once per chunk, spread
  /// over the workers and the calling thread. Blocks until every chunk
  /// completed. `fn` must be safe to call concurrently for distinct
  /// chunks; chunk_index is 0-based in ascending range order.
  void ParallelFor(size_t items, size_t chunk,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// Number of chunks ParallelFor(items, chunk, ...) produces.
  static size_t NumChunks(size_t items, size_t chunk) {
    if (chunk == 0) chunk = 1;
    return items == 0 ? 0 : (items + chunk - 1) / chunk;
  }

  /// Resolves a configured thread-count knob to an effective pool degree:
  /// a positive value wins, 0 falls back to the CINDERELLA_SCAN_THREADS
  /// environment variable, and an unset/invalid variable falls back to
  /// std::thread::hardware_concurrency(). Never returns less than 1.
  static int ResolveDegree(int configured);

  /// Same resolution rule with a caller-chosen environment variable
  /// (e.g. CINDERELLA_INSERT_SHARDS for the batched insert engine).
  static int ResolveDegree(int configured, const char* env_var);

 private:
  void RunChunks(const std::function<void(size_t, size_t, size_t)>& fn,
                 size_t items, size_t chunk);
  void WorkerLoop();

  const int degree_;
  std::vector<std::thread> workers_;

  // Serializes whole ParallelFor batches.
  std::mutex run_mu_;

  // Protects the batch publication state below.
  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait for a new batch.
  std::condition_variable done_cv_;  // Caller waits for batch completion.
  bool shutdown_ = false;
  uint64_t batch_seq_ = 0;
  size_t pending_workers_ = 0;
  const std::function<void(size_t, size_t, size_t)>* fn_ = nullptr;
  size_t items_ = 0;
  size_t chunk_ = 0;
  std::atomic<size_t> next_chunk_{0};
};

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_THREAD_POOL_H_
