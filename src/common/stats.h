#ifndef CINDERELLA_COMMON_STATS_H_
#define CINDERELLA_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace cinderella {

/// Descriptive statistics over a sample of doubles.
///
/// The figure benches report mean/median/quartiles of per-partition metrics
/// (entities per partition, attributes per partition, sparseness) exactly as
/// the paper's box plots in Figure 7 do.
struct SampleSummary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;   // Population standard deviation.
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Computes the summary of `values`. An empty sample yields all zeros.
SampleSummary Summarize(std::vector<double> values);

/// Linear-interpolation quantile of a *sorted* sample; q in [0, 1].
double QuantileSorted(const std::vector<double>& sorted, double q);

}  // namespace cinderella

#endif  // CINDERELLA_COMMON_STATS_H_
