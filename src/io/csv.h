#ifndef CINDERELLA_IO_CSV_H_
#define CINDERELLA_IO_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/universal_table.h"

namespace cinderella {

/// Options for CSV import/export of a universal table.
struct CsvOptions {
  /// Name of the entity-id column. When importing, a missing id column
  /// auto-assigns sequential ids; when exporting, the id column is always
  /// written first under this name.
  std::string id_column = "id";

  /// Import: infer int64/double cell types from the text (strings
  /// otherwise). Export always renders values with Value::ToString().
  bool infer_types = true;

  /// Import: rows accumulated per UniversalTable::InsertBatch /
  /// ApplyMutations call. The default 0 keeps the historical row-by-row
  /// trigger path; any positive value routes the load through the batched
  /// mutation pipeline (identical placements, amortized rating and
  /// durability cost).
  size_t batch_rows = 0;

  /// Import: name of an optional operation column. When non-empty and
  /// present in the header, each record's cell selects its op — "insert"
  /// (also the meaning of an empty cell), "update", or "delete" (which
  /// reads only the id and requires an explicit one). The stream then
  /// flows through UniversalTable::ApplyMutations as a mixed mutation
  /// batch; with batch_rows == 0 each op dispatches serially. Ignored
  /// when the header lacks the column.
  std::string op_column;
};

/// Imports a *wide* CSV: the header names the attributes, an empty cell
/// means "attribute not instantiated" — the natural file form of a sparse
/// universal table. Rows are routed through the table's partitioner one
/// by one, exactly like the paper's trigger-based loading.
///
/// Quoting follows RFC 4180 (double quotes, doubled to escape); CRLF and
/// LF line endings are accepted.
Status ImportCsv(std::istream& in, UniversalTable* table,
                 const CsvOptions& options = {});

/// File-path convenience overload.
Status ImportCsvFromFile(const std::string& path, UniversalTable* table,
                         const CsvOptions& options = {});

/// Exports the table as a wide CSV with one column per dictionary
/// attribute (in id order) and rows sorted by entity id. Empty cells
/// encode missing attributes.
Status ExportCsv(const UniversalTable& table, std::ostream& out,
                 const CsvOptions& options = {});

/// File-path convenience overload.
Status ExportCsvToFile(const UniversalTable& table, const std::string& path,
                       const CsvOptions& options = {});

}  // namespace cinderella

#endif  // CINDERELLA_IO_CSV_H_
