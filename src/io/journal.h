#ifndef CINDERELLA_IO_JOURNAL_H_
#define CINDERELLA_IO_JOURNAL_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/partitioner.h"
#include "storage/row.h"
#include "synopsis/attribute_dictionary.h"

namespace cinderella {

/// One logged modification operation.
struct JournalEntry {
  enum class Kind : uint8_t {
    kInsert = 1,
    kUpdate = 2,
    kDelete = 3,
    /// Dictionary interning event: attribute `attribute` was assigned
    /// `name`. Logged before the first row that uses the attribute, so a
    /// replay into an empty dictionary reproduces the same ids.
    kAttribute = 4,
    /// Group-commit batch record: u32 op count, then per op a u8 sub-kind
    /// (the kInsert/kUpdate/kDelete wire tags, = Mutation::Kind) and the
    /// op's usual payload. The reader expands a batch into individual
    /// entries, so replay is op-granular: a torn tail inside a batch
    /// recovers exactly the decoded op prefix. Never surfaced from
    /// JournalReader::Next.
    kMutationBatch = 5,
    /// Tier placement record: u32 count, then count u64 representative
    /// entity ids — one per *cold* partition, the lowest entity id the
    /// partition held when it was spilled. Each record carries the
    /// COMPLETE current cold set (not a delta), so replay applies only
    /// the last one seen; entity ids are used because partition ids are
    /// not stable across a snapshot restore. A torn record is ignored
    /// (residency is a performance property, never a correctness one).
    kSpill = 6,
  };
  Kind kind = Kind::kInsert;
  Row row;              // Payload of inserts and updates.
  EntityId entity = 0;  // Target of deletes.
  AttributeId attribute = 0;  // Payload of kAttribute...
  std::string name;           // ...with its interned name.
  std::vector<EntityId> cold_set;  // kSpill: representative entity ids.
};

/// Append-only journal of modification operations.
///
/// Together with core/snapshot.h this gives the durability story: log
/// every DML before applying it, checkpoint by writing a snapshot and
/// truncating the journal, recover by loading the snapshot and replaying
/// the tail. Because Cinderella is deterministic, replay reproduces not
/// only the table contents but the exact same partitioning.
///
/// Entries accumulate in a user-space buffer; Sync() writes the buffer
/// and issues a real fsync, so the group-commit policy of DurableTable
/// (one Sync per batch instead of per row) directly controls the number
/// of disk round trips — observable through syncs().
class JournalWriter {
 public:
  /// Opens for append (`truncate` = false) or creates afresh.
  static StatusOr<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, bool truncate);

  /// Flushes buffered entries to the OS (no fsync) and closes.
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  Status LogInsert(const Row& row);
  Status LogUpdate(const Row& row);
  Status LogDelete(EntityId entity);
  Status LogAttribute(AttributeId attribute, const std::string& name);

  /// Group-commit append: one kMutationBatch record covering the whole op
  /// list (mixed kinds allowed), serialized into the buffer in one pass.
  /// Pair with a single Sync() to make the whole batch durable with one
  /// fsync. Ops replay in list order; entries_written() counts each op.
  Status LogMutationBatch(const std::vector<Mutation>& ops);

  /// Insert-only group commit: one kMutationBatch record of kInsert ops
  /// (wire-identical to LogMutationBatch over Mutation::Insert of each
  /// row, without copying the rows).
  Status LogBatch(const std::vector<Row>& rows);

  /// Delete-side group commit: one kMutationBatch record of kDelete ops.
  Status LogDeleteBatch(const std::vector<EntityId>& entities);

  /// Logs the complete cold set (kSpill): one representative entity id
  /// per cold partition. Later records supersede earlier ones on replay.
  Status LogSpillSet(const std::vector<EntityId>& representatives);

  /// Writes buffered entries to the OS and fsyncs the file: everything
  /// logged so far is durable when this returns OK.
  Status Sync();

  uint64_t entries_written() const { return entries_; }

  /// Number of fsyncs issued; the bench and the recovery tests use this
  /// to verify the group-commit coalescing actually coalesces.
  uint64_t syncs() const { return syncs_; }

 private:
  explicit JournalWriter(int fd);

  /// Writes the buffer to the OS (no fsync).
  Status FlushBuffer();
  Status LogRow(JournalEntry::Kind kind, const Row& row);

  int fd_ = -1;
  std::string buffer_;
  uint64_t entries_ = 0;
  uint64_t syncs_ = 0;
};

/// Sequential reader over a journal file.
class JournalReader {
 public:
  static StatusOr<std::unique_ptr<JournalReader>> Open(
      const std::string& path);

  /// Reads the next entry. Returns false on clean end-of-journal; a
  /// truncated trailing entry (torn write) also ends the stream cleanly,
  /// reported via torn_tail().
  StatusOr<bool> Next(JournalEntry* entry);

  /// True if the journal ended mid-entry (crash during append); recovery
  /// treats everything before the tear as valid.
  bool torn_tail() const { return torn_tail_; }

 private:
  explicit JournalReader(std::ifstream in);

  /// Decodes the next op of the kMutationBatch record being expanded.
  StatusOr<bool> NextBatchOp(JournalEntry* entry);

  std::ifstream in_;
  bool torn_tail_ = false;
  // Ops left in the kMutationBatch record currently being expanded.
  uint32_t batch_remaining_ = 0;
};

/// Replays every entry of the journal at `path` into `partitioner`.
/// Returns the number of entries applied. A missing file counts as an
/// empty journal. kAttribute entries are interned into `*dictionary` when
/// non-null (they must reproduce the recorded ids) and skipped otherwise.
/// kSpill entries are skipped: standalone replay has no cold tier to
/// place partitions on (DurableTable handles them during its recovery).
StatusOr<uint64_t> ReplayJournal(const std::string& path,
                                 Partitioner* partitioner,
                                 AttributeDictionary* dictionary = nullptr);

}  // namespace cinderella

#endif  // CINDERELLA_IO_JOURNAL_H_
