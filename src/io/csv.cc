#include "io/csv.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace cinderella {
namespace {

// Splits one RFC-4180 record (already stripped of the trailing newline is
// NOT assumed: reads from the stream and handles quoted newlines).
// Returns false on clean EOF before any character.
bool ReadRecord(std::istream& in, std::vector<std::string>* fields,
                bool* malformed) {
  fields->clear();
  *malformed = false;
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = in.get()) != EOF) {
    any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(static_cast<char>(c));
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty()) {
          in_quotes = true;
        } else {
          field.push_back('"');  // Lenient: stray quote mid-field.
        }
        break;
      case ',':
        fields->push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        if (in.peek() == '\n') in.get();
        [[fallthrough]];
      case '\n':
        fields->push_back(std::move(field));
        return true;
      default:
        field.push_back(static_cast<char>(c));
    }
  }
  if (in_quotes) *malformed = true;
  if (!any) return false;
  fields->push_back(std::move(field));
  return true;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void WriteField(std::ostream& out, const std::string& s) {
  if (!NeedsQuoting(s)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

Value ParseValue(const std::string& text, bool infer_types) {
  if (infer_types && !text.empty()) {
    char* end = nullptr;
    const long long i = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() && *end == '\0') return Value(int64_t{i});
    const double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() && *end == '\0') return Value(d);
  }
  return Value(text);
}

}  // namespace

Status ImportCsv(std::istream& in, UniversalTable* table,
                 const CsvOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  std::vector<std::string> header;
  bool malformed = false;
  if (!ReadRecord(in, &header, &malformed) || malformed) {
    return Status::InvalidArgument("missing or malformed CSV header");
  }
  size_t id_column = header.size();
  size_t op_column = header.size();
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == options.id_column) id_column = i;
    if (!options.op_column.empty() && header[i] == options.op_column) {
      op_column = i;
    }
  }
  const bool has_ops = op_column < header.size();

  std::vector<std::string> fields;
  std::vector<Row> batch;
  std::vector<Mutation> mutations;
  EntityId next_auto_id = 0;
  size_t line = 1;
  while (ReadRecord(in, &fields, &malformed)) {
    ++line;
    if (malformed) {
      return Status::InvalidArgument("unterminated quote at record " +
                                     std::to_string(line));
    }
    if (fields.size() == 1 && fields[0].empty()) continue;  // Blank line.
    if (fields.size() > header.size()) {
      return Status::InvalidArgument("record " + std::to_string(line) +
                                     " has more fields than the header");
    }
    const bool has_id =
        id_column < fields.size() && !fields[id_column].empty();
    EntityId entity = next_auto_id;
    if (has_id) {
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(fields[id_column].c_str(), &end, 10);
      if (end == fields[id_column].c_str() || *end != '\0') {
        return Status::InvalidArgument("record " + std::to_string(line) +
                                       ": id is not an integer");
      }
      entity = parsed;
    }
    next_auto_id = std::max(next_auto_id, entity + 1);

    Mutation::Kind kind = Mutation::Kind::kInsert;
    if (has_ops && op_column < fields.size()) {
      const std::string& op = fields[op_column];
      if (op.empty() || op == "insert") {
        kind = Mutation::Kind::kInsert;
      } else if (op == "update") {
        kind = Mutation::Kind::kUpdate;
      } else if (op == "delete") {
        kind = Mutation::Kind::kDelete;
      } else {
        return Status::InvalidArgument("record " + std::to_string(line) +
                                       ": unknown op '" + op + "'");
      }
    }
    if (kind == Mutation::Kind::kDelete) {
      if (!has_id) {
        return Status::InvalidArgument("record " + std::to_string(line) +
                                       ": delete needs an explicit id");
      }
      if (options.batch_rows == 0) {
        CINDERELLA_RETURN_IF_ERROR(table->Delete(entity));
        continue;
      }
      mutations.push_back(Mutation::Delete(entity));
    } else {
      if (options.batch_rows == 0 && !has_ops) {
        // Historical trigger path: one Insert per record, by name.
        std::vector<UniversalTable::NamedValue> values;
        for (size_t i = 0; i < fields.size(); ++i) {
          if (i == id_column || i == op_column || fields[i].empty()) continue;
          values.emplace_back(header[i],
                              ParseValue(fields[i], options.infer_types));
        }
        CINDERELLA_RETURN_IF_ERROR(table->Insert(entity, values));
        continue;
      }
      Row row(entity);
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i == id_column || i == op_column || fields[i].empty()) continue;
        row.Set(table->dictionary().GetOrCreate(header[i]),
                ParseValue(fields[i], options.infer_types));
      }
      if (options.batch_rows == 0) {
        // Serial op-stream dispatch.
        CINDERELLA_RETURN_IF_ERROR(kind == Mutation::Kind::kUpdate
                                       ? table->UpdateRow(std::move(row))
                                       : table->InsertRow(std::move(row)));
        continue;
      }
      if (has_ops) {
        mutations.push_back(kind == Mutation::Kind::kUpdate
                                ? Mutation::Update(std::move(row))
                                : Mutation::Insert(std::move(row)));
      } else {
        batch.push_back(std::move(row));
      }
    }
    if (batch.size() >= options.batch_rows && !batch.empty()) {
      CINDERELLA_RETURN_IF_ERROR(table->InsertBatch(std::move(batch)));
      batch.clear();
    }
    if (mutations.size() >= options.batch_rows && !mutations.empty()) {
      CINDERELLA_RETURN_IF_ERROR(table->ApplyMutations(std::move(mutations)));
      mutations.clear();
    }
  }
  if (!batch.empty()) {
    CINDERELLA_RETURN_IF_ERROR(table->InsertBatch(std::move(batch)));
  }
  if (!mutations.empty()) {
    CINDERELLA_RETURN_IF_ERROR(table->ApplyMutations(std::move(mutations)));
  }
  return Status::OK();
}

Status ExportCsv(const UniversalTable& table, std::ostream& out,
                 const CsvOptions& options) {
  const AttributeDictionary& dictionary = table.dictionary();
  WriteField(out, options.id_column);
  for (AttributeId id = 0; id < dictionary.size(); ++id) {
    out << ',';
    auto name = dictionary.Name(id);
    CINDERELLA_RETURN_IF_ERROR(name.status());
    WriteField(out, name.value());
  }
  out << '\n';

  // Deterministic order: collect and sort entity ids.
  std::vector<EntityId> entities;
  table.catalog().ForEachPartition([&](const Partition& partition) {
    for (const Row& row : partition.segment().rows()) {
      entities.push_back(row.id());
    }
  });
  std::sort(entities.begin(), entities.end());

  for (EntityId entity : entities) {
    StatusOr<Row> row = table.Get(entity);
    CINDERELLA_RETURN_IF_ERROR(row.status());
    out << entity;
    for (AttributeId id = 0; id < dictionary.size(); ++id) {
      out << ',';
      const Value* value = row->Get(id);
      if (value != nullptr) WriteField(out, value->ToString());
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("write failure");
  return Status::OK();
}

Status ImportCsvFromFile(const std::string& path, UniversalTable* table,
                         const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  return ImportCsv(in, table, options);
}

Status ExportCsvToFile(const UniversalTable& table, const std::string& path,
                       const CsvOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  return ExportCsv(table, out, options);
}

}  // namespace cinderella
