#include "io/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cinderella {
namespace {

// Entry wire format: u8 kind, then either u64 entity (delete) or the row:
// u64 id, u32 cell count, per cell u32 attribute, u8 type, payload.

// Flush the writer's user-space buffer once it exceeds this; keeps memory
// bounded for arbitrarily large group-commit batches.
constexpr size_t kWriterFlushBytes = 1 << 20;

template <typename T>
void WritePod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

void WriteRowPayload(std::string* out, const Row& row) {
  WritePod<uint64_t>(out, row.id());
  WritePod<uint32_t>(out, static_cast<uint32_t>(row.attribute_count()));
  for (const Row::Cell& cell : row.cells()) {
    WritePod<uint32_t>(out, cell.attribute);
    WritePod<uint8_t>(out, static_cast<uint8_t>(cell.value.type()));
    switch (cell.value.type()) {
      case ValueType::kInt64:
        WritePod<int64_t>(out, cell.value.as_int64());
        break;
      case ValueType::kDouble:
        WritePod<double>(out, cell.value.as_double());
        break;
      case ValueType::kString: {
        const std::string& s = cell.value.as_string();
        WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
        out->append(s.data(), s.size());
        break;
      }
    }
  }
}

// Returns false on a torn/truncated payload.
bool ReadRowPayload(std::ifstream& in, Row* row) {
  uint64_t id = 0;
  uint32_t cells = 0;
  if (!ReadPod(in, &id) || !ReadPod(in, &cells)) return false;
  if (cells > (1u << 24)) return false;  // Corrupt.
  row->set_id(id);
  for (uint32_t c = 0; c < cells; ++c) {
    uint32_t attribute = 0;
    uint8_t type = 0;
    if (!ReadPod(in, &attribute) || !ReadPod(in, &type)) return false;
    switch (static_cast<ValueType>(type)) {
      case ValueType::kInt64: {
        int64_t v = 0;
        if (!ReadPod(in, &v)) return false;
        row->Set(attribute, Value(v));
        break;
      }
      case ValueType::kDouble: {
        double v = 0;
        if (!ReadPod(in, &v)) return false;
        row->Set(attribute, Value(v));
        break;
      }
      case ValueType::kString: {
        uint32_t size = 0;
        if (!ReadPod(in, &size) || size > (1u << 28)) return false;
        std::string s(size, '\0');
        in.read(s.data(), size);
        if (!in.good() && size > 0) return false;
        row->Set(attribute, Value(std::move(s)));
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

// -- JournalWriter --------------------------------------------------------------

JournalWriter::JournalWriter(int fd) : fd_(fd) {}

JournalWriter::~JournalWriter() {
  const Status flushed = FlushBuffer();
  (void)flushed;  // Destructors cannot report write failures.
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, bool truncate) {
  const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + path + " for append: " +
                                   std::strerror(errno));
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(fd));
}

Status JournalWriter::FlushBuffer() {
  size_t offset = 0;
  while (offset < buffer_.size()) {
    const ssize_t written =
        ::write(fd_, buffer_.data() + offset, buffer_.size() - offset);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("journal write failure: ") +
                              std::strerror(errno));
    }
    offset += static_cast<size_t>(written);
  }
  buffer_.clear();
  return Status::OK();
}

Status JournalWriter::LogRow(JournalEntry::Kind kind, const Row& row) {
  WritePod<uint8_t>(&buffer_, static_cast<uint8_t>(kind));
  WriteRowPayload(&buffer_, row);
  ++entries_;
  if (buffer_.size() >= kWriterFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status JournalWriter::LogInsert(const Row& row) {
  return LogRow(JournalEntry::Kind::kInsert, row);
}

Status JournalWriter::LogUpdate(const Row& row) {
  return LogRow(JournalEntry::Kind::kUpdate, row);
}

Status JournalWriter::LogMutationBatch(const std::vector<Mutation>& ops) {
  if (ops.empty()) return Status::OK();
  WritePod<uint8_t>(&buffer_,
                    static_cast<uint8_t>(JournalEntry::Kind::kMutationBatch));
  WritePod<uint32_t>(&buffer_, static_cast<uint32_t>(ops.size()));
  for (const Mutation& op : ops) {
    WritePod<uint8_t>(&buffer_, static_cast<uint8_t>(op.kind));
    if (op.kind == Mutation::Kind::kDelete) {
      WritePod<uint64_t>(&buffer_, op.entity);
    } else {
      WriteRowPayload(&buffer_, op.row);
    }
    ++entries_;
    if (buffer_.size() >= kWriterFlushBytes) {
      CINDERELLA_RETURN_IF_ERROR(FlushBuffer());
    }
  }
  return Status::OK();
}

Status JournalWriter::LogBatch(const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  WritePod<uint8_t>(&buffer_,
                    static_cast<uint8_t>(JournalEntry::Kind::kMutationBatch));
  WritePod<uint32_t>(&buffer_, static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) {
    WritePod<uint8_t>(&buffer_,
                      static_cast<uint8_t>(JournalEntry::Kind::kInsert));
    WriteRowPayload(&buffer_, row);
    ++entries_;
    if (buffer_.size() >= kWriterFlushBytes) {
      CINDERELLA_RETURN_IF_ERROR(FlushBuffer());
    }
  }
  return Status::OK();
}

Status JournalWriter::LogDeleteBatch(const std::vector<EntityId>& entities) {
  if (entities.empty()) return Status::OK();
  WritePod<uint8_t>(&buffer_,
                    static_cast<uint8_t>(JournalEntry::Kind::kMutationBatch));
  WritePod<uint32_t>(&buffer_, static_cast<uint32_t>(entities.size()));
  for (const EntityId entity : entities) {
    WritePod<uint8_t>(&buffer_,
                      static_cast<uint8_t>(JournalEntry::Kind::kDelete));
    WritePod<uint64_t>(&buffer_, entity);
    ++entries_;
    if (buffer_.size() >= kWriterFlushBytes) {
      CINDERELLA_RETURN_IF_ERROR(FlushBuffer());
    }
  }
  return Status::OK();
}

Status JournalWriter::LogSpillSet(const std::vector<EntityId>& representatives) {
  WritePod<uint8_t>(&buffer_,
                    static_cast<uint8_t>(JournalEntry::Kind::kSpill));
  WritePod<uint32_t>(&buffer_,
                     static_cast<uint32_t>(representatives.size()));
  for (const EntityId entity : representatives) {
    WritePod<uint64_t>(&buffer_, entity);
  }
  ++entries_;
  if (buffer_.size() >= kWriterFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status JournalWriter::LogDelete(EntityId entity) {
  WritePod<uint8_t>(&buffer_,
                    static_cast<uint8_t>(JournalEntry::Kind::kDelete));
  WritePod<uint64_t>(&buffer_, entity);
  ++entries_;
  if (buffer_.size() >= kWriterFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status JournalWriter::LogAttribute(AttributeId attribute,
                                   const std::string& name) {
  WritePod<uint8_t>(&buffer_,
                    static_cast<uint8_t>(JournalEntry::Kind::kAttribute));
  WritePod<uint32_t>(&buffer_, attribute);
  WritePod<uint32_t>(&buffer_, static_cast<uint32_t>(name.size()));
  buffer_.append(name.data(), name.size());
  ++entries_;
  if (buffer_.size() >= kWriterFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status JournalWriter::Sync() {
  CINDERELLA_RETURN_IF_ERROR(FlushBuffer());
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("journal fsync failure: ") +
                            std::strerror(errno));
  }
  ++syncs_;
  return Status::OK();
}

// -- JournalReader --------------------------------------------------------------

JournalReader::JournalReader(std::ifstream in) : in_(std::move(in)) {}

StatusOr<std::unique_ptr<JournalReader>> JournalReader::Open(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return std::unique_ptr<JournalReader>(new JournalReader(std::move(in)));
}

StatusOr<bool> JournalReader::Next(JournalEntry* entry) {
  if (batch_remaining_ > 0) return NextBatchOp(entry);
  uint8_t kind = 0;
  if (!ReadPod(in_, &kind)) return false;  // Clean EOF.
  switch (static_cast<JournalEntry::Kind>(kind)) {
    case JournalEntry::Kind::kMutationBatch: {
      uint32_t count = 0;
      if (!ReadPod(in_, &count)) {
        torn_tail_ = true;
        return false;
      }
      if (count > (1u << 24)) {
        return Status::OutOfRange("corrupt mutation batch count " +
                                  std::to_string(count));
      }
      batch_remaining_ = count;
      if (count == 0) return Next(entry);  // Empty record; skip.
      return NextBatchOp(entry);
    }
    case JournalEntry::Kind::kInsert:
    case JournalEntry::Kind::kUpdate: {
      entry->kind = static_cast<JournalEntry::Kind>(kind);
      entry->row = Row();
      if (!ReadRowPayload(in_, &entry->row)) {
        torn_tail_ = true;
        return false;
      }
      entry->entity = entry->row.id();
      return true;
    }
    case JournalEntry::Kind::kDelete: {
      entry->kind = JournalEntry::Kind::kDelete;
      uint64_t entity = 0;
      if (!ReadPod(in_, &entity)) {
        torn_tail_ = true;
        return false;
      }
      entry->entity = entity;
      entry->row = Row();
      return true;
    }
    case JournalEntry::Kind::kAttribute: {
      entry->kind = JournalEntry::Kind::kAttribute;
      uint32_t attribute = 0;
      uint32_t size = 0;
      if (!ReadPod(in_, &attribute) || !ReadPod(in_, &size) ||
          size > (1u << 20)) {
        torn_tail_ = true;
        return false;
      }
      entry->attribute = attribute;
      entry->name.resize(size);
      in_.read(entry->name.data(), size);
      if (!in_.good() && size > 0) {
        torn_tail_ = true;
        return false;
      }
      entry->row = Row();
      return true;
    }
    case JournalEntry::Kind::kSpill: {
      entry->kind = JournalEntry::Kind::kSpill;
      uint32_t count = 0;
      if (!ReadPod(in_, &count) || count > (1u << 24)) {
        torn_tail_ = true;
        return false;
      }
      entry->cold_set.clear();
      entry->cold_set.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t entity = 0;
        if (!ReadPod(in_, &entity)) {
          torn_tail_ = true;
          return false;
        }
        entry->cold_set.push_back(entity);
      }
      entry->row = Row();
      return true;
    }
    default:
      return Status::OutOfRange("corrupt journal entry kind " +
                                std::to_string(kind));
  }
}

StatusOr<bool> JournalReader::NextBatchOp(JournalEntry* entry) {
  uint8_t kind = 0;
  if (!ReadPod(in_, &kind)) {
    // A batch announced more ops than the file holds: torn mid-batch. The
    // decoded prefix stays valid (op-granular recovery).
    torn_tail_ = true;
    return false;
  }
  switch (static_cast<JournalEntry::Kind>(kind)) {
    case JournalEntry::Kind::kInsert:
    case JournalEntry::Kind::kUpdate: {
      entry->kind = static_cast<JournalEntry::Kind>(kind);
      entry->row = Row();
      if (!ReadRowPayload(in_, &entry->row)) {
        torn_tail_ = true;
        return false;
      }
      entry->entity = entry->row.id();
      break;
    }
    case JournalEntry::Kind::kDelete: {
      entry->kind = JournalEntry::Kind::kDelete;
      uint64_t entity = 0;
      if (!ReadPod(in_, &entity)) {
        torn_tail_ = true;
        return false;
      }
      entry->entity = entity;
      entry->row = Row();
      break;
    }
    default:
      return Status::OutOfRange("corrupt mutation batch op kind " +
                                std::to_string(kind));
  }
  --batch_remaining_;
  return true;
}

// -- Replay ----------------------------------------------------------------------

StatusOr<uint64_t> ReplayJournal(const std::string& path,
                                 Partitioner* partitioner,
                                 AttributeDictionary* dictionary) {
  if (partitioner == nullptr) {
    return Status::InvalidArgument("partitioner must not be null");
  }
  auto reader = JournalReader::Open(path);
  if (!reader.ok()) {
    if (reader.status().code() == StatusCode::kNotFound) return uint64_t{0};
    return reader.status();
  }
  uint64_t applied = 0;
  JournalEntry entry;
  while (true) {
    StatusOr<bool> more = (*reader)->Next(&entry);
    CINDERELLA_RETURN_IF_ERROR(more.status());
    if (!*more) break;
    switch (entry.kind) {
      case JournalEntry::Kind::kInsert:
        CINDERELLA_RETURN_IF_ERROR(partitioner->Insert(std::move(entry.row)));
        break;
      case JournalEntry::Kind::kUpdate:
        CINDERELLA_RETURN_IF_ERROR(partitioner->Update(std::move(entry.row)));
        break;
      case JournalEntry::Kind::kDelete:
        CINDERELLA_RETURN_IF_ERROR(partitioner->Delete(entry.entity));
        break;
      case JournalEntry::Kind::kAttribute:
        if (dictionary != nullptr) {
          const AttributeId assigned = dictionary->GetOrCreate(entry.name);
          if (assigned != entry.attribute) {
            return Status::Internal(
                "dictionary replay mismatch for '" + entry.name + "': got " +
                std::to_string(assigned) + ", journal says " +
                std::to_string(entry.attribute));
          }
        }
        break;
      case JournalEntry::Kind::kSpill:
        // Tier placement needs a cold tier; standalone replay has none.
        break;
      case JournalEntry::Kind::kMutationBatch:
        // The reader expands batch records into their constituent ops and
        // never surfaces this kind.
        return Status::Internal("unexpanded mutation batch entry");
    }
    ++applied;
  }
  return applied;
}

}  // namespace cinderella
