#include "io/durable_table.h"

#include <cstdio>
#include <fstream>

#include "core/snapshot.h"

namespace cinderella {
namespace {

bool FileExists(const std::string& path) {
  std::ifstream file(path);
  return file.is_open();
}

}  // namespace

DurableTable::DurableTable(Options options,
                           std::unique_ptr<UniversalTable> table,
                           Cinderella* cinderella,
                           std::unique_ptr<JournalWriter> journal,
                           uint64_t replayed, bool torn_tail)
    : options_(std::move(options)),
      table_(std::move(table)),
      cinderella_(cinderella),
      journal_(std::move(journal)),
      replayed_(replayed),
      torn_tail_(torn_tail) {}

std::string DurableTable::snapshot_path() const {
  return options_.directory + "/snapshot.bin";
}

std::string DurableTable::journal_path() const {
  return options_.directory + "/journal.log";
}

StatusOr<std::unique_ptr<DurableTable>> DurableTable::Open(Options options) {
  const std::string snapshot_file = options.directory + "/snapshot.bin";
  const std::string journal_file = options.directory + "/journal.log";

  // Cold tier: resolve the spill knobs and create the page store when a
  // budget is configured. The page file is always truncated — recovery
  // re-establishes tier placement from the journal's kSpill records, it
  // never reuses old pages.
  options.spill.path = options.directory + "/pages.bin";
  options.spill = TieredStoreOptions::FromEnv(options.spill);
  std::unique_ptr<TieredStore> tier;
  if (options.spill.budget_bytes > 0) {
    StatusOr<std::unique_ptr<TieredStore>> opened =
        TieredStore::Open(options.spill);
    CINDERELLA_RETURN_IF_ERROR(opened.status());
    tier = std::move(opened).value();
  }

  std::unique_ptr<UniversalTable> table;
  Cinderella* cinderella = nullptr;
  if (FileExists(snapshot_file)) {
    StatusOr<RestoredSnapshot> restored = LoadSnapshotFromFile(snapshot_file);
    CINDERELLA_RETURN_IF_ERROR(restored.status());
    cinderella = restored->partitioner.get();
    table = std::make_unique<UniversalTable>(
        std::move(restored->partitioner), std::move(*restored->dictionary));
  } else {
    StatusOr<std::unique_ptr<Cinderella>> fresh =
        Cinderella::Create(options.config);
    CINDERELLA_RETURN_IF_ERROR(fresh.status());
    cinderella = fresh->get();
    table = std::make_unique<UniversalTable>(std::move(fresh).value());
  }

  if (tier != nullptr) cinderella->set_cold_tier(tier.get());

  // Replay the journal tail; tolerate a torn final entry. kSpill records
  // carry the complete cold set, so only the last one matters; it is
  // applied after the whole tail so partitions faulted hot by later ops
  // are not re-spilled.
  uint64_t replayed = 0;
  bool torn_tail = false;
  std::vector<EntityId> cold_set;
  {
    auto reader = JournalReader::Open(journal_file);
    if (reader.ok()) {
      JournalEntry entry;
      while (true) {
        StatusOr<bool> more = (*reader)->Next(&entry);
        CINDERELLA_RETURN_IF_ERROR(more.status());
        if (!*more) break;
        switch (entry.kind) {
          case JournalEntry::Kind::kInsert:
            CINDERELLA_RETURN_IF_ERROR(
                table->InsertRow(std::move(entry.row)));
            break;
          case JournalEntry::Kind::kUpdate:
            CINDERELLA_RETURN_IF_ERROR(
                table->UpdateRow(std::move(entry.row)));
            break;
          case JournalEntry::Kind::kDelete:
            CINDERELLA_RETURN_IF_ERROR(table->Delete(entry.entity));
            break;
          case JournalEntry::Kind::kAttribute: {
            const AttributeId assigned =
                table->dictionary().GetOrCreate(entry.name);
            if (assigned != entry.attribute) {
              return Status::Internal("dictionary replay mismatch for '" +
                                      entry.name + "'");
            }
            break;
          }
          case JournalEntry::Kind::kSpill:
            cold_set = std::move(entry.cold_set);
            break;
          case JournalEntry::Kind::kMutationBatch:
            // Expanded by the reader; never surfaced.
            return Status::Internal("unexpanded mutation batch entry");
        }
        ++replayed;
      }
      torn_tail = (*reader)->torn_tail();
    } else if (reader.status().code() != StatusCode::kNotFound) {
      return reader.status();
    }
  }

  // Re-establish tier placement. Representatives that no longer resolve
  // (possible only behind a torn tail, where the last complete record is
  // slightly stale) are skipped — residency is a performance property,
  // the data itself is already recovered.
  if (tier != nullptr) {
    for (const EntityId representative : cold_set) {
      const std::optional<PartitionId> home =
          cinderella->catalog().FindEntity(representative);
      if (!home.has_value()) continue;
      CINDERELLA_RETURN_IF_ERROR(cinderella->SpillPartition(*home));
    }
  }

  // Re-open for append; a torn tail is truncated away by rewriting the
  // journal from the recovered state via an immediate checkpoint below.
  StatusOr<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Open(journal_file, /*truncate=*/false);
  CINDERELLA_RETURN_IF_ERROR(journal.status());

  std::unique_ptr<DurableTable> durable(new DurableTable(
      std::move(options), std::move(table), cinderella,
      std::move(journal).value(), replayed, torn_tail));
  durable->tier_ = std::move(tier);
  durable->logged_attributes_ = durable->table_->dictionary().size();
  // Attach the ingest pipeline after replay so its catalog mirror is
  // built once, from the fully recovered state.
  durable->ingest_ = AttachBatchInserter(cinderella, durable->options_.ingest);
  if (durable->tier_ != nullptr) {
    const CinderellaStats& stats = cinderella->stats();
    durable->tier_epoch_ = stats.spills + stats.faults;
    durable->tier_controller_ = std::make_unique<TierController>(
        cinderella, TierControllerOptions{durable->options_.spill.budget_bytes,
                                          durable->options_.spill.min_idle});
  }
  if (torn_tail) {
    // The torn bytes would corrupt future replays; checkpoint now so the
    // journal restarts clean.
    CINDERELLA_RETURN_IF_ERROR(durable->Checkpoint());
  }
  return durable;
}

Status DurableTable::LogDictionaryGrowth() {
  // Persist dictionary growth before the rows that rely on it.
  const AttributeDictionary& dictionary = table_->dictionary();
  while (logged_attributes_ < dictionary.size()) {
    const AttributeId id = static_cast<AttributeId>(logged_attributes_);
    auto name = dictionary.Name(id);
    CINDERELLA_RETURN_IF_ERROR(name.status());
    CINDERELLA_RETURN_IF_ERROR(journal_->LogAttribute(id, name.value()));
    ++logged_attributes_;
  }
  return Status::OK();
}

Status DurableTable::MaybeSync(uint64_t ops) {
  if (options_.group_commit_ops > 0) {
    ops_since_sync_ += ops;
    if (ops_since_sync_ < options_.group_commit_ops) return Status::OK();
  } else if (!options_.sync_every_op) {
    return Status::OK();
  }
  CINDERELLA_RETURN_IF_ERROR(journal_->Sync());
  ops_since_sync_ = 0;
  return Status::OK();
}

Status DurableTable::MaybeLogTierPlacement() {
  if (tier_ == nullptr) return Status::OK();
  const CinderellaStats& stats = cinderella_->stats();
  const uint64_t epoch = stats.spills + stats.faults;
  if (epoch == tier_epoch_) return Status::OK();
  tier_epoch_ = epoch;
  std::vector<EntityId> cold;
  cinderella_->catalog().ForEachPartition([&](const Partition& partition) {
    if (partition.cold()) {
      cold.push_back(partition.cold_chain()->representative);
    }
  });
  return journal_->LogSpillSet(cold);
}

Status DurableTable::EvaluateTier() {
  if (tier_controller_ != nullptr) {
    CINDERELLA_RETURN_IF_ERROR(tier_controller_->EvaluateAndSpill().status());
  }
  // Faults (ops that targeted a cold partition) move the epoch even when
  // the evaluation itself spilled nothing.
  return MaybeLogTierPlacement();
}

Status DurableTable::AfterApply(
    Status status, const std::function<Status(JournalWriter&)>& log) {
  CINDERELLA_RETURN_IF_ERROR(status);
  CINDERELLA_RETURN_IF_ERROR(LogDictionaryGrowth());
  CINDERELLA_RETURN_IF_ERROR(log(*journal_));
  CINDERELLA_RETURN_IF_ERROR(EvaluateTier());
  return MaybeSync(1);
}

Status DurableTable::InsertRow(Row row) {
  Row copy = row;
  return AfterApply(table_->InsertRow(std::move(row)),
                    [&](JournalWriter& journal) {
                      return journal.LogInsert(copy);
                    });
}

Status DurableTable::ApplyMutations(std::vector<Mutation> ops) {
  if (ops.empty()) return Status::OK();
  std::vector<Mutation> copies = ops;
  size_t applied = 0;
  const Status status = table_->ApplyMutations(std::move(ops), &applied);
  CINDERELLA_RETURN_IF_ERROR(LogDictionaryGrowth());
  if (applied > 0) {
    // Journal exactly the committed prefix — the part the in-memory state
    // reflects even when the batch failed part-way — as one batch record,
    // made durable by a single fsync (the group-commit payoff).
    copies.resize(applied);
    CINDERELLA_RETURN_IF_ERROR(journal_->LogMutationBatch(copies));
    CINDERELLA_RETURN_IF_ERROR(EvaluateTier());
    if (options_.sync_every_op || options_.group_commit_ops > 0) {
      CINDERELLA_RETURN_IF_ERROR(journal_->Sync());
      ops_since_sync_ = 0;
    }
  }
  return status;
}

Status DurableTable::InsertBatch(std::vector<Row> rows) {
  std::vector<Mutation> ops;
  ops.reserve(rows.size());
  for (Row& row : rows) ops.push_back(Mutation::Insert(std::move(row)));
  return ApplyMutations(std::move(ops));
}

Status DurableTable::UpdateBatch(std::vector<Row> rows) {
  std::vector<Mutation> ops;
  ops.reserve(rows.size());
  for (Row& row : rows) ops.push_back(Mutation::Update(std::move(row)));
  return ApplyMutations(std::move(ops));
}

Status DurableTable::Insert(
    EntityId entity,
    const std::vector<UniversalTable::NamedValue>& attributes) {
  Row row(entity);
  for (const auto& [name, value] : attributes) {
    row.Set(table_->dictionary().GetOrCreate(name), value);
  }
  return InsertRow(std::move(row));
}

Status DurableTable::UpdateRow(Row row) {
  Row copy = row;
  return AfterApply(table_->UpdateRow(std::move(row)),
                    [&](JournalWriter& journal) {
                      return journal.LogUpdate(copy);
                    });
}

Status DurableTable::Update(
    EntityId entity,
    const std::vector<UniversalTable::NamedValue>& attributes) {
  Row row(entity);
  for (const auto& [name, value] : attributes) {
    row.Set(table_->dictionary().GetOrCreate(name), value);
  }
  return UpdateRow(std::move(row));
}

Status DurableTable::Delete(EntityId entity) {
  return AfterApply(table_->Delete(entity), [&](JournalWriter& journal) {
    return journal.LogDelete(entity);
  });
}

Status DurableTable::DeleteBatch(const std::vector<EntityId>& entities) {
  std::vector<Mutation> ops;
  ops.reserve(entities.size());
  for (EntityId entity : entities) ops.push_back(Mutation::Delete(entity));
  return ApplyMutations(std::move(ops));
}

Status DurableTable::Checkpoint() {
  // Snapshot to a temp file, then atomically swap it in before truncating
  // the journal (a crash between the two steps replays against the new
  // snapshot: harmless for deletes-after... order matters, so journal
  // truncation strictly follows the rename).
  const std::string tmp = snapshot_path() + ".tmp";
  CINDERELLA_RETURN_IF_ERROR(
      SaveSnapshotToFile(*cinderella_, table_->dictionary(), tmp));
  if (std::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    return Status::Internal("cannot rename snapshot into place");
  }
  // Close the old writer before truncating: its buffered bytes would
  // otherwise flush into the freshly truncated file on destruction.
  journal_.reset();
  StatusOr<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Open(journal_path(), /*truncate=*/true);
  CINDERELLA_RETURN_IF_ERROR(journal.status());
  journal_ = std::move(journal).value();
  ops_since_sync_ = 0;
  // The snapshot is residency-agnostic (restore starts all-hot), so the
  // fresh journal must re-assert the current cold set for the next
  // recovery; the tier itself is flushed as part of the checkpoint.
  if (tier_ != nullptr) {
    std::vector<EntityId> cold;
    cinderella_->catalog().ForEachPartition([&](const Partition& partition) {
      if (partition.cold()) {
        cold.push_back(partition.cold_chain()->representative);
      }
    });
    if (!cold.empty()) {
      CINDERELLA_RETURN_IF_ERROR(journal_->LogSpillSet(cold));
    }
    CINDERELLA_RETURN_IF_ERROR(tier_->Flush());
  }
  return Status::OK();
}

}  // namespace cinderella
