#ifndef CINDERELLA_IO_DURABLE_TABLE_H_
#define CINDERELLA_IO_DURABLE_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cinderella.h"
#include "core/universal_table.h"
#include "ingest/batch_inserter.h"
#include "io/journal.h"
#include "storage/tiered_store.h"

namespace cinderella {

/// Crash-recoverable universal table: an in-memory Cinderella-partitioned
/// table made durable by a snapshot + journal pair in one directory
/// (`snapshot.bin`, `journal.log`).
///
/// Open() loads the latest snapshot (if any), replays the journal tail —
/// tolerating a torn final entry from a crash mid-append — and resumes.
/// Every successful modification is appended to the journal; Checkpoint()
/// writes a fresh snapshot and truncates the journal. Because Cinderella
/// is deterministic, recovery reproduces the exact partitioning, not just
/// the data.
class DurableTable {
 public:
  struct Options {
    std::string directory;
    /// Used when no snapshot exists yet. Ignored on recovery (the
    /// snapshot carries its own config).
    CinderellaConfig config;
    /// fsync-like flush after every logged operation (slower, safer).
    bool sync_every_op = false;
    /// Group-commit coalescing: when > 0, single-row operations fsync
    /// only once every `group_commit_ops` journaled operations (and
    /// InsertBatch fsyncs once per batch regardless of its size). Takes
    /// precedence over sync_every_op. An un-synced tail is still written
    /// to the OS on close, but a crash may lose up to group_commit_ops-1
    /// trailing operations — replay recovers a consistent prefix.
    uint32_t group_commit_ops = 0;
    /// Batched-insert engine tuning (shard count, rating window) for the
    /// BatchInserter attached to the recovered partitioner.
    BatchInserterOptions ingest;
    /// Cold-tier knobs. Zero-valued fields resolve from the
    /// CINDERELLA_SPILL_* environment (see TieredStoreOptions); `path` is
    /// ignored — the page file always lives at <directory>/pages.bin.
    /// When the resolved budget_bytes is 0, tiering is disabled entirely.
    TieredStoreOptions spill;
  };

  /// Opens or creates the table in `options.directory` (the directory
  /// must exist).
  static StatusOr<std::unique_ptr<DurableTable>> Open(Options options);

  Status Insert(EntityId entity,
                const std::vector<UniversalTable::NamedValue>& attributes);
  Status InsertRow(Row row);
  /// Group-commit insert: applies the batch through the ingest pipeline,
  /// journals every row, then issues exactly one fsync (when any syncing
  /// is configured) — the durability cost is amortized over the batch.
  /// On failure the journal records exactly the successfully applied
  /// prefix, so recovery stays consistent with the in-memory state.
  Status InsertBatch(std::vector<Row> rows);
  Status Update(EntityId entity,
                const std::vector<UniversalTable::NamedValue>& attributes);
  Status UpdateRow(Row row);
  /// Group-commit update: same contract as InsertBatch — batched
  /// placements identical to serial updates, one journal record, one
  /// fsync.
  Status UpdateBatch(std::vector<Row> rows);
  Status Delete(EntityId entity);
  /// Group-commit delete: validated before any mutation (NotFound leaves
  /// table and journal untouched), applied in order, journaled as one run
  /// of kDelete entries, then fsynced once (when syncing is configured).
  /// On failure the journal records exactly the applied prefix.
  Status DeleteBatch(const std::vector<EntityId>& entities);

  /// Group-commit mixed batch: the unified mutation pipeline end to end.
  /// Validate-first across the whole op list, applied in order, journaled
  /// as one kMutationBatch record covering exactly the applied prefix,
  /// then one fsync (when syncing is configured). All the batch entry
  /// points above are adapters over this path.
  Status ApplyMutations(std::vector<Mutation> ops);

  /// Writes a snapshot and truncates the journal.
  Status Checkpoint();

  UniversalTable& table() { return *table_; }
  const UniversalTable& table() const { return *table_; }
  const Cinderella& cinderella() const { return *cinderella_; }

  /// Journal entries replayed by Open() (0 after a clean checkpoint).
  uint64_t replayed_on_open() const { return replayed_; }

  /// True if Open() found a torn trailing journal entry (crash evidence).
  bool recovered_from_torn_tail() const { return torn_tail_; }

  /// fsyncs issued on the current journal segment (resets at Checkpoint);
  /// lets tests and the bench verify group-commit coalescing.
  uint64_t journal_syncs() const { return journal_->syncs(); }

  /// The batched-insert engine attached to the table's partitioner.
  const BatchInserter& batch_inserter() const { return *ingest_; }

  /// True when a cold tier is attached (resolved spill budget > 0).
  bool tiering_enabled() const { return tier_ != nullptr; }

  /// The cold tier, or nullptr when tiering is disabled.
  const TieredStore* tier() const { return tier_.get(); }

  /// The spill policy driver, or nullptr when tiering is disabled.
  TierController* tier_controller() { return tier_controller_.get(); }

 private:
  DurableTable(Options options, std::unique_ptr<UniversalTable> table,
               Cinderella* cinderella,
               std::unique_ptr<JournalWriter> journal, uint64_t replayed,
               bool torn_tail);

  Status AfterApply(Status status,
                    const std::function<Status(JournalWriter&)>& log);

  /// Journals dictionary entries interned since the last call, so replay
  /// reproduces attribute ids before the rows that use them.
  Status LogDictionaryGrowth();

  /// Sync policy shared by the single-op and batch paths: `ops` journaled
  /// operations just completed.
  Status MaybeSync(uint64_t ops);

  /// Runs one spill-policy evaluation (no-op without a tier) and journals
  /// the cold set when residency changed since the last record.
  Status EvaluateTier();

  /// Appends a kSpill record with the complete current cold set when the
  /// engine's spill+fault epoch moved since the last record.
  Status MaybeLogTierPlacement();

  std::string snapshot_path() const;
  std::string journal_path() const;

  Options options_;
  /// Cold tier; declared before the table so every chain released during
  /// the engine's destruction drops into a live tier.
  std::unique_ptr<TieredStore> tier_;
  std::unique_ptr<UniversalTable> table_;
  Cinderella* cinderella_;  // Owned by table_'s partitioner slot.
  /// Batched-insert engine attached to cinderella_; must outlive the
  /// attachment and is therefore owned here, next to the partitioner.
  std::unique_ptr<BatchInserter> ingest_;
  /// Spill policy; listens on the engine's catalog mutations, so it is
  /// declared after table_ (destroyed first, while the engine is alive).
  std::unique_ptr<TierController> tier_controller_;
  std::unique_ptr<JournalWriter> journal_;
  /// Engine spills+faults at the last kSpill record; any movement means
  /// the cold set changed and must be re-journaled.
  uint64_t tier_epoch_ = 0;
  /// Journaled ops since the last fsync (group-commit accounting).
  uint64_t ops_since_sync_ = 0;
  uint64_t replayed_ = 0;
  bool torn_tail_ = false;
  /// Dictionary entries already persisted (snapshot or journaled); any
  /// attribute interned beyond this watermark is journaled before the
  /// first row that uses it.
  size_t logged_attributes_ = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_IO_DURABLE_TABLE_H_
