#ifndef CINDERELLA_STORAGE_SEGMENT_H_
#define CINDERELLA_STORAGE_SEGMENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/row.h"

namespace cinderella {

/// The physical store backing one horizontal partition.
///
/// The paper's PostgreSQL prototype "creates a regular table for each
/// partition"; a Segment is our equivalent: a row store with O(1)
/// point lookup by entity id (hash index) and contiguous scan order.
/// Removal is swap-with-last, so scan order is not insertion order.
///
/// The segment maintains the three size totals used by the pluggable
/// SIZE() measure of the algorithm (entities, attribute cells, bytes).
class Segment {
 public:
  Segment() = default;

  // Segments are identity objects owned by their partition.
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  Segment(Segment&&) = default;
  Segment& operator=(Segment&&) = default;

  /// Adds a row; fails with AlreadyExists if the entity id is present.
  Status Insert(Row row);

  /// Removes and returns the row for `id`; NotFound if absent.
  StatusOr<Row> Remove(EntityId id);

  /// Returns the row for `id`, or nullptr.
  const Row* Find(EntityId id) const;

  /// Replaces the row with the same entity id; NotFound if absent.
  Status Replace(Row row);

  bool Contains(EntityId id) const { return index_.count(id) > 0; }

  size_t entity_count() const { return rows_.size(); }
  uint64_t cell_count() const { return cell_count_; }
  uint64_t byte_size() const { return byte_size_; }

  /// Live rows in scan order.
  const std::vector<Row>& rows() const { return rows_; }

  /// Moves every row out and resets the segment to empty (index and size
  /// totals cleared). The spill path uses this to discard a partition's
  /// hot storage after its rows were written to a cold page chain.
  std::vector<Row> TakeAll() {
    std::vector<Row> rows = std::move(rows_);
    rows_.clear();
    index_.clear();
    cell_count_ = 0;
    byte_size_ = 0;
    return rows;
  }

 private:
  std::vector<Row> rows_;
  std::unordered_map<EntityId, size_t> index_;
  uint64_t cell_count_ = 0;
  uint64_t byte_size_ = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_STORAGE_SEGMENT_H_
