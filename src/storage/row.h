#ifndef CINDERELLA_STORAGE_ROW_H_
#define CINDERELLA_STORAGE_ROW_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/value.h"
#include "synopsis/synopsis.h"

namespace cinderella {

/// Stable identifier of an entity in the universal table.
using EntityId = uint64_t;

/// A sparse universal-table row: only instantiated attributes are stored,
/// as (attribute id, value) cells kept sorted by attribute id.
///
/// This is the "interpreted attribute storage format" family of sparse
/// representations the paper cites ([3]): per-row attribute lists instead
/// of a wide null-padded tuple.
class Row {
 public:
  /// One instantiated attribute.
  struct Cell {
    AttributeId attribute;
    Value value;
  };

  Row() = default;
  explicit Row(EntityId id) : id_(id) {}

  EntityId id() const { return id_; }
  void set_id(EntityId id) { id_ = id; }

  /// Sets `attribute` to `value`, overwriting an existing cell.
  void Set(AttributeId attribute, Value value);

  /// Removes the cell for `attribute` if present; returns whether it existed.
  bool Erase(AttributeId attribute);

  /// Returns the value for `attribute`, or nullptr if not instantiated.
  const Value* Get(AttributeId attribute) const;

  bool Has(AttributeId attribute) const { return Get(attribute) != nullptr; }

  /// Number of instantiated attributes.
  size_t attribute_count() const { return cells_.size(); }

  /// Byte footprint: 8 bytes of entity id plus, per cell, 4 bytes of
  /// attribute id and the value payload.
  uint64_t byte_size() const;

  /// The entity synopsis of the entity-based setup (Section III): the set
  /// of attributes the entity instantiates.
  Synopsis AttributeSynopsis() const;

  /// Cells sorted by attribute id.
  const std::vector<Cell>& cells() const { return cells_; }

 private:
  EntityId id_ = 0;
  std::vector<Cell> cells_;
};

/// A non-owning view of one row: the entity id plus a span of cells
/// sorted by attribute id. The scan path hands out RowViews so the same
/// predicate/projection code runs over heap-backed Rows (live catalog)
/// and over the packed cell arrays of arena-backed MVCC versions
/// (mvcc/partition_version.h) without copying either.
///
/// A default-constructed view is invalid (point-lookup miss). Lookup
/// semantics are exactly Row's: Get() binary-searches the sorted cells.
class RowView {
 public:
  RowView() = default;
  RowView(EntityId id, const Row::Cell* cells, size_t cell_count)
      : id_(id), cells_(cells), cell_count_(cell_count), valid_(true) {}

  /// Implicit on purpose: call sites holding a Row (tests, live-catalog
  /// scans) pass it wherever a RowView is consumed.
  RowView(const Row& row)  // NOLINT(google-explicit-constructor)
      : RowView(row.id(), row.cells().data(), row.cells().size()) {}

  /// False for a default-constructed view (e.g. a Find() miss).
  bool valid() const { return valid_; }

  EntityId id() const { return id_; }
  size_t attribute_count() const { return cell_count_; }

  /// The value for `attribute`, or nullptr if not instantiated.
  const Value* Get(AttributeId attribute) const;

  bool Has(AttributeId attribute) const { return Get(attribute) != nullptr; }

  /// Cells sorted by attribute id.
  const Row::Cell* begin() const { return cells_; }
  const Row::Cell* end() const { return cells_ + cell_count_; }

  /// Byte footprint, mirroring Row::byte_size().
  uint64_t byte_size() const;

  /// Owned deep copy (safe past the view's lifetime).
  Row ToRow() const;

 private:
  EntityId id_ = 0;
  const Row::Cell* cells_ = nullptr;
  size_t cell_count_ = 0;
  bool valid_ = false;
};

}  // namespace cinderella

#endif  // CINDERELLA_STORAGE_ROW_H_
