#include "storage/value.h"

#include <cstdio>

namespace cinderella {

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(as_int64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case ValueType::kString:
      return as_string();
  }
  return "";
}

}  // namespace cinderella
