#include "storage/value.h"

#include <cstdio>

namespace cinderella {

namespace {

// splitmix64 finalizer: cheap, well-mixed 64-bit avalanche.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool ValueLess(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type());
  }
  switch (a.type()) {
    case ValueType::kInt64:
      return a.as_int64() < b.as_int64();
    case ValueType::kDouble:
      return a.as_double() < b.as_double();
    case ValueType::kString:
      return a.as_string() < b.as_string();
  }
  return false;
}

uint64_t ValueHash(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(v.as_int64()));
    case ValueType::kDouble: {
      // Normalize -0.0 to +0.0: the two compare equal, so they must hash
      // alike. (NaN never equals anything; its bits can hash as-is.)
      double d = v.as_double();
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x517cc1b727220a95ULL);
    }
    case ValueType::kString: {
      // FNV-1a over the bytes, then one avalanche round.
      uint64_t h = 0xcbf29ce484222325ULL;
      for (const char c : v.as_string()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
      }
      return Mix64(h ^ 0x2545f4914f6cdd1dULL);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(as_int64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case ValueType::kString:
      return as_string();
  }
  return "";
}

}  // namespace cinderella
