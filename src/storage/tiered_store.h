#ifndef CINDERELLA_STORAGE_TIERED_STORE_H_
#define CINDERELLA_STORAGE_TIERED_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/cinderella.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/paged_store.h"
#include "pagestore/pager.h"
#include "storage/cold_tier.h"

namespace cinderella {

/// Knobs of the cold tier. Zero-valued fields resolve from the
/// environment at Open() (the CINDERELLA_* convention used across the
/// engine):
///   CINDERELLA_SPILL_PAGE_SIZE    page size in bytes       (default 8192)
///   CINDERELLA_SPILL_POOL_FRAMES  buffer-pool frames       (default 64)
///   CINDERELLA_SPILL_BUDGET_BYTES hot-tier byte budget     (default 0 = off)
///   CINDERELLA_SPILL_MIN_IDLE     committed windows a partition must go
///                                 untouched before it may spill (default 2)
struct TieredStoreOptions {
  std::string path;           // Backing page file (required).
  size_t page_size = 0;
  size_t pool_frames = 0;
  uint64_t budget_bytes = 0;  // 0 = no automatic spilling.
  uint64_t min_idle = 0;
  static TieredStoreOptions FromEnv(TieredStoreOptions base);
};

/// Residency and I/O counters of the tier.
struct TieredStoreStats {
  uint64_t chains = 0;          // Live cold chains.
  uint64_t cold_entities = 0;
  uint64_t cold_bytes = 0;      // Logical bytes of the cold rows.
  uint64_t cold_pages = 0;
  uint64_t chains_written = 0;  // Lifetime spills through this tier.
  uint64_t chains_dropped = 0;  // Lifetime chain releases (faults/retires).
  BufferPoolStats pool;
  uint64_t pager_pages_read = 0;
  uint64_t pager_pages_written = 0;
  uint64_t file_pages = 0;      // Total pages in the backing file.
  uint64_t free_pages = 0;
};

/// The cold tier: a Pager + BufferPool + PagedStore under one mutex,
/// implementing the ColdTier interface the core engine spills through.
///
/// The wrapped page stack is single-threaded; the mutex serializes every
/// chain write/read/drop so concurrent MVCC snapshot readers can scan
/// cold chains while the writer spills new ones. Chains are handed out as
/// shared_ptr<const ColdChain> whose deleter routes back here (through a
/// weak registry, so a release after the tier was destroyed is a no-op)
/// and frees the chain's pages — a pinned snapshot can therefore outlive
/// the partition's fault-in and keep reading its chain.
class TieredStore : public ColdTier {
 public:
  /// Creates the backing file (truncating any previous one — recovery
  /// re-spills through journal replay, it never reuses old pages).
  static StatusOr<std::unique_ptr<TieredStore>> Open(
      TieredStoreOptions options);

  ~TieredStore() override;

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  StatusOr<std::shared_ptr<const ColdChain>> WriteChain(
      const std::vector<Row>& rows) override;
  Status ReadChain(const ColdChain& chain,
                   const std::function<void(Row&&)>& fn) const override;

  /// Flushes dirty frames and the pager header to disk (checkpoint aid).
  Status Flush();

  TieredStoreStats stats() const;
  const TieredStoreOptions& options() const { return options_; }

 private:
  // Shared with every chain deleter; `store` is nulled in the destructor
  // so late releases (pinned snapshots outliving the tier) are safe.
  struct Registry {
    std::mutex mu;
    TieredStore* store = nullptr;
  };

  TieredStore(TieredStoreOptions options, std::unique_ptr<Pager> pager);

  void DropChain(const ColdChain& chain);

  TieredStoreOptions options_;
  std::shared_ptr<Registry> registry_;
  mutable std::mutex mu_;  // Serializes all access to the page stack.
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<PagedStore> store_;
  uint64_t chains_ = 0;
  uint64_t cold_entities_ = 0;
  uint64_t cold_bytes_ = 0;
  uint64_t cold_pages_ = 0;
  uint64_t chains_written_ = 0;
  uint64_t chains_dropped_ = 0;
};

/// Spill-policy knobs of the TierController (plain values, no env
/// resolution — map TieredStoreOptions::FromEnv results in when wiring).
struct TierControllerOptions {
  uint64_t budget_bytes = 0;  // Hot-tier byte budget; 0 = never auto-spill.
  uint64_t min_idle = 2;      // Evaluations a partition must go untouched.
};

/// The spill policy driver: watches catalog mutations (as a listener on
/// the engine), and on each evaluation — the ingest layer fires one per
/// committed window, DurableTable one per serial op — evicts the coldest
/// idle partitions until the hot tier fits its byte budget.
///
/// "Coldest" orders by (query activity asc, last-touch tick asc, id asc):
/// query activity comes from an optional probe (the tuner's decayed
/// workload counters when attached, 0 otherwise), last-touch from the
/// mutation stream. Runs under the same external serialization as the
/// engine itself (the ingest commit lock / the durable table's op loop).
class TierController {
 public:
  TierController(Cinderella* engine, TierControllerOptions options);
  ~TierController();

  TierController(const TierController&) = delete;
  TierController& operator=(const TierController&) = delete;

  /// Supplies decayed per-partition query activity (e.g. a lambda over
  /// WorkloadTracker::ActivityOf). Unset = all partitions equally cold.
  void set_activity_probe(std::function<double(PartitionId)> probe) {
    probe_ = std::move(probe);
  }

  /// One policy evaluation: advances the idle clock, folds in the
  /// mutations since the last call, then spills until the hot tier fits
  /// the budget. Returns the number of partitions spilled (0 when the
  /// budget is 0 or already met).
  StatusOr<size_t> EvaluateAndSpill();

  /// Spills the given partitions unconditionally (the tuner's evict-idle
  /// plans route here); already-cold or since-dropped ids are skipped.
  /// Returns the number actually spilled.
  StatusOr<size_t> SpillPartitions(const std::vector<PartitionId>& ids);

  /// Hot-tier footprint in bytes (sum over hot partitions).
  uint64_t HotBytes() const;

  uint64_t evaluations() const { return tick_; }

 private:
  void AbsorbMutations();

  Cinderella* engine_;
  TierControllerOptions options_;
  std::function<double(PartitionId)> probe_;
  CatalogMutations listener_;
  std::unordered_map<PartitionId, uint64_t> last_touch_;
  uint64_t tick_ = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_STORAGE_TIERED_STORE_H_
