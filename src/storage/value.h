#ifndef CINDERELLA_STORAGE_VALUE_H_
#define CINDERELLA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace cinderella {

/// Runtime type tag of a Value.
enum class ValueType { kInt64, kDouble, kString };

/// A single attribute value in a universal-table row.
///
/// The universal table is schemaless, so the same attribute may hold
/// different types on different entities (e.g. `resolution` in the paper's
/// Figure 1 is "12.1" on a camera and "Full HD" on a TV).
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t as_int64() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Size contribution of this value when SIZE() is measured in bytes
  /// (paper Definition 1: "how much has to be read to scan the entity").
  uint64_t byte_size() const {
    if (is_string()) return as_string().size();
    return 8;
  }

  /// Human-readable rendering for the examples.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  std::variant<int64_t, double, std::string> data_;
};

inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

/// Total order over values: by type tag first (int64 < double < string),
/// then by value within a type. Consistent with operator== (equal values
/// are never ordered), which makes it usable as the canonical result
/// order of the GROUP BY engine: sorting by ValueLess yields the same
/// sequence for any hash-table iteration order.
bool ValueLess(const Value& a, const Value& b);

/// 64-bit hash consistent with operator== (a == b implies equal hashes;
/// in particular +0.0 and -0.0 hash alike). Drives group-key hash tables
/// and the radix partitioner of the aggregation engine.
uint64_t ValueHash(const Value& v);

}  // namespace cinderella

#endif  // CINDERELLA_STORAGE_VALUE_H_
