#include "storage/tiered_store.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/env.h"
#include "common/logging.h"

namespace cinderella {

TieredStoreOptions TieredStoreOptions::FromEnv(TieredStoreOptions base) {
  if (base.page_size == 0) {
    base.page_size = static_cast<size_t>(
        Int64FromEnv("CINDERELLA_SPILL_PAGE_SIZE", 8192));
  }
  if (base.pool_frames == 0) {
    base.pool_frames = static_cast<size_t>(
        Int64FromEnv("CINDERELLA_SPILL_POOL_FRAMES", 64));
  }
  if (base.budget_bytes == 0) {
    base.budget_bytes = static_cast<uint64_t>(
        Int64FromEnv("CINDERELLA_SPILL_BUDGET_BYTES", 0));
  }
  if (base.min_idle == 0) {
    base.min_idle =
        static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SPILL_MIN_IDLE", 2));
  }
  return base;
}

TieredStore::TieredStore(TieredStoreOptions options,
                         std::unique_ptr<Pager> pager)
    : options_(std::move(options)),
      registry_(std::make_shared<Registry>()),
      pager_(std::move(pager)),
      pool_(std::make_unique<BufferPool>(pager_.get(), options_.pool_frames)),
      store_(std::make_unique<PagedStore>(pager_.get(), pool_.get(),
                                          /*track_entities=*/false)) {
  registry_->store = this;
}

StatusOr<std::unique_ptr<TieredStore>> TieredStore::Open(
    TieredStoreOptions options) {
  options = TieredStoreOptions::FromEnv(std::move(options));
  if (options.path.empty()) {
    return Status::InvalidArgument("tiered store needs a backing path");
  }
  if (options.pool_frames < 2) {
    return Status::InvalidArgument("pool_frames must be >= 2");
  }
  StatusOr<std::unique_ptr<Pager>> pager =
      Pager::Open(options.path, options.page_size, /*truncate=*/true);
  CINDERELLA_RETURN_IF_ERROR(pager.status());
  return std::unique_ptr<TieredStore>(
      new TieredStore(std::move(options), std::move(pager).value()));
}

TieredStore::~TieredStore() {
  // Chains released after this point must not touch the dead store.
  std::lock_guard<std::mutex> lock(registry_->mu);
  registry_->store = nullptr;
}

StatusOr<std::shared_ptr<const ColdChain>> TieredStore::WriteChain(
    const std::vector<Row>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot spill an empty partition");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const size_t index = store_->AddEmptyPartition();
  uint64_t cells = 0;
  uint64_t bytes = 0;
  EntityId representative = std::numeric_limits<EntityId>::max();
  for (const Row& row : rows) {
    const Status inserted = store_->Insert(index, row);
    if (!inserted.ok()) {
      // Roll the half-written chain back; the partition stays hot.
      (void)store_->DropPartition(index);
      return inserted;
    }
    cells += row.attribute_count();
    bytes += row.byte_size();
    representative = std::min(representative, row.id());
  }
  auto* chain = new ColdChain;
  chain->store_index = index;
  chain->representative = representative;
  chain->entities = rows.size();
  chain->cells = cells;
  chain->bytes = bytes;
  chain->pages = static_cast<uint32_t>(store_->PartitionPageCount(index));
  chain->tier = this;
  ++chains_;
  ++chains_written_;
  cold_entities_ += chain->entities;
  cold_bytes_ += chain->bytes;
  cold_pages_ += chain->pages;
  // The deleter holds the registry weakly through shared ownership of the
  // registry object itself: if the tier died first, `store` is null and
  // only the descriptor is freed (its pages died with the tier's file).
  std::shared_ptr<Registry> registry = registry_;
  return std::shared_ptr<const ColdChain>(
      chain, [registry](const ColdChain* dead) {
        {
          std::lock_guard<std::mutex> lock(registry->mu);
          if (registry->store != nullptr) registry->store->DropChain(*dead);
        }
        delete dead;
      });
}

Status TieredStore::ReadChain(const ColdChain& chain,
                              const std::function<void(Row&&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->ForEachRow(chain.store_index, fn);
}

void TieredStore::DropChain(const ColdChain& chain) {
  std::lock_guard<std::mutex> lock(mu_);
  const Status dropped = store_->DropPartition(chain.store_index);
  CINDERELLA_CHECK(dropped.ok());
  CINDERELLA_CHECK(chains_ > 0);
  --chains_;
  ++chains_dropped_;
  cold_entities_ -= chain.entities;
  cold_bytes_ -= chain.bytes;
  cold_pages_ -= chain.pages;
}

Status TieredStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  CINDERELLA_RETURN_IF_ERROR(pool_->FlushAll());
  return pager_->Flush();
}

TieredStoreStats TieredStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TieredStoreStats stats;
  stats.chains = chains_;
  stats.cold_entities = cold_entities_;
  stats.cold_bytes = cold_bytes_;
  stats.cold_pages = cold_pages_;
  stats.chains_written = chains_written_;
  stats.chains_dropped = chains_dropped_;
  stats.pool = pool_->stats();
  stats.pager_pages_read = pager_->pages_read();
  stats.pager_pages_written = pager_->pages_written();
  stats.file_pages = pager_->page_count();
  stats.free_pages = pager_->free_page_count();
  return stats;
}

// ---------------------------------------------------------------------------
// TierController.
// ---------------------------------------------------------------------------

TierController::TierController(Cinderella* engine,
                               TierControllerOptions options)
    : engine_(engine), options_(options) {
  CINDERELLA_CHECK(engine_ != nullptr);
  engine_->AddMutationListener(&listener_);
}

TierController::~TierController() {
  engine_->RemoveMutationListener(&listener_);
}

void TierController::AbsorbMutations() {
  for (PartitionId id : listener_.touched) last_touch_[id] = tick_;
  for (PartitionId id : listener_.created) last_touch_[id] = tick_;
  for (PartitionId id : listener_.dropped) last_touch_.erase(id);
  listener_.touched.clear();
  listener_.created.clear();
  listener_.dropped.clear();
}

uint64_t TierController::HotBytes() const {
  uint64_t bytes = 0;
  engine_->catalog().ForEachPartition([&](const Partition& partition) {
    if (!partition.cold()) bytes += partition.Size(SizeMeasure::kByteSize);
  });
  return bytes;
}

StatusOr<size_t> TierController::EvaluateAndSpill() {
  ++tick_;
  AbsorbMutations();
  if (options_.budget_bytes == 0 || engine_->cold_tier() == nullptr) {
    return static_cast<size_t>(0);
  }
  uint64_t hot_bytes = HotBytes();
  if (hot_bytes <= options_.budget_bytes) return static_cast<size_t>(0);

  // Victim order: least query activity first, then least-recently touched,
  // then lowest id (deterministic across runs).
  struct Victim {
    PartitionId id;
    double activity;
    uint64_t last_touch;
    uint64_t bytes;
  };
  std::vector<Victim> victims;
  engine_->catalog().ForEachPartition([&](const Partition& partition) {
    if (partition.cold() || partition.entity_count() == 0) return;
    const auto it = last_touch_.find(partition.id());
    // Untracked partitions predate the controller: maximally idle.
    const uint64_t touched = it == last_touch_.end() ? 0 : it->second;
    if (tick_ - touched < options_.min_idle) return;
    victims.push_back(Victim{
        partition.id(),
        probe_ ? probe_(partition.id()) : 0.0,
        touched,
        partition.Size(SizeMeasure::kByteSize),
    });
  });
  std::sort(victims.begin(), victims.end(), [](const Victim& a,
                                               const Victim& b) {
    if (a.activity != b.activity) return a.activity < b.activity;
    if (a.last_touch != b.last_touch) return a.last_touch < b.last_touch;
    return a.id < b.id;
  });

  size_t spilled = 0;
  for (const Victim& victim : victims) {
    if (hot_bytes <= options_.budget_bytes) break;
    CINDERELLA_RETURN_IF_ERROR(engine_->SpillPartition(victim.id));
    hot_bytes -= std::min(hot_bytes, victim.bytes);
    ++spilled;
  }
  return spilled;
}

StatusOr<size_t> TierController::SpillPartitions(
    const std::vector<PartitionId>& ids) {
  if (engine_->cold_tier() == nullptr) {
    return Status::FailedPrecondition("no cold tier attached");
  }
  size_t spilled = 0;
  for (PartitionId id : ids) {
    const Partition* partition = engine_->catalog().GetPartition(id);
    if (partition == nullptr || partition->cold() ||
        partition->entity_count() == 0) {
      continue;
    }
    CINDERELLA_RETURN_IF_ERROR(engine_->SpillPartition(id));
    ++spilled;
  }
  return spilled;
}

}  // namespace cinderella
