#include "storage/row.h"

#include <algorithm>

namespace cinderella {
namespace {

struct CellLess {
  bool operator()(const Row::Cell& cell, AttributeId attribute) const {
    return cell.attribute < attribute;
  }
};

}  // namespace

void Row::Set(AttributeId attribute, Value value) {
  auto it = std::lower_bound(cells_.begin(), cells_.end(), attribute,
                             CellLess{});
  if (it != cells_.end() && it->attribute == attribute) {
    it->value = std::move(value);
    return;
  }
  cells_.insert(it, Cell{attribute, std::move(value)});
}

bool Row::Erase(AttributeId attribute) {
  auto it = std::lower_bound(cells_.begin(), cells_.end(), attribute,
                             CellLess{});
  if (it == cells_.end() || it->attribute != attribute) return false;
  cells_.erase(it);
  return true;
}

const Value* Row::Get(AttributeId attribute) const {
  auto it = std::lower_bound(cells_.begin(), cells_.end(), attribute,
                             CellLess{});
  if (it == cells_.end() || it->attribute != attribute) return nullptr;
  return &it->value;
}

uint64_t Row::byte_size() const {
  uint64_t total = 8;
  for (const Cell& cell : cells_) total += 4 + cell.value.byte_size();
  return total;
}

Synopsis Row::AttributeSynopsis() const {
  Synopsis s;
  for (const Cell& cell : cells_) s.Add(cell.attribute);
  return s;
}

const Value* RowView::Get(AttributeId attribute) const {
  const Row::Cell* it =
      std::lower_bound(cells_, cells_ + cell_count_, attribute, CellLess{});
  if (it == cells_ + cell_count_ || it->attribute != attribute) return nullptr;
  return &it->value;
}

uint64_t RowView::byte_size() const {
  uint64_t total = 8;
  for (const Row::Cell& cell : *this) total += 4 + cell.value.byte_size();
  return total;
}

Row RowView::ToRow() const {
  Row row(id_);
  // Cells are sorted, so each Set appends without shifting.
  for (const Row::Cell& cell : *this) row.Set(cell.attribute, cell.value);
  return row;
}

}  // namespace cinderella
