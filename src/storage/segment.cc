#include "storage/segment.h"

#include <utility>

namespace cinderella {

Status Segment::Insert(Row row) {
  const EntityId id = row.id();
  if (index_.count(id) > 0) {
    return Status::AlreadyExists("entity " + std::to_string(id) +
                                 " already in segment");
  }
  cell_count_ += row.attribute_count();
  byte_size_ += row.byte_size();
  index_.emplace(id, rows_.size());
  rows_.push_back(std::move(row));
  return Status::OK();
}

StatusOr<Row> Segment::Remove(EntityId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("entity " + std::to_string(id) +
                            " not in segment");
  }
  const size_t pos = it->second;
  Row removed = std::move(rows_[pos]);
  index_.erase(it);
  if (pos != rows_.size() - 1) {
    rows_[pos] = std::move(rows_.back());
    index_[rows_[pos].id()] = pos;
  }
  rows_.pop_back();
  cell_count_ -= removed.attribute_count();
  byte_size_ -= removed.byte_size();
  return removed;
}

const Row* Segment::Find(EntityId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &rows_[it->second];
}

Status Segment::Replace(Row row) {
  auto it = index_.find(row.id());
  if (it == index_.end()) {
    return Status::NotFound("entity " + std::to_string(row.id()) +
                            " not in segment");
  }
  Row& slot = rows_[it->second];
  cell_count_ += row.attribute_count() - slot.attribute_count();
  byte_size_ += row.byte_size() - slot.byte_size();
  slot = std::move(row);
  return Status::OK();
}

}  // namespace cinderella
