#ifndef CINDERELLA_STORAGE_COLD_TIER_H_
#define CINDERELLA_STORAGE_COLD_TIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/row.h"

namespace cinderella {

class ColdTier;

/// Descriptor of one cold partition's on-disk page chain. Immutable once
/// written; shared (via shared_ptr) between the live Partition, every MVCC
/// PartitionVersion published while the partition is cold, and the tier's
/// own bookkeeping. The pages behind it are freed only when the last
/// reference drops (the shared_ptr deleter routes back to the tier), so a
/// pinned snapshot reader can keep scanning a chain after the partition
/// faulted back to the hot tier.
struct ColdChain {
  /// Chain slot inside the backing PagedStore.
  size_t store_index = 0;
  /// Lowest entity id among the chain's rows at spill time. Journal spill
  /// records name chains by this id: partition ids are not stable across
  /// snapshot restore, entity ids are.
  EntityId representative = 0;
  /// Row/cell/byte totals of the spilled segment — Partition::Size() and
  /// the MVCC versions answer from these without touching a page.
  uint64_t entities = 0;
  uint64_t cells = 0;
  uint64_t bytes = 0;
  /// Pages the chain occupies (tier residency reporting).
  uint32_t pages = 0;
  /// The tier that wrote the chain — scan plumbing for readers that hold
  /// only the descriptor (live-catalog scan sources). Valid while the
  /// tier is open; readers must not outlive it (the same contract every
  /// cold read path already has).
  const ColdTier* tier = nullptr;
};

/// The cold-tier interface the core engine sees: write a partition's rows
/// out as one page chain, read a chain back row by row. Implemented by
/// TieredStore (src/storage/tiered_store.h, compiled into the pagestore
/// library); the core library depends only on this header, so the
/// storage -> pagestore layering stays acyclic.
class ColdTier {
 public:
  virtual ~ColdTier() = default;

  /// Writes `rows` (a partition's segment, in scan order) as one chain and
  /// returns its descriptor. Releasing the last shared_ptr reference frees
  /// the chain's pages.
  virtual StatusOr<std::shared_ptr<const ColdChain>> WriteChain(
      const std::vector<Row>& rows) = 0;

  /// Streams the chain's rows, in the order WriteChain received them, into
  /// `fn`. Safe to call concurrently with WriteChain/ReadChain from other
  /// threads (the implementation serializes internally).
  virtual Status ReadChain(const ColdChain& chain,
                           const std::function<void(Row&&)>& fn) const = 0;
};

}  // namespace cinderella

#endif  // CINDERELLA_STORAGE_COLD_TIER_H_
