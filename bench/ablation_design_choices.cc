// Ablation bench (our addition, motivated by the design choices DESIGN.md
// calls out):
//  1. Split-starter policy: the paper's incremental max-diff heuristic vs
//     keeping the first two entities vs picking random residents.
//  2. Global-rating normalization (Section IV's r) vs the raw local r'.
//  3. Synopsis index (future-work item) vs full catalog scan: insert cost
//     as the partition catalog grows.
//  4. Cinderella vs the schema-oblivious baselines (hash, arrival-order
//     range) and the offline Jaccard clustering comparator, on Definition 1
//     efficiency.
//
// Env knobs: CINDERELLA_ENTITIES (default 20000), CINDERELLA_SEED.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baseline/hash_partitioner.h"
#include "baseline/offline_cluster_partitioner.h"
#include "baseline/range_partitioner.h"
#include "baseline/single_partitioner.h"
#include "bench/bench_common.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "core/efficiency.h"
#include "core/partitioning_stats.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

struct Row3 {
  std::string name;
  size_t partitions;
  double efficiency;
  double load_seconds;
  uint64_t splits;
};

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 20000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::vector<Synopsis> workload_synopses;
  for (const auto& q : workload) {
    workload_synopses.push_back(q.query.attributes());
  }
  std::printf("data set: %zu entities; %zu workload queries\n", rows.size(),
              workload.size());

  auto evaluate = [&](Partitioner& partitioner,
                      const std::string& name) -> Row3 {
    const auto load = bench::LoadRows(partitioner, bench::CopyRows(rows));
    const auto eff = ComputeEfficiency(partitioner.catalog(),
                                       workload_synopses,
                                       SizeMeasure::kEntityCount);
    return Row3{name, partitioner.catalog().partition_count(),
                eff.efficiency, load.total_seconds, 0};
  };

  // -- 1+2: starter policy and normalization --------------------------------
  bench::PrintHeader("Ablation: starter policy and rating normalization");
  TablePrinter t1({"variant", "partitions", "efficiency", "load s", "splits"});
  struct Variant {
    const char* name;
    StarterPolicy policy;
    bool normalize;
  };
  const Variant variants[] = {
      {"paper (max-diff, normalized)", StarterPolicy::kMaxDiffHeuristic, true},
      {"first-two starters", StarterPolicy::kFirstTwo, true},
      {"random starters", StarterPolicy::kRandom, true},
      {"unnormalized local rating", StarterPolicy::kMaxDiffHeuristic, false},
  };
  for (const Variant& v : variants) {
    CinderellaConfig cc;
    cc.weight = 0.5;
    cc.max_size = 500;
    cc.starter_policy = v.policy;
    cc.normalize_rating = v.normalize;
    auto partitioner = std::move(Cinderella::Create(cc)).value();
    Row3 r = evaluate(*partitioner, v.name);
    r.splits = partitioner->stats().splits;
    t1.AddRow({r.name, std::to_string(r.partitions),
               TablePrinter::FormatDouble(r.efficiency, 4),
               TablePrinter::FormatDouble(r.load_seconds, 2),
               std::to_string(r.splits)});
  }
  std::fputs(t1.ToString().c_str(), stdout);

  // -- 3: synopsis index ------------------------------------------------------
  // On DBpedia-like data the two universal attributes put every partition
  // in the candidate set, so the index cannot prune; on disjoint-schema
  // data (the TPC-H situation) it skips almost the whole catalog.
  bench::PrintHeader("Ablation: synopsis index vs full catalog scan");
  TablePrinter t2({"data set", "variant", "partitions", "ratings", "load s"});
  std::vector<Row> disjoint;
  for (EntityId id = 0; id < rows.size(); ++id) {
    Row row(1000000 + id);
    const AttributeId base = static_cast<AttributeId>((id % 20) * 5);
    for (AttributeId a = 0; a < 5; ++a) {
      row.Set(base + a, Value(int64_t{1}));
    }
    disjoint.push_back(std::move(row));
  }
  struct IndexCase {
    const char* name;
    const std::vector<Row>* data;
  };
  const IndexCase cases[] = {{"dbpedia", &rows}, {"disjoint-20", &disjoint}};
  for (const IndexCase& c : cases) {
    for (bool use_index : {false, true}) {
      CinderellaConfig cc;
      cc.weight = 0.2;  // Low weight -> many partitions -> scan-heavy.
      cc.max_size = 500;
      cc.use_synopsis_index = use_index;
      auto partitioner = std::move(Cinderella::Create(cc)).value();
      const auto load = bench::LoadRows(*partitioner, bench::CopyRows(*c.data));
      t2.AddRow({c.name, use_index ? "synopsis index" : "full scan",
                 std::to_string(partitioner->catalog().partition_count()),
                 std::to_string(partitioner->stats().partitions_rated),
                 TablePrinter::FormatDouble(load.total_seconds, 2)});
    }
  }
  std::fputs(t2.ToString().c_str(), stdout);

  // -- 3b: Reorganize() repair pass --------------------------------------------
  // Adversarial arrival order (strictly interleaved schema families at a
  // tolerant weight) degrades the layout; one reorganization repairs it.
  bench::PrintHeader("Ablation: Reorganize() after adversarial arrival order");
  {
    TablePrinter t({"state", "partitions", "efficiency"});
    CinderellaConfig cc;
    cc.weight = 0.6;
    cc.max_size = 500;
    auto partitioner = std::move(Cinderella::Create(cc)).value();
    // Interleave entities so every family is always the minority of the
    // open partition.
    std::vector<Row> interleaved = bench::CopyRows(rows);
    std::sort(interleaved.begin(), interleaved.end(),
              [](const Row& a, const Row& b) { return a.id() < b.id(); });
    for (Row& row : interleaved) {
      CINDERELLA_CHECK(partitioner->Insert(std::move(row)).ok());
    }
    auto report = [&](const char* state) {
      const auto eff = ComputeEfficiency(partitioner->catalog(),
                                         workload_synopses,
                                         SizeMeasure::kEntityCount);
      t.AddRow({state,
                std::to_string(partitioner->catalog().partition_count()),
                TablePrinter::FormatDouble(eff.efficiency, 4)});
    };
    report("loaded (w=0.6, B=500)");
    WallTimer timer;
    CINDERELLA_CHECK(partitioner->Reorganize().ok());
    report("after Reorganize()");
    std::fputs(t.ToString().c_str(), stdout);
    std::printf("reorganize pass: %.2fs for %zu entities\n",
                timer.ElapsedSeconds(), rows.size());
  }

  // -- 4: against baselines ----------------------------------------------------
  bench::PrintHeader("Comparison: Definition 1 efficiency per partitioner");
  TablePrinter t3({"partitioner", "partitions", "efficiency", "load s"});
  auto add_row = [&](Row3 r) {
    t3.AddRow({r.name, std::to_string(r.partitions),
               TablePrinter::FormatDouble(r.efficiency, 4),
               TablePrinter::FormatDouble(r.load_seconds, 2)});
  };
  {
    CinderellaConfig cc;
    cc.weight = 0.2;
    cc.max_size = 5000;
    cc.use_synopsis_index = true;
    auto p = std::move(Cinderella::Create(cc)).value();
    add_row(evaluate(*p, p->name()));
  }
  {
    SinglePartitioner p;
    add_row(evaluate(p, p.name()));
  }
  {
    HashPartitioner p(rows.size() / 5000 + 1);
    add_row(evaluate(p, p.name()));
  }
  {
    RangePartitioner p(5000);
    add_row(evaluate(p, p.name()));
  }
  {
    OfflineClusterConfig oc;
    oc.jaccard_threshold = 0.4;
    oc.max_entities_per_partition = 5000;
    OfflineClusterPartitioner p(oc);
    WallTimer timer;
    CINDERELLA_CHECK(p.Build(bench::CopyRows(rows)).ok());
    const auto eff = ComputeEfficiency(p.catalog(), workload_synopses,
                                       SizeMeasure::kEntityCount);
    add_row(Row3{p.name(), p.catalog().partition_count(), eff.efficiency,
                 timer.ElapsedSeconds(), 0});
  }
  std::fputs(t3.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
