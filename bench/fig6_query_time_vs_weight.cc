// Reproduces Figure 6: average query execution time over query selectivity
// for weights w = 0.2 / 0.5 / 0.8 (B = 5000), compared to the universal
// table.
//
// Paper shape: lower weights benefit very selective queries (more, purer
// partitions); very unselective queries slightly profit from higher
// weights (fewer partitions to unite); for the DBpedia set 0.2 is "a good
// balance".
//
// Env knobs: CINDERELLA_ENTITIES (default 100000), CINDERELLA_SEED,
// CINDERELLA_QUERY_REPS.

#include <cstdio>
#include <memory>

#include "baseline/single_partitioner.h"
#include "bench/bench_common.h"
#include "common/env.h"
#include "core/cinderella.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 100000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));
  const int reps = static_cast<int>(Int64FromEnv("CINDERELLA_QUERY_REPS", 3));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::printf("data set: %zu entities; workload: %zu representative queries\n",
              rows.size(), workload.size());

  const CostModel model;
  std::vector<bench::SelectivitySeries> series;

  for (double weight : {0.2, 0.5, 0.8}) {
    CinderellaConfig cc;
    cc.weight = weight;
    cc.max_size = 5000;
    cc.use_synopsis_index = true;
    auto partitioner = std::move(Cinderella::Create(cc)).value();
    bench::LoadRows(*partitioner, bench::CopyRows(rows));
    std::printf("w=%.1f: %4zu partitions, %llu splits\n", weight,
                partitioner->catalog().partition_count(),
                static_cast<unsigned long long>(partitioner->stats().splits));
    bench::SelectivitySeries s;
    char label[16];
    std::snprintf(label, sizeof(label), "w=%.1f", weight);
    s.label = label;
    s.timings =
        bench::TimeQueries(partitioner->catalog(), workload, reps, model);
    series.push_back(std::move(s));
  }

  auto universal = std::make_unique<SinglePartitioner>();
  bench::LoadRows(*universal, bench::CopyRows(rows));
  bench::SelectivitySeries u;
  u.label = "universal";
  u.timings = bench::TimeQueries(universal->catalog(), workload, reps, model);
  series.push_back(std::move(u));

  bench::PrintHeader(
      "Figure 6: avg query execution time vs selectivity (B=5000)");
  bench::PrintSelectivityTable(series, 20);
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
