// Latency of the three modification operations of Section III (the paper
// measures inserts in Figure 8; deletes and updates reuse the insert
// routine, so their costs follow from it):
//   - inserts: catalog scan + occasional split,
//   - deletes: partition lookup + synopsis decrement (+ partition drop),
//   - updates in place: re-rating + refcount swap,
//   - updates that move: delete-side + full insert routine.
// Also quantifies the dissolve extension's overhead on deletes.
//
// Env knobs: CINDERELLA_ENTITIES (default 50000), CINDERELLA_SEED.

#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

SampleSummary TimeOps(const std::function<void(size_t)>& op, size_t count) {
  std::vector<double> latencies;
  latencies.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    WallTimer timer;
    op(i);
    latencies.push_back(timer.ElapsedMillis() * 1000.0);  // µs.
  }
  return Summarize(std::move(latencies));
}

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 50000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  auto rows = generator.Generate();
  std::printf("data set: %zu entities, w=0.5, B=5000\n", rows.size());

  TablePrinter table(
      {"operation", "count", "median us", "p95 us", "max us"});
  auto add = [&](const char* label, size_t count, const SampleSummary& s) {
    table.AddRow({label, std::to_string(count),
                  TablePrinter::FormatDouble(s.median, 2),
                  TablePrinter::FormatDouble(s.p95, 2),
                  TablePrinter::FormatDouble(s.max, 1)});
  };

  for (double dissolve : {0.0, 0.25}) {
    CinderellaConfig cc;
    cc.weight = 0.5;
    cc.max_size = 5000;
    cc.dissolve_threshold = dissolve;
    auto c = std::move(Cinderella::Create(cc)).value();

    // Inserts (bulk of the data).
    const size_t keep = rows.size() / 5;
    std::vector<Row> pending(rows.begin(), rows.end() - keep);
    std::vector<Row> tail(rows.end() - keep, rows.end());
    {
      std::vector<Row> batch = pending;
      for (Row& row : batch) {
        CINDERELLA_CHECK(c->Insert(std::move(row)).ok());
      }
    }
    char label[64];
    std::snprintf(label, sizeof(label), "insert (dissolve=%.2f)", dissolve);
    add(label, tail.size(), TimeOps(
        [&](size_t i) { CINDERELLA_CHECK(c->Insert(tail[i]).ok()); },
        tail.size()));

    // Updates in place (same synopsis, new values).
    Rng rng(9);
    std::snprintf(label, sizeof(label), "update in place");
    if (dissolve == 0.0) {
      add(label, 5000, TimeOps(
          [&](size_t i) {
            Row copy = rows[i];
            CINDERELLA_CHECK(c->Update(std::move(copy)).ok());
          },
          5000));

      // Updates that change the schema (candidate moves).
      std::snprintf(label, sizeof(label), "update with schema change");
      add(label, 5000, TimeOps(
          [&](size_t i) {
            Row moved(rows[i + 5000].id());
            moved.Set(static_cast<AttributeId>(90 + (i % 10)),
                      Value(int64_t{1}));
            moved.Set(static_cast<AttributeId>(80 + (i % 10)),
                      Value(int64_t{1}));
            CINDERELLA_CHECK(c->Update(std::move(moved)).ok());
          },
          5000));
    }

    // Deletes.
    std::snprintf(label, sizeof(label), "delete (dissolve=%.2f)", dissolve);
    add(label, 20000, TimeOps(
        [&](size_t i) {
          CINDERELLA_CHECK(c->Delete(rows[i + 12000].id()).ok());
        },
        20000));
    std::printf(
        "dissolve=%.2f: splits %llu, dissolved %llu, reinserted %llu, final "
        "partitions %zu\n",
        dissolve, static_cast<unsigned long long>(c->stats().splits),
        static_cast<unsigned long long>(c->stats().partitions_dissolved),
        static_cast<unsigned long long>(c->stats().entities_reinserted),
        c->catalog().partition_count());
  }

  bench::PrintHeader("Modification-operation latencies");
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
