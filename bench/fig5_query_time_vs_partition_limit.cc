// Reproduces Figure 5: average query execution time over query selectivity
// for partition size limits B = 500 / 5000 / 50000 (weight 0.5), compared
// to the unpartitioned universal table.
//
// Paper shape: Cinderella achieves a large speedup for selective queries
// (selectivity < 0.2); queries of low selectivity (> 0.3) touch every
// partition and pay a (prototype) union overhead; a smaller B gives lower
// and more stable time for selective queries but more overhead for
// unselective ones.
//
// We report both measured wall time of our in-memory scans and the modeled
// cost including the per-partition UNION-ALL overhead the paper attributes
// its low-selectivity penalty to (see CostModel).
//
// Env knobs: CINDERELLA_ENTITIES (default 100000), CINDERELLA_SEED,
// CINDERELLA_QUERY_REPS (default 3).

#include <cstdio>
#include <memory>

#include "baseline/single_partitioner.h"
#include "bench/bench_common.h"
#include "common/env.h"
#include "core/cinderella.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 100000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));
  const int reps = static_cast<int>(Int64FromEnv("CINDERELLA_QUERY_REPS", 3));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});
  std::printf("data set: %zu entities; workload: %zu representative queries\n",
              rows.size(), workload.size());

  const CostModel model;
  std::vector<bench::SelectivitySeries> series;

  for (uint64_t max_size : {uint64_t{500}, uint64_t{5000}, uint64_t{50000}}) {
    CinderellaConfig cc;
    cc.weight = 0.5;
    cc.max_size = max_size;
    cc.use_synopsis_index = true;
    auto partitioner = std::move(Cinderella::Create(cc)).value();
    const auto load = bench::LoadRows(*partitioner, bench::CopyRows(rows));
    std::printf("B=%-6llu: %4zu partitions, %llu splits, load %.2fs\n",
                static_cast<unsigned long long>(max_size),
                partitioner->catalog().partition_count(),
                static_cast<unsigned long long>(partitioner->stats().splits),
                load.total_seconds);
    bench::SelectivitySeries s;
    s.label = "B=" + std::to_string(max_size);
    s.timings =
        bench::TimeQueries(partitioner->catalog(), workload, reps, model);
    series.push_back(std::move(s));
  }

  // Baseline: the original universal table (single partition). The paper
  // measures it without union overhead (no rewrite happens); model it with
  // a single subplan's overhead, which is what one full scan costs.
  auto universal = std::make_unique<SinglePartitioner>();
  bench::LoadRows(*universal, bench::CopyRows(rows));
  bench::SelectivitySeries u;
  u.label = "universal";
  u.timings = bench::TimeQueries(universal->catalog(), workload, reps, model);
  series.push_back(std::move(u));

  bench::PrintHeader(
      "Figure 5: avg query execution time vs selectivity (w=0.5)");
  bench::PrintSelectivityTable(series, 20);

  // Headline shape checks.
  auto bin_mean = [&](const bench::SelectivitySeries& s, double lo,
                      double hi) {
    double total = 0.0;
    size_t count = 0;
    for (const auto& t : s.timings) {
      if (t.selectivity >= lo && t.selectivity < hi) {
        total += t.avg_ms;
        ++count;
      }
    }
    return count > 0 ? total / count : 0.0;
  };
  const double selective_b500 = bin_mean(series[0], 0.0, 0.2);
  const double selective_universal = bin_mean(series[3], 0.0, 0.2);
  std::printf(
      "\nselective queries (<0.2): B=500 %.3f ms vs universal %.3f ms -> "
      "speedup %.1fx (paper: 'significant speedup')\n",
      selective_b500, selective_universal,
      selective_b500 > 0 ? selective_universal / selective_b500 : 0.0);
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
