// Horizontal (Cinderella) vs the related-work vertical "hidden schema"
// partitioning ([18]) on the DBpedia data set.
//
// The two techniques optimize different dimensions: vertical column
// groups avoid reading unreferenced *attributes* (at a join cost per
// extra group), horizontal partitions avoid reading irrelevant *entities*
// (at a union cost per extra partition). The paper argues the vertical
// technique "is not directly applicable to our problem" (offline; needs a
// good k) — this bench puts numbers on the cost profiles.
//
// Metric: cells read per query (storage-format neutral) plus each
// scheme's reconstruction overhead (joins resp. united partitions).
//
// Env knobs: CINDERELLA_ENTITIES (default 20000), CINDERELLA_SEED,
// CINDERELLA_VERTICAL_K (default 12).

#include <cstdio>
#include <memory>

#include "baseline/vertical_partitioner.h"
#include "bench/bench_common.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "core/cinderella.h"
#include "query/executor.h"
#include "workload/dbpedia_generator.h"
#include "workload/query_workload.h"

namespace cinderella {
namespace {

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 20000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));
  const size_t k =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_VERTICAL_K", 12));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const auto workload =
      GenerateQueryWorkload(rows, config.num_attributes, QueryWorkloadConfig{});

  uint64_t total_cells = 0;
  for (const Row& row : rows) total_cells += row.attribute_count();
  std::printf("data set: %zu entities, %llu cells; vertical k=%zu\n",
              rows.size(), static_cast<unsigned long long>(total_cells), k);

  CinderellaConfig cc;
  cc.weight = 0.2;
  cc.max_size = 500;
  cc.use_synopsis_index = true;
  auto horizontal = std::move(Cinderella::Create(cc)).value();
  bench::LoadRows(*horizontal, bench::CopyRows(rows));

  VerticalPartitioner vertical(VerticalConfig{.k = k});
  CINDERELLA_CHECK(vertical.Build(rows, config.num_attributes).ok());
  std::printf("horizontal: %zu partitions; vertical: %zu column groups\n",
              horizontal->catalog().partition_count(),
              vertical.groups().size());

  QueryExecutor executor(horizontal->catalog());
  bench::PrintHeader(
      "Cells read per query: horizontal pruning vs vertical column groups");
  TablePrinter table({"selectivity", "queries", "universal cells",
                      "horizontal cells", "h-partitions united",
                      "vertical cells", "v-joins"});
  for (double lo = 0.0; lo < 1.0; lo += 0.2) {
    const double hi = lo + 0.2;
    uint64_t horizontal_cells = 0;
    uint64_t united = 0;
    uint64_t vertical_cells = 0;
    uint64_t joins = 0;
    size_t count = 0;
    for (const GeneratedQuery& q : workload) {
      if (q.selectivity < lo || q.selectivity >= hi) continue;
      const QueryResult h = executor.Execute(q.query);
      horizontal_cells += h.metrics.cells_read;
      united += h.metrics.partitions_scanned;
      const auto v = vertical.CostOf(q.query.attributes());
      vertical_cells += v.cells_read;
      joins += v.joins_needed;
      ++count;
    }
    if (count == 0) continue;
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f-%.1f", lo, hi);
    table.AddRow({label, std::to_string(count),
                  TablePrinter::FormatDouble(
                      static_cast<double>(total_cells), 0),
                  TablePrinter::FormatDouble(
                      static_cast<double>(horizontal_cells) / count, 0),
                  TablePrinter::FormatDouble(
                      static_cast<double>(united) / count, 1),
                  TablePrinter::FormatDouble(
                      static_cast<double>(vertical_cells) / count, 0),
                  TablePrinter::FormatDouble(
                      static_cast<double>(joins) / count, 1)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nvertical groups avoid unreferenced attributes but read *all*\n"
      "entities' cells of touched groups and pay joins; horizontal\n"
      "partitions skip irrelevant entities. On long-tail queries the two\n"
      "are complementary — and only the horizontal scheme is maintainable\n"
      "online (the paper's argument against [18]).\n");
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
