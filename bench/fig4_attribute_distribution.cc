// Reproduces Figure 4: the distributions of the (synthetic) DBpedia person
// data set — (a) attribute frequency, (b) attributes per entity.
//
// Paper reference (Section V.B): 100,000 entities, 100 attributes; two
// attributes on almost every entity, eleven on more than 30%, 85% of
// attributes on fewer than 10%; most entities carry 2-15 attributes with a
// maximum of 27; whole-table sparseness 0.94.
//
// Env knobs: CINDERELLA_ENTITIES (default 100000), CINDERELLA_SEED.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "workload/dataset_stats.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

int Main() {
  DbpediaConfig config;
  config.num_entities =
      static_cast<size_t>(Int64FromEnv("CINDERELLA_ENTITIES", 100000));
  config.seed = static_cast<uint64_t>(Int64FromEnv("CINDERELLA_SEED", 42));

  AttributeDictionary dictionary;
  DbpediaGenerator generator(config, &dictionary);
  const auto rows = generator.Generate();
  const DatasetDistribution d =
      ComputeDatasetDistribution(rows, config.num_attributes);

  bench::PrintHeader("Figure 4(a): attribute frequency distribution");
  std::printf("entities: %zu, attributes: %zu\n", d.entity_count,
              d.frequency.size());
  TablePrinter freq({"rank", "frequency"});
  for (size_t rank = 0; rank < d.frequency_sorted.size(); ++rank) {
    // Print a readable subsample of the sorted curve.
    if (rank < 15 || rank % 10 == 0 || rank + 1 == d.frequency_sorted.size()) {
      freq.AddRow({std::to_string(rank + 1),
                   TablePrinter::FormatDouble(d.frequency_sorted[rank], 4)});
    }
  }
  std::fputs(freq.ToString().c_str(), stdout);
  std::printf(
      "attributes on >85%% of entities: %zu   (paper: 2 'extremely common')\n",
      d.CountAttributesAbove(0.85));
  std::printf(
      "attributes on >30%% of entities: %zu   (paper: 13 = 2 + 'eleven fairly "
      "common')\n",
      d.CountAttributesAbove(0.30));
  std::printf(
      "attributes on <10%% of entities: %zu/%zu = %.0f%%   (paper: 85%%)\n",
      d.CountAttributesBelow(0.10), d.frequency.size(),
      100.0 * d.CountAttributesBelow(0.10) / d.frequency.size());

  bench::PrintHeader("Figure 4(b): attributes per entity");
  TablePrinter hist({"#attributes", "#entities"});
  for (size_t k = 0; k < d.attrs_per_entity_histogram.size(); ++k) {
    if (d.attrs_per_entity_histogram[k] == 0) continue;
    hist.AddRow({std::to_string(k),
                 std::to_string(d.attrs_per_entity_histogram[k])});
  }
  std::fputs(hist.ToString().c_str(), stdout);
  size_t bulk = 0;
  for (size_t k = 2; k <= 15 && k < d.attrs_per_entity_histogram.size(); ++k) {
    bulk += d.attrs_per_entity_histogram[k];
  }
  std::printf("entities with 2-15 attributes: %.1f%%   (paper: 'majority')\n",
              100.0 * bulk / d.entity_count);
  std::printf("max attributes per entity: %zu   (paper: 27)\n",
              d.max_attributes_per_entity);
  std::printf("mean attributes per entity: %.2f\n",
              d.mean_attributes_per_entity);
  std::printf("table sparseness: %.3f   (paper: 0.94)\n", d.sparseness);
  return 0;
}

}  // namespace
}  // namespace cinderella

int main() { return cinderella::Main(); }
