// Microbench for the networked scatter/gather path (src/net): real
// NodeServers on loopback TCP behind a pruning Coordinator.
//
// Four questions, one JSON:
//  - Fan-out vs placement policy: how many nodes does a selective
//    single-family query contact under round-robin / least-loaded /
//    schema-aware placement? (Schema-aware co-location should keep it
//    near 1; hash-style round-robin fans out.)
//  - Pruned vs unpruned dispatch: the same queries through a coordinator
//    that ignores its synopsis digests — every dispatch then contacts
//    every node, which is exactly the round-trip cost Definition 1 saves.
//  - Node scaling: wall latency of a broad (all-families) query on 1, 2,
//    and 4 loopback nodes — real sockets, real serialization, so this
//    includes the coordinator's scatter/gather overhead.
//  - Straggler share: the slowest node's share of each gather's wall
//    time, and the busiest node's share of the shipped rows.
//
// Emits BENCH_net.json in the working directory plus a table on stdout.
//
// Knobs: CINDERELLA_BENCH_ENTITIES (default 4000),
//        CINDERELLA_BENCH_NET_FAMILIES (default 8),
//        CINDERELLA_BENCH_NET_REPS (default 5),
//        CINDERELLA_BENCH_MAX_SIZE (default 100).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "net/loopback_cluster.h"
#include "query/query.h"

namespace cinderella {
namespace {

std::vector<Row> FamilyRows(size_t entities, size_t families) {
  std::vector<Row> rows;
  rows.reserve(entities);
  for (EntityId id = 0; id < entities; ++id) {
    const AttributeId base =
        static_cast<AttributeId>((id % families) * 10);
    Row row(id);
    row.Set(base, Value(static_cast<int64_t>(id)));
    row.Set(base + 1, Value(static_cast<int64_t>(id) * 3));
    row.Set(base + 2, Value(static_cast<int64_t>(id % 97)));
    rows.push_back(std::move(row));
  }
  return rows;
}

const char* PolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round_robin";
    case PlacementPolicy::kLeastLoaded:
      return "least_loaded";
    case PlacementPolicy::kSchemaAware:
      return "schema_aware";
  }
  return "?";
}

struct FanoutPoint {
  std::string policy;
  double avg_nodes_contacted = 0.0;
  double avg_nodes_pruned = 0.0;
  double avg_wall_ms = 0.0;
};

struct ScalingPoint {
  size_t nodes = 0;
  double avg_wall_ms = 0.0;
  double avg_max_node_ms = 0.0;
  double straggler_time_share = 0.0;  // max_node_ms / wall_ms.
  double straggler_row_share = 0.0;   // max_node_rows / rows_matched.
};

}  // namespace
}  // namespace cinderella

int main() {
  using namespace cinderella;
  using namespace cinderella::net;

  const size_t entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ENTITIES", 4000));
  const size_t families = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_NET_FAMILIES", 8));
  const int reps =
      static_cast<int>(Int64FromEnv("CINDERELLA_BENCH_NET_REPS", 5));
  const uint64_t max_size = static_cast<uint64_t>(
      Int64FromEnv("CINDERELLA_BENCH_MAX_SIZE", 100));

  const std::vector<Row> rows = FamilyRows(entities, families);

  auto base_options = [&](size_t nodes, PlacementPolicy policy) {
    LoopbackClusterOptions options;
    options.nodes = nodes;
    options.policy = policy;
    options.config.weight = 0.3;
    options.config.max_size = max_size;
    options.coordinator.timeout_ms = 10000;
    options.coordinator.retries = 1;
    return options;
  };

  auto selective_queries = [&] {
    std::vector<Query> queries;
    for (size_t f = 0; f < families; ++f) {
      queries.emplace_back(
          Synopsis{static_cast<AttributeId>(f * 10),
                   static_cast<AttributeId>(f * 10 + 1)});
    }
    return queries;
  }();
  Synopsis broad;
  for (size_t f = 0; f < families; ++f) {
    broad.Add(static_cast<AttributeId>(f * 10));
  }
  const Query broad_query(broad);

  // -- Fan-out vs placement policy (4 nodes, pruned dispatch) ---------------
  bench::PrintHeader("net: fan-out vs placement policy (4 nodes)");
  std::vector<FanoutPoint> fanout;
  double unpruned_contacted = 0.0;
  double unpruned_wall_ms = 0.0;
  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kSchemaAware}) {
    LoopbackCluster cluster(base_options(4, policy));
    if (!cluster.Load(rows).ok()) {
      std::fprintf(stderr, "cluster load failed\n");
      return 1;
    }
    FanoutPoint point;
    point.policy = PolicyName(policy);
    size_t samples = 0;
    for (int rep = 0; rep < reps; ++rep) {
      for (const Query& query : selective_queries) {
        const GatherResult result = cluster.coordinator().Execute(query);
        if (!result.complete) {
          std::fprintf(stderr, "incomplete gather\n");
          return 1;
        }
        point.avg_nodes_contacted +=
            static_cast<double>(result.nodes_contacted);
        point.avg_nodes_pruned += static_cast<double>(result.nodes_pruned);
        point.avg_wall_ms += result.wall_ms;
        ++samples;
      }
    }
    point.avg_nodes_contacted /= static_cast<double>(samples);
    point.avg_nodes_pruned /= static_cast<double>(samples);
    point.avg_wall_ms /= static_cast<double>(samples);
    std::printf("  %-13s contacted %.2f / 4 nodes, pruned %.2f, %.3f ms\n",
                point.policy.c_str(), point.avg_nodes_contacted,
                point.avg_nodes_pruned, point.avg_wall_ms);
    fanout.push_back(point);

    // Unpruned dispatch on the schema-aware cluster: same endpoints, a
    // coordinator that never consults digests.
    if (policy == PlacementPolicy::kSchemaAware) {
      CoordinatorOptions blind = CoordinatorOptions();
      blind.timeout_ms = 10000;
      blind.prune = false;
      Coordinator unpruned(cluster.coordinator().endpoints(), blind);
      size_t blind_samples = 0;
      for (int rep = 0; rep < reps; ++rep) {
        for (const Query& query : selective_queries) {
          const GatherResult result = unpruned.Execute(query);
          unpruned_contacted += static_cast<double>(result.nodes_contacted);
          unpruned_wall_ms += result.wall_ms;
          ++blind_samples;
        }
      }
      unpruned_contacted /= static_cast<double>(blind_samples);
      unpruned_wall_ms /= static_cast<double>(blind_samples);
      std::printf("  %-13s contacted %.2f / 4 nodes (no digests), %.3f ms\n",
                  "unpruned", unpruned_contacted, unpruned_wall_ms);
    }
  }

  // -- Node scaling + straggler share (broad query) -------------------------
  bench::PrintHeader("net: broad-query latency vs node count");
  std::vector<ScalingPoint> scaling;
  for (const size_t nodes : {size_t{1}, size_t{2}, size_t{4}}) {
    LoopbackCluster cluster(
        base_options(nodes, PlacementPolicy::kSchemaAware));
    if (!cluster.Load(rows).ok()) {
      std::fprintf(stderr, "cluster load failed\n");
      return 1;
    }
    ScalingPoint point;
    point.nodes = nodes;
    double row_share = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const GatherResult result = cluster.coordinator().Execute(broad_query);
      if (!result.complete || result.rows_matched == 0) {
        std::fprintf(stderr, "broad gather failed\n");
        return 1;
      }
      point.avg_wall_ms += result.wall_ms;
      point.avg_max_node_ms += result.max_node_ms;
      point.straggler_time_share +=
          result.wall_ms > 0.0 ? result.max_node_ms / result.wall_ms : 0.0;
      row_share += static_cast<double>(result.max_node_rows) /
                   static_cast<double>(result.rows_matched);
    }
    point.avg_wall_ms /= reps;
    point.avg_max_node_ms /= reps;
    point.straggler_time_share /= reps;
    point.straggler_row_share = row_share / reps;
    std::printf(
        "  %zu node(s): %.3f ms wall, %.3f ms slowest node "
        "(%.0f%% of wall), busiest ships %.0f%% of rows\n",
        nodes, point.avg_wall_ms, point.avg_max_node_ms,
        100.0 * point.straggler_time_share,
        100.0 * point.straggler_row_share);
    scaling.push_back(point);
  }

  // -- JSON -----------------------------------------------------------------
  FILE* json = std::fopen("BENCH_net.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_net.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"micro_net\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n", entities);
  std::fprintf(json, "  \"families\": %zu,\n", families);
  std::fprintf(json, "  \"reps\": %d,\n", reps);
  bench::WriteHostMetadata(json);
  std::fprintf(json, "  \"fanout\": [");
  for (size_t i = 0; i < fanout.size(); ++i) {
    std::fprintf(json,
                 "%s\n    {\"policy\": \"%s\", \"nodes_contacted\": %.3f, "
                 "\"nodes_pruned\": %.3f, \"wall_ms\": %.4f}",
                 i == 0 ? "" : ",", fanout[i].policy.c_str(),
                 fanout[i].avg_nodes_contacted, fanout[i].avg_nodes_pruned,
                 fanout[i].avg_wall_ms);
  }
  std::fprintf(json, "\n  ],\n");
  std::fprintf(json,
               "  \"unpruned\": {\"nodes_contacted\": %.3f, "
               "\"wall_ms\": %.4f},\n",
               unpruned_contacted, unpruned_wall_ms);
  std::fprintf(json, "  \"scaling\": [");
  for (size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(json,
                 "%s\n    {\"nodes\": %zu, \"wall_ms\": %.4f, "
                 "\"max_node_ms\": %.4f, \"straggler_time_share\": %.4f, "
                 "\"straggler_row_share\": %.4f}",
                 i == 0 ? "" : ",", scaling[i].nodes, scaling[i].avg_wall_ms,
                 scaling[i].avg_max_node_ms, scaling[i].straggler_time_share,
                 scaling[i].straggler_row_share);
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_net.json\n");
  return 0;
}
