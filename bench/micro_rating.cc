// Microbench for the fused rating kernel and the thread-pool parallel
// scan engine.
//
// Four experiments:
//  1. rating kernel: ns/op of the fused single-pass Synopsis::RateCounts
//     against the three-pass baseline (IntersectCount + 2x AndNotCount)
//     it replaced, across synopsis widths;
//  2. insert scan: insert throughput into a DBpedia-shaped table whose
//     catalog is large enough that the unrestricted rating scan dominates,
//     at scan_threads in {1, 2, 4}, with a placement-identity check
//     (parallel placements must be bit-identical to serial);
//  3. query scan: QueryExecutor::Execute throughput over the >=100k-row
//     universal table at scan degrees {1, 2, 4}, with a metrics-identity
//     check;
//  4. synopsis tree: per-insert rating cost of the tree descent vs the
//     flat scan at 1k/10k/100k/1M synthetic partitions, with the fraction
//     of partitions inspected, the fraction of tree nodes pruned, and an
//     argmax-identity check (tree placement == flat placement).
//
// Emits BENCH_rating.json (one trajectory point per run) next to the
// binary's working directory, plus a human-readable table on stdout.
//
// Knobs: CINDERELLA_BENCH_ENTITIES (default 100000),
//        CINDERELLA_BENCH_KERNEL_BITS (default 65536),
//        CINDERELLA_BENCH_TAIL_INSERTS (default 2000),
//        CINDERELLA_BENCH_QUERY_REPS (default 5),
//        CINDERELLA_BENCH_TREE_PARTITIONS (default 1000000; caps the sweep).

#include <cinttypes>
#include <cstdint>
#include <thread>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "core/rating.h"
#include "query/executor.h"
#include "query/query.h"
#include "synopsis/synopsis.h"
#include "synopsis/synopsis_tree.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

Synopsis RandomSynopsis(Rng& rng, size_t universe_bits, double density) {
  Synopsis s;
  const size_t bits = static_cast<size_t>(
      static_cast<double>(universe_bits) * density);
  for (size_t i = 0; i < bits; ++i) {
    s.Add(static_cast<AttributeId>(rng.Uniform(universe_bits)));
  }
  // Pin the top bit so both operands span the full word count.
  s.Add(static_cast<AttributeId>(universe_bits - 1));
  return s;
}

struct KernelResult {
  size_t bits = 0;
  double fused_ns = 0.0;
  double three_pass_ns = 0.0;
  double speedup = 0.0;
};

/// Times the fused kernel against the three-pass baseline on one operand
/// width. The checksum keeps the compiler from eliding either loop and is
/// asserted equal between the two variants (same counts either way).
KernelResult TimeKernel(size_t universe_bits, int iterations) {
  Rng rng(7);
  const Synopsis entity = RandomSynopsis(rng, universe_bits, 0.2);
  const Synopsis partition = RandomSynopsis(rng, universe_bits, 0.3);

  uint64_t fused_sum = 0;
  WallTimer timer;
  for (int i = 0; i < iterations; ++i) {
    const Synopsis::RatingCounts counts = entity.RateCounts(partition);
    fused_sum += counts.intersect + 2 * counts.only_this +
                 3 * counts.only_other;
  }
  const double fused_seconds = timer.ElapsedSeconds();

  uint64_t three_sum = 0;
  timer.Restart();
  for (int i = 0; i < iterations; ++i) {
    three_sum += entity.IntersectCount(partition) +
                 2 * entity.AndNotCount(partition) +
                 3 * partition.AndNotCount(entity);
  }
  const double three_seconds = timer.ElapsedSeconds();

  if (fused_sum != three_sum) {
    std::fprintf(stderr, "FATAL: fused kernel disagrees with 3-pass\n");
    std::exit(1);
  }

  KernelResult result;
  result.bits = universe_bits;
  result.fused_ns = fused_seconds * 1e9 / iterations;
  result.three_pass_ns = three_seconds * 1e9 / iterations;
  result.speedup = result.fused_ns > 0.0
                       ? result.three_pass_ns / result.fused_ns
                       : 0.0;
  return result;
}

/// Order-insensitive fingerprint of which entities share partitions.
uint64_t GroupingFingerprint(const Cinderella& c) {
  uint64_t fingerprint = 0;
  c.catalog().ForEachPartition([&](const Partition& partition) {
    uint64_t member_hash = 0;
    for (const Row& row : partition.segment().rows()) {
      member_hash += row.id() * 0x9e3779b97f4a7c15ULL + 1;
    }
    fingerprint ^= member_hash * 0xff51afd7ed558ccdULL;
  });
  return fingerprint;
}

struct ScanPoint {
  int threads = 0;
  double ops_per_second = 0.0;
  double speedup = 0.0;  // vs the threads == 1 point.
  bool identical = true;
};

struct TreeSweepPoint {
  size_t partitions = 0;
  double flat_ns = 0.0;        // Per-insert rating, full flat scan.
  double tree_ns = 0.0;        // Per-insert rating, tree descent.
  double speedup = 0.0;
  double inspected_fraction = 0.0;  // Leaves rated / catalog size.
  double pruned_node_fraction = 0.0;  // Tree nodes never visited.
  bool identical = true;       // Tree argmax == flat argmax on every probe.
};

/// Tree-vs-flat rating sweep at a fixed catalog size. Synthetic synopses
/// clustered into attribute families over contiguous id blocks (the shape
/// splits produce: neighbors in id space share content), one probe per
/// rep drawn from a random family. Both sides rate with the shared
/// RateFromCounts arithmetic and the identical ascending-id strictly-
/// greater argmax, so placements must match bit-for-bit.
TreeSweepPoint TreeSweep(size_t num_partitions, int reps) {
  constexpr size_t kFamilies = 64;
  constexpr size_t kFamilyBits = 16;
  constexpr double kWeight = 0.3;
  Rng rng(29);

  std::vector<Synopsis> parts;
  std::vector<double> sizes;
  parts.reserve(num_partitions);
  sizes.reserve(num_partitions);
  SynopsisTree tree(16);
  for (size_t i = 0; i < num_partitions; ++i) {
    const size_t family = i * kFamilies / num_partitions;
    Synopsis s;
    for (int b = 0; b < 4; ++b) {
      s.Add(static_cast<AttributeId>(family * kFamilyBits +
                                     rng.Uniform(kFamilyBits)));
    }
    tree.Upsert(i, s);
    parts.push_back(std::move(s));
    sizes.push_back(static_cast<double>(64 + i % 37));
  }

  std::vector<Synopsis> probes;
  probes.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const size_t family = rng.Uniform(kFamilies);
    Synopsis s;
    for (int b = 0; b < 3; ++b) {
      s.Add(static_cast<AttributeId>(family * kFamilyBits +
                                     rng.Uniform(kFamilyBits)));
    }
    probes.push_back(std::move(s));
  }

  auto rate = [&](const Synopsis& probe, double probe_size, uint64_t id) {
    const Synopsis::RatingCounts counts = probe.RateCounts(parts[id]);
    return RateFromCounts(static_cast<double>(counts.intersect),
                          static_cast<double>(counts.only_other),
                          static_cast<double>(counts.only_this), probe_size,
                          sizes[id], kWeight, /*normalize=*/true);
  };

  TreeSweepPoint point;
  point.partitions = num_partitions;

  // Flat: rate every partition, keep the strictly-best (lowest id ties).
  std::vector<int64_t> flat_best(probes.size(), -1);
  WallTimer timer;
  for (size_t p = 0; p < probes.size(); ++p) {
    const double probe_size = static_cast<double>(probes[p].Count());
    double best = 0.0;
    int64_t best_id = -1;
    for (size_t id = 0; id < num_partitions; ++id) {
      const double rating = rate(probes[p], probe_size, id);
      if (rating > best) {
        best = rating;
        best_id = static_cast<int64_t>(id);
      }
    }
    flat_best[p] = best_id;
  }
  point.flat_ns = timer.ElapsedSeconds() * 1e9 / static_cast<double>(reps);

  // Tree: descend only subtrees whose union intersects the probe. Every
  // skipped leaf has zero overlap, hence a strictly negative rating at
  // weight < 1, hence can never be the (non-negative) winner.
  const SynopsisTreeSnapshot snap = tree.Share();
  uint64_t inspected = 0;
  std::vector<int64_t> tree_best(probes.size(), -1);
  timer.Restart();
  for (size_t p = 0; p < probes.size(); ++p) {
    const double probe_size = static_cast<double>(probes[p].Count());
    const std::vector<uint64_t>& words = probes[p].words();
    double best = 0.0;
    int64_t best_id = -1;
    snap.ForEachCandidate(words.data(), words.size(), [&](uint64_t id) {
      ++inspected;
      const double rating = rate(probes[p], probe_size, id);
      if (rating > best) {
        best = rating;
        best_id = static_cast<int64_t>(id);
      }
    });
    tree_best[p] = best_id;
  }
  point.tree_ns = timer.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
  point.speedup = point.tree_ns > 0.0 ? point.flat_ns / point.tree_ns : 0.0;
  point.inspected_fraction =
      static_cast<double>(inspected) /
      (static_cast<double>(reps) * static_cast<double>(num_partitions));
  point.identical = flat_best == tree_best;

  // Node-level pruning: fraction of tree nodes the average descent never
  // visits (a visited node is one whose parent's union intersected).
  uint64_t total_nodes = 0;
  {
    std::vector<const SynopsisTreeNode*> stack = {snap.root()};
    while (!stack.empty()) {
      const SynopsisTreeNode* node = stack.back();
      stack.pop_back();
      if (node == nullptr) continue;
      ++total_nodes;
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  uint64_t visited_nodes = 0;
  for (const Synopsis& probe : probes) {
    const std::vector<uint64_t>& words = probe.words();
    std::vector<const SynopsisTreeNode*> stack = {snap.root()};
    while (!stack.empty()) {
      const SynopsisTreeNode* node = stack.back();
      stack.pop_back();
      if (node == nullptr) continue;
      ++visited_nodes;
      const std::vector<uint64_t>& set = node->set.words();
      if (!SynopsisWordsIntersect(set.data(), set.size(), words.data(),
                                  words.size())) {
        continue;  // Pruned: none of its children are descended.
      }
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  if (total_nodes > 0) {
    point.pruned_node_fraction =
        1.0 - static_cast<double>(visited_nodes) /
                  (static_cast<double>(probes.size()) *
                   static_cast<double>(total_nodes));
  }
  return point;
}

}  // namespace
}  // namespace cinderella

int main() {
  using namespace cinderella;
  using bench::PrintHeader;

  const size_t entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ENTITIES", 100000));
  const size_t kernel_bits = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_KERNEL_BITS", 65536));
  const int tail_inserts = static_cast<int>(
      Int64FromEnv("CINDERELLA_BENCH_TAIL_INSERTS", 2000));
  const int query_reps =
      static_cast<int>(Int64FromEnv("CINDERELLA_BENCH_QUERY_REPS", 5));
  const std::vector<int> thread_counts = {1, 2, 4};

  // ---- 1. Fused rating kernel vs the three-pass baseline. ----
  PrintHeader("rating kernel: fused RateCounts vs 3-pass baseline");
  std::vector<KernelResult> kernels;
  for (size_t bits : {size_t{512}, size_t{4096}, kernel_bits}) {
    // Scale iterations down for wide operands to keep wall time bounded.
    const int iterations = static_cast<int>(40000000 / (bits + 64));
    kernels.push_back(TimeKernel(bits, iterations));
    const KernelResult& k = kernels.back();
    std::printf("  %8zu bits: fused %8.1f ns  3-pass %8.1f ns  speedup %.2fx\n",
                k.bits, k.fused_ns, k.three_pass_ns, k.speedup);
  }

  // ---- Shared data set. ----
  DbpediaConfig dbconfig;
  dbconfig.num_entities = entities;
  AttributeDictionary dictionary;
  DbpediaGenerator generator(dbconfig, &dictionary);
  const std::vector<Row> rows = generator.Generate();

  // ---- 2. Insert-side rating scan at varying scan_threads. ----
  PrintHeader("insert scan: rating throughput vs scan_threads");
  std::vector<ScanPoint> insert_points;
  uint64_t serial_fingerprint = 0;
  uint64_t serial_splits = 0;
  for (int threads : thread_counts) {
    CinderellaConfig config;
    config.weight = 0.3;
    config.max_size = 500;  // ~hundreds of partitions at 100k entities.
    config.scan_threads = threads;
    // This experiment measures the *flat* scan's thread scaling; the tree
    // gets its own sweep below.
    config.use_synopsis_tree = false;
    auto partitioner = std::move(Cinderella::Create(config)).value();
    for (const Row& row : rows) {
      if (!partitioner->Insert(Row(row)).ok()) return 1;
    }
    // Steady-state tail: fresh entities against the full catalog; this is
    // the regime where the unrestricted scan dominates insert cost.
    Rng rng(13);
    std::vector<Row> tail;
    tail.reserve(static_cast<size_t>(tail_inserts));
    for (int i = 0; i < tail_inserts; ++i) {
      Row row(static_cast<EntityId>(10000000 + i));
      const int attrs = 2 + static_cast<int>(rng.Uniform(8));
      for (int a = 0; a < attrs; ++a) {
        row.Set(static_cast<AttributeId>(rng.Uniform(dbconfig.num_attributes)),
                Value(static_cast<int64_t>(rng.Uniform(1000))));
      }
      tail.push_back(std::move(row));
    }
    WallTimer timer;
    for (Row& row : tail) {
      if (!partitioner->Insert(std::move(row)).ok()) return 1;
    }
    const double seconds = timer.ElapsedSeconds();

    ScanPoint point;
    point.threads = threads;
    point.ops_per_second = tail_inserts / seconds;
    if (threads == 1) {
      serial_fingerprint = GroupingFingerprint(*partitioner);
      serial_splits = partitioner->stats().splits;
      point.speedup = 1.0;
    } else {
      point.identical =
          GroupingFingerprint(*partitioner) == serial_fingerprint &&
          partitioner->stats().splits == serial_splits;
      point.speedup = point.ops_per_second / insert_points[0].ops_per_second;
    }
    insert_points.push_back(point);
    std::printf("  threads %d: %9.0f inserts/s  speedup %.2fx  %s  "
                "(%zu partitions)\n",
                point.threads, point.ops_per_second, point.speedup,
                point.identical ? "identical" : "MISMATCH",
                partitioner->catalog().partition_count());
  }

  // ---- 3. Query-side partition scan at varying executor degree. ----
  PrintHeader("query scan: Execute throughput vs scan degree");
  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = 500;
  config.scan_threads = 1;
  config.use_synopsis_tree = false;  // Flat-scan baseline here too.
  auto partitioner = std::move(Cinderella::Create(config)).value();
  for (const Row& row : rows) {
    if (!partitioner->Insert(Row(row)).ok()) return 1;
  }
  // Queries spanning the frequency spectrum: near-universal attributes
  // (unselective, scans almost everything) down to tail attributes.
  std::vector<Query> queries;
  for (AttributeId a = 0;
       a < static_cast<AttributeId>(dbconfig.num_attributes); a += 7) {
    queries.emplace_back(Synopsis{a, a + 1, a + 2});
  }
  std::vector<ScanPoint> query_points;
  uint64_t serial_rows_scanned = 0;
  uint64_t serial_cells = 0;
  for (int threads : thread_counts) {
    QueryExecutor executor(partitioner->catalog(), threads);
    uint64_t rows_scanned = 0;
    uint64_t cells = 0;
    WallTimer timer;
    for (int rep = 0; rep < query_reps; ++rep) {
      for (const Query& query : queries) {
        const QueryResult result = executor.Execute(query);
        rows_scanned += result.metrics.rows_scanned;
        cells += result.cells_materialized;
      }
    }
    const double seconds = timer.ElapsedSeconds();

    ScanPoint point;
    point.threads = threads;
    point.ops_per_second = static_cast<double>(rows_scanned) / seconds;
    if (threads == 1) {
      serial_rows_scanned = rows_scanned;
      serial_cells = cells;
      point.speedup = 1.0;
    } else {
      point.identical =
          rows_scanned == serial_rows_scanned && cells == serial_cells;
      point.speedup = point.ops_per_second / query_points[0].ops_per_second;
    }
    query_points.push_back(point);
    std::printf("  threads %d: %12.0f rows/s  speedup %.2fx  %s\n",
                point.threads, point.ops_per_second, point.speedup,
                point.identical ? "identical" : "MISMATCH");
  }

  // ---- 4. Synopsis-tree descent vs flat rating scan. ----
  PrintHeader("synopsis tree: rating descent vs flat scan");
  const size_t tree_cap = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_TREE_PARTITIONS", 1000000));
  std::vector<size_t> tree_sizes;
  for (size_t n : {size_t{1000}, size_t{10000}, size_t{100000},
                   size_t{1000000}}) {
    if (n <= tree_cap) tree_sizes.push_back(n);
  }
  if (tree_sizes.empty()) tree_sizes.push_back(tree_cap);
  std::vector<TreeSweepPoint> tree_points;
  for (size_t n : tree_sizes) {
    tree_points.push_back(TreeSweep(n, /*reps=*/16));
    const TreeSweepPoint& t = tree_points.back();
    std::printf("  %8zu partitions: flat %10.0f ns/insert  tree %8.0f "
                "ns/insert  speedup %6.1fx  inspected %5.2f%%  nodes pruned "
                "%5.1f%%  %s\n",
                t.partitions, t.flat_ns, t.tree_ns, t.speedup,
                t.inspected_fraction * 100.0, t.pruned_node_fraction * 100.0,
                t.identical ? "identical" : "MISMATCH");
    if (!t.identical) {
      std::fprintf(stderr, "FATAL: tree argmax disagrees with flat scan\n");
      return 1;
    }
  }

  // ---- Trajectory point. ----
  FILE* json = std::fopen("BENCH_rating.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_rating.json\n");
    return 1;
  }
  auto write_points = [&](const char* name,
                          const std::vector<ScanPoint>& points) {
    std::fprintf(json, "  \"%s\": [", name);
    for (size_t i = 0; i < points.size(); ++i) {
      std::fprintf(json,
                   "%s\n    {\"threads\": %d, \"ops_per_second\": %.1f, "
                   "\"speedup_vs_serial\": %.3f, \"identical\": %s}",
                   i == 0 ? "" : ",", points[i].threads,
                   points[i].ops_per_second, points[i].speedup,
                   points[i].identical ? "true" : "false");
    }
    std::fprintf(json, "\n  ]");
  };
  std::fprintf(json, "{\n  \"bench\": \"micro_rating\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n", entities);
  // Scan speedups are only meaningful relative to the cores available:
  // on a single-CPU host every degree > 1 measures pure pool overhead.
  bench::WriteHostMetadata(json);
  std::fprintf(json, "  \"rating_kernel\": [");
  for (size_t i = 0; i < kernels.size(); ++i) {
    std::fprintf(json,
                 "%s\n    {\"bits\": %zu, \"fused_ns\": %.2f, "
                 "\"three_pass_ns\": %.2f, \"speedup\": %.3f}",
                 i == 0 ? "" : ",", kernels[i].bits, kernels[i].fused_ns,
                 kernels[i].three_pass_ns, kernels[i].speedup);
  }
  std::fprintf(json, "\n  ],\n");
  write_points("insert_scan", insert_points);
  std::fprintf(json, ",\n");
  write_points("query_scan", query_points);
  std::fprintf(json, ",\n  \"tree_sweep\": [");
  for (size_t i = 0; i < tree_points.size(); ++i) {
    const TreeSweepPoint& t = tree_points[i];
    std::fprintf(json,
                 "%s\n    {\"partitions\": %zu, \"flat_ns\": %.1f, "
                 "\"tree_ns\": %.1f, \"speedup\": %.3f, "
                 "\"inspected_fraction\": %.5f, "
                 "\"pruned_node_fraction\": %.5f, \"identical\": %s}",
                 i == 0 ? "" : ",", t.partitions, t.flat_ns, t.tree_ns,
                 t.speedup, t.inspected_fraction, t.pruned_node_fraction,
                 t.identical ? "true" : "false");
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_rating.json\n");
  return 0;
}
