// Microbench for the batched update path of the unified mutation
// pipeline (src/ingest/mutation_pipeline.h) and its group-commit
// durability story (io/durable_table.h).
//
// Two experiments:
//  1. update: steady-state update throughput against a DBpedia-shaped
//     table whose catalog is large enough that the rating scan dominates
//     — serial single-row Update vs UpdateBatch through the
//     MutationPipeline at 1/2/4/8 shards, with a placement-identity
//     check (batched placements must be bit-identical to serial, split
//     and moved-update counts included);
//  2. durability: DurableTable update throughput with fsync-per-row
//     (sync_every_op) vs group-commit UpdateBatch (one kMutationBatch
//     record + one fsync per batch), with the fsync counts that prove
//     the coalescing.
//
// Emits BENCH_update.json in the working directory plus a human-readable
// table on stdout.
//
// Knobs: CINDERELLA_BENCH_ENTITIES (default 40000),
//        CINDERELLA_BENCH_TAIL_UPDATES (default 6000),
//        CINDERELLA_BENCH_MAX_SIZE (default 50),
//        CINDERELLA_BENCH_DURABLE_ROWS (default 512).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/cinderella.h"
#include "ingest/mutation_pipeline.h"
#include "io/durable_table.h"
#include "workload/dbpedia_generator.h"

namespace cinderella {
namespace {

/// Order-insensitive fingerprint of which entities share partitions.
uint64_t GroupingFingerprint(const Cinderella& c) {
  uint64_t fingerprint = 0;
  c.catalog().ForEachPartition([&](const Partition& partition) {
    uint64_t member_hash = 0;
    for (const Row& row : partition.segment().rows()) {
      member_hash += row.id() * 0x9e3779b97f4a7c15ULL + 1;
    }
    fingerprint ^= member_hash * 0xff51afd7ed558ccdULL;
  });
  return fingerprint;
}

/// An update stream over existing entities: each row re-randomizes its
/// entity's attribute set, so most updates change the synopsis and must
/// re-rate (the expensive path); a fraction moves partition.
std::vector<Row> MakeUpdates(int count, size_t entities,
                             size_t num_attributes) {
  Rng rng(29);
  std::vector<Row> updates;
  updates.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Row row(static_cast<EntityId>(rng.Uniform(entities)));
    const int attrs = 2 + static_cast<int>(rng.Uniform(8));
    for (int a = 0; a < attrs; ++a) {
      row.Set(static_cast<AttributeId>(rng.Uniform(num_attributes)),
              Value(static_cast<int64_t>(rng.Uniform(1000))));
    }
    updates.push_back(std::move(row));
  }
  return updates;
}

struct UpdatePoint {
  std::string mode;  // "serial" or "batched"
  int shards = 0;    // 0 for the serial point.
  double ops_per_second = 0.0;
  double speedup = 0.0;  // vs the serial point.
  bool identical = true;
  uint64_t moved = 0;  // Updates that changed partition.
};

struct DurabilityPoint {
  std::string mode;  // "fsync_per_row" or "group_commit"
  uint64_t rows = 0;
  uint64_t syncs = 0;
  double ops_per_second = 0.0;
};

}  // namespace
}  // namespace cinderella

int main() {
  using namespace cinderella;
  using bench::PrintHeader;

  const size_t entities = static_cast<size_t>(
      Int64FromEnv("CINDERELLA_BENCH_ENTITIES", 40000));
  const int tail_updates = static_cast<int>(
      Int64FromEnv("CINDERELLA_BENCH_TAIL_UPDATES", 6000));
  const uint64_t max_size = static_cast<uint64_t>(
      Int64FromEnv("CINDERELLA_BENCH_MAX_SIZE", 50));
  const int durable_rows = static_cast<int>(
      Int64FromEnv("CINDERELLA_BENCH_DURABLE_ROWS", 512));

  DbpediaConfig dbconfig;
  dbconfig.num_entities = entities;
  AttributeDictionary dictionary;
  DbpediaGenerator generator(dbconfig, &dictionary);
  const std::vector<Row> base_rows = generator.Generate();
  const std::vector<Row> updates =
      MakeUpdates(tail_updates, entities, dbconfig.num_attributes);

  CinderellaConfig config;
  config.weight = 0.3;
  config.max_size = max_size;  // Many partitions: scan-dominated regime.

  // ---- 1. Serial Update vs batched UpdateBatch at 1/2/4/8 shards. ----
  PrintHeader("update: serial Update vs batched UpdateBatch");
  std::vector<UpdatePoint> update_points;
  uint64_t serial_fingerprint = 0;
  uint64_t serial_splits = 0;
  uint64_t serial_moved = 0;
  const std::vector<int> shard_counts = {0, 1, 2, 4, 8};  // 0 = serial.
  for (const int shards : shard_counts) {
    auto partitioner = std::move(Cinderella::Create(config)).value();
    {
      // Build the identical base state quickly through the engine (the
      // placement-determinism tests guarantee identity with serial).
      MutationPipelineOptions options;
      options.shards = shards > 0 ? shards : 1;
      const std::unique_ptr<MutationPipeline> loader =
          AttachMutationPipeline(partitioner.get(), options);
      std::vector<Row> base = base_rows;
      if (!partitioner->InsertBatch(std::move(base)).ok()) return 1;
    }

    UpdatePoint point;
    point.shards = shards;
    double seconds = 0.0;
    if (shards == 0) {
      point.mode = "serial";
      std::vector<Row> pending = updates;
      WallTimer timer;
      for (Row& row : pending) {
        if (!partitioner->Update(std::move(row)).ok()) return 1;
      }
      seconds = timer.ElapsedSeconds();
    } else {
      point.mode = "batched";
      MutationPipelineOptions options;
      options.shards = shards;
      const std::unique_ptr<MutationPipeline> engine =
          AttachMutationPipeline(partitioner.get(), options);
      std::vector<Row> pending = updates;
      WallTimer timer;
      if (!partitioner->UpdateBatch(std::move(pending)).ok()) return 1;
      seconds = timer.ElapsedSeconds();
    }
    point.ops_per_second = tail_updates / seconds;
    point.moved = partitioner->stats().updates_moved;
    if (shards == 0) {
      serial_fingerprint = GroupingFingerprint(*partitioner);
      serial_splits = partitioner->stats().splits;
      serial_moved = point.moved;
      point.speedup = 1.0;
    } else {
      point.identical =
          GroupingFingerprint(*partitioner) == serial_fingerprint &&
          partitioner->stats().splits == serial_splits &&
          point.moved == serial_moved;
      point.speedup =
          point.ops_per_second / update_points[0].ops_per_second;
    }
    update_points.push_back(point);
    std::printf("  %-7s shards %d: %9.0f updates/s  speedup %.2fx  %s  "
                "(%llu moved)\n",
                point.mode.c_str(), point.shards, point.ops_per_second,
                point.speedup, point.identical ? "identical" : "MISMATCH",
                static_cast<unsigned long long>(point.moved));
  }

  // ---- 2. fsync-per-row vs group-commit durability. ----
  PrintHeader("durability: fsync per update vs group commit");
  std::vector<DurabilityPoint> durability_points;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cinderella_micro_update")
          .string();
  for (const bool group_commit : {false, true}) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    DurableTable::Options options;
    options.directory = dir;
    options.config = config;
    options.sync_every_op = !group_commit;
    options.group_commit_ops = group_commit ? 256 : 0;
    auto table = DurableTable::Open(options);
    if (!table.ok()) return 1;

    // Durable base population (journaled inserts the updates hit).
    {
      std::vector<Row> base(base_rows.begin(),
                            base_rows.begin() +
                                std::min(base_rows.size(),
                                         static_cast<size_t>(durable_rows)));
      if (!(*table)->InsertBatch(std::move(base)).ok()) return 1;
    }
    const uint64_t syncs_before = (*table)->journal_syncs();
    std::vector<Row> rows = MakeUpdates(
        durable_rows, std::min(base_rows.size(),
                               static_cast<size_t>(durable_rows)),
        dbconfig.num_attributes);
    WallTimer timer;
    if (group_commit) {
      const size_t batch_size = 128;
      for (size_t begin = 0; begin < rows.size(); begin += batch_size) {
        const size_t end = std::min(rows.size(), begin + batch_size);
        std::vector<Row> batch(rows.begin() + begin, rows.begin() + end);
        if (!(*table)->UpdateBatch(std::move(batch)).ok()) return 1;
      }
    } else {
      for (Row& row : rows) {
        if (!(*table)->UpdateRow(std::move(row)).ok()) return 1;
      }
    }
    const double seconds = timer.ElapsedSeconds();

    DurabilityPoint point;
    point.mode = group_commit ? "group_commit" : "fsync_per_row";
    point.rows = static_cast<uint64_t>(durable_rows);
    point.syncs = (*table)->journal_syncs() - syncs_before;
    point.ops_per_second = durable_rows / seconds;
    durability_points.push_back(point);
    std::printf("  %-14s %6.0f updates/s  %4llu fsyncs for %llu rows\n",
                point.mode.c_str(), point.ops_per_second,
                static_cast<unsigned long long>(point.syncs),
                static_cast<unsigned long long>(point.rows));
  }
  std::filesystem::remove_all(dir);

  // ---- Trajectory point. ----
  FILE* json = std::fopen("BENCH_update.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_update.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"micro_update\",\n");
  std::fprintf(json, "  \"entities\": %zu,\n", entities);
  std::fprintf(json, "  \"tail_updates\": %d,\n", tail_updates);
  std::fprintf(json, "  \"max_size\": %llu,\n",
               static_cast<unsigned long long>(max_size));
  // Shard speedups on a single-CPU host measure the packed sharded mirror
  // and window amortization, not parallelism; record the core count so
  // trajectory readers can tell the regimes apart.
  bench::WriteHostMetadata(json);
  std::fprintf(json, "  \"update\": [");
  for (size_t i = 0; i < update_points.size(); ++i) {
    const UpdatePoint& p = update_points[i];
    std::fprintf(json,
                 "%s\n    {\"mode\": \"%s\", \"shards\": %d, "
                 "\"ops_per_second\": %.1f, \"speedup_vs_serial\": %.3f, "
                 "\"identical\": %s, \"moved\": %llu}",
                 i == 0 ? "" : ",", p.mode.c_str(), p.shards,
                 p.ops_per_second, p.speedup,
                 p.identical ? "true" : "false",
                 static_cast<unsigned long long>(p.moved));
  }
  std::fprintf(json, "\n  ],\n  \"durability\": [");
  for (size_t i = 0; i < durability_points.size(); ++i) {
    const DurabilityPoint& p = durability_points[i];
    std::fprintf(json,
                 "%s\n    {\"mode\": \"%s\", \"rows\": %llu, "
                 "\"syncs\": %llu, \"ops_per_second\": %.1f}",
                 i == 0 ? "" : ",", p.mode.c_str(),
                 static_cast<unsigned long long>(p.rows),
                 static_cast<unsigned long long>(p.syncs),
                 p.ops_per_second);
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_update.json\n");
  return 0;
}
